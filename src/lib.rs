#![warn(missing_docs)]

//! # Bit-Weight TPE
//!
//! Facade crate for the bit-weight tensor-processing-engine workspace — a
//! full-system reproduction of *"Exploring the Performance Improvement of
//! Tensor Processing Engines through Transformation in the Bit-weight
//! Dimension of MACs"* (HPCA 2025).
//!
//! The workspace models, at the bit level, how a multiply–accumulate unit is
//! decomposed into encoders, candidate-partial-product generators, shifters,
//! compressor trees, full adders and accumulators — and how reordering those
//! components across the loop nest of a matrix multiplication (the *bit-weight
//! dimension* transformation) yields the paper's OPT1–OPT4E processing
//! elements.
//!
//! ## Crates
//!
//! * [`arith`] — bit-accurate arithmetic substrate (encodings, partial
//!   products, compressor trees, carry-save accumulation, multipliers).
//! * [`cost`] — SMIC-28nm-calibrated area/delay/power model standing in for
//!   logic synthesis.
//! * [`workloads`] — matrices, distributions, img2col and a DNN/LLM layer
//!   shape database.
//! * [`sim`] — cycle-level simulators for the classic TPE array topologies
//!   and the bit-slice column-synchronous engine.
//! * [`core`] — the paper's contribution: the compute-centric loop-nest
//!   notation, legality-checked transformations, the OPT1–OPT4E processing
//!   element architectures, analytic models and published baselines.
//! * [`engine`] — the canonical evaluation stack: engine specs and the
//!   Table VII roster, the process-wide concurrent cache, the single
//!   evaluator every consumer shares, and the `repro serve` NDJSON batch
//!   query protocol.
//! * [`obs`] — std-only observability: atomic counters/gauges, log2
//!   latency histograms, a process-wide metric registry and scoped span
//!   timers, surfaced through the serve `metrics` op and `repro profile`.
//! * [`pipeline`] — the model-level scheduling pipeline: whole networks
//!   from the layer database run end-to-end (img2col tiling → per-layer
//!   cycle/energy models → aggregated latency, TOPS/W and utilization) on
//!   any dense or serial engine, in a deterministic parallel grid
//!   (`repro models`).
//! * [`dse`] — parallel design-space exploration over all of the above:
//!   enumerate (PE style × topology × encoding × operand precision ×
//!   corner × workload) points — workloads being single layers *or whole
//!   networks*, precisions spanning the W4/W8/W16 ladder plus asymmetric
//!   presets — sweep them on scoped worker threads with a memoized
//!   synthesis cache, and extract area/delay/energy Pareto fronts
//!   (`repro dse [--model NAME] [--precision W4,..]`,
//!   `examples/design_space_sweep.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use tpe::arith::encode::{Encoder, EntEncoder};
//! use tpe::arith::pp::reduce_partial_products;
//!
//! // Encode the multiplicand 91 into radix-4 signed digits; the paper's
//! // Figure 3 example yields digits {1, 2, -1, -1} on weights 2^6..2^0.
//! let digits = EntEncoder.encode_i8(91);
//! let product = reduce_partial_products(&digits, 113);
//! assert_eq!(product, 91 * 113);
//! ```

pub use tpe_arith as arith;
pub use tpe_core as core;
pub use tpe_cost as cost;
pub use tpe_dse as dse;
pub use tpe_engine as engine;
pub use tpe_obs as obs;
pub use tpe_pipeline as pipeline;
pub use tpe_sim as sim;
pub use tpe_workloads as workloads;
