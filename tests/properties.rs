//! Cross-crate property tests: random shapes and data through the full
//! stack.

use proptest::prelude::*;
use tpe::arith::encode::EncodingKind;
use tpe::core::notation::transform::{
    extract_shared_encoder, fuse_add_into_half_reduce, sparsify_bw, temporalize_bw,
    verify_equivalent,
};
use tpe::core::notation::{interp::execute, legality, nests};
use tpe::sim::{BitsliceArray, BitsliceConfig};
use tpe::workloads::distributions::uniform_int8_matrix;
use tpe::workloads::matrix::matmul_i8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The serial engine is bit-exact for arbitrary shapes and encodings.
    #[test]
    fn bitslice_gemm_exact(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..24,
        seed in 0u64..1000,
        ent in prop::bool::ANY,
    ) {
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 1);
        let cfg = BitsliceConfig {
            mp: 4,
            np: 2,
            lanes_per_pe: 2,
            kt: 4,
            encoding: if ent { EncodingKind::EnT } else { EncodingKind::BitSerialComplement },
        };
        let (c, stats) = BitsliceArray::new(cfg).simulate(&a, &b);
        prop_assert_eq!(c, matmul_i8(&a, &b));
        prop_assert!(stats.macs == (m * n * k) as u64);
    }

    /// The full OPT1→OPT4 derivation chain preserves semantics on random
    /// shapes (sizes kept small: the interpreter is exhaustive).
    #[test]
    fn derivation_chain_equivalence(
        m in 1usize..6,
        n in 1usize..6,
        k in 1usize..10,
        seed in 0u64..500,
    ) {
        let t = nests::traditional_mac(m, n, k, EncodingKind::EnT);
        let o1 = fuse_add_into_half_reduce(&t).unwrap();
        let o2 = temporalize_bw(&o1).unwrap();
        let o3 = sparsify_bw(&o2).unwrap();
        let o4 = extract_shared_encoder(&o3).unwrap();
        prop_assert!(verify_equivalent(&t, &o1, m, n, k, seed));
        prop_assert!(verify_equivalent(&o1, &o2, m, n, k, seed));
        prop_assert!(verify_equivalent(&o2, &o3, m, n, k, seed));
        prop_assert!(verify_equivalent(&o3, &o4, m, n, k, seed));
        // All derived nests also stay statically legal.
        for nest in [&o1, &o2, &o3, &o4] {
            prop_assert!(legality::check(nest).is_ok());
        }
    }

    /// Interpreter vs reference on random nests from the constructor
    /// family and random encodings.
    #[test]
    fn interpreter_matches_reference(
        m in 1usize..8,
        n in 1usize..8,
        k in 1usize..12,
        seed in 0u64..500,
        which in 0usize..5,
    ) {
        let nest = match which {
            0 => nests::traditional_mac(m, n, k, EncodingKind::Mbe),
            1 => nests::opt1(m, n, k, EncodingKind::EnT),
            2 => nests::opt2(m, n, k, EncodingKind::Mbe),
            3 => nests::opt3(m, n, k, EncodingKind::EnT),
            _ => nests::opt4(m, n, k, EncodingKind::EnT),
        };
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 7);
        let (c, _) = execute(&nest, &a, &b).unwrap();
        prop_assert_eq!(c, matmul_i8(&a, &b));
    }

    /// Dense array estimates always match their simulations.
    #[test]
    fn dense_estimates_consistent(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..30,
        seed in 0u64..100,
    ) {
        use tpe::sim::array::ClassicArch;
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 1);
        for arch in ClassicArch::ALL {
            let engine = arch.at_paper_config();
            let (c, stats) = engine.simulate(&a, &b);
            prop_assert_eq!(&c, &matmul_i8(&a, &b));
            prop_assert_eq!(stats.cycles, engine.estimate_cycles(m, n, k));
        }
    }
}
