//! The paper's headline claims, each as an executable assertion.
//!
//! These tests are the EXPERIMENTS.md contract: when one of them moves, the
//! reproduction has drifted from the paper.

use tpe::arith::encode::{Encoder, EncodingKind, EntEncoder};
use tpe::core::analytic::{numpps, sync_model};
use tpe::core::arch::{ArchModel, ArrayModel, PeStyle};
use tpe::cost::anchors;

/// §Abstract: "we achieved area efficiency improvements of 1.27×, 1.28×,
/// 1.56×, and 1.44×" for the four classic architectures. Our model
/// reproduces improvements in the 1.2–1.6 band for all four.
#[test]
fn abstract_area_efficiency_improvements() {
    let rows: Vec<_> = ArchModel::table7_baselines()
        .into_iter()
        .chain(ArchModel::table7_ours())
        .map(|a| ArrayModel::new(a).table7_row())
        .collect();
    let ae = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap()
            .area_efficiency()
    };
    for (base, opt) in [
        ("TPU", "OPT1(TPU)"),
        ("Ascend", "OPT1(Ascend)"),
        ("Trapezoid", "OPT1(Trapezoid)"),
        ("FlexFlow", "OPT2(FlexFlow)"),
    ] {
        let ratio = ae(opt) / ae(base);
        assert!(
            (1.15..1.70).contains(&ratio),
            "{opt}/{base} area-efficiency ratio {ratio:.2} outside the paper band"
        );
    }
}

/// §Abstract: "12.10× improvement in energy efficiency and 2.85× in area
/// efficiency compared to Laconic". Direction and scale must hold.
#[test]
fn abstract_opt4e_vs_laconic() {
    let opt4e = ArchModel::table7_ours()
        .into_iter()
        .find(|a| a.name == "OPT4E")
        .unwrap();
    let row = ArrayModel::new(opt4e).table7_row();
    let rel =
        tpe::core::baselines::vs_laconic("OPT4E", row.energy_efficiency(), row.area_efficiency());
    assert!(
        rel.ee_vs_laconic > 8.0,
        "EE ×{:.1} (paper ×12.10)",
        rel.ee_vs_laconic
    );
    assert!(
        rel.ae_vs_laconic > 2.0,
        "AE ×{:.1} (paper ×2.85)",
        rel.ae_vs_laconic
    );
}

/// §IV-A: OPT1 halves the MAC's critical path (1.95 → 0.92 ns) because
/// compressor delay is width-independent (Table V).
#[test]
fn opt1_halves_the_critical_path() {
    let (opt1, mac) = (anchors::OPT1_TPD_NS, anchors::MAC_TPD_NS);
    assert!(opt1 < mac / 2.0 + 0.01, "{opt1} vs {mac}");
    // And the model's compressor tree really is flat across widths.
    use tpe::cost::components::Component;
    let d14 = Component::CompressorTree {
        inputs: 4,
        width: 14,
    }
    .cost()
    .delay_ns;
    let d32 = Component::CompressorTree {
        inputs: 4,
        width: 32,
    }
    .cost()
    .delay_ns;
    assert_eq!(d14, d32);
}

/// §II-C / Table II: EN-T leaves 71.9% of INT8 values at ≤3 partial
/// products (MBE 68.4%, bit-serial 36.3%), histograms exact.
#[test]
fn table2_exact_histograms() {
    assert_eq!(
        &numpps::int8_histogram(EncodingKind::EnT)[..5],
        &[1, 15, 60, 108, 72]
    );
    assert_eq!(
        &numpps::int8_histogram(EncodingKind::Mbe)[..5],
        &[1, 12, 54, 108, 81]
    );
    assert!((numpps::fraction_at_most(EncodingKind::EnT, 3) - 0.719).abs() < 0.001);
    assert!((numpps::fraction_at_most(EncodingKind::Mbe, 3) - 0.684).abs() < 0.001);
    assert!((numpps::fraction_at_most(EncodingKind::BitSerialComplement, 3) - 0.363).abs() < 0.001);
}

/// Figure 3: the worked examples, digit for digit.
#[test]
fn figure3_worked_examples() {
    let digits = |v: i64| -> Vec<i8> {
        EntEncoder
            .encode(v, 8)
            .iter()
            .rev()
            .map(|d| d.coeff)
            .collect()
    };
    assert_eq!(digits(91), vec![1, 2, -1, -1]);
    assert_eq!(digits(124), vec![2, 0, -1, 0]);
}

/// §IV-C: the ResNet-18 synchronization example — K=576, s=0.38,
/// E[Tsync]=381, a 33.84% saving.
#[test]
fn resnet18_sync_example() {
    let e = sync_model::expected_tsync(576, 0.38, 32);
    assert!((e - 381.0).abs() < 3.0, "E[Tsync] = {e}");
    let saving = sync_model::saving_vs_dense(576, 0.38, 32);
    assert!((saving - 0.3384).abs() < 0.006, "saving = {saving}");
}

/// Table III: average NumPPs ordering EN-T < MBE < bit-serial(M) <
/// bit-serial(C), with EN-T in the 2.2 band, σ-invariant.
#[test]
fn table3_band_and_ordering() {
    let t = numpps::table3(512, 99);
    let row = |k: EncodingKind| t.iter().find(|(kk, _)| *kk == k).unwrap().1;
    let ent = row(EncodingKind::EnT);
    assert!(
        ent.iter().all(|v| (2.1..2.4).contains(v)),
        "EN-T row {ent:?}"
    );
    let mbe = row(EncodingKind::Mbe);
    let bsm = row(EncodingKind::BitSerialSignMagnitude);
    let bsc = row(EncodingKind::BitSerialComplement);
    for (((e, m), s), c) in ent.iter().zip(&mbe).zip(&bsm).zip(&bsc) {
        assert!(e < m && m < s && s < c, "ordering broken: {e} {m} {s} {c}");
    }
}

/// §V-B: the MAC's area-efficiency stops improving past 1 GHz, while the
/// OPT designs keep gaining to 1.5–2.5 GHz (Figure 9(C)).
#[test]
fn figure9_efficiency_knees() {
    let ae = |style: PeStyle, f: f64| -> Option<f64> {
        style.design().synthesize(f).map(|r| {
            let ops = if style.is_serial() { 2.0 / 2.27 } else { 2.0 } * f64::from(style.lanes());
            r.area_efficiency(ops)
        })
    };
    // MAC: 1.5 GHz is *worse* than 1.0 GHz.
    assert!(ae(PeStyle::TraditionalMac, 1.5).unwrap() < ae(PeStyle::TraditionalMac, 1.0).unwrap());
    // OPT1: 1.5 GHz beats 1.0 GHz.
    assert!(ae(PeStyle::Opt1, 1.5).unwrap() > ae(PeStyle::Opt1, 1.0).unwrap());
    // OPT4C keeps improving to 2.5 GHz.
    assert!(ae(PeStyle::Opt4C, 2.5).unwrap() > ae(PeStyle::Opt4C, 1.5).unwrap());
}

/// §V-D / Figure 13: GPT-2 speedup over the equal-area MAC TPE is ≈2×
/// (paper ×2.16), and energy is saved.
#[test]
fn gpt2_speedup_claim() {
    use tpe::core::arch::workload::evaluate_network;
    let opt4e = ArchModel::table7_ours()
        .into_iter()
        .find(|a| a.name == "OPT4E")
        .unwrap();
    let r = evaluate_network(&opt4e, &tpe::workloads::models::gpt2(), 3);
    assert!(
        (1.7..2.6).contains(&r.speedup),
        "GPT-2 speedup ×{:.2}",
        r.speedup
    );
    assert!(r.energy_ratio < 0.9, "energy ratio {:.2}", r.energy_ratio);
    assert!(r.utilization > 0.94, "utilization {:.3}", r.utilization);
}
