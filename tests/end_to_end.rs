//! Cross-crate integration: the same GEMM flows through every layer of the
//! stack — reference, notation interpreter, dense array simulators, serial
//! engine — and everything agrees bit for bit, while the cost model prices
//! each architecture consistently.

use tpe::arith::encode::EncodingKind;
use tpe::core::arch::{ArchModel, ArrayModel, PeStyle};
use tpe::core::notation::interp::execute;
use tpe::core::notation::nests;
use tpe::sim::array::ClassicArch;
use tpe::sim::{BitsliceArray, BitsliceConfig};
use tpe::workloads::distributions::{normal_int8_matrix, uniform_int8_matrix};
use tpe::workloads::matrix::matmul_i8;

#[test]
fn one_gemm_through_the_whole_stack() {
    let (m, n, k) = (8, 8, 16);
    let a = uniform_int8_matrix(m, k, 2024);
    let b = uniform_int8_matrix(k, n, 2025);
    let reference = matmul_i8(&a, &b);

    // Notation interpreter, all five nests.
    for nest in [
        nests::traditional_mac(m, n, k, EncodingKind::EnT),
        nests::opt1(m, n, k, EncodingKind::EnT),
        nests::opt2(m, n, k, EncodingKind::EnT),
        nests::opt3(m, n, k, EncodingKind::EnT),
        nests::opt4(m, n, k, EncodingKind::EnT),
    ] {
        let (c, _) = execute(&nest, &a, &b).expect("nest executes");
        assert_eq!(c, reference, "{}", nest.name);
    }

    // Dense array simulators.
    for arch in ClassicArch::ALL {
        let engine = arch.at_paper_config();
        assert_eq!(engine.simulate(&a, &b).0, reference, "{}", engine.name());
    }

    // Serial engine with both proposed configurations.
    for cfg in [BitsliceConfig::opt3(), BitsliceConfig::opt4e()] {
        assert_eq!(BitsliceArray::new(cfg).simulate(&a, &b).0, reference);
    }
}

#[test]
fn every_table7_architecture_synthesizes_and_prices() {
    for arch in ArchModel::table7_baselines()
        .into_iter()
        .chain(ArchModel::table7_ours())
    {
        let row = ArrayModel::new(arch.clone()).table7_row();
        assert!(
            row.area_um2 > 1e5 && row.area_um2 < 1e6,
            "{}: {}",
            row.name,
            row.area_um2
        );
        assert!(
            row.power_w > 0.05 && row.power_w < 2.0,
            "{}: {}",
            row.name,
            row.power_w
        );
        assert!(row.peak_tops > 0.5 && row.peak_tops < 10.0);
        assert!(row.energy_efficiency() > 1.0);
        assert!(row.area_efficiency() > 2.0);
    }
}

#[test]
fn serial_engine_tracks_encoding_statistics() {
    // The serial array's measured PPs/MAC must match the workload's
    // measured digit statistics — two independent code paths.
    let a = normal_int8_matrix(32, 256, 1.0, 77);
    let engine = BitsliceArray::new(BitsliceConfig::opt3());
    let stats = engine.cycle_stats(&a, 32);
    let expected = tpe::workloads::sparsity::avg_num_pps(&a, EncodingKind::EnT);
    assert!(
        (stats.avg_pps_per_mac() - expected).abs() < 1e-9,
        "engine {} vs measurement {}",
        stats.avg_pps_per_mac(),
        expected
    );
}

#[test]
fn pe_styles_cover_paper_frequency_points() {
    // Every design closes timing at its Figure 9 optimum and the dense MAC
    // fails beyond its wall.
    for style in PeStyle::ALL {
        assert!(
            style
                .design()
                .synthesize(style.optimal_freq_ghz())
                .is_some(),
            "{} at {} GHz",
            style.name(),
            style.optimal_freq_ghz()
        );
    }
    assert!(PeStyle::TraditionalMac.design().synthesize(2.0).is_none());
    assert!(PeStyle::Opt4C.design().synthesize(3.0).is_some());
}

#[test]
fn analytic_model_agrees_with_simulated_sync() {
    // Eq. 7/8 versus the cycle simulator: relative sync overhead at K=576
    // must match within a couple of points of utilization.
    use tpe::core::analytic::sync_model;
    let a = normal_int8_matrix(32, 576, 1.0, 5);
    let cfg = BitsliceConfig {
        kt: usize::MAX,
        ..BitsliceConfig::opt3()
    };
    let stats = BitsliceArray::new(cfg).cycle_stats(&a, 32);
    let sim_util = stats.utilization();

    // Analytic equivalent: per-column slots = 4 digit positions × 576
    // operands; digit sparsity measured from the same matrix.
    let s = tpe::workloads::sparsity::encoding_sparsity(&a, EncodingKind::EnT);
    let slots = 4 * 576;
    let analytic_util =
        sync_model::expected_single(slots, s) / sync_model::expected_tsync(slots, s, 32);
    assert!(
        (sim_util - analytic_util).abs() < 0.03,
        "simulated {sim_util:.3} vs analytic {analytic_util:.3}"
    );
}
