//! The `fleet` batch op: engine/replica allocation for a traffic mix.
//!
//! Given a set of traffic **streams** — each a (network model, operand
//! precision, queries-per-second) triple — and a roster of candidate
//! engines, the op picks, per stream, the engine and replica count that
//! meets the stream's throughput (and optional latency bound) at minimum
//! total cost:
//!
//! ```text
//! {"id":1,"op":"fleet","mix":"resnet18:w8:2000;resnet50:w8:350",
//!  "engines":"OPT3[EN-T]/28nm@2.00GHz,OPT4E[EN-T]/28nm@2.00GHz",
//!  "objective":"area","max_delay_us":200000}
//! ```
//!
//! The model is deliberately first-order: one replica of engine `E`
//! serves one query every `delay_us(E, model)` microseconds (the same
//! end-to-end model delay every sweep reports), so a stream of `q` qps
//! needs `ceil(q · delay_us / 10⁶)` replicas. Cost is `replicas ×
//! area_um2` (`"objective":"area"`, default) or `replicas × power_w`
//! (`"objective":"power"`); ties break toward fewer replicas, then the
//! lexically-smallest engine label, so the answer is deterministic.
//! Streams with no engine meeting the bound answer `"feasible":false`
//! rather than failing the whole request.
//!
//! An optional `"memory":"<corner>"` field pins every candidate engine to
//! that [`tpe_engine::MemorySpec`] corner (any `@corner` suffix already in
//! an `engines` label still wins). The allocation then sizes replicas on
//! the **roofline-bounded** model delay — a DRAM-starved corner buys more
//! replicas of the same silicon, not an optimistic compute-only count —
//! and each stream line reports which wall its chosen engine hit via
//! `"bound":"compute"|"sram"|"dram"`.

use tpe_arith::Precision;
use tpe_engine::serve::{json_escape, Fields, JsonValue, DEFAULT_SEED};
use tpe_engine::{CycleModel, EngineCache, EngineSpec, SweepWorkload};
use tpe_workloads::NetworkModel;

use crate::eval::evaluate_with_model;
use crate::space::DesignPoint;

/// Which per-replica cost the allocator minimizes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FleetObjective {
    Area,
    Power,
}

impl FleetObjective {
    fn parse(s: &str) -> Result<FleetObjective, String> {
        match s.to_ascii_lowercase().as_str() {
            "area" => Ok(FleetObjective::Area),
            "power" => Ok(FleetObjective::Power),
            other => Err(format!(
                "unknown fleet objective `{other}` (expected area|power)"
            )),
        }
    }

    fn name(self) -> &'static str {
        match self {
            FleetObjective::Area => "area",
            FleetObjective::Power => "power",
        }
    }
}

/// One parsed `model:precision:qps` stream.
struct Stream {
    spelled: String,
    net: NetworkModel,
    precision_token: String,
    precision: Precision,
    qps: f64,
}

fn parse_stream(token: &str) -> Result<Stream, String> {
    let mut parts = token.split(':');
    let (model, prec, qps) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(q), None) => (m.trim(), p.trim(), q.trim()),
        _ => {
            return Err(format!(
                "stream `{token}` must be `model:precision:qps` (e.g. `resnet18:w8:2000`)"
            ))
        }
    };
    let needle = model.to_ascii_lowercase();
    let catalog = NetworkModel::catalog();
    let net = match catalog.iter().find(|n| n.name.eq_ignore_ascii_case(model)) {
        Some(hit) => hit.clone(),
        None => {
            let matches: Vec<&NetworkModel> = catalog
                .iter()
                .filter(|n| n.name.to_ascii_lowercase().contains(&needle))
                .collect();
            match matches.as_slice() {
                [] => return Err(format!("no network model matches `{model}`")),
                [one] => (*one).clone(),
                many => {
                    return Err(format!(
                        "model `{model}` is ambiguous ({} catalog matches) — spell the full name",
                        many.len()
                    ))
                }
            }
        }
    };
    let precision = Precision::parse(prec).ok_or_else(|| format!("unknown precision `{prec}`"))?;
    let qps: f64 = qps
        .parse()
        .map_err(|e| format!("stream qps `{qps}`: {e}"))?;
    if !(qps.is_finite() && qps > 0.0) {
        return Err(format!("stream qps must be positive, got `{qps}`"));
    }
    Ok(Stream {
        spelled: token.trim().to_string(),
        net,
        precision_token: prec.to_string(),
        precision,
        qps,
    })
}

/// Handles one `fleet` request (see the module docs for the wire shape).
pub(crate) fn fleet_op(fields: &Fields, cache: &EngineCache) -> Result<Vec<String>, String> {
    let mix = fields.str("mix")?;
    let streams: Vec<Stream> = mix
        .split(';')
        .filter(|t| !t.trim().is_empty())
        .map(parse_stream)
        .collect::<Result<_, _>>()?;
    if streams.is_empty() {
        return Err("fleet `mix` names no streams".into());
    }
    let engines: Vec<EngineSpec> = match fields.opt_str("engines")? {
        None => tpe_engine::roster::paper_roster(),
        Some(list) => list
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|label| {
                tpe_engine::roster::find(label.trim())
                    .ok_or_else(|| format!("unknown engine `{}`", label.trim()))
            })
            .collect::<Result<_, _>>()?,
    };
    if engines.is_empty() {
        return Err("fleet `engines` names no engines".into());
    }
    let objective = match fields.opt_str("objective")? {
        None => FleetObjective::Area,
        Some(s) => FleetObjective::parse(s)?,
    };
    let max_delay_us = match fields.0.get("max_delay_us") {
        None => None,
        Some(JsonValue::Num(n)) if n.is_finite() && *n > 0.0 => Some(*n),
        Some(_) => return Err("field `max_delay_us` must be a positive number".into()),
    };
    let seed = fields.uint_or("seed", DEFAULT_SEED)?;
    let cycle_model = match fields.opt_str("cycle_model")? {
        None => CycleModel::Sampled,
        Some(m) => CycleModel::parse(m)
            .ok_or_else(|| format!("unknown cycle_model `{m}` (expected sampled|analytic)"))?,
    };
    let memory = match fields.opt_str("memory")? {
        None => None,
        Some(name) => Some(
            tpe_engine::roster::find_memory(name)
                .ok_or_else(|| format!("unknown memory corner `{name}`"))?,
        ),
    };

    /// A feasible (engine, replicas) pick for one stream.
    struct Pick {
        label: String,
        replicas: u64,
        delay_us: f64,
        cost: f64,
        bound: tpe_engine::Bound,
    }
    let mut lines = Vec::with_capacity(1 + streams.len());
    let mut feasible_streams = 0usize;
    let mut total_replicas = 0u64;
    let mut total_cost = 0.0f64;
    let mut stream_lines = Vec::with_capacity(streams.len());
    for s in &streams {
        let mut best: Option<Pick> = None;
        for engine in &engines {
            let mut spec = engine.clone().with_precision(s.precision);
            // A corner spelled in the engine label itself stays; the
            // request-level field fills in the rest of the roster.
            if let Some(mem) = memory {
                if spec.memory.is_unbounded() {
                    spec = spec.with_memory(mem);
                }
            }
            let point = DesignPoint::new(spec, SweepWorkload::Model(s.net.clone()));
            let r = evaluate_with_model(&point, cache, seed, cycle_model);
            let Some(m) = &r.metrics else { continue };
            if max_delay_us.is_some_and(|bound| m.delay_us > bound) {
                continue;
            }
            // One replica answers a query every `delay_us`; replicas are
            // whole machines, so round the required parallelism up.
            let replicas = ((s.qps * m.delay_us / 1e6).ceil() as u64).max(1);
            let per_replica = match objective {
                FleetObjective::Area => m.area_um2,
                FleetObjective::Power => m.power_w,
            };
            let pick = Pick {
                label: point.engine.label(),
                replicas,
                delay_us: m.delay_us,
                cost: replicas as f64 * per_replica,
                bound: m.bound,
            };
            let better = match &best {
                None => true,
                Some(b) => match pick.cost.total_cmp(&b.cost) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        (pick.replicas, &pick.label) < (b.replicas, &b.label)
                    }
                },
            };
            if better {
                best = Some(pick);
            }
        }
        let head = format!(
            "\"op\":\"fleet-point\",\"stream\":\"{}\",\"model\":\"{}\",\"precision\":\"{}\",\
             \"qps\":{}",
            json_escape(&s.spelled),
            json_escape(&s.net.name),
            json_escape(&s.precision_token),
            s.qps,
        );
        match best {
            Some(p) => {
                feasible_streams += 1;
                total_replicas += p.replicas;
                total_cost += p.cost;
                stream_lines.push(format!(
                    "{head},\"feasible\":true,\"engine\":\"{}\",\"replicas\":{},\
                     \"delay_us\":{},\"cost\":{},\"bound\":\"{}\"",
                    json_escape(&p.label),
                    p.replicas,
                    p.delay_us,
                    p.cost,
                    p.bound.label(),
                ));
            }
            None => stream_lines.push(format!("{head},\"feasible\":false")),
        }
    }

    lines.push(format!(
        "\"op\":\"fleet\",\"mix\":\"{}\",\"objective\":\"{}\",\"seed\":{seed},\
         \"streams\":{},\"engines\":{},\"feasible\":{feasible_streams},\
         \"total_replicas\":{total_replicas},\"total_cost\":{total_cost},\
         \"points_follow\":{}",
        json_escape(mix),
        objective.name(),
        streams.len(),
        engines.len(),
        stream_lines.len(),
    ));
    lines.extend(stream_lines);
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve_ops::DseOps;
    use tpe_engine::serve::handle_request;

    fn ask(req: &str, cache: &EngineCache) -> Vec<String> {
        handle_request(req, cache, &DseOps).0
    }

    #[test]
    fn fleet_allocates_each_stream_deterministically() {
        let cache = EngineCache::new();
        let req = r#"{"id":1,"op":"fleet","mix":"resnet18:w8:2000","engines":"OPT3[EN-T]/28nm@2.00GHz,OPT4E[EN-T]/28nm@2.00GHz"}"#;
        let lines = ask(req, &cache);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("\"op\":\"fleet\"")
                && lines[0].contains("\"streams\":1")
                && lines[0].contains("\"engines\":2")
                && lines[0].contains("\"objective\":\"area\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"feasible\":true") && lines[1].contains("\"replicas\":"),
            "{}",
            lines[1]
        );
        // Byte-deterministic across cache states.
        assert_eq!(lines, ask(req, &cache));
        assert_eq!(lines, ask(req, &EngineCache::new()));
    }

    #[test]
    fn fleet_scales_replicas_with_traffic() {
        let cache = EngineCache::new();
        let replicas_at = |qps: u32| {
            let req = format!(
                r#"{{"id":1,"op":"fleet","mix":"resnet18:w8:{qps}","engines":"OPT3[EN-T]/28nm@2.00GHz"}}"#
            );
            let lines = ask(&req, &cache);
            let tail = lines[1].split("\"replicas\":").nth(1).unwrap();
            tail.split(',').next().unwrap().parse::<u64>().unwrap()
        };
        let low = replicas_at(10);
        let high = replicas_at(100_000);
        assert!(high > low, "10 qps -> {low}, 100k qps -> {high}");
    }

    /// A DRAM-starved corner must be allocated honestly: the stream
    /// reports a `dram` bound, its delay stretches past the compute-only
    /// answer, and the stretched delay buys strictly more replicas of the
    /// same silicon.
    #[test]
    fn fleet_sizes_dram_bound_mixes_on_the_roofline_delay() {
        let cache = EngineCache::new();
        let parsed = |line: &str, key: &str| -> f64 {
            let tail = line.split(&format!("\"{key}\":")).nth(1).unwrap();
            tail.split([',', '}']).next().unwrap().parse().unwrap()
        };
        let ask_mix = |memory: &str| {
            let req = format!(
                r#"{{"id":1,"op":"fleet","mix":"resnet18:w8:200000","engines":"OPT3[EN-T]/28nm@2.00GHz"{memory}}}"#
            );
            ask(&req, &cache)
        };
        let free = ask_mix("");
        let starved = ask_mix(r#","memory":"edge""#);
        assert!(free[1].contains("\"bound\":\"compute\""), "{}", free[1]);
        assert!(starved[1].contains("\"bound\":\"dram\""), "{}", starved[1]);
        assert!(
            starved[1].contains("\"engine\":\"OPT3[EN-T]/28nm@2.00GHz@edge\""),
            "{}",
            starved[1]
        );
        assert!(
            parsed(&starved[1], "delay_us") > parsed(&free[1], "delay_us"),
            "roofline delay must exceed compute-only delay"
        );
        assert!(
            parsed(&starved[1], "replicas") > parsed(&free[1], "replicas"),
            "a memory-bound stream needs more replicas: {} vs {}",
            starved[1],
            free[1]
        );
        // A corner spelled in the engine label wins over the request
        // field, and an unknown corner is a request error.
        let req = r#"{"id":1,"op":"fleet","mix":"resnet18:w8:100","engines":"OPT3[EN-T]/28nm@2.00GHz@hbm","memory":"edge"}"#;
        let lines = ask(req, &cache);
        assert!(
            lines[1].contains("\"engine\":\"OPT3[EN-T]/28nm@2.00GHz@hbm\""),
            "{}",
            lines[1]
        );
        let bad = ask(
            r#"{"id":1,"op":"fleet","mix":"resnet18:w8:100","memory":"no-such"}"#,
            &cache,
        );
        assert!(bad[0].contains("unknown memory corner"), "{}", bad[0]);
    }

    #[test]
    fn fleet_honors_the_latency_bound() {
        let cache = EngineCache::new();
        // An impossible bound makes every stream infeasible — reported,
        // not an error.
        let req = r#"{"id":1,"op":"fleet","mix":"resnet18:w8:100","max_delay_us":0.001}"#;
        let lines = ask(req, &cache);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"feasible\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"feasible\":false"), "{}", lines[1]);
    }

    #[test]
    fn fleet_rejects_malformed_requests() {
        let cache = EngineCache::new();
        for (req, needle) in [
            (r#"{"id":1,"op":"fleet"}"#, "missing field `mix`"),
            (r#"{"id":1,"op":"fleet","mix":""}"#, "names no streams"),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w8"}"#,
                "must be `model:precision:qps`",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"no-such-net:w8:10"}"#,
                "no network model",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w99:10"}"#,
                "unknown precision",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w8:-5"}"#,
                "must be positive",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w8:10","engines":"bogus"}"#,
                "unknown engine",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w8:10","objective":"cost"}"#,
                "unknown fleet objective",
            ),
            (
                r#"{"id":1,"op":"fleet","mix":"resnet18:w8:10","max_delay_us":-1}"#,
                "must be a positive number",
            ),
        ] {
            let lines = ask(req, &cache);
            assert_eq!(lines.len(), 1);
            assert!(lines[0].contains("\"ok\":false"), "{req} -> {}", lines[0]);
            assert!(lines[0].contains(needle), "{req} -> {}", lines[0]);
        }
    }
}
