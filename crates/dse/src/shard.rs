//! Deterministic sharding of sweep slices and the merge that reassembles
//! shard responses byte-identical to the single-node answer.
//!
//! ## Partitioning
//!
//! A sweep slice is partitioned by **label hash**: design point `p`
//! belongs to shard `k` of `n` iff `fnv1a(p.label()) % n == k`
//! ([`ShardSpec::contains`]). The hash depends only on the point's stable
//! label — not on enumeration order, thread count, or which process asks —
//! so any process holding the same filter enumerates the same global
//! slice and agrees on the partition. Shard requests keep each point's
//! **global slice index** on the wire, which is what lets a merge client
//! interleave rows from any shard→process assignment back into
//! single-node order.
//!
//! ## Merge invariant (front-then-merge == merge-then-front)
//!
//! Per-point rows carry the Pareto flag of the *global* slice, which one
//! shard cannot know. Each shard therefore ships, for every point on its
//! *local* front, the exact objective scores (bit-exact `f64`s) and its
//! dominance group. The client then re-judges only those candidates
//! ([`merge_front`]): a point dominated within its shard is dominated in
//! the union (dominance is transitive and groups are preserved under
//! partitioning), so
//!
//! ```text
//! front(union of per-shard per-group fronts) == front(whole slice)
//! ```
//!
//! — property-tested in `tests/properties.rs` for arbitrary shard counts
//! and assignments. Demoted candidates swap in the pre-rendered
//! non-front CSV row (`csv_off`), so merged bytes equal single-node bytes.

use std::collections::BTreeMap;

use tpe_engine::serve::{parse_flat_object, JsonValue};

use crate::eval::PointResult;
use crate::pareto::{dominates_scores, Objective};

/// One shard of a key-hash partition: `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Which shard this is (0-based, `< count`).
    pub index: u64,
    /// Total number of shards (≥ 1).
    pub count: u64,
}

impl ShardSpec {
    /// Parses the wire/CLI form `"k/n"`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard `{s}` must be `k/n` (e.g. `0/4`)"))?;
        let index: u64 = k.parse().map_err(|e| format!("shard index `{k}`: {e}"))?;
        let count: u64 = n.parse().map_err(|e| format!("shard count `{n}`: {e}"))?;
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// The wire form `"k/n"`.
    pub fn spell(&self) -> String {
        format!("{}/{}", self.index, self.count)
    }

    /// Whether a design-point label falls in this shard:
    /// `fnv1a(label) % count == index`.
    pub fn contains(&self, label: &str) -> bool {
        tpe_engine::fnv1a(label) % self.count == self.index
    }
}

/// The dominance-comparability group of a point, as an opaque key — the
/// same (workload × precision) grouping
/// [`crate::pareto::pareto_front_per_workload`] uses. Only equality
/// matters to the merge.
pub fn group_key(r: &PointResult) -> String {
    let p = r.point.precision();
    format!(
        "{}|{},{},{}",
        r.point.workload.name(),
        p.a_bits,
        p.b_bits,
        p.acc_bits
    )
}

/// The point's objective scores (lower is better), `None` when
/// infeasible. These are the exact `f64`s in-process dominance compares.
pub fn scores_of(r: &PointResult, objectives: &[Objective]) -> Option<Vec<f64>> {
    let m = r.metrics.as_ref()?;
    Some(objectives.iter().map(|o| o.score(m)).collect())
}

/// Renders scores for the wire as comma-joined `f64::to_bits` hex — an
/// exact encoding, so the client re-judges dominance on identical bits.
pub fn encode_scores(scores: &[f64]) -> String {
    scores
        .iter()
        .map(|s| format!("{:016x}", s.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses [`encode_scores`] output back into the exact `f64`s.
pub fn decode_scores(s: &str) -> Result<Vec<f64>, String> {
    s.split(',')
        .map(|part| {
            u64::from_str_radix(part, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("score bits `{part}`: {e}"))
        })
        .collect()
}

/// One shard-local front member, as reassembled by the merge client:
/// global slice index, dominance group, exact objective scores.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontCandidate {
    /// Global slice index of the point.
    pub index: usize,
    /// Opaque dominance group (see [`group_key`]).
    pub group: String,
    /// Objective scores, lower better (see [`scores_of`]).
    pub scores: Vec<f64>,
}

/// Global Pareto front over the union of per-shard local fronts: the
/// indices (sorted ascending) of candidates no same-group candidate
/// dominates. Because every point dominated within its shard is dominated
/// in the whole slice, judging only the local-front survivors yields
/// exactly the whole-slice per-workload front.
pub fn merge_front(candidates: &[FrontCandidate]) -> Vec<usize> {
    let mut groups: BTreeMap<&str, Vec<&FrontCandidate>> = BTreeMap::new();
    for c in candidates {
        groups.entry(&c.group).or_default().push(c);
    }
    let mut front: Vec<usize> = Vec::new();
    for members in groups.values() {
        front.extend(members.iter().filter_map(|c| {
            let dominated = members
                .iter()
                .any(|other| dominates_scores(&other.scores, &c.scores));
            (!dominated).then_some(c.index)
        }));
    }
    front.sort_unstable();
    front
}

/// A parsed per-point response line.
struct ShardPoint {
    index: usize,
    label: String,
    feasible: bool,
    csv: String,
    /// `(group, scores, csv_off)` — present exactly on local-front rows.
    merge_fields: Option<(String, Vec<f64>, String)>,
}

/// A parsed shard response: the summary fields plus its point rows.
struct ShardResponse {
    id: u64,
    op: String,
    filter: String,
    model: Option<String>,
    analytic: bool,
    seed: u64,
    objectives: String,
    csv_header: String,
    shard: ShardSpec,
    points: u64,
    feasible: u64,
    rows: Vec<ShardPoint>,
}

fn field_str(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(JsonValue::Str(s)) => Ok(s.clone()),
        _ => Err(format!("shard response lacks string field `{key}`")),
    }
}

fn field_uint(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, String> {
    match map.get(key) {
        Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("shard response lacks integer field `{key}`")),
    }
}

fn field_bool(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<bool, String> {
    match map.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("shard response lacks boolean field `{key}`")),
    }
}

fn parse_shard_response(lines: &[String]) -> Result<ShardResponse, String> {
    let summary_line = lines.first().ok_or("empty shard response")?;
    let summary = parse_flat_object(summary_line).map_err(|e| format!("shard summary: {e}"))?;
    if !field_bool(&summary, "ok")? {
        return Err(format!(
            "shard request failed: {}",
            field_str(&summary, "error").unwrap_or_else(|_| summary_line.clone())
        ));
    }
    let op = field_str(&summary, "op")?;
    if op != "sweep" && op != "pareto" {
        return Err(format!(
            "op `{op}` is not mergeable (expected sweep|pareto)"
        ));
    }
    let shard = ShardSpec::parse(&field_str(&summary, "shard").map_err(|_| {
        "shard summary carries no `shard` field — was the request stamped `shard:k/n`?".to_string()
    })?)?;
    let points_follow = field_uint(&summary, "points_follow")? as usize;
    if points_follow != lines.len() - 1 {
        return Err(format!(
            "shard response announced {points_follow} point line(s) but carries {}",
            lines.len() - 1
        ));
    }
    let mut rows = Vec::with_capacity(lines.len() - 1);
    for line in &lines[1..] {
        let map = parse_flat_object(line).map_err(|e| format!("shard point line: {e}"))?;
        let local_front = field_bool(&map, "pareto")?;
        let merge_fields = if local_front {
            let group = field_str(&map, "group").map_err(|_| {
                "shard front row lacks merge fields (group/scores/csv_off)".to_string()
            })?;
            let scores = decode_scores(&field_str(&map, "scores")?)?;
            let csv_off = field_str(&map, "csv_off")?;
            Some((group, scores, csv_off))
        } else {
            None
        };
        rows.push(ShardPoint {
            index: field_uint(&map, "index")? as usize,
            label: field_str(&map, "label")?,
            feasible: field_bool(&map, "feasible")?,
            csv: field_str(&map, "csv")?,
            merge_fields,
        });
    }
    Ok(ShardResponse {
        id: field_uint(&summary, "id")?,
        op,
        filter: field_str(&summary, "filter")?,
        model: field_str(&summary, "model").ok(),
        analytic: matches!(summary.get("cycle_model"), Some(JsonValue::Str(m)) if m == "analytic"),
        seed: field_uint(&summary, "seed")?,
        objectives: field_str(&summary, "objectives")?,
        csv_header: field_str(&summary, "csv_header")?,
        shard,
        points: field_uint(&summary, "points")?,
        feasible: field_uint(&summary, "feasible")?,
        rows,
    })
}

/// Reassembles one request's shard responses into the exact response
/// lines a single (unsharded) server answers for the same request —
/// summary plus per-point lines, byte-identical.
///
/// Each element of `shards` is the complete response-line group
/// (summary plus point lines) one shard returned for the request, in
/// **any** order:
/// the merge keys on the `shard:k/n` echo, not on position, so any
/// shard→process assignment reassembles identically. Every shard
/// `0..n-1` must appear exactly once, the requests must have been
/// stamped `points:true`, and all summaries must echo the same
/// filter/model/seed/objectives.
pub fn merge_shard_responses(shards: &[Vec<String>]) -> Result<Vec<String>, String> {
    if shards.is_empty() {
        return Err("no shard responses to merge".into());
    }
    let parsed: Vec<ShardResponse> = shards
        .iter()
        .map(|lines| parse_shard_response(lines))
        .collect::<Result<_, _>>()?;
    let first = &parsed[0];
    let mut seen = vec![false; shards.len()];
    for p in &parsed {
        if p.shard.count != shards.len() as u64 {
            return Err(format!(
                "shard {} expects {} shard(s) but {} response group(s) were provided",
                p.shard.spell(),
                p.shard.count,
                shards.len()
            ));
        }
        let slot = &mut seen[p.shard.index as usize];
        if *slot {
            return Err(format!("duplicate responses for shard {}", p.shard.spell()));
        }
        *slot = true;
        if (
            &p.id,
            &p.op,
            &p.filter,
            &p.model,
            &p.analytic,
            &p.seed,
            &p.objectives,
            &p.csv_header,
        ) != (
            &first.id,
            &first.op,
            &first.filter,
            &first.model,
            &first.analytic,
            &first.seed,
            &first.objectives,
            &first.csv_header,
        ) {
            return Err(format!(
                "shard {} answered a different request than shard {}",
                p.shard.spell(),
                first.shard.spell()
            ));
        }
    }

    // Candidates: every shard-local front member, re-judged globally.
    let mut candidates: Vec<FrontCandidate> = Vec::new();
    let mut indices_seen = std::collections::BTreeSet::new();
    for p in &parsed {
        for row in &p.rows {
            if !indices_seen.insert(row.index) {
                return Err(format!(
                    "duplicate global index {} across shards",
                    row.index
                ));
            }
            if let Some((group, scores, _)) = &row.merge_fields {
                candidates.push(FrontCandidate {
                    index: row.index,
                    group: group.clone(),
                    scores: scores.clone(),
                });
            }
        }
    }
    let front = merge_front(&candidates);

    let mut rows: Vec<&ShardPoint> = parsed.iter().flat_map(|p| p.rows.iter()).collect();
    rows.sort_unstable_by_key(|r| r.index);
    let total_points: u64 = parsed.iter().map(|p| p.points).sum();
    let total_feasible: u64 = parsed.iter().map(|p| p.feasible).sum();

    let is_pareto = first.op == "pareto";
    let payload: Vec<(&ShardPoint, bool, &str)> = rows
        .iter()
        .filter_map(|row| {
            let on_front = front.binary_search(&row.index).is_ok();
            if is_pareto {
                // The pareto payload is the front itself: demoted
                // candidates vanish, survivors keep their on-front row.
                return on_front.then_some((*row, true, row.csv.as_str()));
            }
            // Sweep rows all stay; demoted candidates swap in the
            // pre-rendered non-front CSV row.
            let csv = match (&row.merge_fields, on_front) {
                (Some((_, _, csv_off)), false) => csv_off.as_str(),
                _ => row.csv.as_str(),
            };
            Some((*row, on_front, csv))
        })
        .collect();

    let cycle_model = if first.analytic {
        tpe_engine::CycleModel::Analytic
    } else {
        tpe_engine::CycleModel::Sampled
    };
    let id = first.id;
    let mut out = Vec::with_capacity(1 + payload.len());
    let summary = crate::serve_ops::render_summary(
        &first.op,
        &first.filter,
        first.model.as_deref(),
        None,
        cycle_model,
        first.seed,
        &first.objectives,
        total_points as usize,
        total_feasible as usize,
        front.len(),
        payload.len(),
    );
    out.push(format!("{{\"id\":{id},\"ok\":true,{summary}}}"));
    for (row, on_front, csv) in payload {
        let body = crate::serve_ops::render_point(
            &first.op,
            row.index,
            &row.label,
            row.feasible,
            on_front,
            csv,
            "",
        );
        out.push(format!("{{\"id\":{id},\"ok\":true,{body}}}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_spells_and_rejects() {
        let s = ShardSpec::parse("2/5").unwrap();
        assert_eq!((s.index, s.count), (2, 5));
        assert_eq!(s.spell(), "2/5");
        assert_eq!(ShardSpec::parse("0/1").unwrap().spell(), "0/1");
        for bad in ["", "3", "5/5", "7/4", "a/2", "1/b", "1/0", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn every_label_lands_in_exactly_one_shard() {
        let labels = ["a", "OPT4E[EN-T]/28nm@2.00GHz/resnet18", "x/y@W4", ""];
        for n in 1..=7u64 {
            for label in labels {
                let owners = (0..n)
                    .filter(|&k| ShardSpec { index: k, count: n }.contains(label))
                    .count();
                assert_eq!(owners, 1, "label `{label}` with {n} shards");
            }
        }
    }

    #[test]
    fn scores_round_trip_exactly_through_hex() {
        let scores = vec![1.5, -0.0, f64::MIN_POSITIVE, 1e300, -123.456789];
        let decoded = decode_scores(&encode_scores(&scores)).unwrap();
        assert_eq!(scores.len(), decoded.len());
        for (a, b) in scores.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_scores("zz").is_err());
    }

    #[test]
    fn merge_front_respects_groups_and_ties() {
        let c = |index, group: &str, scores: &[f64]| FrontCandidate {
            index,
            group: group.into(),
            scores: scores.to_vec(),
        };
        let candidates = vec![
            c(0, "g1", &[1.0, 1.0]), // dominates 2
            c(2, "g1", &[2.0, 2.0]),
            c(5, "g2", &[9.0, 9.0]), // different group: survives
            c(7, "g1", &[1.0, 1.0]), // exact tie with 0: both survive
        ];
        assert_eq!(merge_front(&candidates), vec![0, 5, 7]);
        assert!(merge_front(&[]).is_empty());
    }

    #[test]
    fn merge_rejects_inconsistent_shard_sets() {
        let summary = |k: u64, n: u64, seed: u64| {
            vec![
                format!(
                "{{\"id\":1,\"ok\":true,\"op\":\"sweep\",\"filter\":\"f\",\"shard\":\"{k}/{n}\",\
                 \"seed\":{seed},\"objectives\":\"area,delay,energy\",\"points\":0,\
                 \"feasible\":0,\"front\":0,\"csv_header\":\"h\",\"points_follow\":0"
            ) + "}",
            ]
        };
        // Wrong count vs provided groups.
        assert!(merge_shard_responses(&[summary(0, 3, 42)]).is_err());
        // Duplicate shard index.
        assert!(merge_shard_responses(&[summary(0, 2, 42), summary(0, 2, 42)]).is_err());
        // Mismatched request echo (seed differs).
        assert!(merge_shard_responses(&[summary(0, 2, 42), summary(1, 2, 43)]).is_err());
        // Unstamped response.
        let unstamped = vec![
            "{\"id\":1,\"ok\":true,\"op\":\"sweep\",\"filter\":\"f\",\"seed\":42,\
             \"objectives\":\"a,b\",\"points\":0,\"feasible\":0,\"front\":0,\
             \"csv_header\":\"h\",\"points_follow\":0}"
                .to_string(),
        ];
        let err = merge_shard_responses(&[unstamped]).unwrap_err();
        assert!(err.contains("shard"), "{err}");
        // Error lines surface their message.
        let failed = vec!["{\"id\":1,\"ok\":false,\"error\":\"boom\"}".to_string()];
        let err = merge_shard_responses(&[failed]).unwrap_err();
        assert!(err.contains("boom"), "{err}");
    }
}
