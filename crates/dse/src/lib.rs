#![warn(missing_docs)]

//! # tpe-dse
//!
//! Parallel design-space exploration over the bit-weight TPE workspace.
//!
//! The paper's contribution is a *space* of MAC transformations — OPT1
//! through OPT4E crossed with encoders, array topologies, synthesis
//! corners and workloads — but each `repro` experiment evaluates
//! hand-picked points. This crate turns the reproduction into the tool
//! the paper implies: enumerate the legal cross product, evaluate every
//! point in parallel, and extract the Pareto surface.
//!
//! * [`space`] — [`DesignPoint`] / [`DesignSpace`]: the five axes
//!   (PE style, topology, encoding, corner, workload), legality rules and
//!   deterministic enumeration. A point is a [`tpe_engine::EngineSpec`]
//!   plus a [`SweepWorkload`] — single GEMM layers *and whole networks*,
//!   the latter evaluated end-to-end through the model scheduler, so
//!   Pareto fronts can carry whole-model objectives
//!   (`repro dse --model resnet50`).
//! * [`eval`] — one point → [`eval::Metrics`], a thin binding of the
//!   canonical [`tpe_engine::Evaluator`] (shared with `tpe-pipeline`, the
//!   `repro` experiments and `repro serve`). Synthesis and serial
//!   sampling memoize into the process-wide
//!   [`tpe_engine::EngineCache`].
//! * [`mod@sweep`] — the scoped-thread executor: work is claimed from an
//!   atomic cursor, results merge back into input order, and per-point
//!   seeding makes output byte-identical across thread counts.
//! * [`pareto`] — [`Objective`] and non-dominated-set extraction.
//! * [`emit`] — deterministic CSV / JSON emission, for both point sweeps
//!   ([`emit::to_csv`]) and `tpe-pipeline` model grids
//!   ([`emit::model_csv`]).
//! * [`serve_ops`] — [`DseOps`]: the `sweep`/`pareto`/`fleet` batch ops
//!   `repro serve` attaches, answering a filtered slice (via
//!   [`sweep::evaluate_slice`]) as a summary line plus per-point `repro
//!   dse` CSV rows over the wire.
//! * [`shard`] — deterministic label-hash partitioning of sweep slices
//!   (`"shard":"k/n"` on the slice ops) and
//!   [`shard::merge_shard_responses`], the client-side merge that
//!   reassembles shard responses byte-identical to a single-node answer.
//! * [`fleet`] — the `fleet` op's allocator: pick engine/replica counts
//!   meeting a traffic mix's throughput and latency targets at minimum
//!   area or power.
//!
//! ## Quickstart
//!
//! ```
//! use tpe_dse::{sweep, DesignSpace, Objective, SweepConfig};
//!
//! let points = DesignSpace::quick().enumerate();
//! let outcome = sweep(&points, SweepConfig { threads: 2, ..SweepConfig::default() });
//! let front = tpe_dse::pareto_front(&outcome.results, &Objective::DEFAULT);
//! assert!(!front.is_empty());
//! let csv = tpe_dse::emit::to_csv(&outcome.results, &front);
//! assert!(csv.lines().count() > points.len());
//! ```

pub mod emit;
pub mod eval;
pub mod fleet;
pub mod pareto;
pub mod serve_ops;
pub mod shard;
pub mod space;
pub mod sweep;

pub use eval::{evaluate, evaluate_with_model, Metrics, PointResult};
pub use pareto::{pareto_front, pareto_front_per_workload, Objective};
pub use serve_ops::DseOps;
pub use shard::{merge_shard_responses, ShardSpec};
pub use space::{slice_space, Corner, DesignPoint, DesignSpace, Precision, SweepWorkload};
pub use sweep::{
    evaluate_slice, evaluate_slice_shard, sweep, sweep_with_cache, SweepConfig, SweepOutcome,
};
pub use tpe_engine::{CacheStats, CycleModel, EngineCache};
