//! The evaluation cache: synthesis results memoized on the cost-relevant
//! subset of a design point.
//!
//! A sweep crosses every (PE, corner) pair with every workload, but the
//! synthesis outcome — area, power, timing feasibility — depends only on
//! the PE composition, the clock constraint and the process node. The
//! cache keys on exactly that subset ([`PeKey`]), so a sweep over W
//! workloads prices each PE/corner pair once and serves the remaining
//! `W - 1` evaluations from memory. Hit/miss counters are exposed for the
//! `repro dse` report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tpe_arith::encode::EncodingKind;
use tpe_core::arch::{ArchKind, PeStyle};
use tpe_sim::array::ClassicArch;

use crate::space::DesignPoint;

/// The cost-relevant subset of a design point: everything synthesis sees.
///
/// Frequencies are keyed in integer MHz and feature sizes in integer
/// tenths of a nm so the key is `Eq + Hash` without float edge cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeKey {
    /// PE microarchitecture.
    pub style: PeStyle,
    /// Dense topology, if any (changes the per-PE reduction logic).
    pub dense: Option<ClassicArch>,
    /// Encoding, when it lives *inside* the PE (OPT3 carries its encoder;
    /// dense multipliers bake in Booth and OPT4's encoders sit out of the
    /// array in support logic, so those styles key as `None`).
    pub in_pe_encoding: Option<EncodingKind>,
    /// Clock constraint in MHz.
    pub freq_mhz: u32,
    /// Process feature size in tenths of a nm.
    pub node_dnm: u32,
}

/// Canonical representative of an encoding's *in-PE recoder hardware*.
///
/// Several encodings map onto the same physical recoder
/// (`tpe_core::arch::designs::encoder_component`): CSD is priced as the
/// EN-T carry-chained Booth recoder, and both radix-2 bit-serial
/// decompositions need only the same zero-skip unit. Synthesis outcomes
/// for such encodings are identical, so the cache keys them together —
/// only the workload model (digit statistics) distinguishes them, and
/// that is never cached.
pub fn canonical_encoding(encoding: EncodingKind) -> EncodingKind {
    match encoding {
        EncodingKind::Csd => EncodingKind::EnT,
        EncodingKind::BitSerialSignMagnitude => EncodingKind::BitSerialComplement,
        other => other,
    }
}

impl PeKey {
    /// Extracts the key from a design point. The encoding enters the key
    /// only for OPT3 (whose recoder is inside the PE), and then only as its
    /// [`canonical_encoding`] hardware class.
    pub fn of(point: &DesignPoint) -> Self {
        Self {
            style: point.style,
            dense: match point.kind {
                ArchKind::Dense(a) => Some(a),
                ArchKind::Serial => None,
            },
            in_pe_encoding: (point.style == PeStyle::Opt3)
                .then_some(canonical_encoding(point.encoding)),
            freq_mhz: (point.corner.freq_ghz * 1e3).round() as u32,
            node_dnm: (point.corner.node.nm * 10.0).round() as u32,
        }
    }
}

/// A priced PE at one corner (node scaling already applied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeRecord {
    /// PE (or PE-group) cell area in µm².
    pub area_um2: f64,
    /// Power at full datapath activity, µW.
    pub active_power_uw: f64,
    /// Clock-gated idle power, µW.
    pub idle_power_uw: f64,
    /// MAC-equivalent lanes the design provides.
    pub lanes: u32,
}

/// Cache hit/miss counters at one observation point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that ran synthesis.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from memory (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoization of synthesis outcomes. `None` values record
/// corners where the design cannot close timing, so infeasibility is
/// cached too.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<PeKey, Option<PeRecord>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the record for `key`, running `price` on a miss.
    ///
    /// The lock is held across `price` so concurrent sweep workers never
    /// duplicate a synthesis run; pricing is orders of magnitude cheaper
    /// than the workload evaluation that follows, so contention here does
    /// not limit sweep scaling.
    pub fn pe_record(
        &self,
        key: PeKey,
        price: impl FnOnce() -> Option<PeRecord>,
    ) -> Option<PeRecord> {
        let mut map = self.map.lock().expect("cache poisoned");
        if let Some(rec) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *rec;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let rec = price();
        map.insert(key, rec);
        rec
    }

    /// Counters at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct keys priced.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(freq_mhz: u32) -> PeKey {
        PeKey {
            style: PeStyle::Opt1,
            dense: Some(ClassicArch::Tpu),
            in_pe_encoding: None,
            freq_mhz,
            node_dnm: 280,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let mut priced = 0;
        for _ in 0..3 {
            cache.pe_record(key(1500), || {
                priced += 1;
                Some(PeRecord {
                    area_um2: 1.0,
                    active_power_uw: 2.0,
                    idle_power_uw: 0.1,
                    lanes: 1,
                })
            });
        }
        assert_eq!(priced, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn infeasible_outcomes_are_cached() {
        let cache = EvalCache::new();
        assert_eq!(cache.pe_record(key(9000), || None), None);
        assert_eq!(
            cache.pe_record(key(9000), || panic!("must not re-price")),
            None
        );
        assert_eq!(cache.stats().hits, 1);
    }

    /// The canonical map must mirror the hardware: encodings keyed together
    /// synthesize to bit-identical OPT3 PE reports (CSD prices as the EN-T
    /// recoder; both bit-serial kinds price as the zero-skip unit), while
    /// MBE's plain Booth recoder stays distinct.
    #[test]
    fn canonical_encodings_share_identical_recoder_hardware() {
        for (a, b) in [
            (EncodingKind::Csd, EncodingKind::EnT),
            (
                EncodingKind::BitSerialSignMagnitude,
                EncodingKind::BitSerialComplement,
            ),
        ] {
            assert_eq!(canonical_encoding(a), canonical_encoding(b));
            let ra = PeStyle::Opt3
                .design_with_encoding(a)
                .synthesize(2.0)
                .unwrap();
            let rb = PeStyle::Opt3
                .design_with_encoding(b)
                .synthesize(2.0)
                .unwrap();
            assert_eq!(ra.area_um2.to_bits(), rb.area_um2.to_bits());
            assert_eq!(
                ra.busy_power_uw().to_bits(),
                rb.busy_power_uw().to_bits(),
                "{a:?}/{b:?} must price identically to share a cache entry"
            );
        }
        assert_ne!(
            canonical_encoding(EncodingKind::Mbe),
            canonical_encoding(EncodingKind::EnT)
        );
    }

    #[test]
    fn distinct_corners_miss() {
        let cache = EvalCache::new();
        cache.pe_record(key(1000), || None);
        cache.pe_record(key(1500), || None);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }
}
