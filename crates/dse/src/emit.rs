//! CSV / JSON emission of sweep results.
//!
//! Formatting is fixed-precision and locale-independent, so a
//! deterministic sweep emits **byte-identical** text across runs and
//! thread counts (pinned by the determinism tests). No serde: the
//! environment vendors no serialization crates, and the schema is flat.

use tpe_core::arch::ArchKind;

use crate::eval::PointResult;
use crate::pareto::Objective;
use crate::space::{classic_name, SweepWorkload};
use tpe_engine::EngineSpec;

/// CSV header matching the per-point row layout. `workload_kind` is
/// `layer` or `model`; the `m,n,k,repeats` shape columns are empty for
/// whole-model rows (their shape is the `layers`/`macs` aggregate). New
/// axis columns append strictly on the right so historical rows are a
/// prefix of today's: `precision` (every W8 row is the historical row
/// plus `,W8`), then the memory-hierarchy group `memory,bytes_moved,\
/// intensity_ops_per_byte,bound` (an `Unbounded` row is the precision-era
/// row plus `,unbounded,<bytes>,<intensity>,compute` — the
/// golden-compatibility invariant strips appended columns, never
/// reorders).
pub const CSV_HEADER: &str =
    "label,style,topology,encoding,node,freq_ghz,workload,workload_kind,layers,macs,\
     m,n,k,repeats,feasible,pareto,\
     area_um2,delay_us,energy_uj,fj_per_mac,gops,peak_tops,utilization,power_w,precision,\
     memory,bytes_moved,intensity_ops_per_byte,bound";

/// Display name of a point's topology axis ("TPU", ..., or "Serial").
pub fn topology_name(kind: ArchKind) -> &'static str {
    match kind {
        ArchKind::Dense(arch) => classic_name(arch),
        ArchKind::Serial => "Serial",
    }
}

/// RFC-4180 escaping: fields containing a comma, quote or newline are
/// quoted (free-form workload names would otherwise shift columns).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// `workload_kind` column value.
fn workload_kind(w: &SweepWorkload) -> &'static str {
    match w {
        SweepWorkload::Layer(_) => "layer",
        SweepWorkload::Model(_) => "model",
    }
}

/// Renders one result as its CSV row (no trailing newline) — the exact
/// bytes [`to_csv`] emits for that point. Public so the serve layer's
/// `sweep`/`pareto` ops can ship per-point rows that are byte-identical
/// to a `repro dse` dump of the same slice (golden-tested in
/// `tpe-bench`).
pub fn point_csv_row(result: &PointResult, on_front: bool) -> String {
    let p = &result.point;
    let w = &p.workload;
    let shape = match w {
        SweepWorkload::Layer(l) => format!("{},{},{},{}", l.m, l.n, l.k, l.repeats),
        SweepWorkload::Model(_) => ",,,".to_string(),
    };
    let e: &EngineSpec = &p.engine;
    let head = format!(
        "{},{},{},{},{},{:.2},{},{},{},{},{},{},{}",
        csv_field(&p.label()),
        e.style.name(),
        topology_name(e.kind),
        csv_field(&e.encoding.to_string()),
        e.node_name,
        e.freq_ghz,
        csv_field(w.name()),
        workload_kind(w),
        w.layer_count(),
        w.macs(),
        shape,
        u8::from(result.feasible()),
        u8::from(on_front),
    );
    let precision = e.precision.label();
    let memory = e.memory.name;
    match &result.metrics {
        Some(m) => format!(
            "{head},{:.3},{:.4},{:.6},{:.4},{:.3},{:.4},{:.5},{:.5},{precision},\
             {memory},{:.0},{:.4},{}",
            m.area_um2,
            m.delay_us,
            m.energy_uj,
            m.energy_per_mac_fj,
            m.throughput_gops,
            m.peak_tops,
            m.utilization,
            m.power_w,
            m.bytes_moved,
            m.intensity_ops_per_byte,
            m.bound.label(),
        ),
        None => format!("{head},,,,,,,,,{precision},{memory},,,"),
    }
}

/// Renders all results as CSV; `front` holds the indices on the Pareto
/// front (from [`crate::pareto::pareto_front`]).
pub fn to_csv(results: &[PointResult], front: &[usize]) -> String {
    let mut out = String::with_capacity(results.len() * 160);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for (i, r) in results.iter().enumerate() {
        out.push_str(&point_csv_row(r, front.binary_search(&i).is_ok()));
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders results + front + objectives as a JSON document.
pub fn to_json(results: &[PointResult], front: &[usize], objectives: &[Objective]) -> String {
    let mut out = String::with_capacity(results.len() * 260);
    out.push_str("{\n  \"objectives\": [");
    for (i, o) in objectives.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", o.name()));
    }
    out.push_str("],\n  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let p = &r.point;
        let w = &p.workload;
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"style\": \"{}\", \"topology\": \"{}\", \
             \"encoding\": \"{}\", \"precision\": \"{}\", \"node\": \"{}\", \
             \"freq_ghz\": {:.2}, \"memory\": \"{}\", \
             \"workload\": \"{}\", \"workload_kind\": \"{}\", \"layers\": {}, \
             \"macs\": {}, \"feasible\": {}, \"pareto\": {}",
            json_escape(&p.label()),
            p.engine.style.name(),
            topology_name(p.engine.kind),
            json_escape(&p.engine.encoding.to_string()),
            p.engine.precision.label(),
            p.engine.node_name,
            p.engine.freq_ghz,
            p.engine.memory.name,
            json_escape(w.name()),
            workload_kind(w),
            w.layer_count(),
            w.macs(),
            r.feasible(),
            front.binary_search(&i).is_ok(),
        ));
        if let Some(m) = &r.metrics {
            out.push_str(&format!(
                ", \"area_um2\": {:.3}, \"delay_us\": {:.4}, \"energy_uj\": {:.6}, \
                 \"fj_per_mac\": {:.4}, \"gops\": {:.3}, \"peak_tops\": {:.4}, \
                 \"utilization\": {:.5}, \"power_w\": {:.5}, \"bytes_moved\": {:.0}, \
                 \"intensity_ops_per_byte\": {:.4}, \"bound\": \"{}\"",
                m.area_um2,
                m.delay_us,
                m.energy_uj,
                m.energy_per_mac_fj,
                m.throughput_gops,
                m.peak_tops,
                m.utilization,
                m.power_w,
                m.bytes_moved,
                m.intensity_ops_per_byte,
                m.bound.label(),
            ));
        }
        out.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// CSV header matching [`model_csv`]'s per-(model, engine) row layout.
/// As in [`CSV_HEADER`], new columns append strictly on the right:
/// `precision` (W8 rows are the historical bytes plus `,W8`), then
/// `memory,bytes_moved,intensity_ops_per_byte,bound`.
pub const MODEL_CSV_HEADER: &str =
    "model,engine,style,topology,encoding,node,freq_ghz,feasible,layers,macs,\
     cycles,delay_us,energy_uj,gops,peak_tops,utilization,power_w,tops_per_w,area_um2,precision,\
     memory,bytes_moved,intensity_ops_per_byte,bound";

/// Renders a `tpe-pipeline` model grid as CSV (same fixed-precision,
/// locale-independent discipline as [`to_csv`], so deterministic grids
/// emit byte-identical text across runs and thread counts).
pub fn model_csv(runs: &[tpe_pipeline::ModelRun]) -> String {
    let mut out = String::with_capacity(runs.len() * 180 + MODEL_CSV_HEADER.len());
    out.push_str(MODEL_CSV_HEADER);
    out.push('\n');
    for run in runs {
        let e = &run.engine;
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.2},{}",
            csv_field(&run.model),
            csv_field(&e.label()),
            e.style.name(),
            topology_name(e.kind),
            csv_field(&e.encoding.to_string()),
            e.node_name,
            e.freq_ghz,
            u8::from(run.feasible()),
        ));
        let precision = e.precision.label();
        let memory = e.memory.name;
        match &run.report {
            Some(r) => out.push_str(&format!(
                ",{},{},{:.0},{:.4},{:.6},{:.3},{:.4},{:.5},{:.5},{:.4},{:.3},{precision},\
                 {memory},{:.0},{:.4},{}\n",
                r.layer_count(),
                r.total_macs,
                r.cycles,
                r.delay_us,
                r.energy_uj,
                r.throughput_gops(),
                r.peak_tops,
                r.utilization,
                r.power_w(),
                r.tops_per_w(),
                r.area_um2,
                r.bytes_moved,
                r.intensity_ops_per_byte,
                r.bound.label(),
            )),
            None => out.push_str(&format!(",,,,,,,,,,,,{precision},{memory},,,\n")),
        }
    }
    out
}

/// Renders a `tpe-pipeline` model grid as a JSON document (one object per
/// (model, engine) cell, plus the per-layer breakdown).
pub fn model_json(runs: &[tpe_pipeline::ModelRun]) -> String {
    let mut out = String::with_capacity(runs.len() * 400);
    out.push_str("{\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let e = &run.engine;
        out.push_str(&format!(
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"style\": \"{}\", \
             \"topology\": \"{}\", \"encoding\": \"{}\", \"precision\": \"{}\", \
             \"node\": \"{}\", \"freq_ghz\": {:.2}, \"memory\": \"{}\", \"feasible\": {}",
            json_escape(&run.model),
            json_escape(&e.label()),
            e.style.name(),
            topology_name(e.kind),
            json_escape(&e.encoding.to_string()),
            e.precision.label(),
            e.node_name,
            e.freq_ghz,
            e.memory.name,
            run.feasible(),
        ));
        if let Some(r) = &run.report {
            out.push_str(&format!(
                ", \"layers\": {}, \"macs\": {}, \"cycles\": {:.0}, \
                 \"delay_us\": {:.4}, \"energy_uj\": {:.6}, \"gops\": {:.3}, \
                 \"peak_tops\": {:.4}, \"utilization\": {:.5}, \"power_w\": {:.5}, \
                 \"tops_per_w\": {:.4}, \"area_um2\": {:.3}, \"bytes_moved\": {:.0}, \
                 \"intensity_ops_per_byte\": {:.4}, \"bound\": \"{}\", \"per_layer\": [",
                r.layer_count(),
                r.total_macs,
                r.cycles,
                r.delay_us,
                r.energy_uj,
                r.throughput_gops(),
                r.peak_tops,
                r.utilization,
                r.power_w(),
                r.tops_per_w(),
                r.area_um2,
                r.bytes_moved,
                r.intensity_ops_per_byte,
                r.bound.label(),
            ));
            for (j, l) in r.layers.iter().enumerate() {
                out.push_str(&format!(
                    "{}{{\"name\": \"{}\", \"macs\": {}, \"cycles\": {:.0}, \
                     \"delay_us\": {:.4}, \"utilization\": {:.5}, \"energy_uj\": {:.6}, \
                     \"bytes_moved\": {:.0}, \"bound\": \"{}\"}}",
                    if j > 0 { ", " } else { "" },
                    json_escape(&l.name),
                    l.macs,
                    l.cycles,
                    l.delay_us,
                    l.utilization,
                    l.energy_uj,
                    l.bytes_moved,
                    l.bound.label(),
                ));
            }
            out.push(']');
        }
        out.push_str(if i + 1 == runs.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::pareto::pareto_front;
    use crate::space::DesignSpace;
    use tpe_engine::EngineCache;

    fn sample() -> (Vec<PointResult>, Vec<usize>) {
        let cache = EngineCache::new();
        let results: Vec<PointResult> = DesignSpace::quick()
            .enumerate()
            .iter()
            .map(|p| evaluate(p, &cache, 2))
            .collect();
        let front = pareto_front(&results, &Objective::DEFAULT);
        (results, front)
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let (results, front) = sample();
        let csv = to_csv(&results, &front);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), results.len() + 1);
        let columns = CSV_HEADER.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "bad row: {line}");
        }
        assert!(csv.contains(",1,"), "some point must be on the front");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let (results, front) = sample();
        let json = to_json(&results, &front, &Objective::DEFAULT);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"objectives\": [\"area\", \"delay\", \"energy\"]"));
        assert_eq!(json.matches("\"label\"").count(), results.len());
    }

    #[test]
    fn csv_fields_with_delimiters_are_quoted() {
        assert_eq!(csv_field("plain-name"), "plain-name");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn model_csv_and_json_render_the_grid() {
        use tpe_core::arch::PeStyle;
        use tpe_pipeline::{run_grid, EngineSpec, GridConfig};
        use tpe_sim::array::ClassicArch;

        let models = vec![tpe_workloads::models::resnet18()];
        let engines = vec![
            EngineSpec::dense(PeStyle::Opt1, ClassicArch::Tpu, 1.5),
            EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0), // walls
        ];
        let outcome = run_grid(&models, &engines, GridConfig::quick_test(1, 2));
        let csv = model_csv(&outcome.runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], MODEL_CSV_HEADER);
        assert_eq!(lines.len(), outcome.runs.len() + 1);
        let columns = MODEL_CSV_HEADER.split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), columns, "bad row: {line}");
        }
        assert!(
            lines[2].ends_with(",,,,,,,,,,,W8,unbounded,,,"),
            "infeasible row: {}",
            lines[2]
        );

        let json = model_json(&outcome.runs);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches("\"model\"").count(), outcome.runs.len());
        assert_eq!(
            json.matches("\"name\"").count(),
            models[0].layers.len(),
            "feasible cell emits one per-layer object per layer"
        );
    }

    #[test]
    fn model_workload_rows_emit_aggregates_not_shape() {
        let cache = EngineCache::new();
        let space = DesignSpace::with_models("resnet18").unwrap();
        let points = space.enumerate_filtered("OPT1(TPU)/28nm@1.50");
        let results: Vec<PointResult> = points.iter().map(|p| evaluate(p, &cache, 2)).collect();
        let csv = to_csv(&results, &[]);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains(",model,"), "kind column: {row}");
        assert!(row.contains(",ResNet18,"), "workload name: {row}");
        // m,n,k,repeats stay empty for whole-model rows.
        assert!(row.contains(",,,,1,0,"), "empty shape cells: {row}");
    }

    #[test]
    fn infeasible_rows_have_empty_metric_cells() {
        let cache = EngineCache::new();
        let points = DesignSpace::paper_default().enumerate_filtered("MAC(TPU)/28nm@2.00");
        let results: Vec<PointResult> = points.iter().map(|p| evaluate(p, &cache, 2)).collect();
        assert!(results.iter().all(|r| !r.feasible()));
        let csv = to_csv(&results, &[]);
        for line in csv.lines().skip(1) {
            let tail: Vec<&str> = line.rsplit(',').take(4).collect();
            let [bound, intensity, bytes, memory] = tail[..] else {
                panic!("short row: {line}");
            };
            assert_eq!(memory, "unbounded", "memory column: {line}");
            assert!(
                bytes.is_empty() && intensity.is_empty() && bound.is_empty(),
                "roofline cells stay empty when infeasible: {line}"
            );
            let precision = line.rsplit(',').nth(4).unwrap();
            assert!(
                tpe_engine::Precision::parse(precision).is_some(),
                "precision column: {line}"
            );
            assert!(
                line.ends_with(&format!(",,,,,,,,,{precision},unbounded,,,")),
                "infeasible row: {line}"
            );
        }
    }
}
