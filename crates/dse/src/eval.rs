//! Evaluation of a single design point: synthesis (cached) + array
//! assembly + workload execution model → one [`Metrics`] row.
//!
//! The evaluator composes the existing layers rather than re-deriving
//! them: PE composition and array support logic come from `tpe-core`
//! ([`pe_design`](tpe_core::arch::ArchModel::pe_design) /
//! [`support_area_um2`](tpe_core::arch::ArrayModel::support_area_um2)),
//! pricing from `tpe-cost`, dense cycle counts from `tpe-sim`'s validated
//! closed-form models, and serial delay/utilization comes from
//! `tpe-core`'s shared [`sample_serial_cycles`] model (here driven with
//! the point's encoding instead of the hard-wired EN-T, and with
//! sweep-sized sampling caps). Whole-model workloads
//! ([`SweepWorkload::Model`]) run layer-by-layer through `tpe-pipeline`'s
//! scheduling model with order-independent per-layer seeds.

use tpe_arith::encode::Encoder;
use tpe_core::arch::workload::{sample_serial_cycles, SerialSampleCaps};
use tpe_pipeline::{dense_model_cycles, serial_model_cycles, MODEL_SAMPLE_CAPS};

/// Re-exported from `tpe-core`: expected digits per operand of an encoder
/// on quantized-normal INT8 data (the serial peak-throughput divisor).
pub use tpe_core::arch::workload::effective_numpps;
use tpe_core::arch::{ArchKind, ArrayModel};
use tpe_cost::process::{scale_area_um2, scale_power_w, ProcessNode};
use tpe_sim::BitsliceConfig;

use crate::cache::{EvalCache, PeKey, PeRecord};
use crate::space::{DesignPoint, SweepWorkload};

use tpe_core::arch::array::ARRAY_OVERHEAD_FRAC;

/// Sampling caps for the serial-layer model. Tighter than the
/// single-experiment defaults because a sweep evaluates hundreds of
/// points; rounds are i.i.d. so the estimates stay unbiased.
const SWEEP_SAMPLE_CAPS: SerialSampleCaps = SerialSampleCaps {
    max_rounds: 48,
    max_operands: 400_000,
};

/// The objective vector of one feasible design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Total array area (µm², node-scaled).
    pub area_um2: f64,
    /// Workload wall-clock (µs).
    pub delay_us: f64,
    /// Workload energy (µJ).
    pub energy_uj: f64,
    /// Energy per MAC (fJ).
    pub energy_per_mac_fj: f64,
    /// Sustained throughput on this workload (GOPS, 2 ops per MAC).
    pub throughput_gops: f64,
    /// Peak throughput (TOPS).
    pub peak_tops: f64,
    /// Average compute-lane utilization (busy fraction, 0–1).
    pub utilization: f64,
    /// Average power over the workload (W).
    pub power_w: f64,
}

/// A design point with its evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The evaluated point.
    pub point: DesignPoint,
    /// Metrics, or `None` when the PE cannot close timing at the corner.
    pub metrics: Option<Metrics>,
}

impl PointResult {
    /// Whether the point closed timing.
    pub fn feasible(&self) -> bool {
        self.metrics.is_some()
    }
}

/// FNV-1a over a label: the stable per-point seed component. Independent
/// of sweep order and thread assignment, which is what makes parallel
/// sweeps byte-identical to serial ones. (The canonical implementation is
/// [`tpe_pipeline::fnv1a`], shared with the model-grid executor.)
pub fn label_hash(label: &str) -> u64 {
    tpe_pipeline::fnv1a(label)
}

/// Prices the PE of a point at its corner, through the cache.
///
/// OPT3 carries its encoder inside the PE, so its design is built with
/// the point's encoding (`PeStyle::design_with_encoding`, and the cache
/// key includes the encoding). OPT4's encoders live in the array support
/// logic, priced in [`evaluate`].
fn priced_pe(point: &DesignPoint, cache: &EvalCache) -> Option<PeRecord> {
    let key = PeKey::of(point);
    cache.pe_record(key, || {
        let design = match point.kind {
            ArchKind::Dense(_) => point.arch_model().pe_design(),
            ArchKind::Serial => point.style.design_with_encoding(point.encoding),
        };
        let report = design.synthesize(point.corner.freq_ghz)?;
        let node = point.corner.node;
        Some(PeRecord {
            area_um2: scale_area_um2(report.area_um2, ProcessNode::SMIC28, node),
            // Busy/idle activity points are the shared `tpe_cost::power`
            // constants, so this sweep and `serial_layer` account energy
            // identically.
            active_power_uw: scale_power_w(report.busy_power_uw(), ProcessNode::SMIC28, node),
            idle_power_uw: scale_power_w(report.idle_power_uw(), ProcessNode::SMIC28, node),
            lanes: report.lanes,
        })
    })
}

/// The bit-slice array configuration of a serial point: the style's paper
/// geometry (from `tpe-core`, the single source of truth) with the
/// point's encoding swapped in.
fn bitslice_config(point: &DesignPoint) -> BitsliceConfig {
    let mut cfg = point.arch_model().bitslice_config();
    cfg.encoding = point.encoding;
    cfg
}

/// Evaluates one design point. Synthesis goes through `cache`; the
/// workload model draws from an RNG seeded by `seed ^ label_hash(point)`,
/// so results do not depend on evaluation order.
pub fn evaluate(point: &DesignPoint, cache: &EvalCache, seed: u64) -> PointResult {
    let Some(pe) = priced_pe(point, cache) else {
        return PointResult {
            point: point.clone(),
            metrics: None,
        };
    };

    let instances = point.pe_instances() as f64;
    let support = scale_area_um2(
        ArrayModel::new(point.arch_model()).support_area_um2_for(point.encoding),
        ProcessNode::SMIC28,
        point.corner.node,
    );
    let area_um2 = (pe.area_um2 * instances + support) * (1.0 + ARRAY_OVERHEAD_FRAC);

    let lanes_total = instances * f64::from(pe.lanes);
    let freq = point.corner.freq_ghz;
    let raw_tops = lanes_total * 2.0 * freq * 1e9 / 1e12;

    let (cycles, busy_frac, peak_tops) = match point.kind {
        ArchKind::Dense(arch) => {
            let cycles = match &point.workload {
                SweepWorkload::Layer(w) => {
                    arch.at_paper_config().estimate_cycles(w.m, w.n, w.k) as f64 * w.repeats as f64
                }
                SweepWorkload::Model(net) => dense_model_cycles(arch, net),
            };
            // Dense arrays clock every PE every cycle, useful or not.
            (cycles, 1.0, raw_tops)
        }
        ArchKind::Serial => {
            let encoder = point.encoding.encoder();
            let (cycles, busy) = serial_workload_cycles(point, encoder.as_ref(), seed);
            (cycles, busy, raw_tops / effective_numpps(encoder.as_ref()))
        }
    };

    let delay_us = cycles / (freq * 1e3);
    let macs = point.workload.macs() as f64;

    // Energy: fJ per PE instance-cycle at the record's activity levels.
    let e_active_fj = pe.active_power_uw / freq;
    let e_idle_fj = pe.idle_power_uw / freq;
    let pe_cycles = cycles * instances;
    let energy_uj =
        (pe_cycles * busy_frac * e_active_fj + pe_cycles * (1.0 - busy_frac) * e_idle_fj) * 1e-9;

    let utilization = match point.kind {
        ArchKind::Dense(_) => (macs / (cycles * lanes_total)).min(1.0),
        ArchKind::Serial => busy_frac,
    };

    let metrics = Metrics {
        area_um2,
        delay_us,
        energy_uj,
        energy_per_mac_fj: energy_uj * 1e9 / macs,
        throughput_gops: 2.0 * macs / delay_us / 1e3,
        peak_tops,
        utilization,
        power_w: energy_uj / delay_us,
    };
    PointResult {
        point: point.clone(),
        metrics: Some(metrics),
    }
}

/// Statistical serial workload model: delegates to `tpe-core`'s shared
/// encoder-parameterized sampler with sweep-sized caps (single layers) or
/// to `tpe-pipeline`'s layer-by-layer model scheduler (whole networks).
/// Returns total cycles and the average busy fraction across columns.
fn serial_workload_cycles(point: &DesignPoint, encoder: &dyn Encoder, seed: u64) -> (f64, f64) {
    let cfg = bitslice_config(point);
    let point_seed = seed ^ label_hash(&point.label());
    match &point.workload {
        SweepWorkload::Layer(layer) => {
            let stats = sample_serial_cycles(&cfg, encoder, layer, point_seed, SWEEP_SAMPLE_CAPS);
            let utilization = stats.utilization();
            (stats.cycles, utilization)
        }
        SweepWorkload::Model(net) => {
            serial_model_cycles(&cfg, encoder, net, point_seed, MODEL_SAMPLE_CAPS)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Corner, DesignSpace};
    use tpe_arith::encode::EncodingKind;

    fn eval_first(filter: &str) -> PointResult {
        let cache = EvalCache::new();
        let points = DesignSpace::paper_default().enumerate_filtered(filter);
        assert!(!points.is_empty(), "no points match {filter}");
        evaluate(&points[0], &cache, 42)
    }

    #[test]
    fn dense_and_serial_points_produce_finite_metrics() {
        for filter in ["MAC(TPU)/28nm@1.00", "OPT3[EN-T]/28nm@2.00"] {
            let r = eval_first(filter);
            let m = r.metrics.expect("feasible");
            for (name, v) in [
                ("area", m.area_um2),
                ("delay", m.delay_us),
                ("energy", m.energy_uj),
                ("fJ/MAC", m.energy_per_mac_fj),
                ("GOPS", m.throughput_gops),
                ("TOPS", m.peak_tops),
                ("power", m.power_w),
            ] {
                assert!(v.is_finite() && v > 0.0, "{filter}: {name} = {v}");
            }
            assert!((0.0..=1.0).contains(&m.utilization));
        }
    }

    #[test]
    fn mac_is_infeasible_beyond_its_frequency_wall() {
        let r = eval_first("MAC(TPU)/28nm@2.00");
        assert!(!r.feasible(), "the traditional MAC walls at 1.5 GHz");
    }

    #[test]
    fn effective_numpps_orders_encoders_as_table3() {
        let ent = effective_numpps(EncodingKind::EnT.encoder().as_ref());
        let mbe = effective_numpps(EncodingKind::Mbe.encoder().as_ref());
        let bsc = effective_numpps(EncodingKind::BitSerialComplement.encoder().as_ref());
        assert!(ent < mbe, "EN-T {ent} must beat MBE {mbe}");
        assert!(mbe < bsc, "MBE {mbe} must beat bit-serial {bsc}");
        assert!(
            (2.0..2.5).contains(&ent),
            "EN-T effective NumPPs {ent} vs paper 2.22-2.27"
        );
    }

    #[test]
    fn encoding_axis_changes_serial_delay() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        let ent = space.enumerate_filtered("OPT3[EN-T]/28nm@2.00GHz/l2.0-3x3s2");
        let bss = space.enumerate_filtered("OPT3[bit-serial(C)]/28nm@2.00GHz/l2.0-3x3s2");
        let (e, b) = (
            evaluate(&ent[0], &cache, 7).metrics.unwrap(),
            evaluate(&bss[0], &cache, 7).metrics.unwrap(),
        );
        assert!(
            e.delay_us < b.delay_us,
            "EN-T ({}) must stream fewer digits than bit-serial ({})",
            e.delay_us,
            b.delay_us
        );
    }

    #[test]
    fn encoding_axis_prices_encoder_hardware() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        let area = |f: &str| {
            let points = space.enumerate_filtered(f);
            evaluate(&points[0], &cache, 1).metrics.unwrap().area_um2
        };
        // OPT3 carries the encoder in-PE: the plain Booth recoder and the
        // bit-serial zero-skip unit are both cheaper than EN-T's
        // carry-chained recoder.
        let opt3_ent = area("OPT3[EN-T]/28nm@2.00");
        assert!(area("OPT3[MBE]/28nm@2.00") < opt3_ent);
        assert!(area("OPT3[bit-serial(C)]/28nm@2.00") < opt3_ent);
        // OPT4C's shared encoders reprice in the support logic too.
        let opt4c_ent = area("OPT4C[EN-T]/28nm@2.00");
        assert!(area("OPT4C[MBE]/28nm@2.00") < opt4c_ent);
    }

    #[test]
    fn opt3_cache_key_distinguishes_encodings_but_opt4_shares() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        let eval_first = |f: &str| {
            let points = space.enumerate_filtered(f);
            evaluate(&points[0], &cache, 1);
        };
        eval_first("OPT3[EN-T]/28nm@2.00");
        eval_first("OPT3[MBE]/28nm@2.00");
        assert_eq!(cache.stats().misses, 2, "in-PE encoder is cost-relevant");
        eval_first("OPT4C[EN-T]/28nm@2.00");
        eval_first("OPT4C[MBE]/28nm@2.00");
        assert_eq!(
            cache.stats().misses,
            3,
            "OPT4C's PE has no encoder; encodings share one synthesis"
        );
    }

    /// The five-encoding OPT3 axis prices only three distinct recoders:
    /// EN-T/CSD share the carry-chained recoder and the two bit-serial
    /// kinds share the zero-skip unit, so canonicalizing
    /// `PeKey.in_pe_encoding` lifts the hit rate from 0/5 to 2/5 on this
    /// slice (and correspondingly on the full default sweep).
    #[test]
    fn opt3_encoding_hardware_classes_share_cache_entries() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        for kind in EncodingKind::ALL {
            let points = space.enumerate_filtered(&format!("OPT3[{kind}]/28nm@2.00"));
            evaluate(&points[0], &cache, 1);
        }
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (2, 3),
            "EN-T+CSD and the two bit-serial kinds must share entries"
        );
        assert!(stats.hit_rate() > 0.39);
    }

    /// The sweep evaluator and `tpe-pipeline`'s engine pricing are two
    /// views of the same synthesis path; pin them bit-identical so the
    /// "model report and layer sweep price one engine identically"
    /// invariant can't silently drift.
    #[test]
    fn evaluator_and_pipeline_price_engines_identically() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        for filter in [
            "MAC(TPU)/28nm@1.00",
            "OPT1(Ascend)/28nm@1.50",
            "OPT3[CSD]/28nm@2.00",
            "OPT4E[EN-T]/16nm@1.50",
        ] {
            let point = &space.enumerate_filtered(filter)[0];
            let metrics = evaluate(point, &cache, 1).metrics.unwrap();
            let price = point.engine_spec().price().unwrap();
            assert_eq!(
                metrics.area_um2.to_bits(),
                price.area_um2.to_bits(),
                "{filter}: area drifted between dse eval and pipeline pricing"
            );
            assert_eq!(
                metrics.peak_tops.to_bits(),
                price.peak_tops.to_bits(),
                "{filter}: peak TOPS drifted"
            );
        }
    }

    #[test]
    fn node_scaling_shrinks_area_and_power() {
        let cache = EvalCache::new();
        let space = DesignSpace::paper_default();
        let p28 = &space.enumerate_filtered("OPT4E[EN-T]/28nm@1.50")[0];
        let mut p16 = p28.clone();
        p16.corner = Corner::n16(1.5);
        let m28 = evaluate(p28, &cache, 1).metrics.unwrap();
        let m16 = evaluate(&p16, &cache, 1).metrics.unwrap();
        assert!(m16.area_um2 < m28.area_um2 * 0.5);
        assert!(m16.energy_uj < m28.energy_uj);
    }

    #[test]
    fn cache_prices_each_corner_once_across_workloads() {
        let cache = EvalCache::new();
        let points = DesignSpace::paper_default().enumerate_filtered("OPT4C[EN-T]/28nm@2.00");
        assert!(points.len() >= 2, "need several workloads");
        for p in &points {
            evaluate(p, &cache, 3);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, points.len() as u64 - 1);
    }
}
