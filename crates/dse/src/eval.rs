//! Evaluation of a single design point — a thin binding of the canonical
//! [`tpe_engine::Evaluator`] to the sweep's [`DesignPoint`] shape.
//!
//! The actual composition — cached synthesis, node scaling, array support
//! logic, dense closed-form / serial sampled cycle models — lives in
//! `tpe-engine` and is shared with `tpe-pipeline`, the `repro`
//! experiments and `repro serve`. This module only pairs the outcome with
//! the point for Pareto extraction and emission.

use tpe_engine::{CycleModel, EngineCache, Evaluator};

pub use tpe_engine::eval::{effective_numpps, Metrics};

use crate::space::DesignPoint;

/// FNV-1a over a label: the stable per-point seed component. Independent
/// of sweep order and thread assignment, which is what makes parallel
/// sweeps byte-identical to serial ones. (The canonical implementation is
/// [`tpe_engine::fnv1a`], shared with the model-grid executor.)
pub fn label_hash(label: &str) -> u64 {
    tpe_engine::fnv1a(label)
}

/// A design point with its evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The evaluated point.
    pub point: DesignPoint,
    /// Metrics, or `None` when the PE cannot close timing at the corner.
    pub metrics: Option<Metrics>,
}

impl PointResult {
    /// Whether the point closed timing.
    pub fn feasible(&self) -> bool {
        self.metrics.is_some()
    }
}

/// Evaluates one design point through `cache`. Synthesis and serial
/// sampling are memoized; the workload model draws from an RNG seeded by
/// `seed ^ label_hash(point.label())`, so results do not depend on
/// evaluation order.
pub fn evaluate(point: &DesignPoint, cache: &EngineCache, seed: u64) -> PointResult {
    evaluate_with_model(point, cache, seed, CycleModel::Sampled)
}

/// [`evaluate`] under an explicit serial-cycle backend — the hook the
/// sweep executor and serve slice ops use to honor `--cycle-model` /
/// `cycle_model` requests. The analytic backend ignores the seed for
/// serial cycle statistics (they are closed-form), but the seed still
/// flows so dense paths and labels stay byte-identical across modes.
///
/// Whole-network points ([`SweepWorkload::Model`](tpe_engine::SweepWorkload))
/// resolve through the engine cache's model map: a repeated point is one
/// model-record hit, not an O(layers) rewalk (see
/// `tpe_engine::cache::ModelKey`).
pub fn evaluate_with_model(
    point: &DesignPoint,
    cache: &EngineCache,
    seed: u64,
    cycle_model: CycleModel,
) -> PointResult {
    PointResult {
        point: point.clone(),
        metrics: Evaluator::new(cache).with_cycle_model(cycle_model).metrics(
            &point.engine,
            &point.workload,
            seed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    fn eval_first(filter: &str) -> PointResult {
        let cache = EngineCache::new();
        let points = DesignSpace::paper_default().enumerate_filtered(filter);
        assert!(!points.is_empty(), "no points match {filter}");
        evaluate(&points[0], &cache, 42)
    }

    #[test]
    fn dense_and_serial_points_produce_finite_metrics() {
        for filter in ["MAC(TPU)/28nm@1.00", "OPT3[EN-T]/28nm@2.00"] {
            let r = eval_first(filter);
            let m = r.metrics.expect("feasible");
            for (name, v) in [
                ("area", m.area_um2),
                ("delay", m.delay_us),
                ("energy", m.energy_uj),
                ("GOPS", m.throughput_gops),
            ] {
                assert!(v.is_finite() && v > 0.0, "{filter}: {name} = {v}");
            }
            assert!((0.0..=1.0).contains(&m.utilization));
        }
    }

    #[test]
    fn mac_is_infeasible_beyond_its_frequency_wall() {
        let r = eval_first("MAC(TPU)/28nm@2.00");
        assert!(!r.feasible(), "the traditional MAC walls at 1.5 GHz");
    }

    /// The sweep evaluator and the engine pricing path are one
    /// implementation; pin them bit-identical so the "model report and
    /// layer sweep price one engine identically" invariant can't drift.
    #[test]
    fn evaluator_and_engine_price_agree() {
        let cache = EngineCache::new();
        let space = DesignSpace::paper_default();
        for filter in [
            "MAC(TPU)/28nm@1.00",
            "OPT1(Ascend)/28nm@1.50",
            "OPT3[CSD]/28nm@2.00",
            "OPT4E[EN-T]/16nm@1.50",
        ] {
            let point = &space.enumerate_filtered(filter)[0];
            let metrics = evaluate(point, &cache, 1).metrics.unwrap();
            let price = Evaluator::new(&cache).price(&point.engine).unwrap();
            assert_eq!(
                metrics.area_um2.to_bits(),
                price.area_um2.to_bits(),
                "{filter}: area drifted between dse eval and engine pricing"
            );
            assert_eq!(
                metrics.peak_tops.to_bits(),
                price.peak_tops.to_bits(),
                "{filter}: peak TOPS drifted"
            );
        }
    }

    /// Pricing memoizes across workloads: one synthesis per (PE, corner,
    /// precision) no matter how many workloads score it.
    #[test]
    fn cache_prices_each_corner_once_across_workloads() {
        let cache = EngineCache::new();
        let points =
            DesignSpace::paper_default().enumerate_filtered("OPT4C[EN-T]/28nm@2.00,precision=w8");
        assert!(points.len() >= 2, "need several workloads");
        for p in &points {
            evaluate(p, &cache, 3);
        }
        let stats = cache.stats();
        assert_eq!(stats.price_misses, 1);
        assert_eq!(stats.price_hits, points.len() as u64 - 1);
    }

    /// A repeated whole-network dse point is one model-map hit — no
    /// per-layer cycle-map traffic on the warm pass — and bit-identical
    /// to the cold answer, under both cycle backends.
    #[test]
    fn repeated_model_points_warm_hit_the_model_map() {
        let space = DesignSpace::with_models("resnet18").unwrap();
        let point = &space.enumerate_filtered("OPT4E[EN-T]/28nm@2.00")[0];
        for model in [CycleModel::Sampled, CycleModel::Analytic] {
            let cache = EngineCache::new();
            let cold = evaluate_with_model(point, &cache, 42, model);
            let before = cache.stats();
            let warm = evaluate_with_model(point, &cache, 42, model);
            assert_eq!(cold, warm, "{model:?}: warm answer drifted");
            let delta = cache.stats().since(&before);
            assert_eq!(
                (delta.model_hits, delta.model_misses),
                (1, 0),
                "{model:?}: warm point must be one model-map hit"
            );
            assert_eq!(delta.cycle_lookups, 0, "{model:?}: no per-layer rewalk");
        }
    }
}
