//! Pareto-front extraction over configurable objectives.
//!
//! An [`Objective`] maps a [`Metrics`] row to a scalar where **lower is
//! better** (maximization objectives are negated), and the front is the
//! set of feasible points no other feasible point dominates. Extraction is
//! order-independent: the returned indices are sorted, and permuting the
//! input permutes the front accordingly (property-tested in
//! `tests/properties.rs`).

use crate::eval::{Metrics, PointResult};

/// An optimization objective over evaluated design points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize total array area.
    Area,
    /// Minimize workload wall-clock delay.
    Delay,
    /// Minimize energy per MAC.
    Energy,
    /// Minimize average power.
    Power,
    /// Maximize sustained throughput.
    Throughput,
    /// Maximize lane utilization.
    Utilization,
}

impl Objective {
    /// Every objective, in display order.
    pub const ALL: [Objective; 6] = [
        Objective::Area,
        Objective::Delay,
        Objective::Energy,
        Objective::Power,
        Objective::Throughput,
        Objective::Utilization,
    ];

    /// The default front: the paper's area/delay/energy trade surface.
    pub const DEFAULT: [Objective; 3] = [Objective::Area, Objective::Delay, Objective::Energy];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Area => "area",
            Objective::Delay => "delay",
            Objective::Energy => "energy",
            Objective::Power => "power",
            Objective::Throughput => "throughput",
            Objective::Utilization => "utilization",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Objective> {
        Objective::ALL
            .into_iter()
            .find(|o| o.name() == s.trim().to_ascii_lowercase())
    }

    /// Parses a comma-separated objective list.
    pub fn parse_list(s: &str) -> Result<Vec<Objective>, String> {
        let objectives: Vec<Objective> = s
            .split(',')
            .filter(|part| !part.trim().is_empty())
            .map(|part| Objective::parse(part).ok_or_else(|| format!("unknown objective `{part}`")))
            .collect::<Result<_, _>>()?;
        if objectives.len() < 2 {
            return Err("need at least two objectives for a front".into());
        }
        Ok(objectives)
    }

    /// Scalar score; **lower is better** for every objective.
    pub fn score(self, m: &Metrics) -> f64 {
        match self {
            Objective::Area => m.area_um2,
            Objective::Delay => m.delay_us,
            Objective::Energy => m.energy_per_mac_fj,
            Objective::Power => m.power_w,
            Objective::Throughput => -m.throughput_gops,
            Objective::Utilization => -m.utilization,
        }
    }
}

/// Whether `a` dominates `b`: no worse on every objective, strictly
/// better on at least one.
pub fn dominates(a: &Metrics, b: &Metrics, objectives: &[Objective]) -> bool {
    let mut strictly_better = false;
    for obj in objectives {
        let (sa, sb) = (obj.score(a), obj.score(b));
        if sa > sb {
            return false;
        }
        if sa < sb {
            strictly_better = true;
        }
    }
    strictly_better
}

/// [`dominates`] over pre-computed score vectors (one [`Objective::score`]
/// per objective, lower is better). This is the comparison a shard-merge
/// client replays from wire-shipped scores, so it must stay bit-identical
/// to the in-process path — both call sites compare the same `f64`s.
pub fn dominates_scores(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (sa, sb) in a.iter().zip(b) {
        if sa > sb {
            return false;
        }
        if sa < sb {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices (into `results`) of the Pareto-optimal feasible points, sorted
/// ascending. Infeasible points never enter the front.
pub fn pareto_front(results: &[PointResult], objectives: &[Objective]) -> Vec<usize> {
    assert!(!objectives.is_empty(), "need at least one objective");
    let feasible: Vec<(usize, &Metrics)> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.metrics.as_ref().map(|m| (i, m)))
        .collect();
    feasible
        .iter()
        .filter(|(_, m)| {
            !feasible
                .iter()
                .any(|(_, other)| dominates(other, m, objectives))
        })
        .map(|&(i, _)| i)
        .collect()
}

/// Union of per-(workload × precision) Pareto fronts, sorted ascending.
///
/// Absolute delay/energy are only comparable between points evaluating
/// the *same* workload (a small GEMM trivially "dominates" a large one on
/// raw delay) at the *same* operand precision (a W4 MAC moves half the
/// bits of a W8 one, so its raw delay is not the same computation), so
/// dominance is restricted to points sharing both. Restricting to the
/// default W8 reproduces the historical per-workload fronts exactly. The
/// global [`pareto_front`] is always a subset of this union: a point
/// non-dominated against everyone is non-dominated within its group.
pub fn pareto_front_per_workload(results: &[PointResult], objectives: &[Objective]) -> Vec<usize> {
    assert!(!objectives.is_empty(), "need at least one objective");
    /// Dominance-comparability group: workload name × (a, b, acc) widths.
    type GroupKey<'a> = (&'a str, (u32, u32, u32));
    let mut groups: std::collections::BTreeMap<GroupKey, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, r) in results.iter().enumerate() {
        if r.metrics.is_some() {
            let p = r.point.precision();
            groups
                .entry((r.point.workload.name(), (p.a_bits, p.b_bits, p.acc_bits)))
                .or_default()
                .push(i);
        }
    }
    let metric = |i: usize| results[i].metrics.as_ref().unwrap();
    let mut front: Vec<usize> = Vec::new();
    for members in groups.values() {
        front.extend(members.iter().copied().filter(|&i| {
            !members
                .iter()
                .any(|&j| dominates(metric(j), metric(i), objectives))
        }));
    }
    front.sort_unstable();
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{DesignPoint, DesignSpace};
    use tpe_arith::encode::EncodingKind;
    use tpe_core::arch::PeStyle;
    use tpe_engine::EngineSpec;
    use tpe_workloads::LayerShape;

    fn result(area: f64, delay: f64, energy: f64) -> PointResult {
        let point = DesignPoint::new(
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
            LayerShape::new("t", 8, 8, 8, 1),
        );
        PointResult {
            point,
            metrics: Some(Metrics {
                area_um2: area,
                delay_us: delay,
                energy_uj: energy,
                energy_per_mac_fj: energy,
                throughput_gops: 1.0 / delay,
                peak_tops: 1.0,
                utilization: 0.9,
                power_w: energy / delay,
                bytes_moved: 192.0,
                intensity_ops_per_byte: 2.0 * 64.0 / 192.0,
                bound: tpe_engine::Bound::Compute,
            }),
        }
    }

    #[test]
    fn front_drops_dominated_points() {
        let results = vec![
            result(1.0, 1.0, 1.0), // front
            result(2.0, 2.0, 2.0), // dominated by 0
            result(0.5, 3.0, 1.0), // front (cheapest area)
            result(1.0, 1.0, 1.0), // tie with 0: neither dominates
        ];
        let front = pareto_front(&results, &[Objective::Area, Objective::Delay]);
        assert_eq!(front, vec![0, 2, 3]);
    }

    #[test]
    fn infeasible_points_stay_out() {
        let mut results = vec![result(1.0, 1.0, 1.0)];
        results.push(PointResult {
            metrics: None,
            ..results[0].clone()
        });
        let front = pareto_front(&results, &Objective::DEFAULT);
        assert_eq!(front, vec![0]);
    }

    #[test]
    fn single_objective_front_is_the_minimum() {
        let results = vec![
            result(3.0, 1.0, 1.0),
            result(1.0, 2.0, 2.0),
            result(2.0, 3.0, 3.0),
        ];
        let front = pareto_front(&results, &[Objective::Area]);
        assert_eq!(front, vec![1]);
    }

    #[test]
    fn parse_list_round_trips_and_rejects() {
        let objs = Objective::parse_list("area, delay,energy").unwrap();
        assert_eq!(
            objs,
            vec![Objective::Area, Objective::Delay, Objective::Energy]
        );
        assert!(Objective::parse_list("area").is_err());
        assert!(Objective::parse_list("area,bogus").is_err());
        for o in Objective::ALL {
            assert_eq!(Objective::parse(o.name()), Some(o));
        }
    }

    #[test]
    fn maximization_objectives_invert() {
        let fast = result(1.0, 0.5, 1.0);
        let slow = result(1.0, 2.0, 1.0);
        assert!(dominates(
            fast.metrics.as_ref().unwrap(),
            slow.metrics.as_ref().unwrap(),
            &[Objective::Throughput]
        ));
    }

    #[test]
    fn per_workload_front_restricts_dominance_to_shared_workloads() {
        let mut tiny = result(5.0, 0.01, 5.0); // small GEMM: trivially fast
        tiny.point.workload = LayerShape::new("tiny", 2, 2, 2, 1).into();
        let big_winner = result(1.0, 100.0, 1.0);
        let big_loser = result(20.0, 200.0, 2.0);
        let results = vec![tiny, big_winner, big_loser];

        // Globally, the tiny workload's delay dominates everything but the
        // cheapest-area point survives.
        let global = pareto_front(&results, &[Objective::Area, Objective::Delay]);
        assert_eq!(global, vec![0, 1]);

        // Per workload, the big-workload winner is kept on its own merits
        // and the big-workload loser still falls.
        let per_wl = pareto_front_per_workload(&results, &[Objective::Area, Objective::Delay]);
        assert_eq!(per_wl, vec![0, 1]);
        let mut only_big = results.clone();
        only_big[1].metrics.as_mut().unwrap().area_um2 = 10.0; // now globally dominated by tiny
        let global2 = pareto_front(&only_big, &[Objective::Area, Objective::Delay]);
        assert_eq!(global2, vec![0], "tiny workload wipes the global front");
        let per_wl2 = pareto_front_per_workload(&only_big, &[Objective::Area, Objective::Delay]);
        assert_eq!(
            per_wl2,
            vec![0, 1],
            "per-workload front keeps the big-GEMM winner"
        );
    }

    #[test]
    fn real_sweep_front_is_nonempty_and_subset() {
        let cache = tpe_engine::EngineCache::new();
        let results: Vec<PointResult> = DesignSpace::quick()
            .enumerate()
            .iter()
            .map(|p| crate::eval::evaluate(p, &cache, 5))
            .collect();
        let front = pareto_front(&results, &Objective::DEFAULT);
        assert!(!front.is_empty());
        assert!(front.iter().all(|&i| results[i].feasible()));
        assert!(front.len() <= results.iter().filter(|r| r.feasible()).count());
    }
}
