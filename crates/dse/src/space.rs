//! The design space: axes, legality rules and cross-product enumeration.
//!
//! A [`DesignPoint`] is one fully-specified configuration: a
//! [`tpe_engine::EngineSpec`] (the architecture half — PE style, array
//! topology, multiplicand encoding and synthesis corner, Figure 9 /
//! Table VII / Tables II–III / §V) paired with a [`SweepWorkload`] (a
//! single GEMM layer *or a whole network*, Figures 11–13).
//!
//! [`DesignSpace::enumerate`] takes the cross product and drops illegal
//! combinations (serial styles require the serial array; dense multipliers
//! have their Booth encoder baked in, so the encoding axis only varies for
//! serial styles; OPT2's same-bit-weight trick needs FlexFlow's broadcast).

use tpe_arith::encode::EncodingKind;
use tpe_core::arch::{ArchKind, ArchModel, PeStyle};
use tpe_engine::{roster, EngineSpec, MemorySpec};
use tpe_sim::array::ClassicArch;
use tpe_workloads::{models, LayerShape};

pub use tpe_engine::{classic_name, Corner, Precision, SweepWorkload};

/// One fully-specified design point: an engine plus the workload it is
/// scored on.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The architecture-and-corner half (the canonical `tpe-engine`
    /// identity: label grammar, PE counts, pricing and scheduling all key
    /// on this).
    pub engine: EngineSpec,
    /// The workload: one GEMM layer or a whole network.
    pub workload: SweepWorkload,
}

impl DesignPoint {
    /// Pairs an engine with a workload.
    pub fn new(engine: EngineSpec, workload: impl Into<SweepWorkload>) -> Self {
        Self {
            engine,
            workload: workload.into(),
        }
    }

    /// The engine half — `repro dse --filter` and `repro models --arch`
    /// always match the same strings because both sides print this spec.
    pub fn engine_spec(&self) -> &EngineSpec {
        &self.engine
    }

    /// PE microarchitecture.
    pub fn style(&self) -> PeStyle {
        self.engine.style
    }

    /// Array organization.
    pub fn kind(&self) -> ArchKind {
        self.engine.kind
    }

    /// Multiplicand encoding.
    pub fn encoding(&self) -> EncodingKind {
        self.engine.encoding
    }

    /// Operand precision.
    pub fn precision(&self) -> Precision {
        self.engine.precision
    }

    /// Memory corner (SRAM capacity and bandwidths; `Unbounded` by
    /// default).
    pub fn memory(&self) -> MemorySpec {
        self.engine.memory
    }

    /// Synthesis corner.
    pub fn corner(&self) -> Corner {
        self.engine.corner()
    }

    /// Architecture half of the label (`OPT1(TPU)`, `OPT3[CSD]`).
    pub fn arch_label(&self) -> String {
        self.engine.arch_label()
    }

    /// Full point label, stable across runs — used for seeding, filtering
    /// and CSV emission.
    pub fn label(&self) -> String {
        format!("{}/{}", self.engine.label(), self.workload.name())
    }

    /// PE instances at the paper's array sizes (10×10×10 Cube, else 32×32).
    pub fn pe_instances(&self) -> usize {
        self.engine.pe_instances()
    }

    /// The equivalent `tpe-core` architecture model at this corner.
    pub fn arch_model(&self) -> ArchModel {
        self.engine.arch_model()
    }
}

/// The seven axes; [`DesignSpace::enumerate`] takes the legal cross
/// product.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// PE styles to sweep.
    pub styles: Vec<PeStyle>,
    /// Dense topologies to pair with dense-capable styles.
    pub dense_topologies: Vec<ClassicArch>,
    /// Encodings to pair with serial styles.
    pub encodings: Vec<EncodingKind>,
    /// Operand precisions (every style × topology × encoding combination
    /// synthesizes at each).
    pub precisions: Vec<Precision>,
    /// Synthesis corners.
    pub corners: Vec<Corner>,
    /// Memory corners. Defaults to the single `Unbounded` corner, which
    /// reproduces the historical (memory-free) numbers exactly; add
    /// [`roster::memory_corners`] entries to sweep the roofline axis.
    pub memories: Vec<MemorySpec>,
    /// Workloads: single layers and/or whole networks.
    pub workloads: Vec<SweepWorkload>,
}

impl DesignSpace {
    /// The default precision axis: the symmetric W4/W8/W16 ladder, W8
    /// first so the paper's configuration leads every label group.
    pub fn default_precisions() -> Vec<Precision> {
        vec![Precision::W8, Precision::W4, Precision::W16]
    }

    /// The full paper-flavored space: all six PE styles, all four classic
    /// topologies, all five encoders, the W8/W4/W16 precision ladder, the
    /// four [`roster::sweep_corners`] and a workload slice covering the
    /// utilization regimes of Figures 11–13 (wide conv, depthwise,
    /// attention, FFN) **plus one whole-model workload** (ResNet-18
    /// end-to-end), so the default Pareto front always carries at least
    /// one model-level objective point.
    pub fn paper_default() -> Self {
        Self {
            styles: PeStyle::ALL.to_vec(),
            dense_topologies: ClassicArch::ALL.to_vec(),
            encodings: EncodingKind::ALL.to_vec(),
            precisions: Self::default_precisions(),
            corners: roster::sweep_corners(),
            memories: vec![MemorySpec::unbounded()],
            workloads: default_workloads(),
        }
    }

    /// The paper-default axes with the workload axis replaced by whole
    /// networks whose name contains `filter` (case-insensitive; empty
    /// keeps the full catalog — the ten models of Figures 12–13 plus the
    /// mixed-precision presets). Errors when nothing matches.
    pub fn with_models(filter: &str) -> Result<Self, String> {
        let needle = filter.to_ascii_lowercase();
        let nets: Vec<SweepWorkload> = tpe_workloads::NetworkModel::catalog()
            .into_iter()
            .filter(|n| needle.is_empty() || n.name.to_ascii_lowercase().contains(&needle))
            .map(SweepWorkload::Model)
            .collect();
        if nets.is_empty() {
            return Err(format!("no network model matches `{filter}`"));
        }
        Ok(Self {
            workloads: nets,
            ..Self::paper_default()
        })
    }

    /// A small space for tests and the example: two styles per family, two
    /// encodings, two precisions, one corner family, two workloads.
    pub fn quick() -> Self {
        Self {
            styles: vec![
                PeStyle::TraditionalMac,
                PeStyle::Opt1,
                PeStyle::Opt3,
                PeStyle::Opt4E,
            ],
            dense_topologies: vec![ClassicArch::Tpu, ClassicArch::Trapezoid],
            encodings: vec![EncodingKind::EnT, EncodingKind::Mbe],
            precisions: vec![Precision::W8, Precision::W4],
            corners: vec![Corner::smic28(1.0), Corner::smic28(1.5)],
            memories: vec![MemorySpec::unbounded()],
            workloads: vec![
                SweepWorkload::Layer(LayerShape::new("conv-64x3136x576", 64, 3136, 576, 1)),
                SweepWorkload::Layer(LayerShape::new("attn-qk-1024x64", 1024, 1024, 64, 1)),
            ],
        }
    }

    /// Whether a (style, kind, encoding) combination is realizable.
    ///
    /// * Serial styles (OPT3/OPT4C/OPT4E) run only on the serial array and
    ///   accept every encoding axis value.
    /// * Dense styles run only on dense topologies with the multiplier's
    ///   built-in Booth encoding ([`EncodingKind::Mbe`]).
    /// * OPT2 additionally requires FlexFlow's operand broadcast (§IV-B).
    pub fn is_legal(style: PeStyle, kind: ArchKind, encoding: EncodingKind) -> bool {
        match kind {
            ArchKind::Serial => style.is_serial(),
            ArchKind::Dense(arch) => {
                if style.is_serial() || encoding != EncodingKind::Mbe {
                    return false;
                }
                match style {
                    PeStyle::TraditionalMac | PeStyle::Opt1 => true,
                    PeStyle::Opt2 => arch == ClassicArch::FlexFlow,
                    _ => false,
                }
            }
        }
    }

    /// Enumerates the legal cross product, in a deterministic order.
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        self.enumerate_matching(&[])
    }

    /// Enumerates, keeping only points matching `filter`
    /// (case-insensitive). The filter is a comma-separated list of terms
    /// that must all match: a `precision=<label>` term matches the
    /// precision axis exactly (so `precision=w8` selects the default
    /// points, whose labels carry no suffix), a `memory=<name>` term
    /// matches the memory-corner axis exactly (`memory=unbounded` selects
    /// the default points), any other term matches the point label as a
    /// substring. An empty filter keeps everything.
    pub fn enumerate_filtered(&self, filter: &str) -> Vec<DesignPoint> {
        let terms: Vec<&str> = filter.split(',').filter(|t| !t.is_empty()).collect();
        self.enumerate_matching(&terms)
    }

    /// The shared enumeration loop. Filtering happens *during* the cross
    /// product, before a candidate's workload is cloned — a narrow filter
    /// over the default space (the serve `sweep`/`pareto` hot path) then
    /// costs label matching only, not 2000 whole-model clones.
    fn enumerate_matching(&self, terms: &[&str]) -> Vec<DesignPoint> {
        /// A pre-lowered filter term: a precision or memory axis
        /// exact-match form, or a lowercased label substring.
        enum Term {
            Precision(Option<Precision>),
            Memory(Option<MemorySpec>),
            Label(String),
        }
        let mut terms: Vec<Term> = terms
            .iter()
            .map(|term| match term.split_once('=') {
                Some((key, value)) if key.eq_ignore_ascii_case("precision") => {
                    Term::Precision(Precision::parse(value))
                }
                Some((key, value)) if key.eq_ignore_ascii_case("memory") => {
                    Term::Memory(roster::find_memory(value))
                }
                _ => Term::Label(term.to_ascii_lowercase()),
            })
            .collect();
        // Exact-match axis terms are a field compare; evaluate them
        // before any label term so rejected candidates never pay for
        // label construction (term conjunction is order-independent).
        terms.sort_by_key(|t| matches!(t, Term::Label(_)));
        let needs_label = terms.iter().any(|t| matches!(t, Term::Label(_)));

        let mut points = Vec::new();
        for &style in &self.styles {
            // (kind, encoding) pairs legal for this style.
            let mut variants: Vec<(ArchKind, EncodingKind)> = Vec::new();
            if style.is_serial() {
                for &enc in &self.encodings {
                    variants.push((ArchKind::Serial, enc));
                }
            } else {
                for &arch in &self.dense_topologies {
                    let kind = ArchKind::Dense(arch);
                    if Self::is_legal(style, kind, EncodingKind::Mbe) {
                        variants.push((kind, EncodingKind::Mbe));
                    }
                }
            }
            for &(kind, encoding) in &variants {
                for &precision in &self.precisions {
                    for &corner in &self.corners {
                        for &memory in &self.memories {
                            let engine = EngineSpec {
                                style,
                                kind,
                                encoding,
                                precision,
                                freq_ghz: corner.freq_ghz,
                                node: corner.node,
                                node_name: corner.node_name,
                                memory,
                            };
                            let engine_label = needs_label
                                .then(|| format!("{}/", engine.label()).to_ascii_lowercase());
                            for workload in &self.workloads {
                                // One lazily-built lowercased label per
                                // candidate, shared by every label term —
                                // never built when an axis term rejects
                                // the candidate first.
                                let mut label: Option<String> = None;
                                let matches = terms.iter().all(|term| match term {
                                    Term::Precision(p) => *p == Some(precision),
                                    Term::Memory(m) => *m == Some(memory),
                                    Term::Label(needle) => label
                                        .get_or_insert_with(|| {
                                            let mut label = engine_label
                                                .clone()
                                                .expect("label terms imply a prefix");
                                            label.push_str(&workload.name().to_ascii_lowercase());
                                            label
                                        })
                                        .contains(needle),
                                });
                                if matches {
                                    points.push(DesignPoint {
                                        engine: engine.clone(),
                                        workload: workload.clone(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }
}

/// Builds the space a *slice query* selects from — the shared entry point
/// of `repro dse` and the serve `sweep`/`pareto` ops, so a filter string
/// addresses exactly the same points on both paths.
///
/// `model` mirrors the CLI's `--model` flag: `None` keeps the paper
/// default space (layer workloads + ResNet-18 end-to-end), `"all"`
/// (case-insensitive) swaps the workload axis for every catalog network,
/// and any other value selects networks by name substring.
pub fn slice_space(model: Option<&str>) -> Result<DesignSpace, String> {
    match model {
        Some(name) if name.eq_ignore_ascii_case("all") => DesignSpace::with_models(""),
        Some(name) => DesignSpace::with_models(name),
        None => Ok(DesignSpace::paper_default()),
    }
}

/// The default workload axis: one layer per utilization regime the paper
/// studies — wide mid-network conv, depthwise conv, pointwise projection,
/// attention score GEMM, transformer FFN, the classifier GEMV — plus the
/// ResNet-18 network end-to-end (the whole-model objective).
pub fn default_workloads() -> Vec<SweepWorkload> {
    let resnet = models::resnet18();
    let mobilenet = models::mobilenet_v3();
    let mut picks: Vec<LayerShape> = Vec::new();
    // Wide conv (K = 576): the §IV-C sync example.
    if let Some(l) = resnet.layers.iter().find(|l| l.name == "l2.0-3x3s2") {
        picks.push(l.clone());
    }
    // Depthwise (K = 25) and pointwise from MobileNetV3: Figure 11(B).
    for name in ["b13-dw5x5", "b13-pw-proj"] {
        if let Some(l) = mobilenet.layers.iter().find(|l| l.name == name) {
            picks.push(l.clone());
        }
    }
    // Transformer shapes: attention scores (K = 64) and the FFN (K = 768).
    for l in models::gpt2_decode_sublayers("L0", 1024) {
        if l.k == 64 || l.name.ends_with("fc1") {
            picks.push(l);
        }
    }
    // Classifier GEMV — the skinny tail case.
    picks.push(LayerShape::new("fc-1000x512", 1000, 1, 512, 1));
    picks.truncate(6);
    let mut workloads: Vec<SweepWorkload> = picks.into_iter().map(SweepWorkload::Layer).collect();
    workloads.push(SweepWorkload::Model(resnet));
    workloads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_covers_over_200_points_on_5_plus_axes() {
        let space = DesignSpace::paper_default();
        assert!(space.styles.len() >= 4);
        assert!(space.encodings.len() >= 4);
        assert!(space.corners.len() >= 3);
        assert!(space.workloads.len() >= 4);
        assert_eq!(space.precisions.len(), 3, "W8/W4/W16 ladder");
        let points = space.enumerate();
        // The historical 672-point W8 space, multiplied by the precision
        // ladder.
        assert_eq!(points.len(), 672 * 3, "default space size");
        let w8: Vec<_> = points
            .iter()
            .filter(|p| p.precision() == Precision::W8)
            .collect();
        assert_eq!(w8.len(), 672, "the W8 slice is the historical space");
    }

    /// The W8 subsequence of the grown default space enumerates in exactly
    /// the historical order: a single-precision space's points, in order.
    #[test]
    fn w8_subsequence_preserves_historical_order() {
        let w8_only = DesignSpace {
            precisions: vec![Precision::W8],
            ..DesignSpace::paper_default()
        };
        let historical: Vec<String> = w8_only.enumerate().iter().map(DesignPoint::label).collect();
        let projected: Vec<String> = DesignSpace::paper_default()
            .enumerate()
            .iter()
            .filter(|p| p.precision() == Precision::W8)
            .map(DesignPoint::label)
            .collect();
        assert_eq!(projected, historical);
    }

    #[test]
    fn precision_filter_terms_select_the_axis() {
        let space = DesignSpace::quick();
        let all = space.enumerate();
        let w4 = space.enumerate_filtered("precision=w4");
        let w8 = space.enumerate_filtered("precision=w8");
        assert_eq!(w4.len() + w8.len(), all.len());
        assert!(w4.iter().all(|p| p.precision() == Precision::W4));
        assert!(w8.iter().all(|p| p.precision() == Precision::W8));
        // Terms compose: precision + label substring.
        let opt3_w4 = space.enumerate_filtered("precision=w4,opt3");
        assert!(!opt3_w4.is_empty());
        assert!(opt3_w4
            .iter()
            .all(|p| p.style() == PeStyle::Opt3 && p.precision() == Precision::W4));
        // An unparsable precision term matches nothing.
        assert!(space.enumerate_filtered("precision=w99").is_empty());
    }

    /// The memory axis sweeps like any other: the default space carries
    /// only the `Unbounded` corner, a grown space multiplies the point
    /// count, and `memory=<name>` terms slice it exactly.
    #[test]
    fn memory_axis_defaults_to_unbounded_and_filters_exactly() {
        let quick = DesignSpace::quick();
        let baseline = quick.enumerate();
        assert!(baseline.iter().all(|p| p.memory().is_unbounded()));

        let grown = DesignSpace {
            memories: roster::memory_corners(),
            ..DesignSpace::quick()
        };
        let corners = grown.memories.len();
        let all = grown.enumerate();
        assert_eq!(all.len(), baseline.len() * corners);

        let edge = grown.enumerate_filtered("memory=edge");
        assert_eq!(edge.len(), baseline.len());
        assert!(edge.iter().all(|p| p.memory().name == "edge"));
        // The default corner is addressable by name too, and its labels
        // carry no memory suffix — byte-identical to the baseline's.
        let unbounded = grown.enumerate_filtered("memory=unbounded");
        let labels: Vec<String> = unbounded.iter().map(DesignPoint::label).collect();
        let baseline_labels: Vec<String> = baseline.iter().map(DesignPoint::label).collect();
        assert_eq!(labels, baseline_labels);
        // Terms compose with the other axes, and unknown corners match
        // nothing.
        let mix = grown.enumerate_filtered("memory=hbm,precision=w4,opt3");
        assert!(!mix.is_empty());
        assert!(mix
            .iter()
            .all(|p| p.memory().name == "hbm" && p.precision() == Precision::W4));
        assert!(grown.enumerate_filtered("memory=no-such-corner").is_empty());
    }

    #[test]
    fn every_enumerated_point_is_legal() {
        for p in DesignSpace::paper_default().enumerate() {
            assert!(
                DesignSpace::is_legal(p.style(), p.kind(), p.encoding()),
                "illegal point {}",
                p.label()
            );
        }
    }

    #[test]
    fn serial_styles_never_pair_with_dense_arrays() {
        assert!(!DesignSpace::is_legal(
            PeStyle::Opt3,
            ArchKind::Dense(ClassicArch::Tpu),
            EncodingKind::EnT
        ));
        assert!(!DesignSpace::is_legal(
            PeStyle::TraditionalMac,
            ArchKind::Serial,
            EncodingKind::Mbe
        ));
        // OPT2 needs FlexFlow.
        assert!(!DesignSpace::is_legal(
            PeStyle::Opt2,
            ArchKind::Dense(ClassicArch::Tpu),
            EncodingKind::Mbe
        ));
        assert!(DesignSpace::is_legal(
            PeStyle::Opt2,
            ArchKind::Dense(ClassicArch::FlexFlow),
            EncodingKind::Mbe
        ));
    }

    #[test]
    fn labels_are_unique() {
        let points = DesignSpace::paper_default().enumerate();
        let mut labels: Vec<String> = points.iter().map(DesignPoint::label).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(before, labels.len(), "duplicate point labels");
    }

    #[test]
    fn default_space_carries_a_whole_model_workload() {
        let space = DesignSpace::paper_default();
        let models: Vec<_> = space
            .workloads
            .iter()
            .filter(|w| matches!(w, SweepWorkload::Model(_)))
            .collect();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].name(), "ResNet18");
        assert!(models[0].layer_count() > 10);
        assert_eq!(models[0].macs(), models::resnet18().total_macs());
    }

    #[test]
    fn with_models_replaces_the_workload_axis() {
        let space = DesignSpace::with_models("resnet").unwrap();
        assert_eq!(
            space.workloads.len(),
            3,
            "ResNet18 + ResNet50 + the quantized ResNet18-W4 preset"
        );
        assert!(space
            .workloads
            .iter()
            .all(|w| matches!(w, SweepWorkload::Model(_))));
        let all = DesignSpace::with_models("").unwrap();
        assert_eq!(all.workloads.len(), models::NetworkModel::catalog().len());
        assert!(DesignSpace::with_models("no-such-net").is_err());
    }

    #[test]
    fn filter_narrows_enumeration() {
        let space = DesignSpace::quick();
        let all = space.enumerate();
        let opt3 = space.enumerate_filtered("opt3");
        assert!(!opt3.is_empty() && opt3.len() < all.len());
        assert!(opt3.iter().all(|p| p.style() == PeStyle::Opt3));
    }

    /// Every engine a sweep enumerates resolves back through the roster's
    /// label lookup — what makes any sweep point servable by name.
    #[test]
    fn every_point_engine_is_findable_by_label() {
        let space = DesignSpace {
            memories: roster::memory_corners(),
            ..DesignSpace::quick()
        };
        for p in space.enumerate() {
            let found = roster::find(&p.engine.label()).unwrap();
            assert_eq!(found, p.engine, "{}", p.engine.label());
        }
    }
}
