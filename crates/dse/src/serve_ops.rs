//! Server-side design-space batch ops for the `repro serve` front end.
//!
//! [`DseOps`] plugs the sweep executor and Pareto extractor into
//! `tpe_engine::serve`'s [`BatchOps`] extension point, so a client can
//! run whole design-space questions — the paper's Figure 11–13 sweeps
//! and Pareto fronts — over the wire instead of one point at a time:
//!
//! ```text
//! {"id":1,"op":"sweep","filter":"OPT4E[EN-T],precision=w8","seed":42,"points":true}
//! {"id":2,"op":"pareto","filter":"precision=w8","objectives":"area,delay,energy"}
//! ```
//!
//! * **`sweep`** evaluates the filtered slice
//!   ([`crate::sweep::evaluate_slice`] — the same points
//!   `repro dse --filter F [--model M]` sweeps) through the shared cache
//!   and answers a summary line. With `"points":true` it follows with one
//!   line per design point carrying the point's **exact `repro dse` CSV
//!   row** in a `"csv"` field (schema in the summary's `"csv_header"`),
//!   so the dse CSV pipeline is fully reconstructable from a query
//!   (golden-tested byte-identical in `tpe-bench`).
//! * **`pareto`** runs the same slice evaluation and extracts the
//!   per-(workload × precision) Pareto front ([`pareto_front_per_workload`])
//!   over the requested `"objectives"` (default `area,delay,energy`),
//!   answering a summary plus one line per *front* point (suppress with
//!   `"points":false`).
//!
//! Both summaries carry `"points_follow"` — the number of per-point lines
//! that follow — which `tpe_engine::serve::query_batch` uses to grow its
//! expected response count. All fields are deterministic functions of the
//! request, preserving the serve layer's batched==sequential
//! byte-identity property (cache-state observables like hit counts are
//! deliberately excluded).
//!
//! Slice size is capped per request ([`DEFAULT_MAX_POINTS`], raisable via
//! `"max_points"`): the cap is checked before any point is priced, so a
//! single cheap-to-send request cannot pin a pool worker on an unbounded
//! evaluation.

use std::sync::{Arc, OnceLock};

use tpe_engine::serve::{json_escape, BatchOps, Fields, DEFAULT_SEED};
use tpe_engine::{CycleModel, EngineCache};
use tpe_obs::{Counter, Histogram, Registry};

use crate::emit::{point_csv_row, CSV_HEADER};
use crate::eval::PointResult;
use crate::pareto::{pareto_front_per_workload, Objective};
use crate::shard::{encode_scores, group_key, scores_of, ShardSpec};
use crate::sweep::evaluate_slice_shard;

/// The `sweep`/`pareto`/`fleet` op set. Attach with
/// `tpe_engine::serve::serve_with(listener, cache, &DseOps, config)`.
pub struct DseOps;

impl BatchOps for DseOps {
    fn handle(
        &self,
        op: &str,
        fields: &Fields,
        cache: &EngineCache,
    ) -> Option<Result<Vec<String>, String>> {
        match op {
            "sweep" => Some(slice_op(fields, cache, SliceOp::Sweep)),
            "pareto" => Some(slice_op(fields, cache, SliceOp::Pareto)),
            "fleet" => Some(crate::fleet::fleet_op(fields, cache)),
            _ => None,
        }
    }

    fn op_names(&self) -> String {
        "|sweep|pareto|fleet".to_string()
    }
}

/// Which of the two slice-shaped ops is being answered.
#[derive(Clone, Copy, PartialEq)]
enum SliceOp {
    Sweep,
    Pareto,
}

impl SliceOp {
    fn name(self) -> &'static str {
        match self {
            SliceOp::Sweep => "sweep",
            SliceOp::Pareto => "pareto",
        }
    }

    /// Whether per-point lines are emitted when the request omits
    /// `"points"`: a sweep defaults to summary-only (slices can be
    /// thousands of rows), while a pareto's whole purpose is the front.
    fn points_by_default(self) -> bool {
        matches!(self, SliceOp::Pareto)
    }
}

/// Process-wide metrics for the slice-shaped ops: the wall-clock of one
/// slice evaluation (`dse_slice_eval_ns`, cold or warm — the serve
/// layer's `metrics` op exposes the distribution) and the total design
/// points evaluated over the wire (`dse_slice_points`).
struct DseObs {
    slice_eval_ns: Arc<Histogram>,
    slice_points: Arc<Counter>,
}

fn dse_obs() -> &'static DseObs {
    static OBS: OnceLock<DseObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = Registry::global();
        DseObs {
            slice_eval_ns: reg.histogram("dse_slice_eval_ns"),
            slice_points: reg.counter("dse_slice_points"),
        }
    })
}

/// The default per-request slice-size cap: generous enough for the full
/// default space (2016 points), small enough that one request cannot pin
/// a pool worker on an unbounded evaluation. Requests may raise it
/// explicitly via `"max_points"`.
pub const DEFAULT_MAX_POINTS: usize = 2048;

/// Renders a slice-op summary body. Field order is part of the wire
/// format: the shard-merge client ([`crate::shard::merge_shard_responses`])
/// re-renders the merged summary through this same function, which is
/// what makes merged output byte-identical to a single-node answer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn render_summary(
    op_name: &str,
    filter: &str,
    model: Option<&str>,
    shard: Option<&str>,
    cycle_model: CycleModel,
    seed: u64,
    objective_names: &str,
    points: usize,
    feasible: usize,
    front: usize,
    points_follow: usize,
) -> String {
    let mut model_field = String::new();
    if let Some(m) = model {
        model_field = format!("\"model\":\"{}\",", json_escape(m));
    }
    let mut shard_field = String::new();
    if let Some(s) = shard {
        shard_field = format!("\"shard\":\"{}\",", json_escape(s));
    }
    // Echoed only when non-default so sampled summaries stay
    // byte-identical to the pre-mode wire format.
    let cycle_field = match cycle_model {
        CycleModel::Sampled => "",
        CycleModel::Analytic => "\"cycle_model\":\"analytic\",",
    };
    format!(
        "\"op\":\"{op_name}\",\"filter\":\"{}\",{model_field}{shard_field}{cycle_field}\
         \"seed\":{seed},\"objectives\":\"{objective_names}\",\"points\":{points},\
         \"feasible\":{feasible},\"front\":{front},\"csv_header\":\"{}\",\
         \"points_follow\":{points_follow}",
        json_escape(filter),
        json_escape(CSV_HEADER),
    )
}

/// Renders one per-point body (shared with the shard-merge client, same
/// byte-identity contract as [`render_summary`]). `extras` is either
/// empty or the pre-rendered `,"group":…,"scores":…,"csv_off":…` tail a
/// shard response attaches to its local-front rows.
pub(crate) fn render_point(
    op_name: &str,
    index: usize,
    label: &str,
    feasible: bool,
    on_front: bool,
    csv_row: &str,
    extras: &str,
) -> String {
    format!(
        "\"op\":\"{op_name}-point\",\"index\":{index},\"label\":\"{}\",\"feasible\":{feasible},\
         \"pareto\":{on_front},\"csv\":\"{}\"{extras}",
        json_escape(label),
        json_escape(csv_row),
    )
}

/// The shared request shape: evaluate a filtered slice (or one shard of
/// it), extract the front, answer a summary (+ optional per-point lines).
fn slice_op(fields: &Fields, cache: &EngineCache, op: SliceOp) -> Result<Vec<String>, String> {
    let filter = fields.opt_str("filter")?.unwrap_or("").to_string();
    let model = fields.opt_str("model")?.map(str::to_string);
    let seed = fields.uint_or("seed", DEFAULT_SEED)?;
    let objectives = match fields.opt_str("objectives")? {
        Some(list) => Objective::parse_list(list)?,
        None => Objective::DEFAULT.to_vec(),
    };
    let include_points = fields.bool_or("points", op.points_by_default())?;
    let max_points = fields.uint_or("max_points", DEFAULT_MAX_POINTS as u64)? as usize;
    let shard = fields.opt_str("shard")?.map(ShardSpec::parse).transpose()?;
    // Absent means sampled — and `handle_request_with` injects the
    // server's default here, so `--cycle-model analytic` servers answer
    // analytic slices without clients re-spelling the field.
    let cycle_model = match fields.opt_str("cycle_model")? {
        None => CycleModel::Sampled,
        Some(m) => CycleModel::parse(m)
            .ok_or_else(|| format!("unknown cycle_model `{m}` (expected sampled|analytic)"))?,
    };

    let obs = dse_obs();
    let indexed = obs.slice_eval_ns.time(|| {
        evaluate_slice_shard(
            &filter,
            model.as_deref(),
            seed,
            Some(max_points),
            cache,
            cycle_model,
            shard.as_ref(),
        )
    })?;
    obs.slice_points.add(indexed.len() as u64);
    let (global_idx, results): (Vec<usize>, Vec<PointResult>) = indexed.into_iter().unzip();
    // Front positions are into the evaluated (shard-local) slice; with no
    // shard they coincide with global indices.
    let front = pareto_front_per_workload(&results, &objectives);
    let feasible = results.iter().filter(|r| r.feasible()).count();
    let objective_names = objectives
        .iter()
        .map(|o| o.name())
        .collect::<Vec<_>>()
        .join(",");

    // The per-point payload: the front members for `pareto`, the whole
    // slice for `sweep` (positions into `results`).
    let payload: Vec<usize> = match op {
        SliceOp::Sweep => (0..results.len()).collect(),
        SliceOp::Pareto => front.clone(),
    };
    let points_follow = if include_points { payload.len() } else { 0 };

    let shard_spelled = shard.as_ref().map(|s| s.spell());
    let mut bodies = vec![render_summary(
        op.name(),
        &filter,
        model.as_deref(),
        shard_spelled.as_deref(),
        cycle_model,
        seed,
        &objective_names,
        results.len(),
        feasible,
        front.len(),
        points_follow,
    )];
    if include_points {
        bodies.reserve(payload.len());
        for pos in payload {
            let r = &results[pos];
            let on_front = front.binary_search(&pos).is_ok();
            // A shard answers with the point's *global* slice index and,
            // on its local-front rows, the merge fields: dominance group,
            // exact score bits, and the row as it renders off-front — so
            // a merge client can demote globally-dominated points without
            // re-evaluating anything.
            let extras = match (&shard, on_front) {
                (Some(_), true) => {
                    let scores = scores_of(r, &objectives)
                        .expect("front members are feasible by construction");
                    format!(
                        ",\"group\":\"{}\",\"scores\":\"{}\",\"csv_off\":\"{}\"",
                        json_escape(&group_key(r)),
                        encode_scores(&scores),
                        json_escape(&point_csv_row(r, false)),
                    )
                }
                _ => String::new(),
            };
            bodies.push(render_point(
                op.name(),
                global_idx[pos],
                &r.point.label(),
                r.feasible(),
                on_front,
                &point_csv_row(r, on_front),
                &extras,
            ));
        }
    }
    Ok(bodies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::evaluate_slice;
    use tpe_engine::serve::handle_request;

    const FILTER: &str = "OPT1(TPU)/28nm@1.50,precision=w8";

    fn ask(req: &str, cache: &EngineCache) -> (Vec<String>, bool) {
        handle_request(req, cache, &DseOps)
    }

    #[test]
    fn sweep_summary_counts_the_slice() {
        let cache = EngineCache::new();
        let req = format!(r#"{{"id":5,"op":"sweep","filter":"{FILTER}","seed":42}}"#);
        let (lines, down) = ask(&req, &cache);
        assert!(!down);
        assert_eq!(lines.len(), 1, "summary only by default: {lines:?}");
        let expected = crate::space::DesignSpace::paper_default()
            .enumerate_filtered(FILTER)
            .len();
        assert!(
            lines[0].starts_with("{\"id\":5,\"ok\":true,\"op\":\"sweep\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[0].contains(&format!("\"points\":{expected}")),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"points_follow\":0"), "{}", lines[0]);
        assert!(
            lines[0].contains("\"objectives\":\"area,delay,energy\""),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn sweep_points_ship_the_exact_csv_rows() {
        let cache = EngineCache::new();
        let req = format!(r#"{{"id":1,"op":"sweep","filter":"{FILTER}","seed":42,"points":true}}"#);
        let (lines, _) = ask(&req, &cache);
        let slice = evaluate_slice(
            FILTER,
            None,
            42,
            None,
            &EngineCache::new(),
            CycleModel::Sampled,
        )
        .unwrap();
        assert_eq!(lines.len(), 1 + slice.len());
        assert!(
            lines[0].contains(&format!("\"points_follow\":{}", slice.len())),
            "{}",
            lines[0]
        );
        let front = pareto_front_per_workload(&slice, &Objective::DEFAULT);
        for (i, line) in lines[1..].iter().enumerate() {
            let on_front = front.binary_search(&i).is_ok();
            let expected = json_escape(&point_csv_row(&slice[i], on_front));
            assert!(
                line.contains(&format!("\"csv\":\"{expected}\"")),
                "point {i}: {line}"
            );
            assert!(line.contains(&format!("\"index\":{i}")), "{line}");
        }
    }

    #[test]
    fn pareto_answers_front_points_by_default() {
        let cache = EngineCache::new();
        let req = format!(r#"{{"id":2,"op":"pareto","filter":"{FILTER}","seed":42}}"#);
        let (lines, _) = ask(&req, &cache);
        let slice = evaluate_slice(
            FILTER,
            None,
            42,
            None,
            &EngineCache::new(),
            CycleModel::Sampled,
        )
        .unwrap();
        let front = pareto_front_per_workload(&slice, &Objective::DEFAULT);
        assert_eq!(lines.len(), 1 + front.len());
        assert!(
            lines[0].contains(&format!("\"front\":{}", front.len())),
            "{}",
            lines[0]
        );
        for line in &lines[1..] {
            assert!(line.contains("\"op\":\"pareto-point\""), "{line}");
            assert!(line.contains("\"pareto\":true"), "{line}");
        }
        // Custom objectives change the front deterministically.
        let req2 = format!(
            r#"{{"id":2,"op":"pareto","filter":"{FILTER}","seed":42,"objectives":"area,power"}}"#
        );
        let (lines2, _) = ask(&req2, &cache);
        assert!(
            lines2[0].contains("\"objectives\":\"area,power\""),
            "{}",
            lines2[0]
        );
    }

    #[test]
    fn slice_ops_surface_cli_shaped_errors() {
        let cache = EngineCache::new();
        for (req, needle) in [
            (
                r#"{"id":1,"op":"sweep","filter":"no-such-point"}"#,
                "no design points",
            ),
            (
                r#"{"id":1,"op":"sweep","objectives":"area"}"#,
                "at least two objectives",
            ),
            (
                r#"{"id":1,"op":"pareto","model":"no-such-net"}"#,
                "no network model",
            ),
            (
                r#"{"id":1,"op":"sweep","points":"yes"}"#,
                "must be a boolean",
            ),
            (
                r#"{"id":1,"op":"sweep","filter":"OPT1(TPU)/28nm@1.50,precision=w8","max_points":5}"#,
                "over the cap of 5",
            ),
        ] {
            let (lines, down) = ask(req, &cache);
            assert!(!down);
            assert_eq!(lines.len(), 1);
            assert!(lines[0].contains("\"ok\":false"), "{req} -> {}", lines[0]);
            assert!(lines[0].contains(needle), "{req} -> {}", lines[0]);
        }
    }

    /// Whole-model slices work over the wire like `repro dse --model`.
    #[test]
    fn sweep_accepts_a_model_axis() {
        let cache = EngineCache::new();
        let req = r#"{"id":3,"op":"sweep","filter":"OPT1(TPU)/28nm@1.50,precision=w8","model":"resnet18","seed":42,"points":true}"#;
        let (lines, _) = ask(req, &cache);
        assert!(lines[0].contains("\"model\":\"resnet18\""), "{}", lines[0]);
        assert!(lines.len() > 1);
        assert!(
            lines[1..].iter().all(|l| l.contains(",model,")),
            "per-point rows must be whole-model rows: {lines:?}"
        );
    }

    /// `max_points` bounds evaluation cost before any pricing runs; a
    /// request-level raise re-admits the slice.
    #[test]
    fn max_points_cap_is_raisable_per_request() {
        let cache = EngineCache::new();
        let capped = format!(r#"{{"id":1,"op":"sweep","filter":"{FILTER}","max_points":3}}"#);
        let (lines, _) = ask(&capped, &cache);
        assert!(lines[0].contains("over the cap of 3"), "{}", lines[0]);
        let raised = format!(r#"{{"id":1,"op":"sweep","filter":"{FILTER}","max_points":100}}"#);
        let (lines, _) = ask(&raised, &cache);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
    }

    /// Identical requests produce identical bytes whatever the cache has
    /// seen — the property that lets sweeps join pipelined batches.
    #[test]
    fn slice_ops_are_deterministic_per_request() {
        let cache = EngineCache::new();
        let req = format!(r#"{{"id":9,"op":"sweep","filter":"{FILTER}","points":true}}"#);
        let (a, _) = ask(&req, &cache);
        let (b, _) = ask(&req, &cache); // warm rerun
        assert_eq!(a, b);
        let (c, _) = ask(&req, &EngineCache::new()); // cold cache
        assert_eq!(a, c);
    }
}
