//! The parallel sweep executor.
//!
//! A sweep evaluates every design point of an enumerated space. Points
//! are claimed from a shared atomic cursor by scoped worker threads
//! (work-stealing in the only sense that matters for this workload:
//! whichever worker is free takes the next point, so heterogeneous point
//! costs balance automatically). Each worker accumulates `(index, result)`
//! pairs locally; the results are merged and sorted by index at the end,
//! and every point's RNG is seeded from the sweep seed and the point's
//! own label — so the output is **byte-identical across runs and thread
//! counts**, which the determinism tests pin.
//!
//! Synthesis, serial sampling and whole-model reports memoize into a
//! [`EngineCache`]: [`sweep`] shares the process-wide global instance
//! (so later grids, experiments and serve queries reuse this sweep's
//! work), while [`sweep_with_cache`] takes an explicit instance for
//! isolation. Whole-network points land in the cache's model map, so a
//! re-sweep (or a later `repro models` grid over the same cells) answers
//! each repeated point with one lookup instead of an O(layers) rewalk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tpe_engine::{CacheStats, CycleModel, EngineCache};

use crate::eval::{evaluate_with_model, PointResult};
use crate::space::DesignPoint;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Global seed mixed into every point's workload sampling.
    pub seed: u64,
    /// Serial-cycle backend every point evaluates under (`--cycle-model`).
    pub cycle_model: CycleModel,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 42,
            cycle_model: CycleModel::Sampled,
        }
    }
}

impl SweepConfig {
    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Everything a sweep produces.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per input point, in input order.
    pub results: Vec<PointResult>,
    /// Cache-counter deltas over this sweep (hits/misses this run added
    /// against the cache it ran on).
    pub cache: CacheStats,
    /// Wall-clock spent evaluating.
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl SweepOutcome {
    /// Number of points that closed timing.
    pub fn feasible_count(&self) -> usize {
        self.results.iter().filter(|r| r.feasible()).count()
    }
}

/// Evaluates all `points` against the process-wide global cache.
pub fn sweep(points: &[DesignPoint], config: SweepConfig) -> SweepOutcome {
    sweep_with_cache(points, config, EngineCache::global())
}

/// Evaluates all `points` with `config.threads` workers against an
/// explicit cache instance.
pub fn sweep_with_cache(
    points: &[DesignPoint],
    config: SweepConfig,
    cache: &EngineCache,
) -> SweepOutcome {
    let threads = config.effective_threads().min(points.len()).max(1);
    let baseline = cache.stats();
    let start = Instant::now();

    let mut results: Vec<Option<PointResult>> = vec![None; points.len()];
    if threads == 1 {
        for (slot, point) in results.iter_mut().zip(points) {
            *slot = Some(evaluate_with_model(
                point,
                cache,
                config.seed,
                config.cycle_model,
            ));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, PointResult)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= points.len() {
                                break;
                            }
                            local.push((
                                i,
                                evaluate_with_model(
                                    &points[i],
                                    cache,
                                    config.seed,
                                    config.cycle_model,
                                ),
                            ));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("sweep worker panicked"))
                .collect()
        });
        for (i, result) in collected.drain(..).flatten() {
            results[i] = Some(result);
        }
    }

    SweepOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every point evaluated exactly once"))
            .collect(),
        cache: cache.stats().since(&baseline),
        elapsed: start.elapsed(),
        threads,
    }
}

/// One filtered slice of the design space, evaluated in enumeration order
/// through `cache` — the public slice-evaluation entry point behind the
/// serve layer's `sweep`/`pareto` ops and any other consumer that wants
/// "the points `repro dse --filter F [--model M]` would sweep" without
/// the CLI.
///
/// Evaluation is single-threaded (callers that want parallelism already
/// sit inside a worker pool or can use [`sweep_with_cache`]); results are
/// byte-identical to what the parallel sweep executor produces for the
/// same points and seed, because per-point seeding depends only on the
/// point label.
///
/// `max_points` bounds the evaluation cost *before* any point is priced:
/// a slice larger than the cap is rejected with an error naming both
/// numbers. `None` means unbounded (the CLI, which owns its own process).
///
/// # Errors
///
/// Returns the same errors as the CLI — an unknown `model` selector or a
/// filter matching no design points — plus the over-cap rejection.
pub fn evaluate_slice(
    filter: &str,
    model: Option<&str>,
    seed: u64,
    max_points: Option<usize>,
    cache: &EngineCache,
    cycle_model: CycleModel,
) -> Result<Vec<PointResult>, String> {
    let indexed = evaluate_slice_shard(filter, model, seed, max_points, cache, cycle_model, None)?;
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

/// [`evaluate_slice`] restricted to one shard of a label-hash partition,
/// keeping each evaluated point's **global** slice index — the server
/// half of `repro query --shards`.
///
/// The partition is deterministic in the point labels alone
/// ([`crate::shard::ShardSpec::contains`]), so `n` servers given the same
/// filter and `shard:k/n` stamps evaluate disjoint subsets whose union is
/// exactly the unsharded slice, and the global indices let a merge client
/// reassemble single-node point order without re-enumerating.
///
/// `max_points` bounds the points *this* shard evaluates (each server pays
/// only for its own share); the filter-matches-nothing error still refers
/// to the pre-shard slice, while a shard that happens to select zero of a
/// non-empty slice legitimately returns no rows.
pub fn evaluate_slice_shard(
    filter: &str,
    model: Option<&str>,
    seed: u64,
    max_points: Option<usize>,
    cache: &EngineCache,
    cycle_model: CycleModel,
    shard: Option<&crate::shard::ShardSpec>,
) -> Result<Vec<(usize, PointResult)>, String> {
    let space = crate::space::slice_space(model)?;
    let points = space.enumerate_filtered(filter);
    if points.is_empty() {
        return Err(format!("no design points match filter `{filter}`"));
    }
    let selected: Vec<(usize, &DesignPoint)> = match shard {
        None => points.iter().enumerate().collect(),
        Some(spec) => points
            .iter()
            .enumerate()
            .filter(|(_, p)| spec.contains(&p.label()))
            .collect(),
    };
    if let Some(cap) = max_points {
        if selected.len() > cap {
            return Err(format!(
                "slice matches {} points, over the cap of {cap} — narrow the filter \
                 or raise `max_points`",
                selected.len()
            ));
        }
    }
    Ok(selected
        .into_iter()
        .map(|(i, p)| (i, evaluate_with_model(p, cache, seed, cycle_model)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    #[test]
    fn sweep_preserves_input_order_and_covers_all_points() {
        let points = DesignSpace::quick().enumerate();
        let outcome = sweep(
            &points,
            SweepConfig {
                threads: 3,
                seed: 9,
                ..SweepConfig::default()
            },
        );
        assert_eq!(outcome.results.len(), points.len());
        for (r, p) in outcome.results.iter().zip(&points) {
            assert_eq!(r.point.label(), p.label());
        }
        assert!(outcome.feasible_count() > 0);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let points = DesignSpace::quick().enumerate();
        let serial = sweep(
            &points,
            SweepConfig {
                threads: 1,
                seed: 4,
                ..SweepConfig::default()
            },
        );
        let parallel = sweep(
            &points,
            SweepConfig {
                threads: 4,
                seed: 4,
                ..SweepConfig::default()
            },
        );
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn cache_hits_accumulate_on_workload_heavy_sweeps() {
        let points = DesignSpace::quick().enumerate();
        let cache = EngineCache::new();
        let outcome = sweep_with_cache(
            &points,
            SweepConfig {
                threads: 2,
                seed: 1,
                ..SweepConfig::default()
            },
            &cache,
        );
        assert!(
            outcome.cache.hits() > 0,
            "multiple workloads per (PE, corner) must hit: {:?}",
            outcome.cache
        );
        assert!(outcome.cache.hit_rate() > 0.0);
    }

    /// The slice entry point selects exactly the filtered enumeration and
    /// agrees with the parallel executor byte for byte.
    #[test]
    fn evaluate_slice_matches_the_sweep_executor() {
        let cache = EngineCache::new();
        let slice = evaluate_slice(
            "OPT1(TPU)/28nm@1.50,precision=w8",
            None,
            9,
            None,
            &cache,
            CycleModel::Sampled,
        )
        .unwrap();
        let points =
            DesignSpace::paper_default().enumerate_filtered("OPT1(TPU)/28nm@1.50,precision=w8");
        assert_eq!(slice.len(), points.len());
        let swept = sweep_with_cache(
            &points,
            SweepConfig {
                threads: 2,
                seed: 9,
                ..SweepConfig::default()
            },
            &EngineCache::new(),
        );
        assert_eq!(slice, swept.results);
        // CLI-shaped errors surface as messages, not panics.
        assert!(
            evaluate_slice("no-such-point", None, 9, None, &cache, CycleModel::Sampled)
                .unwrap_err()
                .contains("no design points")
        );
        assert!(evaluate_slice(
            "",
            Some("no-such-net"),
            9,
            None,
            &cache,
            CycleModel::Sampled
        )
        .is_err());
    }

    /// A global-cache sweep reports only its own counter deltas, and its
    /// results match an isolated-cache sweep byte for byte (memoization
    /// can never change values).
    #[test]
    fn global_and_isolated_caches_agree() {
        let points = DesignSpace::quick().enumerate();
        let config = SweepConfig {
            threads: 2,
            seed: 31,
            ..SweepConfig::default()
        };
        let isolated = sweep_with_cache(&points, config, &EngineCache::new());
        let global = sweep(&points, config);
        assert_eq!(isolated.results, global.results);
        let total = global.cache.hits() + global.cache.misses();
        assert!(total > 0, "deltas must reflect this sweep only");
    }
}
