//! Property tests for the DSE subsystem: Pareto extraction returns only
//! non-dominated points and is permutation-invariant; seeded parallel
//! sweeps are byte-identical across runs and thread counts; the
//! evaluation cache hits on workload-heavy sweeps.

use proptest::prelude::*;
use tpe_dse::emit::to_csv;
use tpe_dse::eval::{Metrics, PointResult};
use tpe_dse::pareto::dominates;
use tpe_dse::shard::{group_key, merge_front, scores_of, FrontCandidate};
use tpe_dse::{
    pareto_front, pareto_front_per_workload, sweep, sweep_with_cache, DesignPoint, DesignSpace,
    EngineCache, Objective, SweepConfig,
};

use tpe_arith::encode::EncodingKind;
use tpe_core::arch::{ArchKind, PeStyle};
use tpe_engine::EngineSpec;
use tpe_workloads::LayerShape;

/// Builds a synthetic feasible result from a raw objective triple.
fn synthetic(area: f64, delay: f64, energy: f64) -> PointResult {
    synthetic_in_group("synthetic", area, delay, energy)
}

/// [`synthetic`] under an explicit workload name, so tests can span
/// several dominance groups (dominance is per workload × precision).
fn synthetic_in_group(name: &str, area: f64, delay: f64, energy: f64) -> PointResult {
    let point = DesignPoint::new(
        EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
        LayerShape::new(name, 4, 4, 4, 1),
    );
    PointResult {
        point,
        metrics: Some(Metrics {
            area_um2: area,
            delay_us: delay,
            energy_uj: energy,
            energy_per_mac_fj: energy,
            throughput_gops: 1.0 / delay,
            peak_tops: 1.0,
            utilization: 0.5,
            power_w: energy / delay,
            bytes_moved: 192.0,
            intensity_ops_per_byte: 2.0 * 64.0 / 192.0,
            bound: tpe_engine::Bound::Compute,
        }),
    }
}

const OBJECTIVES: [Objective; 3] = [Objective::Area, Objective::Delay, Objective::Energy];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every point on the front is non-dominated, and every point off the
    /// front is dominated by someone.
    #[test]
    fn front_is_exactly_the_non_dominated_set(
        triples in prop::collection::vec((1u32..1000, 1u32..1000, 1u32..1000), 1..40),
    ) {
        let results: Vec<PointResult> = triples
            .iter()
            .map(|&(a, d, e)| synthetic(f64::from(a), f64::from(d), f64::from(e)))
            .collect();
        let front = pareto_front(&results, &OBJECTIVES);
        prop_assert!(!front.is_empty());
        let metric = |i: usize| results[i].metrics.as_ref().unwrap();
        for &i in &front {
            for (j, _) in results.iter().enumerate() {
                prop_assert!(
                    !dominates(metric(j), metric(i), &OBJECTIVES),
                    "front point {i} dominated by {j}"
                );
            }
        }
        for i in 0..results.len() {
            if !front.contains(&i) {
                prop_assert!(
                    (0..results.len()).any(|j| dominates(metric(j), metric(i), &OBJECTIVES)),
                    "off-front point {i} dominated by nobody"
                );
            }
        }
    }

    /// Permuting the input permutes the front: the same *set* of points
    /// comes back regardless of order.
    #[test]
    fn front_is_invariant_under_permutation(
        triples in prop::collection::vec((1u32..50, 1u32..50, 1u32..50), 1..30),
        rotation in 0usize..30,
    ) {
        let results: Vec<PointResult> = triples
            .iter()
            .map(|&(a, d, e)| synthetic(f64::from(a), f64::from(d), f64::from(e)))
            .collect();
        let rotation = rotation % results.len().max(1);
        let mut rotated = results.clone();
        rotated.rotate_left(rotation);

        let key = |r: &PointResult| {
            let m = r.metrics.as_ref().unwrap();
            (m.area_um2.to_bits(), m.delay_us.to_bits(), m.energy_uj.to_bits())
        };
        let mut front_a: Vec<_> = pareto_front(&results, &OBJECTIVES)
            .into_iter()
            .map(|i| key(&results[i]))
            .collect();
        let mut front_b: Vec<_> = pareto_front(&rotated, &OBJECTIVES)
            .into_iter()
            .map(|i| key(&rotated[i]))
            .collect();
        front_a.sort_unstable();
        front_b.sort_unstable();
        prop_assert_eq!(front_a, front_b);
    }

    /// Front size never exceeds input size and front indices are sorted.
    #[test]
    fn front_indices_sorted_and_bounded(
        triples in prop::collection::vec((1u32..100, 1u32..100, 1u32..100), 1..25),
    ) {
        let results: Vec<PointResult> = triples
            .iter()
            .map(|&(a, d, e)| synthetic(f64::from(a), f64::from(d), f64::from(e)))
            .collect();
        let front = pareto_front(&results, &OBJECTIVES);
        prop_assert!(front.len() <= results.len());
        prop_assert!(front.windows(2).all(|w| w[0] < w[1]));
    }

    /// The shard-merge theorem: for ANY partition of the result set into
    /// any number of shards, the front of the union of shard-local fronts
    /// equals the whole-set front — front-then-merge == merge-then-front.
    /// This is what lets `repro query --shards` reassemble Pareto answers
    /// without re-evaluating anything.
    #[test]
    fn merged_local_fronts_equal_the_global_front(
        points in prop::collection::vec(
            ((1u32..60, 1u32..60, 1u32..60), 0u8..3), 1..40),
        assignment_seed in prop::collection::vec(0usize..8, 1..40),
        n in 1usize..6,
    ) {
        let results: Vec<PointResult> = points
            .iter()
            .map(|&((a, d, e), g)| {
                synthetic_in_group(&format!("g{g}"), f64::from(a), f64::from(d), f64::from(e))
            })
            .collect();
        // Partition by an arbitrary (not hash-based) assignment: the
        // theorem must hold for every partition, of which the label-hash
        // one is a special case.
        let shard_of = |i: usize| assignment_seed[i % assignment_seed.len()] % n;
        let mut candidates: Vec<FrontCandidate> = Vec::new();
        for k in 0..n {
            let member_indices: Vec<usize> =
                (0..results.len()).filter(|&i| shard_of(i) == k).collect();
            let local: Vec<PointResult> =
                member_indices.iter().map(|&i| results[i].clone()).collect();
            for pos in pareto_front_per_workload(&local, &OBJECTIVES) {
                let global = member_indices[pos];
                candidates.push(FrontCandidate {
                    index: global,
                    group: group_key(&results[global]),
                    scores: scores_of(&results[global], &OBJECTIVES).unwrap(),
                });
            }
        }
        let merged = merge_front(&candidates);
        let whole = pareto_front_per_workload(&results, &OBJECTIVES);
        prop_assert_eq!(merged, whole);
    }
}

/// The global front is always a subset of the per-workload union: a point
/// non-dominated against everyone is non-dominated within its workload.
#[test]
fn global_front_is_subset_of_per_workload_union() {
    let points = DesignSpace::quick().enumerate();
    let outcome = sweep(
        &points,
        SweepConfig {
            threads: 2,
            seed: 11,
            ..SweepConfig::default()
        },
    );
    let global = pareto_front(&outcome.results, &Objective::DEFAULT);
    let per_wl = tpe_dse::pareto_front_per_workload(&outcome.results, &Objective::DEFAULT);
    assert!(
        global.iter().all(|i| per_wl.contains(i)),
        "global {global:?} not within per-workload {per_wl:?}"
    );
    assert!(
        per_wl.windows(2).all(|w| w[0] < w[1]),
        "union must be sorted"
    );
}

/// A seeded sweep emits byte-identical CSV across runs and thread counts —
/// the property that makes sharded/parallel sweeps trustworthy.
#[test]
fn sweep_csv_is_byte_identical_across_runs_and_thread_counts() {
    let points = DesignSpace::quick().enumerate();
    let emit = |threads: usize| {
        let outcome = sweep(
            &points,
            SweepConfig {
                threads,
                seed: 1234,
                ..SweepConfig::default()
            },
        );
        let front = pareto_front(&outcome.results, &Objective::DEFAULT);
        to_csv(&outcome.results, &front)
    };
    let once = emit(1);
    let again = emit(1);
    assert_eq!(once, again, "same thread count must reproduce");
    for threads in [2, 3, 8] {
        let parallel = emit(threads);
        assert_eq!(
            once.len(),
            parallel.len(),
            "CSV length diverged at {threads} threads"
        );
        assert_eq!(once, parallel, "CSV bytes diverged at {threads} threads");
    }
}

/// Different seeds must actually change the sampled serial workloads
/// (guards against the seed being dropped on the floor).
#[test]
fn sweep_seed_reaches_the_workload_model() {
    let points = DesignSpace::quick().enumerate_filtered("OPT3");
    let a = sweep(
        &points,
        SweepConfig {
            threads: 2,
            seed: 1,
            ..SweepConfig::default()
        },
    );
    let b = sweep(
        &points,
        SweepConfig {
            threads: 2,
            seed: 2,
            ..SweepConfig::default()
        },
    );
    assert_ne!(a.results, b.results);
}

/// The evaluation cache reports a nonzero hit rate on a workload-heavy
/// sweep: (PE, corner) pairs repeat across workloads and are priced once.
#[test]
fn cache_hit_rate_is_nonzero_and_bounded() {
    let points = DesignSpace::quick().enumerate();
    let cache = EngineCache::new();
    let outcome = sweep_with_cache(
        &points,
        SweepConfig {
            threads: 4,
            seed: 7,
            ..SweepConfig::default()
        },
        &cache,
    );
    let stats = outcome.cache;
    assert!(stats.hits() > 0, "expected hits: {stats:?}");
    assert!(stats.misses() > 0, "at least one real pricing: {stats:?}");
    assert_eq!(
        stats.price_hits + stats.price_misses,
        points.len() as u64,
        "one pricing lookup per point"
    );
    let price_rate = stats.price_hits as f64 / (stats.price_hits + stats.price_misses) as f64;
    assert!(price_rate > 0.4, "pricing hit rate {price_rate:.3} too low");
    // Per-point cycle seeds are unique inside one sweep, so cycle lookups
    // all miss here — they only hit across repeated sweeps/queries.
    assert_eq!(stats.cycle_hits, 0);
}

/// Sharded serve responses merge byte-identical to the single-node
/// answer, for several shard counts and any response-group order (the
/// merge keys on the `shard:k/n` echo, not on position).
#[test]
fn sharded_serve_responses_merge_byte_identical() {
    use tpe_engine::serve::handle_request;
    const FILTER: &str = "OPT1(TPU)/28nm@1.50,precision=w8";
    let cache = EngineCache::new();
    for op in ["sweep", "pareto"] {
        let single_req =
            format!(r#"{{"id":7,"op":"{op}","filter":"{FILTER}","seed":42,"points":true}}"#);
        let (single, _) = handle_request(&single_req, &cache, &tpe_dse::DseOps);
        for n in 1..=4usize {
            let mut groups: Vec<Vec<String>> = (0..n)
                .map(|k| {
                    let req = format!(
                        r#"{{"id":7,"op":"{op}","filter":"{FILTER}","seed":42,"points":true,"shard":"{k}/{n}"}}"#
                    );
                    handle_request(&req, &cache, &tpe_dse::DseOps).0
                })
                .collect();
            // Any shard→process assignment: rotate the group order.
            groups.rotate_left(n / 2);
            let merged = tpe_dse::merge_shard_responses(&groups)
                .unwrap_or_else(|e| panic!("merge failed for {op} n={n}: {e}"));
            assert_eq!(merged, single, "{op} with {n} shards diverged");
        }
    }
}

/// The paper-default space satisfies the sweep-scale acceptance bar.
#[test]
fn paper_default_space_is_large_and_mostly_feasible() {
    let points = DesignSpace::paper_default().enumerate();
    assert!(points.len() >= 200, "{} points", points.len());
    // Sweep a fast serial-free slice to keep the debug-profile test quick.
    let dense: Vec<_> = points
        .iter()
        .filter(|p| matches!(p.kind(), ArchKind::Dense(_)))
        .cloned()
        .collect();
    let outcome = sweep(
        &dense,
        SweepConfig {
            threads: 4,
            seed: 3,
            ..SweepConfig::default()
        },
    );
    assert!(outcome.feasible_count() > dense.len() / 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm state survives the disk round trip intact: a sweep re-run
    /// from a saved-then-loaded snapshot misses the cache zero times and
    /// emits byte-identical CSV to the in-process warm sweep, for any
    /// seed and thread count.
    #[test]
    fn snapshot_round_trip_preserves_sweep_bytes(
        seed in 0u64..u64::MAX,
        threads in 1usize..4,
    ) {
        let points = DesignSpace::quick().enumerate();
        let config = SweepConfig { threads, seed, ..SweepConfig::default() };
        let csv_of = |outcome: &tpe_dse::SweepOutcome| {
            let front = pareto_front(&outcome.results, &Objective::DEFAULT);
            to_csv(&outcome.results, &front)
        };
        let cold_cache = EngineCache::new();
        let cold = sweep_with_cache(&points, config, &cold_cache);

        let path = std::env::temp_dir().join(format!(
            "tpe-prop-snap-{}-{seed:x}.bin",
            std::process::id()
        ));
        tpe_engine::snapshot::save(&cold_cache, &path).unwrap();
        let warm_cache = EngineCache::new();
        let info = tpe_engine::snapshot::load(&warm_cache, &path).unwrap().unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert!(info.entries > 0);

        let warm = sweep_with_cache(&points, config, &warm_cache);
        prop_assert_eq!(
            warm.cache.misses(), 0,
            "snapshot-warmed sweep must be all hits: {:?}", warm.cache
        );
        prop_assert_eq!(csv_of(&cold), csv_of(&warm));
    }
}
