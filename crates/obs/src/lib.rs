#![warn(missing_docs)]

//! # tpe-obs
//!
//! Std-only observability primitives for the serving stack: atomic
//! [`Counter`]s and [`Gauge`]s, fixed-bucket log2 latency [`Histogram`]s
//! (p50/p90/p99 derivable from the buckets, max tracked exactly), a
//! named-metric [`Registry`] with a process-wide instance, and scoped
//! [`Span`] timers. Zero dependencies, zero allocation on the hot path:
//! recording into any metric is one or two relaxed atomic RMWs, so
//! instrumentation can stay always-on even around the ~100 ns warm
//! pricing path (`tpe-engine` pins the added cost with a criterion
//! bench).
//!
//! ## Design
//!
//! * **Handles, not lookups.** [`Registry::counter`] & friends
//!   get-or-register by name and return an [`Arc`] handle;
//!   instrumentation sites resolve their handles once (typically in a
//!   `OnceLock`) and touch only the atomics afterwards. The registry
//!   lock is never on a hot path.
//! * **Log2 buckets.** A histogram has 64 buckets: bucket 0 holds the
//!   value 0 and bucket *i* holds values in `[2^(i-1), 2^i)` (the last
//!   bucket is open-ended). Quantiles interpolate linearly *within* the
//!   covering bucket (by the rank's position among the bucket's samples)
//!   and are capped by the exactly-tracked max, so the overshoot is far
//!   below the full bucket width for mid-bucket ranks. Bucket counts
//!   subtract field-wise ([`HistogramSnapshot::since`]), so windowed
//!   percentiles over a long-running server need only two snapshots.
//! * **Snapshots diff.** [`Registry::snapshot`] captures every metric
//!   into plain maps; [`Snapshot::since`] subtracts an earlier snapshot
//!   to isolate one batch/window. External counters (e.g. the engine
//!   cache's hit/miss atomics) fold into a snapshot via
//!   [`Snapshot::set_counter`] so one exposition covers them too.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Number of log2 buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count (relaxed atomics only).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level that can go up and down (e.g. in-flight
/// requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket index of a recorded value: 0 for 0, otherwise the bit length
/// of the value (capped to the open-ended last bucket).
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the open-ended
/// last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log2 histogram of non-negative values (latencies in
/// nanoseconds, by convention). Recording is two relaxed `fetch_add`s
/// plus a relaxed `fetch_max` — cheap enough for always-on use.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A scoped timer recording into this histogram when dropped.
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: Instant::now(),
        }
    }

    /// Runs `f`, recording its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _span = self.span();
        f()
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A scoped span timer: records the elapsed wall-clock into its
/// histogram when dropped (early returns and `?` included).
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span<'h> {
    hist: &'h Histogram,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Plain-data state of one histogram: the 64 log2 bucket counts, the
/// value sum, and the exact max.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts, indexed as in [`bucket_upper`].
    pub buckets: Vec<u64>,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact; for windowed snapshots this is the
    /// all-time max, an upper bound on the window's).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Rebuilds a snapshot from serialized parts (buckets shorter than
    /// [`HISTOGRAM_BUCKETS`] — e.g. with trailing zeros trimmed on the
    /// wire — are zero-padded).
    pub fn from_parts(mut buckets: Vec<u64>, sum: u64, max: u64) -> Self {
        buckets.resize(HISTOGRAM_BUCKETS, 0);
        Self { buckets, sum, max }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`): the nearest-rank sample's bucket,
    /// linearly interpolated between the bucket's bounds by the rank's
    /// position among that bucket's samples, capped by the tracked max.
    /// A rank that is the bucket's last sample reports the bucket upper
    /// bound (so a one-sample bucket behaves exactly as before); interior
    /// ranks land proportionally inside the bucket, bounding quantile
    /// overshoot well under the 2× a bare upper-bound report allows. 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            let before = cum;
            cum += c;
            if cum >= rank {
                if rank == cum {
                    return bucket_upper(i).min(self.max);
                }
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let width = (bucket_upper(i) - lower) as f64;
                let pos = (rank - before) as f64 / *c as f64;
                let est = lower as f64 + pos * width;
                return (est.round() as u64).min(self.max);
            }
        }
        self.max
    }

    /// Bucket-wise delta against an earlier snapshot of the same
    /// histogram — windowed counts for per-batch percentiles. `max` is
    /// inherited from `self` (an upper bound on the window's max).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named-metric registry. Get-or-register returns shared handles;
/// [`Registry::snapshot`] captures everything at once. Most callers want
/// [`Registry::global`]; isolated instances exist for exact-count tests.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty, isolated registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide instance every default instrumentation site
    /// registers into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            // Anchor the uptime epoch no later than first registry use.
            let _ = process_start();
            Registry::new()
        })
    }

    fn get_or_register<T>(
        &self,
        name: &str,
        wrap: impl Fn(Arc<T>) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<T>>,
        kind: &str,
    ) -> Arc<T>
    where
        T: Default,
    {
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(name) {
            return unwrap(m).unwrap_or_else(|| {
                panic!("metric `{name}` already registered with another kind (wanted {kind})")
            });
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| wrap(Arc::new(T::default())));
        unwrap(entry).unwrap_or_else(|| {
            panic!("metric `{name}` already registered with another kind (wanted {kind})")
        })
    }

    /// Get-or-register a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_register(
            name,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            "counter",
        )
    }

    /// Get-or-register a gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_register(
            name,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            "gauge",
        )
    }

    /// Get-or-register a histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as another metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_register(
            name,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            "histogram",
        )
    }

    /// Captures every registered metric into plain maps.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.read().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// A point-in-time capture of a registry (plus any folded-in external
/// counters), diffable and renderable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Named counter values, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Named gauge levels, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Named histogram states, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// One counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// One gauge's level, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// One histogram's state, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds an external counter (e.g. a cache's hit/miss atomics) into
    /// the snapshot so one exposition covers metrics the registry does
    /// not own.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Folds an external gauge level into the snapshot.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Deltas against an earlier snapshot: counters and histogram
    /// buckets subtract (saturating; metrics absent earlier count from
    /// zero), gauges keep their current level (levels do not subtract).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let empty_hist = HistogramSnapshot::default();
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        h.since(earlier.histograms.get(k).unwrap_or(&empty_hist)),
                    )
                })
                .collect(),
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format,
    /// every metric name prefixed with `{prefix}_`. Counters render as
    /// `counter`, gauges as `gauge`, histograms as `summary` with
    /// p50/p90/p99 quantile series plus `_sum`/`_count`/`_max`.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        let name = |n: &str| {
            let mut s = format!("{prefix}_{n}");
            s.retain(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
            s
        };
        for (n, v) in &self.counters {
            let n = name(n);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (n, v) in &self.gauges {
            let n = name(n);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (n, h) in &self.histograms {
            let n = name(n);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
            }
            out.push_str(&format!(
                "{n}_sum {}\n{n}_count {}\n{n}_max {}\n",
                h.sum,
                h.count(),
                h.max
            ));
        }
        out
    }
}

/// The process's observability epoch: the instant of the first call
/// (anchored by [`Registry::global`], so in practice ~process start for
/// any instrumented binary).
pub fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Milliseconds elapsed since [`process_start`].
pub fn uptime_ms() -> u64 {
    u64::try_from(process_start().elapsed().as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_geometry_is_log2_with_exact_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound lands back in that bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i}");
            assert_eq!(bucket_index(bucket_upper(i) + 1), i + 1, "bucket {i}+1");
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_bound_the_order_statistics() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 9, 100, 1000, 1000, 4096] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.max, 4096);
        assert_eq!(s.sum, 6211);
        // The quantile never undershoots the true order statistic and
        // never overshoots 2x (or the exact max).
        let sorted = [0u64, 1, 5, 9, 100, 1000, 1000, 4096];
        for (q, true_v) in [(0.5, sorted[3]), (0.9, sorted[7]), (1.0, sorted[7])] {
            let est = s.quantile(q);
            assert!(est >= true_v, "q{q}: {est} < {true_v}");
            assert!(est <= (2 * true_v).max(1), "q{q}: {est} > 2x{true_v}");
        }
        assert_eq!(s.quantile(1.0), 4096, "q1.0 is the exact max");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_windows_subtract_bucketwise() {
        let h = Histogram::new();
        h.record(10);
        h.record(10_000);
        let early = h.snapshot();
        for _ in 0..10 {
            h.record(100);
        }
        let window = h.snapshot().since(&early);
        assert_eq!(window.count(), 10);
        assert_eq!(window.sum, 1000);
        // Rank 5 of the 10 samples in bucket [64, 127]: interpolation
        // reports 64 + (5/10)·63 ≈ 96, not the bare upper bound 127.
        assert_eq!(window.quantile(0.5), 96);
        assert!(window.quantile(0.5) < bucket_upper(bucket_index(100)));
        // Round-trip through trimmed wire form.
        let mut trimmed = window.buckets.clone();
        while trimmed.last() == Some(&0) {
            trimmed.pop();
        }
        let rebuilt = HistogramSnapshot::from_parts(trimmed, window.sum, window.max);
        assert_eq!(rebuilt, window);
    }

    /// Within-bucket linear interpolation: interior ranks land
    /// proportionally inside the covering bucket, the bucket's last rank
    /// still reports the (max-capped) upper bound, and a single huge
    /// sample cannot drag mid quantiles to the open bucket's bound.
    #[test]
    fn quantiles_interpolate_within_the_covering_bucket() {
        let h = Histogram::new();
        for _ in 0..4 {
            h.record(1023); // bucket [512, 1023], four samples
        }
        let s = h.snapshot();
        // Ranks 1..4 of 4 at q = .25/.5/.75/1: 512 + k/4 · 511.
        assert_eq!(s.quantile(0.25), 640);
        assert_eq!(s.quantile(0.5), 768);
        assert_eq!(s.quantile(0.75), 895);
        assert_eq!(s.quantile(1.0), 1023, "last rank is the upper bound");

        // A p99 rank interior to a sparse tail bucket interpolates
        // instead of reporting the full 2^k bound (the serve-smoke
        // server-p99 pathology this change removes).
        let tail = Histogram::new();
        for _ in 0..95 {
            tail.record(800_000);
        }
        for _ in 0..4 {
            tail.record(1_200_000);
        }
        tail.record(2_000_000);
        let t = tail.snapshot();
        // Rank 99 is the 4th of 5 samples in [2^20, 2^21): 1048576 +
        // (4/5)·1048575 = 1887436, not the bucket bound 2097151.
        assert_eq!(t.quantile(0.99), 1_887_436);
        assert_eq!(t.quantile(1.0), 2_000_000, "exact max");
    }

    #[test]
    fn span_and_time_record_durations() {
        let h = Histogram::new();
        {
            let _span = h.span();
            std::hint::black_box(0);
        }
        let out = h.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(h.count(), 2);
        let d = Histogram::new();
        d.record_duration(Duration::from_micros(3));
        assert_eq!(d.snapshot().sum, 3000);
    }

    #[test]
    fn registry_returns_shared_handles_and_snapshots() {
        let reg = Registry::new();
        let a = reg.counter("requests");
        let b = reg.counter("requests");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name, same counter");
        reg.gauge("inflight").set(3);
        reg.histogram("latency_ns").record(1500);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests"), Some(2));
        assert_eq!(snap.gauge("inflight"), Some(3));
        assert_eq!(snap.histogram("latency_ns").unwrap().count(), 1);
        assert_eq!(snap.counter("absent"), None);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn registry_rejects_kind_collisions() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_since_isolates_a_window() {
        let reg = Registry::new();
        let c = reg.counter("n");
        let h = reg.histogram("t");
        c.add(5);
        h.record(7);
        let before = reg.snapshot();
        c.add(3);
        h.record(9);
        reg.counter("fresh").inc(); // registered mid-window
        let delta = reg.snapshot().since(&before);
        assert_eq!(delta.counter("n"), Some(3));
        assert_eq!(
            delta.counter("fresh"),
            Some(1),
            "absent earlier counts from zero"
        );
        assert_eq!(delta.histogram("t").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_folds_external_counters_and_renders_prometheus() {
        let reg = Registry::new();
        reg.counter("reqs").add(12);
        reg.gauge("inflight").set(2);
        reg.histogram("eval_ns").record(900);
        let mut snap = reg.snapshot();
        snap.set_counter("cache_hits", 99);
        snap.set_gauge("entries", 4);
        let text = snap.render_prometheus("tpe");
        for needle in [
            "# TYPE tpe_reqs counter\ntpe_reqs 12",
            "# TYPE tpe_cache_hits counter\ntpe_cache_hits 99",
            "# TYPE tpe_inflight gauge\ntpe_inflight 2",
            "tpe_entries 4",
            "# TYPE tpe_eval_ns summary",
            "tpe_eval_ns{quantile=\"0.5\"} 900",
            "tpe_eval_ns_count 1",
            "tpe_eval_ns_max 900",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn uptime_is_monotone() {
        let a = uptime_ms();
        let b = uptime_ms();
        assert!(b >= a);
        let _ = Registry::global().counter("tpe_obs_test_touch");
    }
}
