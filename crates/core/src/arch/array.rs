//! Array-level assembly: PEs + SIMD vector core + shared row logic →
//! Table VII rows (area, power, peak TOPS, efficiencies).

use super::designs::PeStyle;
use super::ArchModel;
use tpe_cost::components::Component;

/// Effective average NumPPs of EN-T-encoded normally distributed INT8
/// operands — the divisor in the serial designs' peak-throughput
/// accounting. Table III reports 2.22–2.27; Table VII's peak numbers
/// (e.g. OPT3 = 1.80 TOPS at 2 GHz) correspond to 2.27.
pub const EFFECTIVE_NUMPPS_NORMAL: f64 = 2.27;

/// Fixed interconnect/control overhead on top of PE + SIMD + row logic.
/// Table VII's TPU row (370,631 µm² for 1024 PEs) implies the paper counts
/// essentially PE array + support only.
pub const ARRAY_OVERHEAD_FRAC: f64 = 0.02;

/// One assembled Table VII row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Design label.
    pub name: String,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Total array area (µm²).
    pub area_um2: f64,
    /// Total power (W) under dense normally-distributed GEMM.
    pub power_w: f64,
    /// Peak performance (TOPS, 2 ops per MAC).
    pub peak_tops: f64,
}

impl Table7Row {
    /// Energy efficiency in TOPS/W.
    pub fn energy_efficiency(&self) -> f64 {
        self.peak_tops / self.power_w
    }

    /// Area efficiency in TOPS/mm².
    pub fn area_efficiency(&self) -> f64 {
        self.peak_tops / (self.area_um2 / 1e6)
    }
}

/// Assembles array-level cost from an [`ArchModel`].
#[derive(Debug, Clone)]
pub struct ArrayModel {
    arch: ArchModel,
}

impl ArrayModel {
    /// Wraps an architecture.
    pub fn new(arch: ArchModel) -> Self {
        Self { arch }
    }

    /// The wrapped architecture.
    pub fn arch(&self) -> &ArchModel {
        &self.arch
    }

    /// Support logic outside the PEs, per the paper's figures:
    ///
    /// * OPT1/OPT2 relocate the full `add`/`shift` into a SIMD vector core
    ///   of `⌈MP·NP/K⌉` lanes (§IV-A) — 32 lanes for a 32×32 array at
    ///   K = 32.
    /// * OPT4C/OPT4E share 2 encoders + sparse encoders per PE column and
    ///   add B-prefetch address logic (§IV-D).
    /// * OPT3 keeps everything inside the PEs.
    ///
    /// The paper's designs stream EN-T digits; see
    /// [`Self::support_area_um2_for`] for other encodings.
    pub fn support_area_um2(&self) -> f64 {
        self.support_area_um2_for(tpe_arith::encode::EncodingKind::EnT)
    }

    /// [`Self::support_area_um2`] with the shared digit recoders priced
    /// for `encoding` (only OPT4C/OPT4E carry encoding-dependent support
    /// hardware; see [`super::designs::encoder_component`]).
    pub fn support_area_um2_for(&self, encoding: tpe_arith::encode::EncodingKind) -> f64 {
        self.support_area_um2_with(encoding, tpe_arith::Precision::W8)
    }

    /// [`Self::support_area_um2_for`] at an arbitrary operand precision:
    /// the SIMD vector-core lanes resolve at the accumulator width and the
    /// OPT4 shared encoders/sparse encoders cover the multiplicand's digit
    /// slots, so support logic scales with precision just like the PEs.
    pub fn support_area_um2_with(
        &self,
        encoding: tpe_arith::encode::EncodingKind,
        precision: tpe_arith::Precision,
    ) -> f64 {
        let rows = (self.arch.pe_instances as f64).sqrt().round() as u32;
        let simd_lane = Component::SimdLane {
            width: precision.acc_bits,
        }
        .cost()
        .area_um2;
        match self.arch.style {
            PeStyle::TraditionalMac => 0.0,
            PeStyle::Opt1 | PeStyle::Opt2 => {
                let lanes = self.arch.pe_instances.div_ceil(32) as f64;
                lanes * simd_lane
            }
            PeStyle::Opt3 => {
                let lanes = self.arch.pe_instances.div_ceil(32) as f64;
                lanes * simd_lane
            }
            PeStyle::Opt4C | PeStyle::Opt4E => {
                let enc = super::designs::encoder_component_for(encoding, precision.a_bits)
                    .cost()
                    .area_um2
                    + Component::SparseEncoder {
                        digits: precision.digits(),
                    }
                    .cost()
                    .area_um2;
                let prefetch = 40.0; // address generation + B staging per row
                let simd = self.arch.pe_instances.div_ceil(32) as f64 * simd_lane;
                f64::from(rows) * (2.0 * enc + prefetch) + simd
            }
        }
    }

    /// Peak TOPS: dense designs deliver 2 ops/lane/cycle; serial designs
    /// divide by the effective NumPPs of the encoding.
    pub fn peak_tops(&self) -> f64 {
        let lanes = self.arch.lanes() as f64;
        let raw = lanes * 2.0 * self.arch.freq_ghz * 1e9 / 1e12;
        if self.arch.style.is_serial() {
            raw / EFFECTIVE_NUMPPS_NORMAL
        } else {
            raw
        }
    }

    /// Assembles the Table VII row at the architecture's paper frequency.
    ///
    /// # Panics
    ///
    /// Panics if the PE design cannot close timing at that frequency.
    pub fn table7_row(&self) -> Table7Row {
        let pe = self
            .arch
            .pe_design()
            .synthesize(self.arch.freq_ghz)
            .unwrap_or_else(|| {
                panic!(
                    "{} cannot close timing at {} GHz",
                    self.arch.name, self.arch.freq_ghz
                )
            });
        let pes = self.arch.pe_instances as f64;
        let area = (pe.area_um2 * pes + self.support_area_um2()) * (1.0 + ARRAY_OVERHEAD_FRAC);
        // Dense sweeps keep every PE busy; serial designs toggle the
        // datapath every cycle too (they only skip *zero* digits).
        let pe_power_uw = pe.busy_power_uw();
        let power_w = pe_power_uw * pes * 1e-6 * (1.0 + ARRAY_OVERHEAD_FRAC);
        Table7Row {
            name: self.arch.name.clone(),
            freq_mhz: self.arch.freq_ghz * 1e3,
            area_um2: area,
            power_w,
            peak_tops: self.peak_tops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_cost::anchors;

    fn row(name: &str) -> Table7Row {
        let arch = ArchModel::table7_ours()
            .into_iter()
            .chain(ArchModel::table7_baselines())
            .find(|a| a.name == name)
            .unwrap();
        ArrayModel::new(arch).table7_row()
    }

    /// The assembled TPU row lands near the paper's area and power.
    #[test]
    fn tpu_row_matches_paper_scale() {
        let r = row("TPU");
        let paper = &anchors::TABLE7_OTHERS[0];
        assert!(
            (r.area_um2 - paper.area_um2).abs() / paper.area_um2 < 0.12,
            "area {} vs paper {}",
            r.area_um2,
            paper.area_um2
        );
        assert!(
            (r.power_w - paper.power_w).abs() / paper.power_w < 0.30,
            "power {} vs paper {}",
            r.power_w,
            paper.power_w
        );
        assert!((r.peak_tops - 2.05).abs() < 0.01);
    }

    /// Peak TOPS reproduce Table VII exactly (they are frequency × lanes
    /// arithmetic).
    #[test]
    fn peak_tops_match_table7() {
        assert!((row("OPT1(TPU)").peak_tops - 3.07).abs() < 0.01);
        assert!((row("OPT3").peak_tops - 1.80).abs() < 0.02);
        assert!((row("OPT4C").peak_tops - 2.25).abs() < 0.03);
        assert!((row("OPT4E").peak_tops - 7.22).abs() < 0.08);
    }

    /// The paper's headline ratios, reproduced in shape: OPT1 improves
    /// area efficiency over every dense baseline it retrofits.
    #[test]
    fn opt1_improves_area_efficiency() {
        for (base, opt) in [
            ("TPU", "OPT1(TPU)"),
            ("Ascend", "OPT1(Ascend)"),
            ("Trapezoid", "OPT1(Trapezoid)"),
            ("FlexFlow", "OPT1(FlexFlow)"),
        ] {
            let b = row(base);
            let o = row(opt);
            let ratio = o.area_efficiency() / b.area_efficiency();
            assert!(
                ratio > 1.1,
                "{opt} AE ratio {ratio:.2} should exceed 1.1 (paper: 1.27–1.56)"
            );
        }
    }

    /// OPT4E delivers the highest area efficiency of the serial designs —
    /// the computational-density claim of §V-C.
    #[test]
    fn opt4e_is_densest_serial_design() {
        let o3 = row("OPT3");
        let o4c = row("OPT4C");
        let o4e = row("OPT4E");
        assert!(o4c.area_efficiency() > o3.area_efficiency());
        assert!(o4e.area_efficiency() > o3.area_efficiency());
        assert!(o4e.peak_tops > 3.0 * o3.peak_tops);
    }
}
