//! The paper's processing-element architectures and their array-level
//! assembly: the machinery behind Figure 9 and Table VII.

pub mod array;
pub mod designs;
pub mod simd_core;
pub mod workload;

pub use array::{ArrayModel, Table7Row};
pub use designs::PeStyle;

use tpe_cost::PeDesign;
use tpe_sim::array::ClassicArch;
use tpe_sim::BitsliceConfig;

/// What kind of array an architecture model drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchKind {
    /// A dense classic topology (optionally retrofitted with OPT1/OPT2).
    Dense(ClassicArch),
    /// A column-synchronous bit-slice array (OPT3/OPT4C/OPT4E).
    Serial,
}

/// A complete architecture: PE design + array organization.
#[derive(Debug, Clone)]
pub struct ArchModel {
    /// Display name ("OPT1(TPU)", "OPT4E", ...).
    pub name: String,
    /// The PE (or PE-group) microarchitecture.
    pub style: PeStyle,
    /// Array organization.
    pub kind: ArchKind,
    /// Number of PE (or PE-group) instances in the array.
    pub pe_instances: usize,
    /// The clock the paper synthesizes this design at (GHz).
    pub freq_ghz: f64,
}

impl ArchModel {
    /// The PE design, ready for synthesis, at the paper's W8 precision.
    /// Dense topologies get their per-architecture composition (the
    /// reduction logic each PE carries differs across the four classic
    /// arrays).
    pub fn pe_design(&self) -> PeDesign {
        self.pe_design_for(tpe_arith::Precision::W8)
    }

    /// [`Self::pe_design`] at an arbitrary operand precision.
    pub fn pe_design_for(&self, precision: tpe_arith::Precision) -> PeDesign {
        match (self.style, self.kind) {
            (PeStyle::TraditionalMac, ArchKind::Dense(arch)) => {
                PeStyle::dense_baseline_pe_for(arch, precision)
            }
            (PeStyle::Opt1, ArchKind::Dense(arch)) => {
                PeStyle::Opt1.dense_opt1_pe_for(arch, precision)
            }
            _ => self.style.design_for(precision),
        }
    }

    /// Total MAC lanes (PE instances × lanes per instance).
    pub fn lanes(&self) -> usize {
        self.pe_instances * self.style.lanes() as usize
    }

    /// The bit-slice configuration for serial architectures.
    ///
    /// # Panics
    ///
    /// Panics if called on a dense architecture.
    pub fn bitslice_config(&self) -> BitsliceConfig {
        match self.style {
            PeStyle::Opt3 => BitsliceConfig::opt3(),
            PeStyle::Opt4C => BitsliceConfig::opt4c(),
            PeStyle::Opt4E => BitsliceConfig::opt4e(),
            _ => panic!("{} is not a serial architecture", self.name),
        }
    }

    /// All sixteen Table VII configurations (8 baseline + 8 "ours").
    pub fn table7_ours() -> Vec<ArchModel> {
        use ClassicArch::*;
        let dense = |name: &str, style, arch, pes, f| ArchModel {
            name: name.into(),
            style,
            kind: ArchKind::Dense(arch),
            pe_instances: pes,
            freq_ghz: f,
        };
        let serial = |name: &str, style, pes, f| ArchModel {
            name: name.into(),
            style,
            kind: ArchKind::Serial,
            pe_instances: pes,
            freq_ghz: f,
        };
        vec![
            dense("OPT1(TPU)", PeStyle::Opt1, Tpu, 1024, 1.5),
            dense("OPT1(Ascend)", PeStyle::Opt1, Ascend, 1000, 1.5),
            dense("OPT1(Trapezoid)", PeStyle::Opt1, Trapezoid, 1024, 1.5),
            dense("OPT1(FlexFlow)", PeStyle::Opt1, FlexFlow, 1024, 1.5),
            dense("OPT2(FlexFlow)", PeStyle::Opt2, FlexFlow, 1024, 1.5),
            serial("OPT3", PeStyle::Opt3, 1024, 2.0),
            serial("OPT4C", PeStyle::Opt4C, 1024, 2.5),
            serial("OPT4E", PeStyle::Opt4E, 1024, 2.0),
        ]
    }

    /// The four classic dense baselines at their Table VII configurations.
    pub fn table7_baselines() -> Vec<ArchModel> {
        use ClassicArch::*;
        [Tpu, Ascend, Trapezoid, FlexFlow]
            .into_iter()
            .map(|arch| ArchModel {
                name: match arch {
                    Tpu => "TPU",
                    Ascend => "Ascend",
                    Trapezoid => "Trapezoid",
                    FlexFlow => "FlexFlow",
                }
                .into(),
                style: PeStyle::TraditionalMac,
                kind: ArchKind::Dense(arch),
                pe_instances: if arch == Ascend { 1000 } else { 1024 },
                freq_ghz: 1.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_configs_match_paper() {
        let ours = ArchModel::table7_ours();
        assert_eq!(ours.len(), 8);
        let opt4e = ours.iter().find(|a| a.name == "OPT4E").unwrap();
        assert_eq!(opt4e.lanes(), 4096, "32×32 groups × 4 lanes");
        assert_eq!(opt4e.freq_ghz, 2.0);
        let opt1 = &ours[0];
        assert_eq!(opt1.freq_ghz, 1.5);
        assert_eq!(opt1.lanes(), 1024);
    }

    #[test]
    #[should_panic(expected = "not a serial architecture")]
    fn dense_arch_has_no_bitslice_config() {
        ArchModel::table7_baselines()[0].bitslice_config();
    }
}
