//! The external SIMD vector core that hosts the relocated `add`/`shift`
//! operations (§IV-A).
//!
//! OPT1 defers each PE's carry-propagating add to the end of its K-cycle
//! reduction, so the array emits `MP·NP` redundant pairs every `K` cycles.
//! The paper's sizing claim: *"fewer hardware resources (⌈MP·NP/K⌉) are
//! required to accomplish these tasks"* — one pipelined adder lane can
//! absorb one result per cycle, so ⌈MP·NP/K⌉ lanes absorb the steady-state
//! stream. This module proves the claim with a queue simulation and prices
//! the core.

use tpe_cost::components::Component;

/// Sizing and occupancy analysis for the SIMD vector core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdCoreSizing {
    /// PE rows (MP).
    pub mp: usize,
    /// PE columns (NP).
    pub np: usize,
    /// Reduction length between drains.
    pub k: usize,
}

impl SimdCoreSizing {
    /// Creates the sizing problem.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(mp: usize, np: usize, k: usize) -> Self {
        assert!(mp > 0 && np > 0 && k > 0);
        Self { mp, np, k }
    }

    /// The paper's lane count: ⌈MP·NP / K⌉.
    pub fn required_lanes(&self) -> usize {
        (self.mp * self.np).div_ceil(self.k)
    }

    /// Queue simulation: PEs drain round-robin, one result each per K-cycle
    /// window (PE `i` drains at cycle `(i mod K) + window·K`). Returns the
    /// maximum backlog a core with `lanes` pipelined lanes accumulates over
    /// `windows` reduction windows.
    pub fn max_backlog(&self, lanes: usize, windows: usize) -> usize {
        let pes = self.mp * self.np;
        let mut backlog = 0usize;
        let mut worst = 0usize;
        for _ in 0..windows {
            for cycle in 0..self.k {
                // Results arriving this cycle: PEs whose drain slot is
                // `cycle` (spread evenly by the staggered schedule).
                let arriving = pes / self.k + usize::from(cycle < pes % self.k);
                backlog += arriving;
                backlog = backlog.saturating_sub(lanes);
                worst = worst.max(backlog);
            }
        }
        worst
    }

    /// Area of the sized core (lanes × adder+shifter+regs).
    pub fn area_um2(&self) -> f64 {
        self.required_lanes() as f64 * Component::SimdLane { width: 32 }.cost().area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §IV-A claim: ⌈MP·NP/K⌉ lanes keep the backlog bounded (no
    /// growth across windows), while one lane fewer diverges.
    #[test]
    fn paper_lane_count_is_sufficient_and_tight() {
        for (mp, np, k) in [(32, 32, 32), (32, 32, 64), (16, 16, 100), (8, 8, 3)] {
            let s = SimdCoreSizing::new(mp, np, k);
            let lanes = s.required_lanes();
            let short = s.max_backlog(lanes, 4);
            let long = s.max_backlog(lanes, 16);
            assert_eq!(short, long, "backlog must not grow: {mp}x{np}/{k}");
            if lanes > 1 {
                let deficit_short = s.max_backlog(lanes - 1, 4);
                let deficit_long = s.max_backlog(lanes - 1, 16);
                assert!(
                    deficit_long > deficit_short,
                    "an undersized core must fall behind: {mp}x{np}/{k}"
                );
            }
        }
    }

    /// Table VII's configuration: a 32×32 array at K = 32 needs 32 lanes.
    #[test]
    fn table7_sizing() {
        let s = SimdCoreSizing::new(32, 32, 32);
        assert_eq!(s.required_lanes(), 32);
        // Deep reductions shrink the core: K = 512 → 2 lanes.
        assert_eq!(SimdCoreSizing::new(32, 32, 512).required_lanes(), 2);
    }

    /// The SIMD core is a rounding error next to the PE array — the reason
    /// relocating the adds wins.
    #[test]
    fn core_is_small_relative_to_array() {
        let s = SimdCoreSizing::new(32, 32, 32);
        let pe_array = 1024.0
            * crate::arch::PeStyle::Opt1
                .design()
                .synthesize(1.5)
                .unwrap()
                .area_um2;
        assert!(
            s.area_um2() < 0.05 * pe_array,
            "{} vs {}",
            s.area_um2(),
            pe_array
        );
    }
}
