//! Workload-level evaluation: per-layer delay / utilization / energy for
//! the Figure 11–13 comparisons (OPT4E vs an equal-area parallel-MAC TPE).
//!
//! ## Layer mapping model
//!
//! The serial array maps the *multiplicand* operand — weights for linear /
//! conv layers, the cached K/V matrices for attention — across its MP
//! columns: each sync round assigns one multiplicand row (or a batch of
//! small-K rows, so a round always covers ≥ [`KT_MIN_OPERANDS`] operands)
//! to every column. A column's round time is the total number of non-zero
//! EN-T digits in its rows; the `sync` barrier waits for the slowest
//! column (Eq. 7), and §VI's broadcast argument makes all lanes within a
//! column finish together. Utilization is therefore governed by the
//! digit-count variance across rows — high for K = 9 depthwise layers,
//! negligible for K ≥ 768 transformer layers — reproducing Figure 11's
//! texture.
//!
//! This is a statistical layer model; the bit-exact engine for full GEMMs
//! is [`tpe_sim::BitsliceArray`], validated separately.

use super::designs::PeStyle;
use super::{ArchKind, ArchModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tpe_arith::encode::Encoder;
use tpe_sim::array::{DenseArray, SystolicArray};
use tpe_sim::BitsliceConfig;
use tpe_workloads::LayerShape;

/// Minimum operands per synchronization round: small-K rows (depthwise
/// kernels) are batched until a round covers at least this many operands,
/// matching the paper's `Tsync ≤ KT × KP` granularity.
pub const KT_MIN_OPERANDS: usize = 32;

/// Operand count per sync round above which [`analytic_serial_cycles`]
/// hands the exact digit-sum convolution over to the CLT tail
/// approximation. Batching guarantees ≥ [`KT_MIN_OPERANDS`] operands per
/// round, so the exact path only ever convolves 32..=64 operands; beyond
/// that the Berry–Esseen bound on the normalized digit-sum CDF error
/// (≈ `0.47·ρ/(σ³√n)` < 0.4% at n = 64 for every supported encoder ×
/// width) is far below the sampler's own Monte-Carlo noise.
pub const CONV_CROSSOVER_OPERANDS: usize = 64;

/// Which backend evaluates the statistical serial-cycle model.
///
/// Both produce [`SerialCycleStats`] for the same layer mapping; they
/// differ only in how the per-round column maximum of digit sums is
/// obtained. `Sampled` is the original Monte-Carlo path and serves as the
/// test oracle; `Analytic` evaluates the same distribution in closed form
/// (exact convolution, CLT above [`CONV_CROSSOVER_OPERANDS`]) and is both
/// seed-independent and orders of magnitude faster on cold evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleModel {
    /// Monte-Carlo digit sampling ([`sample_serial_cycles`]) — the oracle.
    #[default]
    Sampled,
    /// Closed-form convolution/CLT evaluation ([`analytic_serial_cycles`]).
    Analytic,
}

impl CycleModel {
    /// Every mode, in display order.
    pub const ALL: [CycleModel; 2] = [CycleModel::Sampled, CycleModel::Analytic];

    /// Stable lower-case label (`"sampled"` / `"analytic"`), used by CLI
    /// flags, serve requests, and cache-key displays.
    pub const fn name(self) -> &'static str {
        match self {
            CycleModel::Sampled => "sampled",
            CycleModel::Analytic => "analytic",
        }
    }

    /// Parses a case-insensitive mode label.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "sampled" => Some(CycleModel::Sampled),
            "analytic" => Some(CycleModel::Analytic),
            _ => None,
        }
    }
}

/// Sampling caps for the statistical serial-layer model. Rounds are
/// i.i.d., so capping keeps the estimate unbiased; totals are rescaled.
/// The defaults suit single experiments; `tpe-dse` sweeps hundreds of
/// points and passes tighter caps.
///
/// The caps also carry the [`CycleModel`]: the analytic backend ignores
/// the numeric budgets (it evaluates the full distribution), but keeping
/// the mode here lets every existing caps-threading path — profiles,
/// grids, serve requests — select the backend without new plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialSampleCaps {
    /// Cap on sampled sync rounds per layer.
    pub max_rounds: usize,
    /// Budget of sampled operands per layer.
    pub max_operands: usize,
    /// Which backend evaluates the serial-cycle statistics.
    pub model: CycleModel,
}

impl Default for SerialSampleCaps {
    fn default() -> Self {
        Self {
            max_rounds: 128,
            max_operands: 1_500_000,
            model: CycleModel::Sampled,
        }
    }
}

/// Gaussian-weighted digit-count histogram of `encoder` on max-abs-
/// quantized N(0, 1) data at `a_bits` operand width: unnormalized
/// `P(NumPPs = j)` weights plus their total (index range `0..=a_bits` —
/// radix-2 bit-serial produces one digit per bit, the worst case). The
/// single source of truth for both the sampling CDF and the
/// effective-NumPPs statistic.
///
/// The histogram is a pure function of (encoder, width) but costs a full
/// range enumeration (2^16 encodes at W16), so it is memoized
/// process-wide on the encoder's stable name — memoization can never
/// change values, only skip recomputation.
fn digit_count_weights(encoder: &dyn Encoder, a_bits: u32) -> (Vec<f64>, f64) {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    type WeightMemo = RwLock<HashMap<(&'static str, u32), (Vec<f64>, f64)>>;
    static MEMO: OnceLock<WeightMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (encoder.name(), a_bits);
    if let Some(hit) = memo.read().expect("weights memo poisoned").get(&key) {
        return hit.clone();
    }

    let max = (1i64 << (a_bits - 1)) - 1;
    // The INT8 pipeline's effective scale: 127 / (max|z| ≈ 4.2σ) = 30, so
    // σ = max · 30 / 127 (exactly 30.0 at the default 8-bit width).
    let sigma_int = max as f64 * 30.0 / 127.0;
    let max_digits = a_bits as usize;
    let mut probs = vec![0f64; max_digits + 1];
    let mut total = 0f64;
    for v in -max..=max {
        let w = (-0.5 * (v as f64 / sigma_int).powi(2)).exp();
        let n = encoder.num_pps(v, a_bits).min(max_digits);
        probs[n] += w;
        total += w;
    }
    memo.write()
        .expect("weights memo poisoned")
        .entry(key)
        .or_insert((probs, total))
        .clone()
}

/// Per-operand digit-count distribution of `encoder`-encoded,
/// max-abs-quantized N(0, 1) data at `a_bits` width, as a cumulative
/// table.
fn digit_count_cdf(encoder: &dyn Encoder, a_bits: u32) -> Vec<f64> {
    let (probs, total) = digit_count_weights(encoder, a_bits);
    let mut cdf = vec![0f64; probs.len()];
    let mut acc = 0.0;
    for (i, p) in probs.iter().enumerate() {
        acc += p / total;
        cdf[i] = acc;
    }
    *cdf.last_mut().expect("non-empty cdf") = 1.0;
    cdf
}

/// Expected digits per operand of `encoder` on quantized-normal INT8 data
/// — the divisor in a serial design's peak-throughput accounting (Table
/// III's effective NumPPs, generalized to any encoder).
pub fn effective_numpps(encoder: &dyn Encoder) -> f64 {
    effective_numpps_at(encoder, 8)
}

/// [`effective_numpps`] at an arbitrary operand width: the precision
/// axis's serial cost law (digit slots scale with `a_bits`, so expected
/// digits — and serial cycles/MAC — grow roughly linearly with width).
pub fn effective_numpps_at(encoder: &dyn Encoder, a_bits: u32) -> f64 {
    let (probs, total) = digit_count_weights(encoder, a_bits);
    probs
        .iter()
        .enumerate()
        .map(|(n, w)| n as f64 * w)
        .sum::<f64>()
        / total
}

/// Result of running one layer on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer label.
    pub name: String,
    /// Wall-clock delay in microseconds.
    pub delay_us: f64,
    /// Average column-PE utilization (busy fraction).
    pub utilization: f64,
    /// Busy fraction of the fastest column.
    pub busy_min: f64,
    /// Busy fraction of the slowest column.
    pub busy_max: f64,
    /// Energy in microjoules.
    pub energy_uj: f64,
}

/// Runs a layer on a serial (bit-slice) architecture with synthetic
/// normally-distributed INT8 multiplicands.
///
/// # Panics
///
/// Panics if the architecture is not serial or cannot close timing.
pub fn serial_layer(arch: &ArchModel, layer: &LayerShape, seed: u64) -> LayerResult {
    assert!(
        matches!(arch.kind, ArchKind::Serial),
        "serial architectures only"
    );
    let cfg = arch.bitslice_config();
    let pe = arch.pe_design().synthesize(arch.freq_ghz).expect("timing");
    let encoder = cfg.encoding.encoder();

    let stats = sample_serial_cycles(
        &cfg,
        encoder.as_ref(),
        8,
        layer,
        seed,
        SerialSampleCaps::default(),
    );
    let (cycles, busy) = (stats.cycles, stats.busy);

    let delay_us = cycles / (arch.freq_ghz * 1e3);
    let busy_total: f64 = busy.iter().sum();
    let utilization = busy_total / (cycles * cfg.mp as f64);

    // Energy: busy columns switch their NP PE instances; idle (waiting)
    // columns are clock-gated (§VI: early finishers "enter an idle state,
    // saving power").
    let pes_per_column = cfg.np as f64;
    let e_busy_fj = pe.busy_power_uw() / arch.freq_ghz; // per PE instance-cycle
    let e_idle_fj = pe.idle_power_uw() / arch.freq_ghz;
    let idle_total = cycles * cfg.mp as f64 - busy_total;
    let energy_uj = (busy_total * e_busy_fj + idle_total * e_idle_fj) * pes_per_column * 1e-9;

    let busy_max = busy.iter().cloned().fold(0.0, f64::max);
    let busy_min = busy.iter().cloned().fold(f64::INFINITY, f64::min);
    LayerResult {
        name: layer.name.clone(),
        delay_us,
        utilization,
        busy_min: busy_min / cycles,
        busy_max: busy_max / cycles,
        energy_uj,
    }
}

/// Sampled cycle/busy statistics of a serial layer (already rescaled to
/// the full layer).
#[derive(Debug, Clone, PartialEq)]
pub struct SerialCycleStats {
    /// Total array cycles (sync barriers included).
    pub cycles: f64,
    /// Busy cycles per column.
    pub busy: Vec<f64>,
    /// Scheduling granularity: total sync rounds × output passes the layer
    /// maps to (the serial analogue of a dense array's tile count; always
    /// the full-layer figure, independent of sampling caps).
    pub rounds: f64,
}

impl SerialCycleStats {
    /// Average busy fraction across columns.
    pub fn utilization(&self) -> f64 {
        self.busy.iter().sum::<f64>() / (self.cycles * self.busy.len() as f64)
    }
}

/// The statistical serial-layer model shared by [`serial_layer`] and the
/// `tpe-dse` sweep: maps the layer onto `cfg`'s columns, samples per-column
/// digit sums round by round from the categorical digit-count distribution
/// of quantized-normal `a_bits`-wide operands under `encoder`, and applies
/// the `sync` barrier (the slowest column bounds each round, Eq. 7).
///
/// `a_bits` is the encoded-multiplicand width — the precision axis's only
/// input to the cycle model: a serial PE streams one digit per cycle, so
/// wider operands (more digit slots at near-constant digit sparsity) cost
/// proportionally more cycles while the array geometry stays fixed.
pub fn sample_serial_cycles(
    cfg: &BitsliceConfig,
    encoder: &dyn Encoder,
    a_bits: u32,
    layer: &LayerShape,
    seed: u64,
    caps: SerialSampleCaps,
) -> SerialCycleStats {
    // Multiplicand matrix: the operand that gets encoded. Weights for
    // conv/linear layers (rows = output features), cached K/V rows for
    // attention. Heuristic: the larger non-reduction dim indexes it.
    let rows_total = layer.m.max(layer.n) * layer.repeats;
    let streamed = layer.m.min(layer.n);
    let passes = streamed.div_ceil(cfg.n_per_pass()).max(1) as f64;

    // Rows per column per sync round (batch tiny-K rows).
    let rows_per_round = KT_MIN_OPERANDS.div_ceil(layer.k).max(1);
    let rounds = rows_total.div_ceil(cfg.mp * rows_per_round).max(1);
    let ops_per_round = rows_per_round * layer.k;
    let budget_rounds = (caps.max_operands / (cfg.mp * ops_per_round)).max(1);
    let sampled = rounds.min(caps.max_rounds).min(budget_rounds);
    let scale = rounds as f64 / sampled as f64;

    let cdf = digit_count_cdf(encoder, a_bits);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut busy = vec![0f64; cfg.mp];
    let mut cycles = 0f64;
    for _ in 0..sampled {
        let mut round_max = 0f64;
        for b in busy.iter_mut() {
            let mut t = 0u64;
            for _ in 0..ops_per_round {
                let u: f64 = rng.random();
                let mut n = 0u64;
                while cdf[n as usize] < u {
                    n += 1;
                }
                t += n;
            }
            *b += t as f64;
            round_max = round_max.max(t as f64);
        }
        cycles += round_max;
    }
    cycles *= scale * passes;
    for b in busy.iter_mut() {
        *b *= scale * passes;
    }
    SerialCycleStats {
        cycles,
        busy,
        rounds: rounds as f64 * passes,
    }
}

/// Normalized per-operand digit-count pmf (`P(NumPPs = j)`, `j` in
/// `0..=a_bits`), derived from the memoized weight histogram.
fn digit_count_pmf(encoder: &dyn Encoder, a_bits: u32) -> Vec<f64> {
    let (probs, total) = digit_count_weights(encoder, a_bits);
    probs.iter().map(|w| w / total).collect()
}

/// Mean and variance of a small non-negative integer pmf indexed by value.
fn pmf_moments(pmf: &[f64]) -> (f64, f64) {
    let mean: f64 = pmf.iter().enumerate().map(|(v, p)| v as f64 * p).sum();
    let var: f64 = pmf
        .iter()
        .enumerate()
        .map(|(v, p)| (v as f64 - mean).powi(2) * p)
        .sum();
    (mean, var.max(0.0))
}

/// Exact pmf of the sum of `n` i.i.d. draws from `pmf`, by iterative
/// convolution. Cost is `O(n² · d²)` for digit-slot support `d ≤ 17`,
/// which at the crossover bound (`n ≤ 64`) stays ~10⁵ multiply-adds —
/// cheaper than a single sampled round at typical caps.
fn convolve_digit_sum(pmf: &[f64], n: usize) -> Vec<f64> {
    let mut acc = pmf.to_vec();
    for _ in 1..n {
        let mut next = vec![0.0; acc.len() + pmf.len() - 1];
        for (i, &a) in acc.iter().enumerate() {
            // Skipping sub-1e-15 mass prunes the Gaussian tails the sum
            // concentrates away from; the total mass lost stays below
            // n·d·1e-15 ≈ 1e-11 — far under every pinned tolerance, and
            // point masses (the exactness tests) are never truncated.
            if a < 1e-15 {
                continue;
            }
            for (j, &p) in pmf.iter().enumerate() {
                next[i + j] += a * p;
            }
        }
        acc = next;
    }
    acc
}

/// `E[max of mp i.i.d. draws]` from an integer-valued pmf indexed by
/// value, via the tail identity `E[max] = Σ_{t≥1} (1 − F(t−1)^mp)`.
fn expected_max_of_iid(pmf: &[f64], mp: usize) -> f64 {
    let mut cdf = 0.0;
    let mut e = 0.0;
    for &p in &pmf[..pmf.len().saturating_sub(1)] {
        cdf += p;
        e += 1.0 - cdf.clamp(0.0, 1.0).powi(mp as i32);
    }
    e
}

/// `E[max of mp i.i.d. standard normals]`, by trapezoidal integration of
/// `∫ z · mp · φ(z) · Φ(z)^{mp−1} dz` over `z ∈ [−8, 8]`, accumulating
/// `Φ` incrementally (std has no `erf`). Memoized per `mp`: the constant
/// depends only on the column count, not on encoder, width, or layer.
fn std_normal_max_mean(mp: usize) -> f64 {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    if mp <= 1 {
        return 0.0;
    }
    static MEMO: OnceLock<RwLock<HashMap<usize, f64>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(&hit) = memo.read().expect("normal-max memo poisoned").get(&mp) {
        return hit;
    }

    const Z: f64 = 8.0;
    const STEPS: usize = 4_000;
    let h = 2.0 * Z / STEPS as f64;
    let phi = |z: f64| (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let m = mp as f64;
    let mut z = -Z;
    let mut pdf = phi(z);
    let mut cdf = 0.0; // Φ(−8) ≈ 6e−16: below the integration error
    let mut integrand = 0.0; // z·m·φ(z)·Φ^{m−1}, zero at the left edge
    let mut acc = 0.0;
    for _ in 0..STEPS {
        let z2 = z + h;
        let pdf2 = phi(z2);
        let cdf2 = (cdf + 0.5 * h * (pdf + pdf2)).min(1.0);
        let integrand2 = z2 * m * pdf2 * cdf2.powi(mp as i32 - 1);
        acc += 0.5 * h * (integrand + integrand2);
        z = z2;
        pdf = pdf2;
        cdf = cdf2;
        integrand = integrand2;
    }
    memo.write()
        .expect("normal-max memo poisoned")
        .insert(mp, acc);
    acc
}

/// `(per-operand mean, E[round max])` for one sync round: the expected
/// max over `mp` columns of the sum of `ops_per_round` i.i.d. digit
/// counts. A pure function of its arguments — the layer only enters
/// through `ops_per_round` — so it is memoized process-wide: a model
/// grid revisits the same handful of `(encoder, width, ops, mp)` keys
/// across every layer and engine, and the exact-convolution branch is
/// the only part of the analytic path whose cost is worth skipping.
fn expected_round_stats(
    encoder: &dyn Encoder,
    a_bits: u32,
    ops_per_round: usize,
    mp: usize,
) -> (f64, f64) {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    type RoundMemo = RwLock<HashMap<(&'static str, u32, usize, usize), (f64, f64)>>;
    static MEMO: OnceLock<RoundMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (encoder.name(), a_bits, ops_per_round, mp);
    if let Some(&hit) = memo.read().expect("round memo poisoned").get(&key) {
        return hit;
    }

    let pmf = digit_count_pmf(encoder, a_bits);
    let (mean, var) = pmf_moments(&pmf);
    let n = ops_per_round as f64;
    let round_max = if var <= 0.0 {
        // Point mass: every column finishes in exactly n·mean.
        n * mean
    } else if ops_per_round <= CONV_CROSSOVER_OPERANDS {
        let sum_pmf = convolve_digit_sum(&pmf, ops_per_round);
        expected_max_of_iid(&sum_pmf, mp)
    } else {
        n * mean + (n * var).sqrt() * std_normal_max_mean(mp)
    };
    memo.write()
        .expect("round memo poisoned")
        .insert(key, (mean, round_max));
    (mean, round_max)
}

/// Closed-form counterpart of [`sample_serial_cycles`]: the same layer
/// mapping (rows per round, tiny-K batching, output passes), but the
/// per-round sync time — the max over `cfg.mp` columns of the sum of
/// `ops_per_round` i.i.d. digit counts — is evaluated from the digit-count
/// distribution directly instead of being Monte-Carlo sampled.
///
/// For `ops_per_round ≤` [`CONV_CROSSOVER_OPERANDS`] the column digit-sum
/// pmf is convolved exactly and `E[max]` read off the tail identity; above
/// the crossover the sum is CLT-normal to well under the sampler's noise
/// floor, so `E[max] ≈ n·μ + σ·√n · E[max of mp standard normals]`.
/// Degenerate (deterministic) digit distributions short-circuit to the
/// exact value on either path, making analytic == sampled bit-exact there.
///
/// The result is independent of seeds and sampling caps: all rounds are
/// i.i.d., so expectation over one round scales to the full layer without
/// subsampling. Busy time per column is `n·μ` per round — every column
/// sums the same number of operand draws in expectation.
pub fn analytic_serial_cycles(
    cfg: &BitsliceConfig,
    encoder: &dyn Encoder,
    a_bits: u32,
    layer: &LayerShape,
) -> SerialCycleStats {
    // Identical mapping arithmetic to the sampler (kept in lockstep by the
    // oracle property tests).
    let rows_total = layer.m.max(layer.n) * layer.repeats;
    let streamed = layer.m.min(layer.n);
    let passes = streamed.div_ceil(cfg.n_per_pass()).max(1) as f64;
    let rows_per_round = KT_MIN_OPERANDS.div_ceil(layer.k).max(1);
    let rounds = rows_total.div_ceil(cfg.mp * rows_per_round).max(1);
    let ops_per_round = rows_per_round * layer.k;

    let (mean, round_max) = expected_round_stats(encoder, a_bits, ops_per_round, cfg.mp);
    let n = ops_per_round as f64;

    let scale = rounds as f64 * passes;
    let busy_per_column = n * mean * scale;
    SerialCycleStats {
        cycles: round_max * scale,
        busy: vec![busy_per_column; cfg.mp],
        rounds: rounds as f64 * passes,
    }
}

/// Evaluates the serial-cycle statistics with the backend selected by
/// `caps.model`: the Monte-Carlo oracle or the closed-form path. This is
/// the single dispatch point the engine's cached evaluation goes through.
pub fn serial_cycle_stats(
    cfg: &BitsliceConfig,
    encoder: &dyn Encoder,
    a_bits: u32,
    layer: &LayerShape,
    seed: u64,
    caps: SerialSampleCaps,
) -> SerialCycleStats {
    match caps.model {
        CycleModel::Sampled => sample_serial_cycles(cfg, encoder, a_bits, layer, seed, caps),
        CycleModel::Analytic => analytic_serial_cycles(cfg, encoder, a_bits, layer),
    }
}

/// Runs a layer on a dense parallel-MAC systolic array (the Figure 11
/// baseline), with `lane_scale` extra lanes for area equalization
/// (`lane_scale = 1.0` means the plain 32×32 array).
pub fn dense_layer(layer: &LayerShape, freq_ghz: f64, lane_scale: f64) -> LayerResult {
    let arr = SystolicArray::new(32, 32);
    // Weight-load stalls are included (the paper's Fig. 11 MAC-baseline
    // delay magnitudes imply a load-stalled systolic sweep; decode GEMVs
    // re-stream every weight tile per token, so loads cannot amortize).
    // `SystolicArray::estimate_cycles_pipelined` models the double-buffered
    // alternative for sensitivity studies.
    let cycles = arr.estimate_cycles(layer.m, layer.n, layer.k) as f64 * layer.repeats as f64
        / lane_scale.max(1e-9);
    let delay_us = cycles / (freq_ghz * 1e3);
    let pe = PeStyle::TraditionalMac
        .design()
        .synthesize(freq_ghz)
        .expect("MAC timing");
    let e_cycle_fj = pe.busy_power_uw() / freq_ghz;
    // Dense arrays clock every PE every cycle, useful or not.
    let energy_uj = cycles * 1024.0 * lane_scale * e_cycle_fj * 1e-9;
    let useful = layer.macs() as f64;
    let utilization = (useful / (cycles * 1024.0 * lane_scale)).min(1.0);
    LayerResult {
        name: layer.name.clone(),
        delay_us,
        utilization,
        busy_min: utilization,
        busy_max: utilization,
        energy_uj,
    }
}

/// Area-equalization factor: how many MAC-array lanes fit in the target
/// architecture's silicon (Figure 11/12 compare "a systolic array and the
/// OPT4E architecture of the same area").
pub fn equal_area_lane_scale(target: &ArchModel) -> f64 {
    let target_row = super::ArrayModel::new(target.clone()).table7_row();
    let mac = ArchModel::table7_baselines().remove(0);
    let mac_row = super::ArrayModel::new(mac).table7_row();
    target_row.area_um2 / mac_row.area_um2
}

/// Average serial cycles per MAC when the encoded operand stream contains
/// a `zero_frac` fraction of exact zeros (ReLU activations) — the §VI
/// operand-selection lever: "prioritizing operands with high sparsity
/// enhances acceleration". Zero operands are skipped entirely by the
/// prefetcher (0 cycles).
pub fn cycles_per_mac_with_zeros(arch: &ArchModel, zero_frac: f64, seed: u64) -> f64 {
    assert!((0.0..=1.0).contains(&zero_frac));
    let cfg = arch.bitslice_config();
    let encoder = cfg.encoding.encoder();
    let cdf = digit_count_cdf(encoder.as_ref(), 8);
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = 200_000usize;
    let mut total = 0u64;
    for _ in 0..samples {
        if rng.random::<f64>() < zero_frac {
            continue; // prefetcher skips the all-zero operand
        }
        let u: f64 = rng.random();
        let mut n = 0u64;
        while cdf[n as usize] < u {
            n += 1;
        }
        total += n;
    }
    total as f64 / samples as f64
}

/// Network-level summary for Figures 12–13.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkResult {
    /// Network name.
    pub name: String,
    /// Speedup of the serial architecture over the equal-area MAC array.
    pub speedup: f64,
    /// Energy ratio (serial / MAC) — below 1.0 means savings.
    pub energy_ratio: f64,
    /// Average serial-array utilization across layers (weighted by delay).
    pub utilization: f64,
}

/// Evaluates a whole network on `arch` vs the equal-area dense baseline.
pub fn evaluate_network(
    arch: &ArchModel,
    net: &tpe_workloads::NetworkModel,
    seed: u64,
) -> NetworkResult {
    let scale = equal_area_lane_scale(arch);
    let mut serial_delay = 0.0;
    let mut serial_energy = 0.0;
    let mut dense_delay = 0.0;
    let mut dense_energy = 0.0;
    let mut util_weighted = 0.0;
    for (i, layer) in net.layers.iter().enumerate() {
        let s = serial_layer(arch, layer, seed + i as u64);
        let d = dense_layer(layer, 1.0, scale);
        util_weighted += s.utilization * s.delay_us;
        serial_delay += s.delay_us;
        serial_energy += s.energy_uj;
        dense_delay += d.delay_us;
        dense_energy += d.energy_uj;
    }
    NetworkResult {
        name: net.name.clone(),
        speedup: dense_delay / serial_delay,
        energy_ratio: serial_energy / dense_energy,
        utilization: util_weighted / serial_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_arith::encode::SignedDigit;
    use tpe_workloads::models;

    /// Test encoder with a *deterministic* digit count: every operand
    /// produces exactly `D` non-zero digits. Each `D` needs a distinct
    /// static name because [`digit_count_weights`] memoizes on
    /// `encoder.name()` process-wide.
    struct ConstDigits<const D: usize>;

    impl<const D: usize> Encoder for ConstDigits<D> {
        fn name(&self) -> &'static str {
            match D {
                1 => "test-const-1",
                8 => "test-const-8",
                _ => "test-const-other",
            }
        }
        fn radix(&self) -> u8 {
            2
        }
        fn encode(&self, _value: i64, _width: u32) -> Vec<SignedDigit> {
            (0..D as u8).map(|w| SignedDigit::new(1, w)).collect()
        }
    }

    fn opt4e() -> ArchModel {
        ArchModel::table7_ours()
            .into_iter()
            .find(|a| a.name == "OPT4E")
            .unwrap()
    }

    /// GPT-2 linear sublayers (K ∈ {768, 3072}) keep OPT4E columns >95%
    /// busy — Figure 11(A) reports 96.0–98.2%. Attention sublayers with
    /// K = 64 sit lower.
    #[test]
    fn gpt2_sublayer_utilization_high() {
        let arch = opt4e();
        for layer in models::gpt2_decode_sublayers("L0", 1024) {
            let r = serial_layer(&arch, &layer, 42);
            let floor = if layer.k >= 512 { 0.95 } else { 0.85 };
            assert!(
                r.utilization > floor,
                "{}: utilization {:.3} (K={})",
                r.name,
                r.utilization,
                layer.k
            );
            assert!(r.busy_max * 1.0001 >= r.utilization && r.utilization >= r.busy_min * 0.9999);
        }
    }

    /// MobileNetV3: DW layers (K = 9/25) utilize worse than wide PW layers
    /// — the Figure 11(B) dip (92.3–94.7% vs 97.3–98.4%).
    #[test]
    fn mobilenet_dw_dips_below_pw() {
        let arch = opt4e();
        let net = models::mobilenet_v3();
        let dw = net.layers.iter().find(|l| l.name == "b13-dw5x5").unwrap();
        let pw = net.layers.iter().find(|l| l.name == "b13-pw-proj").unwrap();
        let rd = serial_layer(&arch, dw, 7);
        let rp = serial_layer(&arch, pw, 7);
        assert!(
            rd.utilization < rp.utilization,
            "DW {:.3} should dip below PW {:.3}",
            rd.utilization,
            rp.utilization
        );
        assert!(
            (0.85..0.97).contains(&rd.utilization),
            "DW util {:.3}",
            rd.utilization
        );
        assert!(rp.utilization > 0.95, "PW util {:.3}", rp.utilization);
    }

    /// The equal-area OPT4E beats the MAC array on a GPT-2 layer — the
    /// Figure 13 speedup family (paper: ×2.16 for GPT-2 overall).
    #[test]
    fn opt4e_beats_equal_area_mac_on_gpt2_layer() {
        let arch = opt4e();
        let scale = equal_area_lane_scale(&arch);
        let layer = &models::gpt2_decode_sublayers("L0", 1024)[4]; // fc1
        let s = serial_layer(&arch, layer, 3);
        let d = dense_layer(layer, 1.0, scale);
        assert!(
            d.delay_us / s.delay_us > 1.2,
            "speedup {:.2} too small",
            d.delay_us / s.delay_us
        );
    }

    /// Degenerate (deterministic) digit distributions make the analytic
    /// path *exactly* equal to the sampled oracle — zero tolerance. Two
    /// boundaries: single-digit operands (D = 1) and the max-width 8-digit
    /// bit-serial worst case (D = 8). The shapes are chosen so the sampler
    /// covers every round (`scale == 1`), where both paths reduce to the
    /// same exact integer arithmetic in f64.
    #[test]
    fn degenerate_distributions_match_sampler_exactly() {
        let cfg = opt4e().bitslice_config();
        let shapes = [
            LayerShape::new("sq", 64, 64, 64, 1),
            LayerShape::new("tiny-k", 96, 32, 9, 2),
            LayerShape::new("skinny", 1, 128, 768, 1),
        ];
        for layer in &shapes {
            for (enc, a_bits) in [
                (&ConstDigits::<1> as &dyn Encoder, 4u32),
                (&ConstDigits::<8> as &dyn Encoder, 8u32),
            ] {
                let a = analytic_serial_cycles(&cfg, enc, a_bits, layer);
                let s =
                    sample_serial_cycles(&cfg, enc, a_bits, layer, 99, SerialSampleCaps::default());
                assert_eq!(a.cycles, s.cycles, "{}: cycles differ", layer.name);
                assert_eq!(a.rounds, s.rounds, "{}: rounds differ", layer.name);
                assert_eq!(
                    a.busy.iter().sum::<f64>(),
                    s.busy.iter().sum::<f64>(),
                    "{}: busy totals differ",
                    layer.name
                );
            }
        }
    }

    /// Convolution boundaries: one operand leaves the pmf unchanged, and
    /// the tail-identity `E[max]` matches brute-force enumeration for one
    /// and two columns (`mp = 1` is the plain mean).
    #[test]
    fn convolution_and_max_identities_at_the_boundaries() {
        let pmf = digit_count_pmf(tpe_arith::encode::EncodingKind::EnT.encoder().as_ref(), 8);
        assert_eq!(convolve_digit_sum(&pmf, 1), pmf);

        let (mean, _) = pmf_moments(&pmf);
        assert!((expected_max_of_iid(&pmf, 1) - mean).abs() < 1e-12);

        // mp = 2 against O(d²) brute force over the joint distribution.
        let brute: f64 = pmf
            .iter()
            .enumerate()
            .flat_map(|(i, &p)| {
                pmf.iter()
                    .enumerate()
                    .map(move |(j, &q)| i.max(j) as f64 * p * q)
            })
            .sum();
        assert!((expected_max_of_iid(&pmf, 2) - brute).abs() < 1e-12);
    }

    /// The CLT constant: `E[max of 2 standard normals] = 1/√π` exactly;
    /// the integration must hit it to ~1e-6, and more columns push the
    /// constant up.
    #[test]
    fn normal_max_constant_matches_closed_form() {
        assert_eq!(std_normal_max_mean(1), 0.0);
        let c2 = std_normal_max_mean(2);
        assert!(
            (c2 - 1.0 / std::f64::consts::PI.sqrt()).abs() < 1e-6,
            "c2 = {c2}"
        );
        assert!(std_normal_max_mean(32) > std_normal_max_mean(8));
    }

    /// The analytic backend is seed- and caps-independent: the dispatcher
    /// returns bit-identical stats for different seeds, equal to a direct
    /// `analytic_serial_cycles` call, with utilization in (0, 1].
    #[test]
    fn analytic_dispatch_is_seed_independent() {
        let arch = opt4e();
        let cfg = arch.bitslice_config();
        let enc = cfg.encoding.encoder();
        let layer = LayerShape::new("probe", 64, 256, 128, 1);
        let caps = SerialSampleCaps {
            model: CycleModel::Analytic,
            ..SerialSampleCaps::default()
        };
        let a = serial_cycle_stats(&cfg, enc.as_ref(), 8, &layer, 1, caps);
        let b = serial_cycle_stats(&cfg, enc.as_ref(), 8, &layer, 2, caps);
        assert_eq!(a, b, "analytic stats must not depend on the seed");
        assert_eq!(a, analytic_serial_cycles(&cfg, enc.as_ref(), 8, &layer));
        let u = a.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    /// Mode labels round-trip through `parse` case-insensitively and
    /// unknown labels are rejected — the contract CLI flags and serve
    /// requests rely on.
    #[test]
    fn cycle_model_labels_round_trip() {
        for m in CycleModel::ALL {
            assert_eq!(CycleModel::parse(m.name()), Some(m));
            assert_eq!(CycleModel::parse(&m.name().to_uppercase()), Some(m));
        }
        assert_eq!(CycleModel::parse("monte-carlo"), None);
        assert_eq!(CycleModel::default(), CycleModel::Sampled);
    }

    /// Network evaluation produces sane aggregates.
    #[test]
    fn resnet18_network_eval() {
        let arch = opt4e();
        let r = evaluate_network(&arch, &models::resnet18(), 11);
        assert!(r.speedup > 1.0, "speedup {}", r.speedup);
        assert!(r.energy_ratio < 1.0, "energy ratio {}", r.energy_ratio);
        assert!((0.5..=1.0).contains(&r.utilization));
    }
}
