//! PE microarchitecture designs: component composition + paper-quoted
//! critical paths for the six PE styles of Figure 9.
//!
//! Compositions follow the block diagrams (Figures 5–8); nominal delays are
//! the paper's synthesis quotes ([`tpe_cost::anchors`]), so the timing side
//! is anchored while the area side is composed structurally. Residual
//! deltas between composed areas and the paper's point quotes are recorded
//! in EXPERIMENTS.md — the *shape* of Figure 9 (who inflates at which
//! clock, where the efficiency knees sit) is what the model must and does
//! reproduce.
//!
//! ## Precision
//!
//! Every composition is parameterized by an operand [`Precision`]
//! (`*_for` constructors); the width-free names are the paper's default
//! INT8 × INT8 → INT32 configuration and stay bit-identical to it.
//! Precision scales every *width*: multiplier partial-product count
//! (⌈a/2⌉ radix-4 digits), compressor-tree and accumulator widths,
//! encoder/CPPG/mux widths and the operand/pair DFF state. The *nominal
//! critical paths* stay at the INT8 synthesis quotes: the paper's
//! structural point is that compressor delay is width-independent (Table
//! V), and the quoted walls are the only calibrated timing anchors — so
//! precision moves area/energy, not the Figure 9 frequency walls.

use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_cost::anchors;
use tpe_cost::components::Component;
use tpe_cost::synthesis::PeDesign;

/// The digit-recoder hardware a serial datapath carries for `encoding`,
/// at the default INT8 multiplicand width.
///
/// MBE and EN-T have first-class cost components. CSD is priced as the
/// EN-T recoder (both are Booth cells plus a carry chain — the closest
/// calibrated anchor). The radix-2 bit-serial decompositions need no
/// recoder at all, only zero-skip logic.
pub fn encoder_component(encoding: EncodingKind) -> Component {
    encoder_component_for(encoding, 8)
}

/// [`encoder_component`] for an `a_bits`-wide multiplicand: recoder cost
/// scales with the number of digit slots the encoder covers.
pub fn encoder_component_for(encoding: EncodingKind, a_bits: u32) -> Component {
    match encoding {
        EncodingKind::Mbe => Component::BoothEncoder { width: a_bits },
        EncodingKind::EnT | EncodingKind::Csd => Component::EntEncoder { width: a_bits },
        EncodingKind::BitSerialComplement | EncodingKind::BitSerialSignMagnitude => {
            Component::SkipZeroUnit { width: a_bits }
        }
    }
}

/// The six PE styles of the paper's Figure 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeStyle {
    /// Traditional parallel MAC (TPU-like), INT8 × INT8 → INT32.
    TraditionalMac,
    /// OPT1: compressor accumulation replaces add + accumulate.
    Opt1,
    /// OPT2: same-bit-weight reduction, shift hoisted to the SIMD core.
    Opt2,
    /// OPT3: sparse serial digits, encoder + sparse encoder in each PE.
    Opt3,
    /// OPT4C: shared out-of-array encoder; PE = CPPG + mux + 3-2 tree.
    Opt4C,
    /// OPT4E: PE-group of 4 lanes sharing one 6-2 tree and the DFFs.
    Opt4E,
}

impl PeStyle {
    /// All styles in Figure 9's legend order.
    pub const ALL: [PeStyle; 6] = [
        PeStyle::TraditionalMac,
        PeStyle::Opt1,
        PeStyle::Opt2,
        PeStyle::Opt3,
        PeStyle::Opt4C,
        PeStyle::Opt4E,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PeStyle::TraditionalMac => "MAC",
            PeStyle::Opt1 => "OPT1",
            PeStyle::Opt2 => "OPT2",
            PeStyle::Opt3 => "OPT3",
            PeStyle::Opt4C => "OPT4C",
            PeStyle::Opt4E => "OPT4E",
        }
    }

    /// MAC lanes per PE instance (4 for the OPT4E group).
    pub fn lanes(self) -> u32 {
        match self {
            PeStyle::Opt4E => 4,
            _ => 1,
        }
    }

    /// Whether this style computes serially over non-zero digits.
    pub fn is_serial(self) -> bool {
        matches!(self, PeStyle::Opt3 | PeStyle::Opt4C | PeStyle::Opt4E)
    }

    /// The synthesizable PE design at the paper's W8 precision.
    pub fn design(self) -> PeDesign {
        self.design_for(Precision::W8)
    }

    /// The synthesizable PE design at an arbitrary operand precision.
    ///
    /// Widths derive from the precision — `a`/`b` operand bits, the
    /// `a + b` product, ⌈a/2⌉ digit slots and the accumulator — with the
    /// same constant guard/pipeline margins the W8 composition carries, so
    /// `design_for(Precision::W8)` is bit-identical to the historical
    /// composition.
    pub fn design_for(self, p: Precision) -> PeDesign {
        let (a, b, acc) = (p.a_bits, p.b_bits, p.acc_bits);
        let digits = p.digits();
        let product = p.product_bits();
        match self {
            PeStyle::TraditionalMac => PeDesign::builder("MAC")
                // Table I's complete MAC (multiplier + FA + accumulator;
                // the accumulator row already includes its register).
                .comp(Component::MacUnit { acc_width: acc }, 1)
                // Input operand registers (A and B).
                .state(a + b)
                .nominal_delay(anchors::MAC_TPD_NS)
                .max_freq(anchors::MAC_MAX_FREQ_GHZ)
                .build(),

            PeStyle::Opt1 => PeDesign::builder("OPT1")
                .comp(Component::MultiplierFront { acc_width: acc }, 1)
                // The 4-2 compressor accumulation tree at full width.
                .comp(
                    Component::CompressorTree {
                        inputs: 4,
                        width: acc,
                    },
                    1,
                )
                // Carry-save state (sum + carry) plus operand inputs.
                .state(2 * acc + (a + b))
                .nominal_delay(anchors::OPT1_TPD_NS)
                .max_freq(anchors::OPT1_MAX_FREQ_GHZ)
                .build(),

            PeStyle::Opt2 => PeDesign::builder("OPT2")
                // No shifters; the PP tree and accumulation tree shrink to
                // same-bit-weight width (the product width).
                .comp(Component::BoothEncoder { width: a }, 1)
                .comp(Component::Cppg { width: b }, 1)
                .comp(
                    Component::Mux {
                        ways: 5,
                        width: b + 2,
                    },
                    digits,
                )
                .comp(
                    Component::CompressorTree {
                        inputs: 4,
                        width: product,
                    },
                    2,
                )
                // Narrow pair state, but KP = 4 prefetched B operands — the
                // input-DFF growth the paper calls out.
                .state(2 * product + a + 4 * b)
                .nominal_delay(0.85)
                .max_freq(anchors::OPT1_MAX_FREQ_GHZ)
                .build(),

            PeStyle::Opt3 => PeDesign::builder("OPT3")
                // Figure 7(C): encoder + sparse encoder inside the PE.
                .comp(Component::EntEncoder { width: a }, 1)
                .comp(Component::SparseEncoder { digits }, 1)
                .comp(Component::Cppg { width: b }, 1)
                .comp(
                    Component::Mux {
                        ways: 5,
                        width: b + 2,
                    },
                    1,
                )
                .comp(
                    Component::BarrelShifter {
                        width: product + 2,
                        positions: digits,
                    },
                    1,
                )
                .comp(
                    Component::CompressorTree {
                        inputs: 3,
                        width: product + 8,
                    },
                    1,
                )
                // Encoded-operand DFBs (KP = 4 operands × digit slots ×
                // 3 b), B inputs and the carry-save pair: the
                // input-DFF-dominated single PE the paper describes.
                .state(4 * digits * 3 + 4 * b + 2 * (product + 8))
                .nominal_delay(0.55)
                .max_freq(anchors::OPT3_MAX_FREQ_GHZ)
                .build(),

            PeStyle::Opt4C => PeDesign::builder("OPT4C")
                // Figure 8(C): only CPPG + mux + 3-2 tree remain in the PE.
                .comp(Component::Cppg { width: b }, 1)
                .comp(Component::Mux { ways: 5, width: b }, 1)
                .comp(
                    Component::CompressorTree {
                        inputs: 3,
                        width: b + 6,
                    },
                    1,
                )
                // sel (2 b) + prefetched B + narrow pair.
                .state(2 + b + 2 * b)
                .nominal_delay(anchors::OPT4C_TPD_NS)
                .max_freq(anchors::OPT4C_MAX_FREQ_GHZ)
                .build(),

            PeStyle::Opt4E => PeDesign::builder("OPT4E")
                // Figure 8(E): 4 lanes share one 6-2 tree and the DFBs.
                .comp(Component::Cppg { width: b }, 4)
                .comp(Component::Mux { ways: 5, width: b }, 4)
                .comp(
                    Component::CompressorTree {
                        inputs: 6,
                        width: b + 12,
                    },
                    1,
                )
                // Shared pair + 4 lane selects + prefetched B per lane.
                .state(2 * (b + 12) + 8 + 4 * b)
                .nominal_delay(anchors::OPT4E_TPD_NS)
                .max_freq(anchors::OPT4E_MAX_FREQ_GHZ)
                .lanes(4)
                .build(),
        }
    }

    /// The synthesizable PE design under a specific multiplicand encoding,
    /// at the paper's W8 precision.
    pub fn design_with_encoding(self, encoding: EncodingKind) -> PeDesign {
        self.design_with_encoding_for(encoding, Precision::W8)
    }

    /// The synthesizable PE design under a specific multiplicand encoding
    /// and operand precision.
    ///
    /// OPT3 carries its digit recoder inside the PE, so its design swaps
    /// in [`encoder_component_for`] at the multiplicand width; every other
    /// style's PE is encoding-invariant (dense multipliers bake in Booth,
    /// OPT4 shares encoders out of the array).
    pub fn design_with_encoding_for(self, encoding: EncodingKind, p: Precision) -> PeDesign {
        let mut design = self.design_for(p);
        if self == PeStyle::Opt3 {
            for (component, _) in &mut design.combinational {
                if matches!(component, Component::EntEncoder { .. }) {
                    *component = encoder_component_for(encoding, p.a_bits);
                }
            }
        }
        design
    }

    /// Dense-topology baseline PE at W8 (see [`Self::dense_baseline_pe_for`]).
    pub fn dense_baseline_pe(arch: tpe_sim::array::ClassicArch) -> PeDesign {
        Self::dense_baseline_pe_for(arch, Precision::W8)
    }

    /// Dense-topology baseline PE: the four classic architectures differ in
    /// how much reduction logic each PE carries (Table VII's area spread):
    ///
    /// * **TPU** — full MAC per PE (weights + psums pipeline through).
    /// * **Ascend** — multiplier front + a K-tree adder node; the wide
    ///   accumulators sit once per output at the cube face.
    /// * **Trapezoid** — multiplier front + an adder-tree node; one shared
    ///   accumulator per dot-product unit.
    /// * **FlexFlow** — full MAC, but row/column broadcast shares the input
    ///   DFFs across PEs (the property OPT2 later exploits).
    pub fn dense_baseline_pe_for(arch: tpe_sim::array::ClassicArch, p: Precision) -> PeDesign {
        use tpe_sim::array::ClassicArch;
        let acc = p.acc_bits;
        let product = p.product_bits();
        match arch {
            ClassicArch::Tpu => PeStyle::TraditionalMac.design_for(p),
            ClassicArch::Ascend => PeDesign::builder("Ascend-PE")
                .comp(Component::MultiplierFront { acc_width: acc }, 1)
                .comp(Component::CarryPropagateAdder { width: product + 8 }, 1)
                // Operand inputs plus the pipeline registers between the
                // cube's spatial-reduction tree stages.
                .state(2 * product + 8)
                .nominal_delay(anchors::MAC_TPD_NS * 0.9)
                .max_freq(anchors::MAC_MAX_FREQ_GHZ)
                .build(),
            ClassicArch::Trapezoid => PeDesign::builder("Trapezoid-PE")
                .comp(Component::MultiplierFront { acc_width: acc }, 1)
                .comp(Component::CarryPropagateAdder { width: product + 4 }, 1)
                // Operand inputs + adder-tree pipeline registers.
                .state(2 * product)
                .nominal_delay(anchors::MAC_TPD_NS * 0.85)
                .max_freq(anchors::MAC_MAX_FREQ_GHZ)
                .build(),
            ClassicArch::FlexFlow => PeDesign::builder("FlexFlow-PE")
                .comp(Component::MacUnit { acc_width: acc }, 1)
                .state(6)
                .nominal_delay(anchors::MAC_TPD_NS)
                .max_freq(anchors::MAC_MAX_FREQ_GHZ)
                .build(),
        }
    }

    /// OPT1 retrofit per topology at W8 (see [`Self::dense_opt1_pe_for`]).
    pub fn dense_opt1_pe(self, arch: tpe_sim::array::ClassicArch) -> PeDesign {
        self.dense_opt1_pe_for(arch, Precision::W8)
    }

    /// OPT1 retrofits per topology: the compressor accumulation replaces
    /// each topology's carry-propagating reduction node.
    pub fn dense_opt1_pe_for(self, arch: tpe_sim::array::ClassicArch, p: Precision) -> PeDesign {
        use tpe_sim::array::ClassicArch;
        if self == PeStyle::Opt2 {
            return PeStyle::Opt2.design_for(p);
        }
        let acc = p.acc_bits;
        let product = p.product_bits();
        match arch {
            ClassicArch::Tpu | ClassicArch::FlexFlow => PeStyle::Opt1.design_for(p),
            ClassicArch::Ascend => PeDesign::builder("OPT1-Ascend-PE")
                .comp(Component::MultiplierFront { acc_width: acc }, 1)
                .comp(
                    Component::CompressorTree {
                        inputs: 4,
                        width: product + 8,
                    },
                    1,
                )
                .state(2 * (product + 8) + product)
                .nominal_delay(anchors::OPT1_TPD_NS)
                .max_freq(anchors::OPT1_MAX_FREQ_GHZ)
                .build(),
            ClassicArch::Trapezoid => PeDesign::builder("OPT1-Trapezoid-PE")
                .comp(Component::MultiplierFront { acc_width: acc }, 1)
                .comp(
                    Component::CompressorTree {
                        inputs: 3,
                        width: product + 8,
                    },
                    1,
                )
                .state(2 * (product + 8) + 12)
                .nominal_delay(anchors::OPT1_TPD_NS)
                .max_freq(anchors::OPT1_MAX_FREQ_GHZ)
                .build(),
        }
    }

    /// The paper's optimal synthesis frequency for this style (GHz) —
    /// where Figure 9's efficiency curves peak.
    pub fn optimal_freq_ghz(self) -> f64 {
        match self {
            PeStyle::TraditionalMac => 1.0,
            PeStyle::Opt1 | PeStyle::Opt2 => 1.5,
            PeStyle::Opt3 => 2.0,
            PeStyle::Opt4C => 2.5,
            PeStyle::Opt4E => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every design synthesizes at its paper frequency.
    #[test]
    fn all_designs_close_timing_at_paper_frequency() {
        for style in PeStyle::ALL {
            let d = style.design();
            let f = style.optimal_freq_ghz();
            assert!(
                d.synthesize(f).is_some(),
                "{} failed at its optimal {f} GHz",
                style.name()
            );
        }
    }

    /// The MAC hits its 1.5 GHz wall; OPT4C reaches 3 GHz (Figure 9:
    /// "Only design 5 (OPT4C) can reach 3.0 GHz").
    #[test]
    fn frequency_walls() {
        assert!(PeStyle::TraditionalMac.design().synthesize(1.6).is_none());
        assert!(PeStyle::Opt4C.design().synthesize(3.0).is_some());
        assert!(PeStyle::Opt1.design().synthesize(2.0).is_some());
        assert!(PeStyle::Opt1.design().synthesize(2.3).is_none());
    }

    /// Area ordering at relaxed clocks: OPT4C is the smallest PE; the MAC
    /// sits between OPT4C and the DFF-heavy OPT3.
    #[test]
    fn relaxed_area_ordering() {
        let area = |s: PeStyle| s.design().synthesize(0.5).unwrap().area_um2;
        assert!(area(PeStyle::Opt4C) < area(PeStyle::TraditionalMac));
        assert!(area(PeStyle::TraditionalMac) < area(PeStyle::Opt3));
        // The group amortizes DFFs: per-lane OPT4E is at worst on par with
        // OPT4C overall (paper: 77.75 vs 81.27 µm² per lane) and clearly
        // smaller on the register share it set out to shrink.
        assert!(area(PeStyle::Opt4E) / 4.0 < area(PeStyle::Opt4C) * 1.05);
        let dff = |s: PeStyle| s.design().synthesize(0.5).unwrap().dff_area_um2;
        assert!(dff(PeStyle::Opt4E) / 4.0 < dff(PeStyle::Opt4C) * 0.8);
    }

    /// §V-B's headline: at 1.5 GHz the MAC has inflated ~1.9× while OPT1
    /// has barely moved (~1.15×), flipping the area comparison.
    #[test]
    fn opt1_wins_at_high_frequency() {
        let mac = PeStyle::TraditionalMac.design();
        let opt1 = PeStyle::Opt1.design();
        let mac_growth =
            mac.synthesize(1.5).unwrap().area_um2 / mac.synthesize(1.0).unwrap().area_um2;
        let opt1_growth =
            opt1.synthesize(1.5).unwrap().area_um2 / opt1.synthesize(1.0).unwrap().area_um2;
        assert!(mac_growth > 1.8, "MAC growth {mac_growth}");
        assert!(opt1_growth < 1.25, "OPT1 growth {opt1_growth}");
    }

    /// OPT4C PE area lands near the paper's 81.27 µm² quote (±25%).
    #[test]
    fn opt4c_area_near_quote() {
        let a = PeStyle::Opt4C.design().synthesize(2.5).unwrap().area_um2;
        let err = (a - tpe_cost::anchors::OPT4C_AREA_UM2).abs() / tpe_cost::anchors::OPT4C_AREA_UM2;
        assert!(err < 0.45, "OPT4C area {a} vs paper 81.27");
    }

    /// PE area is strictly monotone in operand precision for every style
    /// and every dense retrofit — the physical invariant the precision
    /// axis must respect (wider operands → more partial products, wider
    /// trees and accumulators, more DFF state).
    #[test]
    fn pe_area_strictly_increases_w4_w8_w16() {
        let ladder = [Precision::W4, Precision::W8, Precision::W16];
        let check = |name: &str, designs: [PeDesign; 3]| {
            let areas: Vec<f64> = designs
                .iter()
                .map(|d| d.synthesize(0.5).unwrap().area_um2)
                .collect();
            assert!(
                areas[0] < areas[1] && areas[1] < areas[2],
                "{name}: areas not strictly increasing: {areas:?}"
            );
        };
        for style in PeStyle::ALL {
            check(style.name(), ladder.map(|p| style.design_for(p)));
        }
        use tpe_sim::array::ClassicArch;
        for arch in ClassicArch::ALL {
            check(
                &format!("baseline {arch:?}"),
                ladder.map(|p| PeStyle::dense_baseline_pe_for(arch, p)),
            );
            check(
                &format!("OPT1 {arch:?}"),
                ladder.map(|p| PeStyle::Opt1.dense_opt1_pe_for(arch, p)),
            );
        }
    }

    /// W8 reproduces the historical composition bit-for-bit: the width-free
    /// constructors are pure delegations.
    #[test]
    fn w8_is_the_default_composition() {
        for style in PeStyle::ALL {
            let d = style.design_for(Precision::W8);
            let d8 = style.design();
            assert_eq!(d.state_bits, d8.state_bits, "{}", style.name());
            assert_eq!(d.combinational, d8.combinational, "{}", style.name());
            let (a, b) = (
                d.synthesize(1.0).map(|r| r.area_um2),
                d8.synthesize(1.0).map(|r| r.area_um2),
            );
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    /// The asymmetric W8xW4 preset lands between W4 and W8 for OPT3, whose
    /// PE sees both operand widths (the in-PE encoder covers the 8-bit
    /// multiplicand while CPPG/mux/tree shrink to the 4-bit activations).
    #[test]
    fn asymmetric_preset_interpolates() {
        let area = |p: Precision| {
            PeStyle::Opt3
                .design_for(p)
                .synthesize(0.5)
                .unwrap()
                .area_um2
        };
        let (w4, w8x4, w8) = (
            area(Precision::W4),
            area(Precision::W8X4),
            area(Precision::W8),
        );
        assert!(w4 < w8x4 && w8x4 < w8, "{w4} < {w8x4} < {w8} violated");
    }
}
