#![warn(missing_docs)]

//! # tpe-core
//!
//! The paper's primary contribution, as an executable Rust library:
//!
//! * [`notation`] — the **compute-centric loop-nest notation** that exposes
//!   the bit-weight (BW) dimension inside MACs. Loop nests are built from
//!   the hardware primitives of Tables IV & VI (`encode`, `map`, `shift`,
//!   `half_reduce`, `add`, `accumulate`, `sparse`, `sync`), pretty-print to
//!   the paper's Figure 4–8 pseudocode, and — crucially — **execute**: an
//!   interpreter runs any nest against real INT8 matrices, so every
//!   transformation is verified semantics-preserving, not just asserted.
//! * [`transform`](notation::transform) — the legality-checked rewrites of
//!   §III-B/§IV: reversing `add`/`accumulate` into compressor accumulation
//!   (OPT1), converting BW from spatial to temporal and hoisting `shift`
//!   (OPT2), sparse iteration over encoded digits (OPT3), and extracting
//!   the shared encoder out of the PE array (OPT4).
//! * [`arch`] — the five PE microarchitectures (baseline MAC, OPT1, OPT2,
//!   OPT3, OPT4C, OPT4E) with their `tpe-cost` designs and array-level
//!   assembly, reproducing Figure 9 and Table VII.
//! * [`analytic`] — the synchronization-time model of Eqs. 7–8 (binomial
//!   `E[Tsync]`) and the NumPPs enumerations behind Tables II & III.
//! * [`baselines`] — the published bit-slice accelerators the paper
//!   compares against (Laconic, Bitlet, Sibia, Bitwave, HUAA), normalized
//!   to 28 nm exactly as the paper does.

pub mod analytic;
pub mod arch;
pub mod baselines;
pub mod notation;

pub use arch::{ArchKind, ArchModel};
pub use notation::LoopNest;
