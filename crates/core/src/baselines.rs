//! Published bit-slice baselines (Table VII's comparison set).
//!
//! The paper does not re-implement Laconic, Bitlet, Sibia or Bitwave; it
//! extracts their PE-array area/power breakdowns from the original papers
//! and normalizes non-28nm results to 28 nm via the TSMC scaling factors.
//! We reproduce exactly that methodology: published numbers + process
//! normalization + the behavioural throughput rule of each design.

use tpe_cost::anchors::{ArrayAnchor, TABLE7_OTHERS};
use tpe_cost::process::ProcessNode;

/// How a baseline's PEs consume operand bits per cycle — determines its
/// cycles-per-MAC on a given workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThroughputRule {
    /// Parallel MAC: one MAC per lane per cycle regardless of data.
    DensePerCycle,
    /// Bit-serial over non-zero slices of one operand (effective cycles =
    /// average NumPPs under the listed radix-2 representation).
    SerialNonzeroSlices {
        /// Average slices per operand on normal data.
        avg_slices: f64,
    },
    /// Bit-serial over all slices with slice-group skipping (Sibia-like):
    /// fixed slices per operand.
    FixedSlices {
        /// Slices per operand.
        slices: f64,
    },
}

/// One published baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Name as in Table VII.
    pub name: &'static str,
    /// The Table VII row (already 28nm-normalized by the paper).
    pub anchor: ArrayAnchor,
    /// The process the original paper reported in.
    pub original_node: ProcessNode,
    /// Behavioural throughput rule.
    pub rule: ThroughputRule,
}

/// The four published bit-slice baselines plus the dense TPU reference.
pub fn all() -> Vec<Baseline> {
    let anchor = |name: &str| {
        *TABLE7_OTHERS
            .iter()
            .find(|a| a.name == name)
            .expect("anchor present")
    };
    vec![
        Baseline {
            name: "TPU",
            anchor: anchor("TPU"),
            original_node: ProcessNode::SMIC28,
            rule: ThroughputRule::DensePerCycle,
        },
        Baseline {
            name: "Laconic",
            anchor: anchor("Laconic"),
            original_node: ProcessNode::N65,
            // Laconic serializes over non-zero *term pairs* of both
            // operands' signed-digit forms.
            rule: ThroughputRule::SerialNonzeroSlices { avg_slices: 2.0 },
        },
        Baseline {
            name: "Bitlet",
            anchor: anchor("Bitlet"),
            original_node: ProcessNode::N28,
            rule: ThroughputRule::SerialNonzeroSlices { avg_slices: 3.5 },
        },
        Baseline {
            name: "Sibia",
            anchor: anchor("Sibia"),
            original_node: ProcessNode::N28,
            rule: ThroughputRule::FixedSlices { slices: 2.0 },
        },
        Baseline {
            name: "Bitwave",
            anchor: anchor("Bitwave"),
            original_node: ProcessNode::N16,
            rule: ThroughputRule::SerialNonzeroSlices { avg_slices: 4.0 },
        },
    ]
}

/// Table VII's bit-slice comparison convention: efficiencies expressed
/// relative to Laconic (the paper's chosen baseline, ×1.00).
#[derive(Debug, Clone, PartialEq)]
pub struct RelativeRow {
    /// Design name.
    pub name: String,
    /// Energy efficiency in TOPS/W.
    pub ee: f64,
    /// EE relative to Laconic.
    pub ee_vs_laconic: f64,
    /// Area efficiency in TOPS/mm².
    pub ae: f64,
    /// AE relative to Laconic.
    pub ae_vs_laconic: f64,
}

/// Computes the relative row for any (name, EE, AE) against Laconic.
pub fn vs_laconic(name: impl Into<String>, ee: f64, ae: f64) -> RelativeRow {
    let lac = all()
        .into_iter()
        .find(|b| b.name == "Laconic")
        .expect("laconic");
    let lac_ee = lac.anchor.peak_tops / lac.anchor.power_w;
    let lac_ae = lac.anchor.peak_tops / (lac.anchor.area_um2 / 1e6);
    RelativeRow {
        name: name.into(),
        ee,
        ee_vs_laconic: ee / lac_ee,
        ae,
        ae_vs_laconic: ae / lac_ae,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's headline: OPT4E is ×12.10 energy efficiency and ×2.85
    /// area efficiency versus Laconic. Check the arithmetic on the paper's
    /// own Table VII numbers.
    #[test]
    fn opt4e_vs_laconic_paper_arithmetic() {
        let r = vs_laconic("OPT4E", 8.11, 10.73);
        assert!(
            (r.ee_vs_laconic - 12.10).abs() < 0.15,
            "EE ratio {}",
            r.ee_vs_laconic
        );
        assert!(
            (r.ae_vs_laconic - 2.85).abs() < 0.05,
            "AE ratio {}",
            r.ae_vs_laconic
        );
    }

    /// Bitwave's published EE is ×22.04 Laconic's (Table VII). Note the
    /// paper's own table rounds Bitwave's power to 0.01 W while its printed
    /// EE of 14.77 TOPS/W implies 14.9 mW — we check against the printed
    /// efficiency, as the paper's ratio column does.
    #[test]
    fn published_ordering_preserved() {
        let r = vs_laconic("Bitwave", 14.77, 0.25);
        assert!((r.ee_vs_laconic - 22.04).abs() < 0.1, "{}", r.ee_vs_laconic);
    }

    /// All baselines carry consistent anchors.
    #[test]
    fn anchors_present_and_positive() {
        for b in all() {
            assert!(b.anchor.area_um2 > 0.0 && b.anchor.power_w > 0.0);
            assert!(b.anchor.peak_tops > 0.0, "{}", b.name);
        }
    }
}
