//! NumPPs enumerations: the computations behind Tables II and III.

use tpe_arith::encode::EncodingKind;
use tpe_workloads::distributions::normal_int8_matrix;
use tpe_workloads::sparsity::avg_num_pps;

/// Table II: exhaustive NumPPs histogram over the INT8 range for one
/// encoder. Index = NumPPs, value = how many of the 256 values produce it.
pub fn int8_histogram(kind: EncodingKind) -> Vec<usize> {
    let enc = kind.encoder();
    let mut hist = vec![0usize; 9];
    for v in i8::MIN..=i8::MAX {
        hist[enc.num_pps(i64::from(v), 8)] += 1;
    }
    hist
}

/// Fraction of INT8 values generating at most `limit` partial products
/// (§II-C quotes 71.9% for EN-T and 68.4% for MBE at `limit = 3`).
pub fn fraction_at_most(kind: EncodingKind, limit: usize) -> f64 {
    let hist = int8_histogram(kind);
    let le: usize = hist.iter().take(limit + 1).sum();
    le as f64 / 256.0
}

/// Average NumPPs over the full INT8 range.
pub fn int8_average(kind: EncodingKind) -> f64 {
    let hist = int8_histogram(kind);
    let total: usize = hist.iter().enumerate().map(|(n, c)| n * c).sum();
    total as f64 / 256.0
}

/// One Table III cell: average NumPPs of a `size × size` N(0, σ) matrix
/// (with the paper's per-encoding cycle conventions).
pub fn table3_cell(kind: EncodingKind, sigma: f64, size: usize, seed: u64) -> f64 {
    let m = normal_int8_matrix(size, size, sigma, seed);
    avg_num_pps(&m, kind)
}

/// The whole Table III: rows = encodings, columns = σ ∈ {0.5, 1.0, 2.5, 5.0}.
pub fn table3(size: usize, seed: u64) -> Vec<(EncodingKind, [f64; 4])> {
    let sigmas = [0.5, 1.0, 2.5, 5.0];
    [
        EncodingKind::EnT,
        EncodingKind::Mbe,
        EncodingKind::BitSerialSignMagnitude,
        EncodingKind::BitSerialComplement,
    ]
    .into_iter()
    .map(|kind| {
        let mut row = [0.0; 4];
        for (i, &s) in sigmas.iter().enumerate() {
            row[i] = table3_cell(kind, s, size, seed + i as u64);
        }
        (kind, row)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II, all three rows, exactly as printed in the paper.
    #[test]
    fn table2_exact() {
        let mbe = int8_histogram(EncodingKind::Mbe);
        assert_eq!(&mbe[..5], &[1, 12, 54, 108, 81]);
        let ent = int8_histogram(EncodingKind::EnT);
        assert_eq!(&ent[..5], &[1, 15, 60, 108, 72]);
        let bs = int8_histogram(EncodingKind::BitSerialComplement);
        assert_eq!(bs[8] + bs[7], 9);
        assert_eq!(bs[6] + bs[5], 84);
        assert_eq!(bs[4], 70);
        assert_eq!(bs[3] + bs[2], 84);
        assert_eq!(bs[1] + bs[0], 9);
    }

    /// §II-C's percentage quotes.
    #[test]
    fn low_pp_fractions_match_paper() {
        assert!((fraction_at_most(EncodingKind::EnT, 3) - 0.719).abs() < 0.001);
        assert!((fraction_at_most(EncodingKind::Mbe, 3) - 0.684).abs() < 0.001);
        assert!((fraction_at_most(EncodingKind::BitSerialComplement, 3) - 0.363).abs() < 0.001);
    }

    /// Uniform INT8 averages: bit-serial = 4.0 exactly; MBE = 3.0; EN-T ≈
    /// 2.918.
    #[test]
    fn int8_averages() {
        assert!((int8_average(EncodingKind::BitSerialComplement) - 4.0).abs() < 1e-9);
        assert!((int8_average(EncodingKind::Mbe) - 3.0).abs() < 1e-9);
        assert!((int8_average(EncodingKind::EnT) - 747.0 / 256.0).abs() < 1e-9);
    }

    /// Table III shape: EN-T < MBE < bit-serial(M) < bit-serial(C), flat in
    /// σ.
    #[test]
    fn table3_ordering() {
        let t = table3(192, 7);
        let row = |k: EncodingKind| t.iter().find(|(kk, _)| *kk == k).unwrap().1;
        let ent = row(EncodingKind::EnT);
        let mbe = row(EncodingKind::Mbe);
        let bsm = row(EncodingKind::BitSerialSignMagnitude);
        let bsc = row(EncodingKind::BitSerialComplement);
        for i in 0..4 {
            assert!(ent[i] < mbe[i], "σ column {i}");
            assert!(mbe[i] < bsm[i], "σ column {i}");
            assert!(bsm[i] < bsc[i], "σ column {i}");
        }
    }
}
