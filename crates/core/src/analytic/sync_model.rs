//! The column-synchronization model of §IV-C (Eqs. 7 and 8).
//!
//! Let the number of non-zero partial products a column processes between
//! barriers be `X ~ B(K, 1 − s)` where `s` is the encoding sparsity. With
//! `MP` i.i.d. columns, the barrier interval is
//! `Tsync = max(T_1, …, T_MP)` with CDF
//!
//! ```text
//! F(t) = Π_i P(T_i ≤ t) = [ Σ_{j≤t} C(K, j) s^(K−j) (1−s)^j ]^MP     (Eq. 7)
//! ```
//!
//! and expectation
//!
//! ```text
//! E[Tsync] = K − Σ_{t=1..K−1} F(t)                                   (Eq. 8)
//! ```
//!
//! The paper's worked example: a middle layer of ResNet-18 lowered through
//! img2col has reduction dimension K = 576; EN-T-encoded weights have
//! sparsity s = 0.38; with column-granularity synchronization E\[Tsync\] is
//! 381 — a ≈33.84% time saving over the dense 576-cycle reduction.
//!
//! [`expected_tsync`] evaluates the formula in a numerically stable way
//! (log-space binomial terms, running CDF); [`simulate_tsync`] cross-checks
//! it by Monte Carlo.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// ln(n!) via the `ln`-sum (exact enough for K ≤ 10⁵).
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

/// Binomial pmf `P(X = j)` for `X ~ B(k, p)`, computed in log space.
pub fn binomial_pmf(k: u64, p: f64, j: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
    if j > k {
        return 0.0;
    }
    if p == 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if j == k { 1.0 } else { 0.0 };
    }
    let ln = ln_factorial(k) - ln_factorial(j) - ln_factorial(k - j)
        + j as f64 * p.ln()
        + (k - j) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// The CDF `F(t)` of Eq. 7: probability that all `mp` columns finish
/// within `t` cycles.
pub fn tsync_cdf(k: u64, sparsity: f64, mp: u32, t: u64) -> f64 {
    let p = 1.0 - sparsity;
    let mut single = 0.0;
    for j in 0..=t.min(k) {
        single += binomial_pmf(k, p, j);
    }
    single.min(1.0).powi(mp as i32)
}

/// `E[Tsync]` of Eq. 8.
pub fn expected_tsync(k: u64, sparsity: f64, mp: u32) -> f64 {
    assert!(k > 0 && mp > 0);
    let p = 1.0 - sparsity;
    // Running single-column CDF; E[max] = K − Σ_{t<K} F(t).
    let mut single = binomial_pmf(k, p, 0);
    let mut sum_f = single.min(1.0).powi(mp as i32); // t = 0 term
    for t in 1..k {
        single += binomial_pmf(k, p, t);
        sum_f += single.min(1.0).powi(mp as i32);
    }
    k as f64 - sum_f
}

/// Expected single-column time `E[T_i] = K(1 − s)` — the no-synchronization
/// lower bound.
pub fn expected_single(k: u64, sparsity: f64) -> f64 {
    k as f64 * (1.0 - sparsity)
}

/// The fractional time saving of sparse execution with column sync,
/// relative to the dense `K`-cycle reduction: `1 − E[Tsync]/K`.
pub fn saving_vs_dense(k: u64, sparsity: f64, mp: u32) -> f64 {
    1.0 - expected_tsync(k, sparsity, mp) / k as f64
}

/// Monte-Carlo estimate of `E[Tsync]` (cross-validation of the closed
/// form).
pub fn simulate_tsync(k: u64, sparsity: f64, mp: u32, trials: u32, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 1.0 - sparsity;
    let mut total = 0u64;
    for _ in 0..trials {
        let mut max = 0u64;
        for _ in 0..mp {
            let mut t = 0u64;
            for _ in 0..k {
                if rng.random::<f64>() < p {
                    t += 1;
                }
            }
            max = max.max(t);
        }
        total += max;
    }
    total as f64 / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §IV-C worked example: K = 576, s = 0.38, column-level
    /// sync ⇒ E[Tsync] ≈ 381, a ≈33.84% saving.
    #[test]
    fn resnet18_worked_example() {
        let e = expected_tsync(576, 0.38, 32);
        assert!((e - 381.0).abs() < 3.0, "E[Tsync] = {e}, paper says 381");
        let saving = saving_vs_dense(576, 0.38, 32);
        assert!(
            (saving - 0.3384).abs() < 0.006,
            "saving {saving}, paper 33.84%"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        for (k, p) in [(10u64, 0.3), (100, 0.62), (576, 0.5)] {
            let total: f64 = (0..=k).map(|j| binomial_pmf(k, p, j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "k={k} p={p}: {total}");
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut last = 0.0;
        for t in 0..=576 {
            let f = tsync_cdf(576, 0.38, 32, t);
            assert!((0.0..=1.0 + 1e-12).contains(&f));
            assert!(f + 1e-12 >= last, "CDF must not decrease at t={t}");
            last = f;
        }
        assert!((tsync_cdf(576, 0.38, 32, 576) - 1.0).abs() < 1e-9);
    }

    /// E[max of MP columns] exceeds the single-column mean and grows with
    /// MP — the cost of synchronization.
    #[test]
    fn expectation_grows_with_columns() {
        let single = expected_single(576, 0.38);
        let e1 = expected_tsync(576, 0.38, 1);
        let e32 = expected_tsync(576, 0.38, 32);
        let e256 = expected_tsync(576, 0.38, 256);
        assert!((e1 - single).abs() < 0.5, "MP=1 max is just the mean");
        assert!(e32 > e1 && e256 > e32);
    }

    /// Longer reductions shrink the *relative* sync overhead (§VI: "for
    /// matrices with higher vector dimensions, the variance … gradually
    /// decreases").
    #[test]
    fn relative_overhead_shrinks_with_k() {
        let rel = |k: u64| expected_tsync(k, 0.4, 32) / expected_single(k, 0.4) - 1.0;
        assert!(rel(64) > rel(576));
        assert!(rel(576) > rel(4096));
        assert!(
            rel(4096) < 0.03,
            "big-K overhead should be tiny: {}",
            rel(4096)
        );
    }

    /// Monte Carlo agrees with the closed form within sampling error.
    #[test]
    fn monte_carlo_validates_closed_form() {
        let analytic = expected_tsync(128, 0.38, 8);
        let mc = simulate_tsync(128, 0.38, 8, 400, 42);
        assert!(
            (analytic - mc).abs() < 1.5,
            "analytic {analytic} vs Monte-Carlo {mc}"
        );
    }

    #[test]
    fn degenerate_sparsities() {
        // Fully sparse: nothing to do.
        assert!(expected_tsync(100, 1.0, 16) < 1e-9);
        // Fully dense: every column takes exactly K.
        assert!((expected_tsync(100, 0.0, 16) - 100.0).abs() < 1e-9);
    }
}
