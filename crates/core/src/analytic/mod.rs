//! Analytic models: closed-form reproductions of the paper's statistical
//! arguments, validated against the bit-exact simulators.
//!
//! * [`sync_model`] — the §IV-C synchronization-time model: a column's
//!   round time is a binomial sum over digit counts, and the expected
//!   barrier time is the expectation of the *maximum* over MP columns
//!   (`Tsync = max(T_1 … T_MP)`, Eqs. 7–8). This is what predicts the
//!   381-cycle ResNet-18 example and the utilization curves of
//!   Figure 11.
//! * [`numpps`] — exhaustive NumPPs enumerations over the INT8 range for
//!   every encoder: the average partial-product counts of Table II
//!   (uniform) and Table III (quantized-normal), the paper's central
//!   cost metric.
//! * [`precision`] — how digit counts and serial cycle counts scale with
//!   operand width (the INT4/INT8/INT16 sensitivity the §V sweeps
//!   touch).

pub mod numpps;
pub mod precision;
pub mod sync_model;
