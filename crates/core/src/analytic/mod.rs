//! Analytic models: the synchronization-time expectation of Eqs. 7–8 and
//! the NumPPs enumerations behind Tables II and III.

pub mod numpps;
pub mod precision;
pub mod sync_model;
