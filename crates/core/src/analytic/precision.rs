//! Precision generalization: the paper's INT8 digit statistics, extended
//! to INT4 and INT16.
//!
//! Every encoder in `tpe-arith` is width-generic, so the NumPPs machinery
//! behind Tables II/III extends directly to other operand precisions. The
//! scaling law the serial architectures inherit: a `w`-bit operand has
//! ⌈w/2⌉ radix-4 digit slots, and EN-T's digit sparsity on
//! quantized-normal data stays roughly constant (~0.44), so serial
//! cycles/MAC grow linearly with width — while a parallel MAC's area grows
//! quadratically in the multiplier and linearly in the accumulator. This
//! is the quantitative backdrop for the paper's note that bit-slice
//! designs favor low precision.

use tpe_arith::encode::EncodingKind;
use tpe_workloads::distributions::normal_int8_matrix;
use tpe_workloads::sparsity::avg_num_pps;

/// Exhaustive NumPPs histogram over the full `width`-bit two's-complement
/// range (width ≤ 12 to keep enumeration cheap).
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 12.
pub fn histogram(kind: EncodingKind, width: u32) -> Vec<usize> {
    assert!((1..=12).contains(&width), "enumeration width {width}");
    let enc = kind.encoder();
    let lo = -(1i64 << (width - 1));
    let hi = (1i64 << (width - 1)) - 1;
    let mut hist = vec![0usize; width as usize + 2];
    for v in lo..=hi {
        hist[enc.num_pps(v, width)] += 1;
    }
    hist
}

/// Average NumPPs over the full `width`-bit range.
pub fn exhaustive_average(kind: EncodingKind, width: u32) -> f64 {
    let hist = histogram(kind, width);
    let total: usize = hist.iter().enumerate().map(|(n, c)| n * c).sum();
    total as f64 / f64::from(1u32 << width)
}

/// Average NumPPs of quantized-normal data at a given operand width:
/// N(0, 1) samples symmetrically quantized to the full signed range
/// (max-abs ≈ 4.2σ, matching the INT8 pipeline's effective scale).
pub fn sampled_average(kind: EncodingKind, width: u32, seed: u64) -> f64 {
    assert!((2..=16).contains(&width));
    if width == 8 {
        return avg_num_pps(&normal_int8_matrix(256, 256, 1.0, seed), kind);
    }
    let enc = kind.encoder();
    let mut sampler = tpe_workloads::distributions::NormalSampler::new(1.0, seed);
    let max = ((1i64 << (width - 1)) - 1) as f64;
    let scale = max / 4.2;
    let samples = 65_536usize;
    let total: usize = (0..samples)
        .map(|_| {
            let v = (sampler.sample() * scale).round().clamp(-max, max) as i64;
            enc.num_pps(v, width)
        })
        .sum();
    total as f64 / samples as f64
}

/// Serial cycles/MAC relative to INT8 — the linear-width scaling law.
pub fn relative_serial_cost(kind: EncodingKind, width: u32, seed: u64) -> f64 {
    sampled_average(kind, width, seed) / sampled_average(kind, 8, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// INT4: the EN-T histogram is exhaustively checkable — 16 values,
    /// 2 digit slots, minimal-weight counts.
    #[test]
    fn int4_histograms() {
        let ent = histogram(EncodingKind::EnT, 4);
        // 0 → 0 PPs; ±1, ±2, ±4, ±8, (±3? no: 3 = 4−1 two digits) → count
        // singles: ±1, ±2, ±4, −8, +3? no. Enumerate: coeff·4^k forms.
        assert_eq!(ent.iter().sum::<usize>(), 16);
        assert_eq!(ent[0], 1, "only zero has no digits");
        // Every INT4 value needs at most 2 digits.
        assert_eq!(ent[3..].iter().sum::<usize>(), 0);
        let mbe = histogram(EncodingKind::Mbe, 4);
        assert!(
            exhaustive_average(EncodingKind::EnT, 4)
                <= exhaustive_average(EncodingKind::Mbe, 4) + 1e-12,
            "EN-T ≤ MBE at INT4: {ent:?} vs {mbe:?}"
        );
    }

    /// The INT8 column of this module agrees with Table II's machinery.
    #[test]
    fn int8_consistency() {
        assert_eq!(
            histogram(EncodingKind::EnT, 8)[..5],
            crate::analytic::numpps::int8_histogram(EncodingKind::EnT)[..5]
        );
        assert!((exhaustive_average(EncodingKind::EnT, 8) - 747.0 / 256.0).abs() < 1e-12);
    }

    /// Serial cost scales roughly linearly with operand width for EN-T
    /// (digit slots = ⌈w/2⌉ at near-constant digit sparsity).
    #[test]
    fn linear_width_scaling() {
        let r16 = relative_serial_cost(EncodingKind::EnT, 16, 5);
        assert!(
            (1.6..2.4).contains(&r16),
            "INT16 should cost ≈2× INT8 serially, got {r16}"
        );
        let r4 = relative_serial_cost(EncodingKind::EnT, 4, 5);
        assert!((0.3..0.8).contains(&r4), "INT4 ≈ half of INT8, got {r4}");
    }

    /// Ordering EN-T ≤ MBE holds at every tested precision.
    #[test]
    fn encoder_ordering_holds_across_widths() {
        for w in [4u32, 6, 8, 10, 12] {
            assert!(
                exhaustive_average(EncodingKind::EnT, w)
                    <= exhaustive_average(EncodingKind::Mbe, w) + 1e-12,
                "width {w}"
            );
            assert!(
                exhaustive_average(EncodingKind::Csd, w)
                    <= exhaustive_average(EncodingKind::EnT, w) + 1e-12,
                "CSD minimality at width {w}"
            );
        }
    }
}
