//! Static legality checking for loop nests (§III-B).
//!
//! The checker walks a nest tracking loop scope and register definitions
//! with their *value kinds* (digit / partial product / word), enforcing the
//! paper's component-position rules:
//!
//! * `encode` needs `m`, `k` and `bw` in scope (it reads a digit of
//!   `A[m][k]`) — and never `n`: encoding is N-invariant (Eq. 6).
//! * `map` needs `k`, `n` and a digit-valued selector; it is the
//!   non-commutative ♢ and must consume an encoder output.
//! * `shift` of a word requires `bw` in scope (the shift amount is the bit
//!   weight); shifting a partial product carries its own weight.
//! * `half_reduce` / `accumulate` keys must be resolvable in scope.
//! * `store` needs `m` and `n`.
//!
//! A nest that passes [`check`] and executes without [`super::interp`]
//! errors is a well-formed microarchitecture description.

use super::{LoopNest, Op, Stmt};
use std::collections::HashMap;

/// The statically tracked kind of a register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Encoder digit.
    Digit,
    /// Selected, unshifted partial product (knows its weight).
    Pp,
    /// Plain word.
    Word,
}

/// A legality violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegalityError {
    /// An op needed a dimension family that no enclosing loop provides.
    MissingDim {
        /// Offending primitive.
        op: &'static str,
        /// Required dimension family.
        dim: &'static str,
    },
    /// A register was read before any write.
    UndefinedRegister(String),
    /// A register had the wrong kind for the consuming op.
    KindMismatch {
        /// Offending primitive.
        op: &'static str,
        /// What it needed.
        want: ValueKind,
        /// What it got.
        got: ValueKind,
    },
    /// An accumulator key referenced an unresolvable name.
    UnresolvableKey(String),
}

impl std::fmt::Display for LegalityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LegalityError::MissingDim { op, dim } => write!(f, "`{op}` requires dim `{dim}`"),
            LegalityError::UndefinedRegister(r) => write!(f, "register `{r}` read before write"),
            LegalityError::KindMismatch { op, want, got } => {
                write!(f, "`{op}` wants {want:?}, got {got:?}")
            }
            LegalityError::UnresolvableKey(k) => write!(f, "key `{k}` not in scope"),
        }
    }
}

struct Checker {
    scope: Vec<String>,
    regs: HashMap<String, ValueKind>,
    errors: Vec<LegalityError>,
}

impl Checker {
    fn has_family(&self, family: &'static str) -> bool {
        let members: &[&str] = match family {
            "m" => &["m", "mt", "mp"],
            "n" => &["n", "nt", "np"],
            "k" => &["k", "kt", "kp", "k1", "k2"],
            "bw" => &["bw", "bwt", "bwp"],
            _ => unreachable!(),
        };
        self.scope.iter().any(|d| members.contains(&d.as_str()))
    }

    fn need(&mut self, op: &'static str, family: &'static str) {
        if !self.has_family(family) {
            self.errors
                .push(LegalityError::MissingDim { op, dim: family });
        }
    }

    fn read(&mut self, op: &'static str, reg: &str, want: Option<ValueKind>) -> Option<ValueKind> {
        match self.regs.get(reg) {
            None => {
                self.errors
                    .push(LegalityError::UndefinedRegister(reg.to_string()));
                None
            }
            Some(&kind) => {
                if let Some(w) = want {
                    if w != kind {
                        self.errors.push(LegalityError::KindMismatch {
                            op,
                            want: w,
                            got: kind,
                        });
                    }
                }
                Some(kind)
            }
        }
    }

    fn check_key(&mut self, key: &[String]) {
        for name in key {
            let ok = match name.as_str() {
                "m" | "n" | "k" | "bw" => self.has_family(match name.as_str() {
                    "m" => "m",
                    "n" => "n",
                    "k" => "k",
                    _ => "bw",
                }),
                other => self.scope.iter().any(|d| d == other),
            };
            if !ok {
                self.errors
                    .push(LegalityError::UnresolvableKey(name.clone()));
            }
        }
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::For { dim, body } => {
                    self.scope.push(dim.name.clone());
                    self.walk(body);
                    self.scope.pop();
                }
                Stmt::ForSparseDigits { digit_reg, body } => {
                    // The sparse iterator performs the encode: needs m, k.
                    self.need("for_sparse_digits", "m");
                    self.need("for_sparse_digits", "k");
                    self.regs.insert(digit_reg.clone(), ValueKind::Digit);
                    self.walk(body);
                }
                Stmt::Op(op) => self.check_op(op),
            }
        }
    }

    fn check_op(&mut self, op: &Op) {
        match op {
            Op::Encode { dst } => {
                self.need("encode", "m");
                self.need("encode", "k");
                self.need("encode", "bw");
                self.regs.insert(dst.clone(), ValueKind::Digit);
            }
            Op::Map { dst, enc } => {
                self.need("map", "k");
                self.need("map", "n");
                self.read("map", enc, Some(ValueKind::Digit));
                self.regs.insert(dst.clone(), ValueKind::Pp);
            }
            Op::Shift { dst, src } => {
                if let Some(kind) = self.read("shift", src, None) {
                    match kind {
                        ValueKind::Pp => {}
                        ValueKind::Word => self.need("shift", "bw"),
                        ValueKind::Digit => self.errors.push(LegalityError::KindMismatch {
                            op: "shift",
                            want: ValueKind::Pp,
                            got: ValueKind::Digit,
                        }),
                    }
                }
                self.regs.insert(dst.clone(), ValueKind::Word);
            }
            Op::HalfReduce { src, key, .. } => {
                if let Some(kind) = self.read("half_reduce", src, None) {
                    if kind == ValueKind::Digit {
                        self.errors.push(LegalityError::KindMismatch {
                            op: "half_reduce",
                            want: ValueKind::Word,
                            got: kind,
                        });
                    }
                }
                self.check_key(key);
            }
            Op::AddResolve { dst, key, .. } => {
                self.check_key(key);
                self.regs.insert(dst.clone(), ValueKind::Word);
            }
            Op::Accumulate { src, key, .. } => {
                self.read("accumulate", src, Some(ValueKind::Word));
                self.check_key(key);
            }
            Op::ReadAcc { dst, key, .. } => {
                self.check_key(key);
                self.regs.insert(dst.clone(), ValueKind::Word);
            }
            Op::StoreC { src } => {
                self.read("store", src, Some(ValueKind::Word));
                self.need("store", "m");
                self.need("store", "n");
            }
            Op::Sync => {}
        }
    }
}

/// Checks a nest against the structural legality rules.
///
/// # Errors
///
/// Returns all violations found (empty-scope reads, kind mismatches,
/// missing dimensions).
pub fn check(nest: &LoopNest) -> Result<(), Vec<LegalityError>> {
    let mut checker = Checker {
        scope: Vec::new(),
        regs: HashMap::new(),
        errors: Vec::new(),
    };
    checker.walk(&nest.body);
    if checker.errors.is_empty() {
        Ok(())
    } else {
        Err(checker.errors)
    }
}

/// Whether the nest's encoder is shared across the **spatial** N dimension
/// (the OPT4 property: no `encode` or sparse iterator under a parallel
/// n-loop, so one encoder instance serves all NP PEs of a column).
/// Temporal n-tiling does not duplicate hardware, so `nt` loops don't
/// count.
pub fn encoder_shared_over_n(nest: &LoopNest) -> bool {
    fn walk(stmts: &[Stmt], under_np: bool) -> bool {
        stmts.iter().all(|s| match s {
            Stmt::For { dim, body } => walk(
                body,
                under_np || (dim.name.starts_with('n') && dim.kind == super::DimKind::Spatial),
            ),
            Stmt::ForSparseDigits { body, .. } => !under_np && walk(body, under_np),
            Stmt::Op(Op::Encode { .. }) => !under_np,
            Stmt::Op(_) => true,
        })
    }
    walk(&nest.body, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::nests;
    use tpe_arith::encode::EncodingKind;

    /// Every nest in the derivation chain is statically legal.
    #[test]
    fn all_paper_nests_pass() {
        for nest in [
            nests::traditional_mac(4, 4, 8, EncodingKind::Mbe),
            nests::opt1(4, 4, 8, EncodingKind::Mbe),
            nests::opt2(4, 4, 8, EncodingKind::EnT),
            nests::opt3(4, 4, 8, EncodingKind::EnT),
            nests::opt4(4, 4, 8, EncodingKind::EnT),
        ] {
            check(&nest).unwrap_or_else(|e| panic!("{}: {e:?}", nest.name));
        }
    }

    /// Only OPT4 achieves the shared-encoder property.
    #[test]
    fn encoder_sharing_distinguishes_opt4() {
        assert!(!encoder_shared_over_n(&nests::traditional_mac(
            4,
            4,
            8,
            EncodingKind::EnT
        )));
        assert!(!encoder_shared_over_n(&nests::opt3(
            4,
            4,
            8,
            EncodingKind::EnT
        )));
        assert!(encoder_shared_over_n(&nests::opt4(
            4,
            4,
            8,
            EncodingKind::EnT
        )));
    }

    /// A map outside any n loop is flagged.
    #[test]
    fn map_without_n_is_illegal() {
        use crate::notation::{Dim, LoopNest, Op, Stmt};
        let nest = LoopNest {
            name: "bad".into(),
            encoding: EncodingKind::Mbe,
            body: vec![Stmt::For {
                dim: Dim::temporal("m", 1),
                body: vec![Stmt::For {
                    dim: Dim::temporal("k", 1),
                    body: vec![Stmt::For {
                        dim: Dim::spatial("bw", 4),
                        body: vec![
                            Stmt::Op(Op::Encode { dst: "e".into() }),
                            Stmt::Op(Op::Map {
                                dst: "p".into(),
                                enc: "e".into(),
                            }),
                        ],
                    }],
                }],
            }],
        };
        let errs = check(&nest).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            LegalityError::MissingDim {
                op: "map",
                dim: "n"
            }
        )));
    }

    /// Shifting a raw word without a bw dimension in scope is flagged.
    #[test]
    fn word_shift_needs_bw() {
        use crate::notation::{Dim, LoopNest, Op, Stmt};
        let nest = LoopNest {
            name: "bad-shift".into(),
            encoding: EncodingKind::Mbe,
            body: vec![Stmt::For {
                dim: Dim::temporal("m", 1),
                body: vec![
                    Stmt::Op(Op::AddResolve {
                        dst: "w".into(),
                        acc: "t".into(),
                        key: vec![],
                    }),
                    Stmt::Op(Op::Shift {
                        dst: "s".into(),
                        src: "w".into(),
                    }),
                ],
            }],
        };
        let errs = check(&nest).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            LegalityError::MissingDim {
                op: "shift",
                dim: "bw"
            }
        )));
    }

    /// Feeding a digit straight into the compressor is a kind mismatch.
    #[test]
    fn digit_into_half_reduce_is_flagged() {
        use crate::notation::{Dim, LoopNest, Op, Stmt};
        let nest = LoopNest {
            name: "bad-kind".into(),
            encoding: EncodingKind::Mbe,
            body: vec![Stmt::For {
                dim: Dim::temporal("m", 1),
                body: vec![Stmt::For {
                    dim: Dim::temporal("k", 1),
                    body: vec![Stmt::For {
                        dim: Dim::spatial("bw", 4),
                        body: vec![
                            Stmt::Op(Op::Encode { dst: "e".into() }),
                            Stmt::Op(Op::HalfReduce {
                                acc: "t".into(),
                                src: "e".into(),
                                key: vec!["m".into()],
                            }),
                        ],
                    }],
                }],
            }],
        };
        let errs = check(&nest).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, LegalityError::KindMismatch { .. })));
    }
}
