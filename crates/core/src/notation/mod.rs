//! The compute-centric loop-nest notation (§III of the paper).
//!
//! A [`LoopNest`] describes a TPE's microarchitecture as nested loops over
//! *dimensions* — the GEMM triple (M, N, K), their spatial/temporal splits
//! (MP/MT, NP/NT, KP/KT) and, uniquely, the **bit-weight dimension BW**
//! uncovered by Eq. 1 — whose bodies are hardware *primitives* (Table IV):
//!
//! | primitive | hardware |
//! |---|---|
//! | `encode` | Booth/EN-T digit encoder |
//! | `map` | CPPG + multiplexer (the ♢ selection of Eq. 6) |
//! | `shift` | barrel shifter |
//! | `half_reduce` | compressor tree (two outputs: sum & carry) |
//! | `add` | carry-propagating full adder |
//! | `accumulate` | register-feedback accumulator |
//! | `sparse` | non-zero-index extractor (Table VI) |
//! | `sync` | column barrier (Table VI) |
//!
//! Unlike Einsum-style design-space notations, the reduction logic is
//! explicit — which is exactly what makes OPT1–OPT4's component-level
//! rewrites expressible. The nest is *executable* ([`interp`]), so every
//! rewrite in [`transform`] is validated against the reference GEMM.

pub mod costing;
pub mod interp;
pub mod legality;
pub mod nests;
pub mod printer;
pub mod transform;

use std::fmt;
use tpe_arith::encode::EncodingKind;

/// Whether a dimension is unrolled in space (parallel hardware) or time
/// (sequential iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimKind {
    /// Mapped to parallel hardware instances (`parallel` in the paper's
    /// pseudocode).
    Spatial,
    /// Iterated over clock cycles.
    Temporal,
}

/// A loop dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Dimension name: "m", "n", "k", "bw", "mp", "kt", ...
    pub name: String,
    /// Trip count.
    pub size: usize,
    /// Spatial or temporal unrolling.
    pub kind: DimKind,
}

impl Dim {
    /// Creates a spatial dimension.
    pub fn spatial(name: impl Into<String>, size: usize) -> Self {
        Self {
            name: name.into(),
            size,
            kind: DimKind::Spatial,
        }
    }

    /// Creates a temporal dimension.
    pub fn temporal(name: impl Into<String>, size: usize) -> Self {
        Self {
            name: name.into(),
            size,
            kind: DimKind::Temporal,
        }
    }
}

/// An accumulator identifier (state that persists across loop iterations).
pub type AccId = String;

/// A register name (per-iteration value).
pub type Reg = String;

/// Primitive operations — the statement forms of the notation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // operand fields are described in each variant's doc
pub enum Op {
    /// `dst = encode(A[m][k], bw)` — the digit of the multiplicand at the
    /// current bit weight. Requires `m`, `k` and `bw` in scope.
    Encode { dst: Reg },
    /// `dst = map(B[k][n], enc)` — select the candidate partial product.
    /// Requires `k`, `n` in scope. The selection ♢ is non-commutative.
    Map { dst: Reg, enc: Reg },
    /// `dst = shift(src, bw)` — place a value at its bit weight.
    Shift { dst: Reg, src: Reg },
    /// `half_reduce(acc[key...], src)` — compressor-tree accumulate into a
    /// redundant (sum, carry) pair keyed by the listed dims.
    HalfReduce {
        acc: AccId,
        src: Reg,
        key: Vec<String>,
    },
    /// `dst = add(acc[key...])` — the single carry-propagating add that
    /// resolves a redundant pair.
    AddResolve {
        dst: Reg,
        acc: AccId,
        key: Vec<String>,
    },
    /// `accumulate(acc[key...], src)` — scalar register-feedback
    /// accumulation (the traditional MAC's step ❸).
    Accumulate {
        acc: AccId,
        src: Reg,
        key: Vec<String>,
    },
    /// `dst = read(acc[key...])` — read a scalar accumulator.
    ReadAcc {
        dst: Reg,
        acc: AccId,
        key: Vec<String>,
    },
    /// `C[m][n] += src` — commit a value to the output matrix.
    StoreC { src: Reg },
    /// `sync()` — barrier across the spatial columns (Table VI).
    Sync,
}

/// A statement: a loop or a primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// A `for` loop over a dimension.
    For {
        /// The dimension being iterated.
        dim: Dim,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A sparse loop over the **non-zero digits** of `encode(A[m][k])` —
    /// OPT3's serialized BW iteration. Binds `digit_reg` to each non-zero
    /// digit in turn; the digit carries its own weight, so `shift` inside
    /// reads the weight from the digit.
    ForSparseDigits {
        /// Register bound to each non-zero digit.
        digit_reg: Reg,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A primitive operation.
    Op(Op),
}

/// A complete loop nest: the notation's description of one TPE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Architecture name (used by the printer).
    pub name: String,
    /// Multiplicand encoding used by `encode`.
    pub encoding: EncodingKind,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl LoopNest {
    /// All dimensions bound by the nest, in nesting order (first occurrence).
    pub fn dims(&self) -> Vec<Dim> {
        fn walk(stmts: &[Stmt], out: &mut Vec<Dim>) {
            for s in stmts {
                match s {
                    Stmt::For { dim, body } => {
                        if !out.iter().any(|d| d.name == dim.name) {
                            out.push(dim.clone());
                        }
                        walk(body, out);
                    }
                    Stmt::ForSparseDigits { body, .. } => walk(body, out),
                    Stmt::Op(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Count of primitive ops of each kind (for structural assertions).
    pub fn op_count(&self, pred: impl Fn(&Op) -> bool) -> usize {
        fn walk(stmts: &[Stmt], pred: &impl Fn(&Op) -> bool, n: &mut usize) {
            for s in stmts {
                match s {
                    Stmt::For { body, .. } | Stmt::ForSparseDigits { body, .. } => {
                        walk(body, pred, n)
                    }
                    Stmt::Op(op) => {
                        if pred(op) {
                            *n += 1;
                        }
                    }
                }
            }
        }
        let mut n = 0;
        walk(&self.body, &pred, &mut n);
        n
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&printer::render(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_collects_in_nesting_order() {
        let nest = nests::traditional_mac(4, 4, 8, EncodingKind::Mbe);
        let dims = nest.dims();
        let names: Vec<&str> = dims.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names[0], "mt");
        assert!(names.contains(&"bw"));
        assert!(names.contains(&"k"));
    }

    #[test]
    fn op_count_sees_nested_ops() {
        let nest = nests::traditional_mac(4, 4, 8, EncodingKind::Mbe);
        assert_eq!(nest.op_count(|o| matches!(o, Op::Encode { .. })), 1);
        assert!(nest.op_count(|o| matches!(o, Op::Accumulate { .. })) >= 1);
    }
}
