//! Constructors for the paper's loop nests (Figures 4–8).
//!
//! Only the **traditional MAC** nest is built by hand; every optimized nest
//! is *derived* from it through the legality-checked rewrites in
//! [`super::transform`], exactly mirroring the paper's derivation chain:
//!
//! ```text
//! traditional ──OPT1──▶ compressor accumulation
//!             ──OPT2──▶ BW temporal + hoisted shift
//!             ──OPT3──▶ sparse digit serialization + sync
//!             ──OPT4──▶ shared encoder outside the PE column
//! ```
//!
//! Each constructor panics only if the library's own transforms are broken
//! (they are validated by interpreter-equivalence tests).

use super::transform;
use super::{Dim, LoopNest, Op, Stmt};
use tpe_arith::encode::EncodingKind;

/// Picks the largest spatial factor of `total` among {4, 2, 1}.
fn split(total: usize) -> (usize, usize) {
    for p in [4usize, 2, 1] {
        if total.is_multiple_of(p) {
            return (total / p, p);
        }
    }
    unreachable!()
}

/// Number of digit positions the encoder produces for INT8.
pub fn bw_size(encoding: EncodingKind) -> usize {
    encoding.encoder().encode(0, 8).len()
}

/// The traditional MAC-based TPE nest (Figure 4(E) / Figure 5(A)):
/// BW is an implicit **spatial** dimension inside each PE; every `k`
/// iteration ends with a carry-propagating `add` feeding a scalar
/// `accumulate` — the QI bottleneck.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn traditional_mac(m: usize, n: usize, k: usize, encoding: EncodingKind) -> LoopNest {
    assert!(m > 0 && n > 0 && k > 0);
    let (mt, mp) = split(m);
    let (nt, np) = split(n);
    let bw = bw_size(encoding);

    let bw_body = vec![
        Stmt::Op(Op::Encode { dst: "enc".into() }),
        Stmt::Op(Op::Map {
            dst: "pp".into(),
            enc: "enc".into(),
        }),
        Stmt::Op(Op::Shift {
            dst: "sp".into(),
            src: "pp".into(),
        }),
        Stmt::Op(Op::HalfReduce {
            acc: "tree".into(),
            src: "sp".into(),
            key: vec!["m".into(), "n".into()],
        }),
    ];
    let k_body = vec![
        Stmt::For {
            dim: Dim::spatial("bw", bw),
            body: bw_body,
        },
        // The compiler "keeps the multiplier atomic": resolve and
        // accumulate every cycle.
        Stmt::Op(Op::AddResolve {
            dst: "p".into(),
            acc: "tree".into(),
            key: vec!["m".into(), "n".into()],
        }),
        Stmt::Op(Op::Accumulate {
            acc: "acc".into(),
            src: "p".into(),
            key: vec!["m".into(), "n".into()],
        }),
    ];
    let pe_body = vec![
        Stmt::For {
            dim: Dim::temporal("k", k),
            body: k_body,
        },
        Stmt::Op(Op::ReadAcc {
            dst: "out".into(),
            acc: "acc".into(),
            key: vec!["m".into(), "n".into()],
        }),
        Stmt::Op(Op::StoreC { src: "out".into() }),
    ];

    LoopNest {
        name: "Traditional MAC (TPU-like)".into(),
        encoding,
        body: vec![Stmt::For {
            dim: Dim::temporal("mt", mt),
            body: vec![Stmt::For {
                dim: Dim::temporal("nt", nt),
                body: vec![Stmt::For {
                    dim: Dim::spatial("mp", mp),
                    body: vec![Stmt::For {
                        dim: Dim::spatial("np", np),
                        body: pe_body,
                    }],
                }],
            }],
        }],
    }
}

/// OPT1 (Figure 5(B)): compressor accumulation — derived from the
/// traditional nest by [`transform::fuse_add_into_half_reduce`].
pub fn opt1(m: usize, n: usize, k: usize, encoding: EncodingKind) -> LoopNest {
    transform::fuse_add_into_half_reduce(&traditional_mac(m, n, k, encoding))
        .expect("OPT1 rewrite must apply to the traditional nest")
}

/// OPT2 (Figure 6(A)): BW converted to a temporal outer loop of K with the
/// `shift` hoisted to the SIMD core — derived from OPT1 by
/// [`transform::temporalize_bw`].
pub fn opt2(m: usize, n: usize, k: usize, encoding: EncodingKind) -> LoopNest {
    transform::temporalize_bw(&opt1(m, n, k, encoding))
        .expect("OPT2 rewrite must apply to the OPT1 nest")
}

/// OPT3 (Figure 7(A)): sparse serialization over non-zero encoded digits
/// with column `sync` — derived from OPT2 by [`transform::sparsify_bw`].
pub fn opt3(m: usize, n: usize, k: usize, encoding: EncodingKind) -> LoopNest {
    transform::sparsify_bw(&opt2(m, n, k, encoding))
        .expect("OPT3 rewrite must apply to the OPT2 nest")
}

/// OPT4 (Figure 8(A)): the encoder and sparse encoder hoisted outside the
/// `np` dimension (shared per column, prefetching B) — derived from OPT3
/// by [`transform::extract_shared_encoder`].
pub fn opt4(m: usize, n: usize, k: usize, encoding: EncodingKind) -> LoopNest {
    transform::extract_shared_encoder(&opt3(m, n, k, encoding))
        .expect("OPT4 rewrite must apply to the OPT3 nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::interp::execute;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    fn check(nest: &LoopNest, m: usize, n: usize, k: usize, seed: u64) {
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 1);
        let (c, _) = execute(nest, &a, &b).unwrap_or_else(|e| panic!("{}: {e}", nest.name));
        assert_eq!(c, matmul_i8(&a, &b), "{} wrong GEMM", nest.name);
    }

    /// The headline property: all five nests compute the identical GEMM.
    #[test]
    fn all_nests_compute_identical_gemm() {
        for (m, n, k) in [(4, 4, 8), (8, 4, 6), (2, 2, 16), (3, 5, 7)] {
            for enc in [EncodingKind::Mbe, EncodingKind::EnT] {
                check(&traditional_mac(m, n, k, enc), m, n, k, 11);
                check(&opt1(m, n, k, enc), m, n, k, 12);
                check(&opt2(m, n, k, enc), m, n, k, 13);
                check(&opt3(m, n, k, enc), m, n, k, 14);
                check(&opt4(m, n, k, enc), m, n, k, 15);
            }
        }
    }

    /// OPT1's structural claim: one `add` per output element instead of one
    /// per MAC cycle.
    #[test]
    fn opt1_defers_the_add() {
        let (m, n, k) = (4, 4, 8);
        let a = uniform_int8_matrix(m, k, 3);
        let b = uniform_int8_matrix(k, n, 4);
        let (_, trad) = execute(&traditional_mac(m, n, k, EncodingKind::Mbe), &a, &b).unwrap();
        let (_, o1) = execute(&opt1(m, n, k, EncodingKind::Mbe), &a, &b).unwrap();
        assert_eq!(trad.adds, (m * n * k) as u64);
        assert_eq!(o1.adds, (m * n) as u64);
        assert_eq!(trad.accumulates, (m * n * k) as u64);
        assert_eq!(o1.accumulates, 0);
    }

    /// OPT2's structural claim: `shift` count drops from K·BW to BW per
    /// output element (the shifter moves out of the K loop).
    #[test]
    fn opt2_hoists_the_shift() {
        let (m, n, k) = (4, 4, 8);
        let a = uniform_int8_matrix(m, k, 5);
        let b = uniform_int8_matrix(k, n, 6);
        let bw = bw_size(EncodingKind::Mbe) as u64;
        let (_, o1) = execute(&opt1(m, n, k, EncodingKind::Mbe), &a, &b).unwrap();
        let (_, o2) = execute(&opt2(m, n, k, EncodingKind::Mbe), &a, &b).unwrap();
        assert_eq!(o1.shifts, (m * n * k) as u64 * bw);
        assert_eq!(o2.shifts, (m * n) as u64 * bw);
    }

    /// OPT3's structural claim: `map` activations drop from K·BW to the
    /// number of non-zero digits (sparsity acceleration), and `sync`
    /// barriers appear.
    #[test]
    fn opt3_skips_zero_digits() {
        let (m, n, k) = (4, 4, 8);
        let a = uniform_int8_matrix(m, k, 7);
        let b = uniform_int8_matrix(k, n, 8);
        let (_, o2) = execute(&opt2(m, n, k, EncodingKind::EnT), &a, &b).unwrap();
        let (_, o3) = execute(&opt3(m, n, k, EncodingKind::EnT), &a, &b).unwrap();
        assert!(o3.maps < o2.maps, "sparse {} vs dense {}", o3.maps, o2.maps);
        assert!(o3.syncs > 0);
    }

    /// OPT4's structural claim: encodes drop by the NP sharing factor.
    #[test]
    fn opt4_shares_the_encoder() {
        let (m, n, k) = (4, 8, 8);
        let a = uniform_int8_matrix(m, k, 9);
        let b = uniform_int8_matrix(k, n, 10);
        let (_, o3) = execute(&opt3(m, n, k, EncodingKind::EnT), &a, &b).unwrap();
        let (_, o4) = execute(&opt4(m, n, k, EncodingKind::EnT), &a, &b).unwrap();
        let np = 4; // split(8) = (2, 4)
        assert_eq!(o3.encodes, o4.encodes * np);
    }
}
