//! Pseudocode pretty-printer: renders a nest the way the paper's Figures
//! 4–8 print their loop bodies.

use super::{DimKind, LoopNest, Op, Stmt};
use std::fmt::Write as _;

/// Renders the nest as indented pseudocode.
pub fn render(nest: &LoopNest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}  [encoding: {}]", nest.name, nest.encoding);
    walk(&nest.body, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn key_str(key: &[String]) -> String {
    key.iter()
        .map(|k| format!("[{k}]"))
        .collect::<Vec<_>>()
        .join("")
}

fn walk(stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        match s {
            Stmt::For { dim, body } => {
                indent(depth, out);
                let kw = match dim.kind {
                    DimKind::Spatial => "parallel",
                    DimKind::Temporal => "for",
                };
                let _ = writeln!(out, "{kw} {} in 0..{}:", dim.name, dim.size);
                walk(body, depth + 1, out);
            }
            Stmt::ForSparseDigits { digit_reg, body } => {
                indent(depth, out);
                let _ = writeln!(
                    out,
                    "for {digit_reg} in sparse(encode(A[m][k])):   # non-zero digits only"
                );
                walk(body, depth + 1, out);
            }
            Stmt::Op(op) => {
                indent(depth, out);
                let line = match op {
                    Op::Encode { dst } => format!("{dst} = encode(A[m][k], bw)"),
                    Op::Map { dst, enc } => format!("{dst} = map(B[k][n], {enc})"),
                    Op::Shift { dst, src } => format!("{dst} = shift({src}, bw)"),
                    Op::HalfReduce { acc, src, key } => {
                        format!(
                            "({acc}_s, {acc}_c){} = half_reduce({acc}_s, {acc}_c, {src})",
                            key_str(key)
                        )
                    }
                    Op::AddResolve { dst, acc, key } => {
                        format!("{dst} = add({acc}_s{0}, {acc}_c{0})", key_str(key))
                    }
                    Op::Accumulate { acc, src, key } => {
                        format!("accumulate({acc}{}, {src})", key_str(key))
                    }
                    Op::ReadAcc { dst, acc, key } => format!("{dst} = {acc}{}", key_str(key)),
                    Op::StoreC { src } => format!("C[m][n] += {src}"),
                    Op::Sync => "sync()".to_string(),
                };
                let _ = writeln!(out, "{line}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::notation::nests;
    use tpe_arith::encode::EncodingKind;

    #[test]
    fn traditional_renders_figure4_style() {
        let s = super::render(&nests::traditional_mac(4, 4, 8, EncodingKind::Mbe));
        assert!(s.contains("parallel mp in 0..4:"));
        assert!(s.contains("parallel bw in 0..4:"));
        assert!(s.contains("enc = encode(A[m][k], bw)"));
        assert!(s.contains("half_reduce"));
        assert!(s.contains("accumulate"));
    }

    #[test]
    fn opt2_shows_temporal_bw() {
        let s = super::render(&nests::opt2(4, 4, 8, EncodingKind::EnT));
        assert!(
            s.contains("for bw in 0..4:"),
            "bw must print as temporal:\n{s}"
        );
        assert!(!s.contains("parallel bw"));
    }

    #[test]
    fn opt3_shows_sparse_iteration_and_sync() {
        let s = super::render(&nests::opt3(4, 4, 8, EncodingKind::EnT));
        assert!(s.contains("sparse(encode(A[m][k]))"));
        assert!(s.contains("sync()"));
    }

    #[test]
    fn every_line_is_indented_consistently() {
        let s = super::render(&nests::opt4(4, 4, 8, EncodingKind::EnT));
        for line in s.lines().skip(1) {
            let spaces = line.len() - line.trim_start().len();
            assert_eq!(spaces % 2, 0, "odd indent in: {line}");
        }
    }
}
