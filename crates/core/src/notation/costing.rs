//! Notation → hardware costing: derive a synthesizable PE design directly
//! from a loop nest.
//!
//! This closes the loop of the paper's methodology: §III argues that
//! *changing the nesting level of a component changes how many instances
//! the hardware needs, and changing the order changes the critical path*.
//! [`pe_design_of`] makes that mechanical — it walks a [`LoopNest`],
//! counts each primitive's **spatial multiplicity inside one PE** (the
//! product of enclosing spatial dims, excluding the array-level `mp`/`np`
//! replication), maps primitives to [`Component`]s, and emits a
//! [`PeDesign`] the cost model can synthesize.
//!
//! Mapping rules (the Table IV column read right-to-left):
//!
//! * `encode` under a spatial `bw` loop → one digit-parallel encoder
//!   (covers all BW positions of an operand); under temporal `bw` → one
//!   serial encoder instance.
//! * `map` → one CPPG (candidates are shared) + one 5:1 mux per spatial
//!   instance.
//! * `shift` under a *spatial* `bw` loop is fixed wiring (each instance
//!   shifts by a constant) — zero cost; anywhere else it is a barrel
//!   shifter.
//! * `half_reduce` → a compressor tree whose arity is the op's spatial
//!   multiplicity plus the two carry-save feedback inputs.
//! * `add` / `accumulate` inside the PE → carry-propagate adder /
//!   accumulator; at the drain level (outside all spatial PE dims) they
//!   belong to the SIMD vector core and are excluded, exactly as OPT1/OPT2
//!   relocate them.
//! * a sparse digit iterator → serial encoder + sparse (priority) encoder.
//!
//! The derived designs are *estimates* (the hand-built
//! [`crate::arch::PeStyle`] designs stay the calibrated reference), but
//! they reproduce the ordering that matters: each OPT rewrite lowers the
//! derived area and/or critical path of its predecessor.

use super::{DimKind, LoopNest, Op, Stmt};
use tpe_cost::components::Component;
use tpe_cost::synthesis::{PeDesign, PeDesignBuilder};

/// Accumulation width assumed for derived designs (the paper's INT32).
const ACC_WIDTH: u32 = 32;
/// Partial-product width before accumulation (INT8×INT8 + headroom).
const PP_WIDTH: u32 = 18;

#[derive(Debug, Default)]
struct Tally {
    encoders_parallel: u32,
    encoders_serial: u32,
    sparse_encoders: u32,
    cppgs: u32,
    muxes: u32,
    barrel_shifters: u32,
    tree_inputs: u32,
    cpas: u32,
    accumulators: u32,
    pair_state_bits: u32,
    scalar_state_bits: u32,
    // Critical-path flags.
    has_serial_digits: bool,
    add_in_pe: bool,
    accumulate_in_pe: bool,
}

/// Walks statements with the current *in-PE* spatial multiplicity.
/// `mp`/`np` spatial dims replicate whole PEs (multiplicity 1 inside each);
/// every other spatial dim multiplies hardware inside the PE. Encoders
/// that *contain* the `np` dim (rather than sitting inside it) are shared
/// column logic and belong to array support, not the PE.
fn walk(stmts: &[Stmt], mult: u32, under_spatial_bw: bool, inside_np: bool, t: &mut Tally) {
    for s in stmts {
        match s {
            Stmt::For { dim, body } => {
                let array_dim = dim.name.starts_with("mp") || dim.name.starts_with("np");
                let np_dim = dim.name.starts_with("np") || dim.name == "n" || dim.name == "nt";
                let (m2, bw2) = if dim.kind == DimKind::Spatial && !array_dim {
                    (
                        mult * dim.size as u32,
                        under_spatial_bw || dim.name.starts_with("bw"),
                    )
                } else {
                    (mult, under_spatial_bw)
                };
                walk(
                    body,
                    m2,
                    bw2,
                    inside_np || (np_dim && dim.kind == DimKind::Spatial),
                    t,
                );
            }
            Stmt::ForSparseDigits { body, .. } => {
                let shared = !inside_np && contains_spatial_np(body);
                if !shared {
                    t.encoders_serial += mult;
                    t.sparse_encoders += mult;
                }
                t.has_serial_digits = true;
                walk(body, mult, under_spatial_bw, inside_np, t);
            }
            Stmt::Op(op) => match op {
                Op::Encode { .. } => {
                    if under_spatial_bw {
                        // One digit-parallel encoder covers the bw instances.
                        t.encoders_parallel += 1;
                    } else {
                        t.encoders_serial += mult;
                    }
                }
                Op::Map { .. } => {
                    t.cppgs = t.cppgs.max(1);
                    t.muxes += mult;
                }
                Op::Shift { .. } => {
                    if !under_spatial_bw {
                        t.barrel_shifters += mult;
                    } // spatial-bw shifts are constant wiring
                }
                Op::HalfReduce { .. } => {
                    t.tree_inputs += mult;
                    t.pair_state_bits = 2 * ACC_WIDTH;
                }
                Op::AddResolve { .. } => {
                    if mult >= 1 && t.pair_state_bits > 0 {
                        t.add_in_pe = true;
                        t.cpas += 1;
                    }
                }
                Op::Accumulate { .. } => {
                    t.accumulate_in_pe = true;
                    t.accumulators += 1;
                    t.scalar_state_bits = ACC_WIDTH;
                }
                Op::ReadAcc { .. } | Op::StoreC { .. } | Op::Sync => {}
            },
        }
    }
}

/// Whether a subtree binds a spatial `np` dimension.
fn contains_spatial_np(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For { dim, body } => {
            (dim.name.starts_with("np") && dim.kind == DimKind::Spatial)
                || contains_spatial_np(body)
        }
        Stmt::ForSparseDigits { body, .. } => contains_spatial_np(body),
        Stmt::Op(_) => false,
    })
}

/// Strips the drain: every `add` / `shift` / `accumulate` / read / store
/// that executes *after a temporal K-family loop completes* belongs to the
/// SIMD vector core (exactly the relocation OPT1/OPT2 perform), not the PE.
fn strip_drain(stmts: &[Stmt]) -> Vec<Stmt> {
    strip_after_k(stmts, false).0
}

/// Returns the rewritten block and whether a temporal K reduction has
/// completed by its end.
fn strip_after_k(stmts: &[Stmt], mut after_k: bool) -> (Vec<Stmt>, bool) {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For { dim, body } => {
                let is_temporal_k = dim.kind == DimKind::Temporal
                    && (dim.name.starts_with('k') || dim.name == "bw");
                if after_k {
                    // Whole subtree is post-reduction: keep only structure
                    // that still contains per-cycle compute (none, by
                    // construction) — strip drain ops inside it.
                    let (body2, _) = strip_after_k(body, true);
                    out.push(Stmt::For {
                        dim: dim.clone(),
                        body: body2,
                    });
                } else {
                    let (body2, _) = strip_after_k(body, false);
                    out.push(Stmt::For {
                        dim: dim.clone(),
                        body: body2,
                    });
                    if is_temporal_k {
                        after_k = true;
                    }
                }
            }
            Stmt::ForSparseDigits { digit_reg, body } => {
                out.push(Stmt::ForSparseDigits {
                    digit_reg: digit_reg.clone(),
                    body: body.clone(),
                });
            }
            Stmt::Op(op) => {
                let is_drain_op = matches!(
                    op,
                    Op::AddResolve { .. }
                        | Op::Shift { .. }
                        | Op::Accumulate { .. }
                        | Op::ReadAcc { .. }
                        | Op::StoreC { .. }
                );
                if !(after_k && is_drain_op) {
                    out.push(Stmt::Op(op.clone()));
                }
            }
        }
    }
    (out, after_k)
}

/// Derives a synthesizable PE design from a nest.
///
/// See the module docs for the mapping rules. The returned design's name
/// records its provenance.
pub fn pe_design_of(nest: &LoopNest) -> PeDesign {
    let body = strip_drain(&nest.body);
    let mut t = Tally::default();
    walk(&body, 1, false, false, &mut t);

    let mut b: PeDesignBuilder = PeDesign::builder(format!("derived[{}]", nest.name));
    if t.encoders_parallel > 0 {
        b = b.comp(Component::BoothEncoder { width: 8 }, t.encoders_parallel);
    }
    if t.encoders_serial > 0 {
        b = b.comp(Component::EntEncoder { width: 8 }, t.encoders_serial);
    }
    if t.sparse_encoders > 0 {
        b = b.comp(Component::SparseEncoder { digits: 4 }, t.sparse_encoders);
    }
    if t.cppgs > 0 {
        b = b.comp(Component::Cppg { width: 8 }, t.cppgs);
    }
    if t.muxes > 0 {
        b = b.comp(Component::Mux { ways: 5, width: 10 }, t.muxes);
    }
    if t.barrel_shifters > 0 {
        b = b.comp(
            Component::BarrelShifter {
                width: PP_WIDTH,
                positions: 4,
            },
            t.barrel_shifters,
        );
    }
    let tree_width = if t.barrel_shifters > 0 || t.has_serial_digits || t.tree_inputs <= 2 {
        // Shifted (full-width) or serial accumulation.
        ACC_WIDTH
    } else if t.add_in_pe || t.accumulate_in_pe {
        ACC_WIDTH
    } else {
        // Same-bit-weight reduction (OPT2): narrow tree.
        PP_WIDTH
    };
    let tree_arity = t.tree_inputs + 2; // + carry-save feedback pair
    if t.tree_inputs > 0 {
        b = b.comp(
            Component::CompressorTree {
                inputs: tree_arity,
                width: tree_width,
            },
            1,
        );
    }
    if t.cpas > 0 {
        b = b.comp(Component::CarryPropagateAdder { width: ACC_WIDTH }, t.cpas);
    }
    if t.accumulators > 0 {
        b = b.comp(Component::Accumulator { width: ACC_WIDTH }, t.accumulators);
    }

    // State: operand input registers + whatever accumulation state exists.
    let state = 16 + t.pair_state_bits + t.scalar_state_bits;
    b = b.state(state);

    // Critical path: encoder → mux → (shift) → tree → (add → accumulate).
    let mut delay = 0.0;
    if t.encoders_parallel + t.encoders_serial > 0 {
        delay += Component::BoothEncoder { width: 8 }.cost().delay_ns;
    }
    if t.muxes > 0 {
        delay += Component::Mux { ways: 5, width: 10 }.cost().delay_ns;
    }
    if t.barrel_shifters > 0 {
        delay += Component::BarrelShifter {
            width: PP_WIDTH,
            positions: 4,
        }
        .cost()
        .delay_ns;
    }
    if t.tree_inputs > 0 {
        delay += Component::CompressorTree {
            inputs: tree_arity,
            width: tree_width,
        }
        .cost()
        .delay_ns;
    }
    if t.add_in_pe || t.accumulate_in_pe {
        delay += Component::CarryPropagateAdder { width: ACC_WIDTH }
            .cost()
            .delay_ns;
    }
    if t.accumulate_in_pe {
        delay += Component::Accumulator { width: ACC_WIDTH }.cost().delay_ns;
    }
    b.nominal_delay(delay).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::nests;
    use tpe_arith::encode::EncodingKind;

    fn derived(nest: &LoopNest) -> PeDesign {
        pe_design_of(nest)
    }

    /// The central §III claim, mechanized: each rewrite in the OPT chain
    /// shortens the derived critical path (or keeps it) — and OPT1's
    /// removal of the in-loop add/accumulate roughly halves it.
    #[test]
    fn derived_critical_path_shrinks_along_the_chain() {
        let (m, n, k) = (4, 4, 8);
        let trad = derived(&nests::traditional_mac(m, n, k, EncodingKind::EnT));
        let opt1 = derived(&nests::opt1(m, n, k, EncodingKind::EnT));
        let opt4 = derived(&nests::opt4(m, n, k, EncodingKind::EnT));
        assert!(
            opt1.nominal_delay_ns < trad.nominal_delay_ns * 0.6,
            "OPT1 {:.2} ns vs traditional {:.2} ns",
            opt1.nominal_delay_ns,
            trad.nominal_delay_ns
        );
        assert!(opt4.nominal_delay_ns <= opt1.nominal_delay_ns + 0.1);
    }

    /// The traditional nest derives an accumulate-in-PE design; OPT1's
    /// derivation drops the accumulator and the in-loop adder.
    #[test]
    fn opt1_drops_add_and_accumulator() {
        let trad = derived(&nests::traditional_mac(4, 4, 8, EncodingKind::Mbe));
        let opt1 = derived(&nests::opt1(4, 4, 8, EncodingKind::Mbe));
        let has = |d: &PeDesign, f: &dyn Fn(&Component) -> bool| {
            d.combinational.iter().any(|(c, _)| f(c))
        };
        assert!(has(&trad, &|c| matches!(c, Component::Accumulator { .. })));
        assert!(!has(&opt1, &|c| matches!(c, Component::Accumulator { .. })));
        assert!(!has(&opt1, &|c| matches!(
            c,
            Component::CarryPropagateAdder { .. }
        )));
    }

    /// OPT4's derived PE has no encoder (it hoisted out of the PE column),
    /// only map + tree.
    #[test]
    fn opt4_pe_has_shared_encoder_outside() {
        let opt3 = derived(&nests::opt3(4, 8, 8, EncodingKind::EnT));
        let opt4 = derived(&nests::opt4(4, 8, 8, EncodingKind::EnT));
        let encoders = |d: &PeDesign| -> u32 {
            d.combinational
                .iter()
                .filter(|(c, _)| {
                    matches!(
                        c,
                        Component::EntEncoder { .. } | Component::BoothEncoder { .. }
                    )
                })
                .map(|(_, n)| *n)
                .sum()
        };
        // OPT3 keeps an encoder in every PE; OPT4's shared encoder moves
        // out of the PE entirely (it becomes array support logic).
        assert!(encoders(&opt3) > encoders(&opt4));
        assert_eq!(encoders(&opt3), 1);
        assert_eq!(encoders(&opt4), 0);
    }

    /// Derived designs synthesize, and the derived OPT1 clears a clock the
    /// derived traditional design cannot.
    #[test]
    fn derived_designs_synthesize() {
        let trad = derived(&nests::traditional_mac(4, 4, 8, EncodingKind::Mbe));
        let opt1 = derived(&nests::opt1(4, 4, 8, EncodingKind::Mbe));
        assert!(trad.synthesize(0.8).is_some());
        let f = 1.8;
        assert!(
            opt1.synthesize(f).is_some(),
            "derived OPT1 must clear {f} GHz (path {:.2} ns)",
            opt1.nominal_delay_ns
        );
        assert!(
            trad.synthesize(f).is_none(),
            "derived traditional at {f} GHz"
        );
    }
}
