//! Legality-checked loop-nest transformations (§III-B, §IV).
//!
//! Each rewrite is a *real tree surgery* over [`Stmt`] — not a lookup of a
//! pre-built nest — with explicit preconditions derived from the paper's
//! legality arguments:
//!
//! * `shift` depends only on BW (Eq. 5), so it commutes with the K-sum and
//!   may leave the K loop;
//! * `encode` is independent of N (Eq. 6), so it may hoist above the NP
//!   dimension;
//! * `map` contains the non-commutative selection ♢ and must stay
//!   innermost;
//! * `half_reduce` must remain at the level of the dimension it reduces.
//!
//! Every rewrite is additionally validated *semantically*: interpreter
//! equivalence against the reference GEMM (see [`verify_equivalent`] and
//! the tests in [`super::nests`]).

use super::interp::execute;
use super::{Dim, DimKind, LoopNest, Op, Stmt};
use tpe_workloads::distributions::uniform_int8_matrix;
use tpe_workloads::matrix::matmul_i8;

/// Why a transformation refused to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The expected structural pattern was not found.
    PatternNotFound(&'static str),
    /// A legality precondition failed.
    Illegal(&'static str),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::PatternNotFound(p) => write!(f, "pattern not found: {p}"),
            TransformError::Illegal(why) => write!(f, "illegal transformation: {why}"),
        }
    }
}

impl std::error::Error for TransformError {}

/// OPT1: reverse the order of `accumulate` and `add` — fold the per-cycle
/// resolved accumulation into the compressor tree (carry-save
/// accumulation), leaving a single `add` after the K reduction.
///
/// Pattern (inside the K loop):
/// ```text
/// for k { parallel bw { …; half_reduce(tree, …) }; p = add(tree); accumulate(acc, p) }
/// out = read(acc); C += out
/// ```
/// becomes
/// ```text
/// for k { parallel bw { …; half_reduce(tree, …) } }
/// out = add(tree); C += out
/// ```
///
/// Legality: `add` depends only on the accumulated pair (Figure 5(A) line
/// 17), so its result is not needed until the K loop completes.
pub fn fuse_add_into_half_reduce(nest: &LoopNest) -> Result<LoopNest, TransformError> {
    let mut out = nest.clone();
    let applied = rewrite_blocks(&mut out.body, &mut |block| {
        // Find a For-k loop whose body ends with [AddResolve, Accumulate],
        // followed later in the same block by [ReadAcc, StoreC].
        let kpos = block.iter().position(|s| {
            matches!(s, Stmt::For { dim, body }
                if dim.name.starts_with('k')
                && body.len() >= 2
                && matches!(body[body.len() - 2], Stmt::Op(Op::AddResolve { .. }))
                && matches!(body[body.len() - 1], Stmt::Op(Op::Accumulate { .. })))
        })?;
        let (tree_acc, tree_key, p_reg, scalar_acc) = {
            let Stmt::For { body, .. } = &block[kpos] else {
                unreachable!()
            };
            let Stmt::Op(Op::AddResolve { dst, acc, key }) = &body[body.len() - 2] else {
                unreachable!()
            };
            let Stmt::Op(Op::Accumulate { acc: sacc, src, .. }) = &body[body.len() - 1] else {
                unreachable!()
            };
            if src != dst {
                return None; // the accumulate must consume the add's result
            }
            (acc.clone(), key.clone(), dst.clone(), sacc.clone())
        };
        // The trailing drain must read that scalar accumulator.
        let read_pos = block
            .iter()
            .position(|s| matches!(s, Stmt::Op(Op::ReadAcc { acc, .. }) if *acc == scalar_acc))?;
        let Stmt::Op(Op::ReadAcc { dst: out_reg, .. }) = block[read_pos].clone() else {
            unreachable!()
        };
        if !matches!(&block[read_pos + 1], Stmt::Op(Op::StoreC { src }) if *src == out_reg) {
            return None;
        }

        // Surgery: drop the per-cycle add+accumulate; resolve once at drain.
        if let Stmt::For { body, .. } = &mut block[kpos] {
            body.truncate(body.len() - 2);
        }
        block[read_pos] = Stmt::Op(Op::AddResolve {
            dst: out_reg,
            acc: tree_acc,
            key: tree_key,
        });
        let _ = p_reg;
        Some(())
    });
    if applied {
        out.name = format!("OPT1 from [{}]", nest.name);
        Ok(out)
    } else {
        Err(TransformError::PatternNotFound(
            "for-k loop ending in add+accumulate with a read+store drain",
        ))
    }
}

/// OPT2: convert BW from a spatial dimension inside the K loop into a
/// **temporal** loop outside it, hoisting `shift` (and the resolving `add`)
/// to the SIMD core after each per-bit-weight reduction.
///
/// Pattern (an OPT1 nest):
/// ```text
/// for k { parallel bw { enc=encode; pp=map; sp=shift(pp); half_reduce(tree, sp) } }
/// out = add(tree); C += out
/// ```
/// becomes
/// ```text
/// for bw (temporal) {
///   for k { enc=encode; pp=map; half_reduce(tree, pp) }   # same bit-weight
///   v = add(tree); sv = shift(v, bw); accumulate(acc, sv) # SIMD core
/// }
/// out = read(acc); C += out
/// ```
///
/// Legality (Eq. 5): the shift amount depends only on `bw`, never on `k` or
/// `n`, so shifting the *sum* equals summing the shifted terms. Moving BW
/// without also moving `half_reduce` to its level would be the "error
/// reduction logic" the paper warns about — the rewrite keeps them together.
pub fn temporalize_bw(nest: &LoopNest) -> Result<LoopNest, TransformError> {
    let mut out = nest.clone();
    let applied = rewrite_blocks(&mut out.body, &mut |block| {
        // Locate: For k { For bw(spatial) { Encode, Map, Shift, HalfReduce } }
        let kpos = block.iter().position(|s| {
            let Stmt::For { dim, body } = s else {
                return false;
            };
            dim.name.starts_with('k')
                && body.len() == 1
                && matches!(&body[0], Stmt::For { dim: bwd, body: inner }
                    if bwd.name == "bw" && bwd.kind == DimKind::Spatial
                    && is_encode_map_shift_reduce(inner))
        })?;
        // Followed by [AddResolve(tree), StoreC].
        let Stmt::Op(Op::AddResolve {
            dst: out_reg,
            acc: tree,
            key,
        }) = block[kpos + 1].clone()
        else {
            return None;
        };
        if !matches!(&block[kpos + 2], Stmt::Op(Op::StoreC { src }) if *src == out_reg) {
            return None;
        }

        let (k_dim, bw_dim, inner) = {
            let Stmt::For { dim, body } = &block[kpos] else {
                unreachable!()
            };
            let Stmt::For {
                dim: bwd,
                body: inner,
            } = &body[0]
            else {
                unreachable!()
            };
            (dim.clone(), bwd.clone(), inner.clone())
        };
        // Legality: the shift consumes the map output (weight is a function
        // of bw alone — Eq. 5). Checked by is_encode_map_shift_reduce.

        // Build the same-bit-weight inner body: encode, map, half_reduce
        // (the shift is deleted here and re-inserted after the reduction).
        let mut new_inner = Vec::new();
        let mut reduce_src = String::new();
        for s in &inner {
            match s {
                Stmt::Op(Op::Shift { .. }) => {}
                Stmt::Op(Op::HalfReduce { acc, key, .. }) => {
                    new_inner.push(Stmt::Op(Op::HalfReduce {
                        acc: acc.clone(),
                        src: reduce_src.clone(),
                        key: key.clone(),
                    }));
                }
                Stmt::Op(Op::Map { dst, enc }) => {
                    reduce_src = dst.clone();
                    new_inner.push(Stmt::Op(Op::Map {
                        dst: dst.clone(),
                        enc: enc.clone(),
                    }));
                }
                other => new_inner.push(other.clone()),
            }
        }

        let bw_temporal = Stmt::For {
            dim: Dim::temporal("bw", bw_dim.size),
            body: vec![
                Stmt::For {
                    dim: k_dim,
                    body: new_inner,
                },
                Stmt::Op(Op::AddResolve {
                    dst: "v".into(),
                    acc: tree.clone(),
                    key: key.clone(),
                }),
                Stmt::Op(Op::Shift {
                    dst: "sv".into(),
                    src: "v".into(),
                }),
                Stmt::Op(Op::Accumulate {
                    acc: "acc_c".into(),
                    src: "sv".into(),
                    key: key.clone(),
                }),
            ],
        };
        block[kpos] = bw_temporal;
        block[kpos + 1] = Stmt::Op(Op::ReadAcc {
            dst: out_reg.clone(),
            acc: "acc_c".into(),
            key,
        });
        // block[kpos + 2] (StoreC) is unchanged.
        Some(())
    });
    if applied {
        out.name = format!("OPT2 from [{}]", nest.name);
        Ok(out)
    } else {
        Err(TransformError::PatternNotFound(
            "for-k { parallel bw { encode;map;shift;half_reduce } } with add+store drain",
        ))
    }
}

/// OPT3: serialize the temporal BW loop into a **sparse** iteration over
/// non-zero encoded digits, adding the column `sync` barrier.
///
/// Pattern (an OPT2 nest):
/// ```text
/// for bw (temporal) { for k { encode; map; half_reduce }; add; shift; accumulate }
/// out = read(acc); C += out
/// ```
/// becomes
/// ```text
/// for k { for_sparse_digits d { pp = map(d); sp = shift(pp); half_reduce(tree, sp) } }
/// sync()
/// out = add(tree); C += out
/// ```
///
/// Legality: summing over (k, bw) pairs in any order is valid because the
/// reduction is associative and commutative over the *shifted* partial
/// products; skipping zero digits drops exact zeros from the sum.
pub fn sparsify_bw(nest: &LoopNest) -> Result<LoopNest, TransformError> {
    let mut out = nest.clone();
    let applied = rewrite_blocks(&mut out.body, &mut |block| {
        let bwpos = block.iter().position(|s| {
            let Stmt::For { dim, body } = s else {
                return false;
            };
            dim.name == "bw"
                && dim.kind == DimKind::Temporal
                && body.len() == 4
                && matches!(&body[0], Stmt::For { dim: kd, .. } if kd.name.starts_with('k'))
        })?;
        let (k_dim, tree, key) = {
            let Stmt::For { body, .. } = &block[bwpos] else {
                unreachable!()
            };
            let Stmt::For {
                dim: kd,
                body: inner,
            } = &body[0]
            else {
                unreachable!()
            };
            // inner = [Encode, Map, HalfReduce]
            let Stmt::Op(Op::HalfReduce { acc, key, .. }) = inner.last()? else {
                return None;
            };
            let _ = inner
                .iter()
                .find(|s| matches!(s, Stmt::Op(Op::Encode { .. })))?;
            (kd.clone(), acc.clone(), key.clone())
        };
        let Stmt::Op(Op::ReadAcc { dst: out_reg, .. }) = block[bwpos + 1].clone() else {
            return None;
        };

        let sparse_body = vec![
            Stmt::Op(Op::Map {
                dst: "pp".into(),
                enc: "d".into(),
            }),
            Stmt::Op(Op::Shift {
                dst: "sp".into(),
                src: "pp".into(),
            }),
            Stmt::Op(Op::HalfReduce {
                acc: tree.clone(),
                src: "sp".into(),
                key: key.clone(),
            }),
        ];
        block[bwpos] = Stmt::For {
            dim: k_dim,
            body: vec![Stmt::ForSparseDigits {
                digit_reg: "d".into(),
                body: sparse_body,
            }],
        };
        block[bwpos + 1] = Stmt::Op(Op::Sync);
        // StoreC stays; insert the resolving add before it.
        block.insert(
            bwpos + 2,
            Stmt::Op(Op::AddResolve {
                dst: out_reg,
                acc: tree,
                key,
            }),
        );
        Some(())
    });
    if applied {
        out.name = format!("OPT3 from [{}]", nest.name);
        Ok(out)
    } else {
        Err(TransformError::PatternNotFound(
            "temporal bw loop over {for-k {encode;map;half_reduce}; add; shift; accumulate}",
        ))
    }
}

/// OPT4: hoist the (sparse) encoder above the NP dimension — one encoder
/// per column feeds all NP PEs, and B can be prefetched by non-zero index.
///
/// Pattern (an OPT3 nest):
/// ```text
/// parallel np { for k { for_sparse_digits d { … } } … }
/// ```
/// becomes
/// ```text
/// for k { for_sparse_digits d { parallel np { … } } }  (+ per-np drain)
/// ```
///
/// Legality (Eq. 6): `encode` is independent of N, so the digit stream is
/// identical for every PE in the column; only `map` (the non-commutative
/// selection) must remain innermost — and it does.
pub fn extract_shared_encoder(nest: &LoopNest) -> Result<LoopNest, TransformError> {
    // Precondition: the sparse iterator currently sits under an n-loop.
    if !encode_under_n(&nest.body, false) {
        return Err(TransformError::Illegal(
            "encoder is already hoisted above the N dimension",
        ));
    }
    let mut out = nest.clone();
    let applied = rewrite_blocks(&mut out.body, &mut |block| {
        // Find: For np { For k { ForSparseDigits { body } }, drains... }
        let np_pos = block.iter().position(|s| {
            let Stmt::For { dim, body } = s else {
                return false;
            };
            dim.name.starts_with('n')
                && dim.kind == DimKind::Spatial
                && body.iter().any(|inner| {
                    matches!(inner, Stmt::For { dim: kd, body: kb }
                        if kd.name.starts_with('k')
                        && kb.len() == 1
                        && matches!(kb[0], Stmt::ForSparseDigits { .. }))
                })
        })?;
        let Stmt::For {
            dim: np_dim,
            body: np_body,
        } = block[np_pos].clone()
        else {
            unreachable!()
        };
        let kpos = np_body
            .iter()
            .position(|s| matches!(s, Stmt::For { dim, .. } if dim.name.starts_with('k')))?;
        let Stmt::For {
            dim: k_dim,
            body: k_body,
        } = np_body[kpos].clone()
        else {
            unreachable!()
        };
        let Stmt::ForSparseDigits {
            digit_reg,
            body: digit_body,
        } = k_body[0].clone()
        else {
            unreachable!()
        };

        // The hoisted form: k → sparse digits → parallel np → PE body.
        let hoisted = Stmt::For {
            dim: k_dim,
            body: vec![Stmt::ForSparseDigits {
                digit_reg,
                body: vec![Stmt::For {
                    dim: np_dim.clone(),
                    body: digit_body,
                }],
            }],
        };
        // Remaining per-np statements (drain: add + store) stay under np.
        let mut drain = np_body;
        drain.remove(kpos);
        let mut replacement = vec![hoisted];
        if !drain.is_empty() {
            replacement.push(Stmt::For {
                dim: np_dim,
                body: drain,
            });
        }
        block.splice(np_pos..=np_pos, replacement);
        Some(())
    });
    if applied {
        out.name = format!("OPT4 from [{}]", nest.name);
        Ok(out)
    } else {
        Err(TransformError::PatternNotFound(
            "parallel np containing for-k { for_sparse_digits }",
        ))
    }
}

/// Loop tiling: splits a dimension `name` of size `s` into an outer
/// temporal loop `outer_name` of size `s / inner` and an inner loop
/// `inner_name` of size `inner` with the given kind — e.g. Figure 6(A)'s
/// `K → KT × KP` split, where the spatial `KP` "fills the gap" left by the
/// temporalized BW dimension.
///
/// Legality:
/// * `inner` must divide the dimension size exactly (no ragged tiles in
///   the hardware mapping);
/// * both new names must belong to the same index family as the original
///   (`k → {kt, kp}` etc.), so composite index resolution — and therefore
///   semantics — is unchanged;
/// * accumulator keys referring to the dimension by its *family* name keep
///   working; keys naming the split dim exactly are rejected.
pub fn split_dim(
    nest: &LoopNest,
    name: &str,
    inner: usize,
    outer_name: &str,
    inner_name: &str,
    inner_kind: DimKind,
) -> Result<LoopNest, TransformError> {
    let family = |n: &str| -> Option<char> {
        let c = n.chars().next()?;
        if ['m', 'n', 'k'].contains(&c) || n.starts_with("bw") {
            Some(c)
        } else {
            None
        }
    };
    if family(name) != family(outer_name) || family(name) != family(inner_name) {
        return Err(TransformError::Illegal(
            "split names must stay in the original dimension's index family",
        ));
    }
    if keys_reference_exact(&nest.body, name) {
        return Err(TransformError::Illegal(
            "an accumulator key names the split dimension exactly",
        ));
    }
    let mut out = nest.clone();
    let mut found_indivisible = false;
    let applied = rewrite_blocks(&mut out.body, &mut |block| {
        let pos = block
            .iter()
            .position(|s| matches!(s, Stmt::For { dim, .. } if dim.name == name))?;
        let Stmt::For { dim, body } = block[pos].clone() else {
            unreachable!()
        };
        if dim.size % inner != 0 {
            found_indivisible = true;
            return None;
        }
        block[pos] = Stmt::For {
            dim: Dim {
                name: outer_name.to_string(),
                size: dim.size / inner,
                kind: DimKind::Temporal,
            },
            body: vec![Stmt::For {
                dim: Dim {
                    name: inner_name.to_string(),
                    size: inner,
                    kind: inner_kind,
                },
                body,
            }],
        };
        Some(())
    });
    if found_indivisible {
        return Err(TransformError::Illegal(
            "tile size must divide the dimension",
        ));
    }
    if applied {
        out.name = format!("{} [split {name}→{outer_name}×{inner_name}]", nest.name);
        Ok(out)
    } else {
        Err(TransformError::PatternNotFound(
            "no loop over the named dimension",
        ))
    }
}

/// Whether any accumulator key names `dim` exactly.
fn keys_reference_exact(stmts: &[Stmt], dim: &str) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For { body, .. } | Stmt::ForSparseDigits { body, .. } => {
            keys_reference_exact(body, dim)
        }
        Stmt::Op(
            Op::HalfReduce { key, .. }
            | Op::AddResolve { key, .. }
            | Op::Accumulate { key, .. }
            | Op::ReadAcc { key, .. },
        ) => key.iter().any(|k| k == dim),
        Stmt::Op(_) => false,
    })
}

/// Whether any `encode`/sparse iterator executes under a **spatial**
/// n-loop (i.e. would be replicated per PE along NP).
fn encode_under_n(stmts: &[Stmt], under_np: bool) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For { dim, body } => encode_under_n(
            body,
            under_np || (dim.name.starts_with('n') && dim.kind == DimKind::Spatial),
        ),
        Stmt::ForSparseDigits { body, .. } => under_np || encode_under_n(body, under_np),
        Stmt::Op(Op::Encode { .. }) => under_np,
        Stmt::Op(_) => false,
    })
}

/// Applies `f` to every statement block (depth-first); returns whether any
/// application succeeded.
fn rewrite_blocks(stmts: &mut Vec<Stmt>, f: &mut impl FnMut(&mut Vec<Stmt>) -> Option<()>) -> bool {
    let mut applied = f(stmts).is_some();
    for s in stmts.iter_mut() {
        match s {
            Stmt::For { body, .. } | Stmt::ForSparseDigits { body, .. } => {
                applied |= rewrite_blocks(body, f);
            }
            Stmt::Op(_) => {}
        }
    }
    applied
}

fn is_encode_map_shift_reduce(stmts: &[Stmt]) -> bool {
    stmts.len() == 4
        && matches!(stmts[0], Stmt::Op(Op::Encode { .. }))
        && matches!(stmts[1], Stmt::Op(Op::Map { .. }))
        && matches!((&stmts[1], &stmts[2]),
            (Stmt::Op(Op::Map { dst, .. }), Stmt::Op(Op::Shift { src, .. })) if dst == src)
        && matches!(stmts[3], Stmt::Op(Op::HalfReduce { .. }))
}

/// Semantic validation: both nests must compute the identical GEMM on a
/// seeded random instance of the given shape.
pub fn verify_equivalent(
    before: &LoopNest,
    after: &LoopNest,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> bool {
    let a = uniform_int8_matrix(m, k, seed);
    let b = uniform_int8_matrix(k, n, seed + 1);
    let reference = matmul_i8(&a, &b);
    match (execute(before, &a, &b), execute(after, &a, &b)) {
        (Ok((c1, _)), Ok((c2, _))) => c1 == reference && c2 == reference,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::nests;
    use tpe_arith::encode::EncodingKind;

    #[test]
    fn full_derivation_chain_is_equivalence_preserving() {
        let (m, n, k) = (4, 4, 8);
        let t = nests::traditional_mac(m, n, k, EncodingKind::EnT);
        let o1 = fuse_add_into_half_reduce(&t).unwrap();
        let o2 = temporalize_bw(&o1).unwrap();
        let o3 = sparsify_bw(&o2).unwrap();
        let o4 = extract_shared_encoder(&o3).unwrap();
        for (b, a) in [(&t, &o1), (&o1, &o2), (&o2, &o3), (&o3, &o4)] {
            assert!(
                verify_equivalent(b, a, m, n, k, 400),
                "{} → {}",
                b.name,
                a.name
            );
        }
    }

    #[test]
    fn opt1_requires_the_add_accumulate_pattern() {
        let o1 = nests::opt1(4, 4, 8, EncodingKind::Mbe);
        // Applying OPT1 twice has no pattern to find.
        assert!(matches!(
            fuse_add_into_half_reduce(&o1),
            Err(TransformError::PatternNotFound(_))
        ));
    }

    #[test]
    fn opt4_refuses_when_already_hoisted() {
        let o4 = nests::opt4(4, 4, 8, EncodingKind::EnT);
        assert!(matches!(
            extract_shared_encoder(&o4),
            Err(TransformError::Illegal(_))
        ));
    }

    #[test]
    fn temporalize_needs_spatial_bw() {
        let t = nests::traditional_mac(4, 4, 8, EncodingKind::Mbe);
        // The traditional nest still has add+accumulate inside K — the OPT2
        // pattern (an OPT1-shaped k body) is absent.
        assert!(temporalize_bw(&t).is_err());
    }

    #[test]
    fn transformed_names_record_provenance() {
        let o2 = nests::opt2(4, 4, 8, EncodingKind::EnT);
        assert!(o2.name.contains("OPT2"));
        assert!(o2.name.contains("OPT1"));
    }

    /// Figure 6's K → KT × KP tiling on the OPT2 nest is
    /// semantics-preserving, and the KP loop can be spatial.
    #[test]
    fn split_k_into_kt_kp() {
        let (m, n, k) = (4, 4, 8);
        let o2 = nests::opt2(m, n, k, EncodingKind::EnT);
        let tiled = split_dim(&o2, "k", 4, "kt", "kp", DimKind::Spatial).unwrap();
        assert!(verify_equivalent(&o2, &tiled, m, n, k, 77));
        assert!(crate::notation::legality::check(&tiled).is_ok());
        let dims = tiled.dims();
        let kp = dims.iter().find(|d| d.name == "kp").unwrap();
        assert_eq!(kp.size, 4);
        assert_eq!(kp.kind, DimKind::Spatial);
    }

    #[test]
    fn split_rejects_indivisible_tiles() {
        let o2 = nests::opt2(4, 4, 10, EncodingKind::EnT);
        assert!(matches!(
            split_dim(&o2, "k", 4, "kt", "kp", DimKind::Spatial),
            Err(TransformError::Illegal(_))
        ));
    }

    #[test]
    fn split_rejects_cross_family_rename() {
        let o2 = nests::opt2(4, 4, 8, EncodingKind::EnT);
        assert!(matches!(
            split_dim(&o2, "k", 4, "mt", "kp", DimKind::Spatial),
            Err(TransformError::Illegal(_))
        ));
    }

    /// Tiling composes with the derivation chain: derive OPT1, then tile
    /// its K loop (the §IV-C K1/K2 bank-layout split) — still equivalent.
    #[test]
    fn tiling_composes_with_derivation() {
        let (m, n, k) = (4, 4, 8);
        let o1 = nests::opt1(m, n, k, EncodingKind::Mbe);
        let tiled = split_dim(&o1, "k", 2, "k1", "k2", DimKind::Temporal).unwrap();
        assert!(verify_equivalent(&o1, &tiled, m, n, k, 5));
        assert!(crate::notation::legality::check(&tiled).is_ok());
        // And tile M's temporal loop too.
        let t2 = split_dim(&tiled, "k2", 2, "k2", "k3", DimKind::Temporal);
        // k2 has size 2: splitting by 2 leaves a unit outer loop — legal.
        assert!(t2.is_ok());
    }
}
