//! Interpreter: executes a [`LoopNest`] against real INT8 matrices.
//!
//! The interpreter gives the notation *operational semantics*: each
//! primitive does exactly what its hardware does (digits through the
//! encoder, candidate selection, shifting, carry-save accumulation through
//! [`tpe_arith::csa::CsAccumulator`], one full add per `add`). Running a
//! nest therefore proves, not just argues, that a transformation preserves
//! the GEMM result — the validation harness behind every rewrite in
//! [`super::transform`].
//!
//! Alongside the output matrix the interpreter counts how many times each
//! primitive executed, which quantifies the component-usage claims (e.g.
//! OPT2 performs K× fewer `shift`s; OPT1 performs one `add` per output
//! instead of one per cycle).

use super::{Dim, LoopNest, Op, Stmt};
use std::collections::HashMap;
use tpe_arith::csa::CsAccumulator;
use tpe_arith::encode::{Encoder, SignedDigit};
use tpe_workloads::Matrix;

/// A value flowing between primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An encoded digit (output of `encode` / the sparse iterator).
    Digit(SignedDigit),
    /// A plain word.
    Word(i64),
    /// A selected-but-unshifted partial product, carrying its bit weight.
    Pp {
        /// The selected candidate value (`coeff × B`).
        value: i64,
        /// The bit weight `shift` would apply.
        weight: u8,
    },
}

/// Execution statistics: how often each primitive ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// `encode` activations (including implicit encodes of the sparse
    /// digit iterator — one per operand).
    pub encodes: u64,
    /// `map` selections.
    pub maps: u64,
    /// `shift` activations.
    pub shifts: u64,
    /// `half_reduce` compressor activations.
    pub half_reduces: u64,
    /// Carry-propagating `add` resolutions.
    pub adds: u64,
    /// Scalar `accumulate` activations.
    pub accumulates: u64,
    /// `sync` barriers.
    pub syncs: u64,
}

/// An interpretation error (malformed nest).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExecError {
    /// An op referenced a register never written in scope.
    UndefinedRegister(String),
    /// A composite index ("m", "n", "k", "bw") had no contributing dims.
    MissingIndex(&'static str),
    /// An op received a value of the wrong kind.
    TypeMismatch { op: &'static str, got: &'static str },
    /// Matrix access out of bounds: the nest's dims don't cover the data.
    OutOfBounds {
        index: &'static str,
        value: usize,
        bound: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedRegister(r) => write!(f, "undefined register `{r}`"),
            ExecError::MissingIndex(i) => write!(f, "no dims compose index `{i}`"),
            ExecError::TypeMismatch { op, got } => {
                write!(f, "`{op}` received incompatible value kind {got}")
            }
            ExecError::OutOfBounds {
                index,
                value,
                bound,
            } => {
                write!(f, "index {index}={value} out of bounds {bound}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

struct Interp<'a> {
    a: &'a Matrix<i8>,
    b: &'a Matrix<i8>,
    c: Matrix<i32>,
    encoder: Box<dyn Encoder>,
    radix_weight: u8,
    // Active loop indices, outer→inner: (dim, current index).
    scope: Vec<(Dim, usize)>,
    regs: HashMap<String, Value>,
    pairs: HashMap<(String, Vec<usize>), CsAccumulator>,
    scalars: HashMap<(String, Vec<usize>), i64>,
    stats: ExecStats,
}

impl<'a> Interp<'a> {
    /// Composes a GEMM index from all scope dims belonging to its family.
    /// Families: m ← {"m","mt","mp"}, n ← {"n","nt","np"},
    /// k ← {"k","kt","kp","k1","k2"}, bw ← {"bw","bwt","bwp"}.
    fn composite(&self, family: &'static str) -> Result<usize, ExecError> {
        let members: &[&str] = match family {
            "m" => &["m", "mt", "mp"],
            "n" => &["n", "nt", "np"],
            "k" => &["k", "kt", "kp", "k1", "k2"],
            "bw" => &["bw", "bwt", "bwp"],
            _ => unreachable!(),
        };
        let mut found = false;
        let mut v = 0usize;
        for (dim, idx) in &self.scope {
            if members.contains(&dim.name.as_str()) {
                v = v * dim.size + idx;
                found = true;
            }
        }
        if found {
            Ok(v)
        } else {
            Err(ExecError::MissingIndex(match family {
                "m" => "m",
                "n" => "n",
                "k" => "k",
                _ => "bw",
            }))
        }
    }

    fn key_values(&self, key: &[String]) -> Result<Vec<usize>, ExecError> {
        key.iter()
            .map(|name| match name.as_str() {
                "m" | "n" | "k" | "bw" => self.composite(match name.as_str() {
                    "m" => "m",
                    "n" => "n",
                    "k" => "k",
                    _ => "bw",
                }),
                other => self
                    .scope
                    .iter()
                    .rev()
                    .find(|(d, _)| d.name == other)
                    .map(|(_, i)| *i)
                    .ok_or(ExecError::MissingIndex("key")),
            })
            .collect()
    }

    fn reg(&self, name: &str) -> Result<Value, ExecError> {
        self.regs
            .get(name)
            .copied()
            .ok_or_else(|| ExecError::UndefinedRegister(name.to_string()))
    }

    fn a_at(&self) -> Result<i8, ExecError> {
        let m = self.composite("m")?;
        let k = self.composite("k")?;
        if m >= self.a.rows() {
            return Err(ExecError::OutOfBounds {
                index: "m",
                value: m,
                bound: self.a.rows(),
            });
        }
        if k >= self.a.cols() {
            return Err(ExecError::OutOfBounds {
                index: "k",
                value: k,
                bound: self.a.cols(),
            });
        }
        Ok(self.a[(m, k)])
    }

    fn b_at(&self) -> Result<i8, ExecError> {
        let k = self.composite("k")?;
        let n = self.composite("n")?;
        if k >= self.b.rows() {
            return Err(ExecError::OutOfBounds {
                index: "k",
                value: k,
                bound: self.b.rows(),
            });
        }
        if n >= self.b.cols() {
            return Err(ExecError::OutOfBounds {
                index: "n",
                value: n,
                bound: self.b.cols(),
            });
        }
        Ok(self.b[(k, n)])
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                Stmt::For { dim, body } => {
                    for i in 0..dim.size {
                        self.scope.push((dim.clone(), i));
                        self.run(body)?;
                        self.scope.pop();
                    }
                }
                Stmt::ForSparseDigits { digit_reg, body } => {
                    let a = self.a_at()?;
                    self.stats.encodes += 1; // one encode per operand
                    let digits = self.encoder.encode_nonzero(i64::from(a), 8);
                    for d in digits {
                        self.regs.insert(digit_reg.clone(), Value::Digit(d));
                        self.run(body)?;
                    }
                }
                Stmt::Op(op) => self.exec_op(op)?,
            }
        }
        Ok(())
    }

    fn exec_op(&mut self, op: &Op) -> Result<(), ExecError> {
        match op {
            Op::Encode { dst } => {
                let a = self.a_at()?;
                let bw = self.composite("bw")?;
                let digits = self.encoder.encode(i64::from(a), 8);
                let d = digits.get(bw).copied().unwrap_or(SignedDigit::new(0, 0));
                self.regs.insert(dst.clone(), Value::Digit(d));
                self.stats.encodes += 1;
            }
            Op::Map { dst, enc } => {
                let d = match self.reg(enc)? {
                    Value::Digit(d) => d,
                    Value::Word(_) => {
                        return Err(ExecError::TypeMismatch {
                            op: "map",
                            got: "word",
                        })
                    }
                    Value::Pp { .. } => {
                        return Err(ExecError::TypeMismatch {
                            op: "map",
                            got: "pp",
                        })
                    }
                };
                let b = self.b_at()?;
                self.regs.insert(
                    dst.clone(),
                    Value::Pp {
                        value: i64::from(d.coeff) * i64::from(b),
                        weight: d.weight,
                    },
                );
                self.stats.maps += 1;
            }
            Op::Shift { dst, src } => {
                let v = match self.reg(src)? {
                    Value::Pp { value, weight } => value << weight,
                    Value::Word(w) => {
                        let bw = self.composite("bw")?;
                        w << (u32::from(self.radix_weight) * bw as u32)
                    }
                    Value::Digit(_) => {
                        return Err(ExecError::TypeMismatch {
                            op: "shift",
                            got: "digit",
                        })
                    }
                };
                self.regs.insert(dst.clone(), Value::Word(v));
                self.stats.shifts += 1;
            }
            Op::HalfReduce { acc, src, key } => {
                let v = match self.reg(src)? {
                    Value::Word(w) => w,
                    // Unshifted reduction under the same bit weight (OPT2).
                    Value::Pp { value, .. } => value,
                    Value::Digit(_) => {
                        return Err(ExecError::TypeMismatch {
                            op: "half_reduce",
                            got: "digit",
                        })
                    }
                };
                let k = (acc.clone(), self.key_values(key)?);
                self.pairs
                    .entry(k)
                    .or_insert_with(|| CsAccumulator::new(64))
                    .accumulate_value(v);
                self.stats.half_reduces += 1;
            }
            Op::AddResolve { dst, acc, key } => {
                let k = (acc.clone(), self.key_values(key)?);
                let v = self.pairs.remove(&k).map_or(0, |p| p.resolve());
                self.regs.insert(dst.clone(), Value::Word(v));
                self.stats.adds += 1;
            }
            Op::Accumulate { acc, src, key } => {
                let v = match self.reg(src)? {
                    Value::Word(w) => w,
                    _ => {
                        return Err(ExecError::TypeMismatch {
                            op: "accumulate",
                            got: "non-word",
                        })
                    }
                };
                let k = (acc.clone(), self.key_values(key)?);
                *self.scalars.entry(k).or_insert(0) += v;
                self.stats.accumulates += 1;
            }
            Op::ReadAcc { dst, acc, key } => {
                let k = (acc.clone(), self.key_values(key)?);
                let v = self.scalars.remove(&k).unwrap_or(0);
                self.regs.insert(dst.clone(), Value::Word(v));
            }
            Op::StoreC { src } => {
                let v = match self.reg(src)? {
                    Value::Word(w) => w,
                    _ => {
                        return Err(ExecError::TypeMismatch {
                            op: "store",
                            got: "non-word",
                        })
                    }
                };
                let m = self.composite("m")?;
                let n = self.composite("n")?;
                if m < self.c.rows() && n < self.c.cols() {
                    self.c[(m, n)] += v as i32;
                }
            }
            Op::Sync => {
                self.stats.syncs += 1;
            }
        }
        Ok(())
    }
}

/// Executes a nest on `a × b`, returning the computed matrix and primitive
/// activation counts.
///
/// # Errors
///
/// Returns an [`ExecError`] if the nest is structurally malformed (dangling
/// registers, missing dims, out-of-bounds access).
pub fn execute(
    nest: &LoopNest,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
) -> Result<(Matrix<i32>, ExecStats), ExecError> {
    let radix_weight = if nest.encoding.encoder().radix() == 4 {
        2
    } else {
        1
    };
    let mut interp = Interp {
        a,
        b,
        c: Matrix::zeros(a.rows(), b.cols()),
        encoder: nest.encoding.encoder(),
        radix_weight,
        scope: Vec::new(),
        regs: HashMap::new(),
        pairs: HashMap::new(),
        scalars: HashMap::new(),
        stats: ExecStats::default(),
    };
    interp.run(&nest.body)?;
    Ok((interp.c, interp.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notation::nests;
    use tpe_arith::encode::EncodingKind;
    use tpe_workloads::distributions::uniform_int8_matrix;
    use tpe_workloads::matrix::matmul_i8;

    #[test]
    fn traditional_nest_computes_gemm() {
        let nest = nests::traditional_mac(4, 4, 8, EncodingKind::Mbe);
        let a = uniform_int8_matrix(4, 8, 1);
        let b = uniform_int8_matrix(8, 4, 2);
        let (c, stats) = execute(&nest, &a, &b).unwrap();
        assert_eq!(c, matmul_i8(&a, &b));
        // One add per k per output: 4×4×8.
        assert_eq!(stats.adds, 128);
        assert_eq!(stats.encodes, 4 * 4 * 8 * 4);
    }

    #[test]
    fn undefined_register_reported() {
        use crate::notation::{Dim, LoopNest, Op, Stmt};
        let nest = LoopNest {
            name: "broken".into(),
            encoding: EncodingKind::Mbe,
            body: vec![Stmt::For {
                dim: Dim::temporal("m", 1),
                body: vec![Stmt::Op(Op::StoreC {
                    src: "nowhere".into(),
                })],
            }],
        };
        let a = uniform_int8_matrix(1, 1, 3);
        let b = uniform_int8_matrix(1, 1, 4);
        let err = execute(&nest, &a, &b).unwrap_err();
        assert!(matches!(err, ExecError::UndefinedRegister(_)));
    }

    #[test]
    fn out_of_bounds_reported() {
        let nest = nests::traditional_mac(8, 4, 8, EncodingKind::Mbe);
        let a = uniform_int8_matrix(4, 8, 5); // nest expects M = 8
        let b = uniform_int8_matrix(8, 4, 6);
        assert!(matches!(
            execute(&nest, &a, &b),
            Err(ExecError::OutOfBounds { .. })
        ));
    }
}
