//! Criterion benchmark: the array simulators on a 64×64×64 GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpe_arith::encode::EncodingKind;
use tpe_sim::array::{AdderTreeArray, CubeArray, DenseArray, Matrix2dArray, SystolicArray};
use tpe_sim::{BitsliceArray, BitsliceConfig};
use tpe_workloads::distributions::normal_int8_matrix;

fn bench_arrays(c: &mut Criterion) {
    let a = normal_int8_matrix(64, 64, 1.0, 1);
    let b = normal_int8_matrix(64, 64, 1.0, 2);

    let mut group = c.benchmark_group("gemm_64x64x64");
    group.sample_size(20);

    let engines: Vec<Box<dyn DenseArray>> = vec![
        Box::new(SystolicArray::new(32, 32)),
        Box::new(CubeArray::new(10, 10, 10)),
        Box::new(AdderTreeArray::new(32, 32)),
        Box::new(Matrix2dArray::new(32, 32)),
    ];
    for engine in &engines {
        group.bench_function(engine.name(), |bencher| {
            bencher.iter(|| black_box(engine.simulate(black_box(&a), black_box(&b))))
        });
    }

    let serial = BitsliceArray::new(BitsliceConfig {
        mp: 32,
        np: 32,
        lanes_per_pe: 1,
        kt: 16,
        encoding: EncodingKind::EnT,
    });
    group.bench_function("bitslice-cycles-only", |bencher| {
        bencher.iter(|| black_box(serial.cycle_stats(black_box(&a), 64)))
    });
    group.finish();
}

criterion_group!(benches, bench_arrays);
criterion_main!(benches);
