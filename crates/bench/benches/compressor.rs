//! Criterion benchmark: carry-save reduction primitives (the OPT1 inner
//! loop) versus carry-propagating accumulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpe_arith::adder::{word_add, AdderKind};
use tpe_arith::bits::to_wrapped;
use tpe_arith::compressor::{compress_4_2, wallace_reduce};
use tpe_arith::csa::CsAccumulator;

fn bench_reduction(c: &mut Criterion) {
    let values: Vec<i64> = (0..1024)
        .map(|i| (i * 2654435761i64) % 65536 - 32768)
        .collect();
    let words: Vec<u64> = values.iter().map(|&v| to_wrapped(v, 32)).collect();

    let mut group = c.benchmark_group("reduce_1024_words");
    group.bench_function("carry_save_accumulate", |b| {
        b.iter(|| {
            let mut acc = CsAccumulator::new(32);
            for &w in &words {
                acc.accumulate_word(black_box(w));
            }
            black_box(acc.resolve())
        })
    });
    group.bench_function("ripple_carry_accumulate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                acc = word_add(AdderKind::RippleCarry, acc, black_box(w), 0, 32).sum;
            }
            black_box(acc)
        })
    });
    group.bench_function("wallace_tree_full", |b| {
        b.iter(|| black_box(wallace_reduce(&words, 32).pair.resolve()))
    });
    group.bench_function("compress_4_2_chain", |b| {
        b.iter(|| {
            let (mut s, mut cy) = (0u64, 0u64);
            for ch in words.chunks_exact(2) {
                let (ns, nc) = compress_4_2(s, cy, ch[0], ch[1], 32);
                s = ns;
                cy = nc;
            }
            black_box((s, cy))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
