//! Criterion benchmark: encoder throughput (the front-end cost the OPT4
//! sharing amortizes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tpe_arith::encode::{BitSerialComplement, CsdEncoder, Encoder, EntEncoder, MbeEncoder};
use tpe_workloads::distributions::normal_int8_matrix;

fn bench_encoders(c: &mut Criterion) {
    let data = normal_int8_matrix(64, 64, 1.0, 42);
    let values: Vec<i8> = data.iter().copied().collect();
    let mut group = c.benchmark_group("encode_4096_operands");
    let encoders: Vec<(&str, Box<dyn Encoder>)> = vec![
        ("mbe", Box::new(MbeEncoder)),
        ("ent", Box::new(EntEncoder)),
        ("csd", Box::new(CsdEncoder)),
        ("bit_serial", Box::new(BitSerialComplement)),
    ];
    for (name, enc) in &encoders {
        group.bench_function(*name, |b| {
            b.iter_batched(
                || values.clone(),
                |vals| {
                    let mut total = 0usize;
                    for v in vals {
                        total += enc.num_pps(i64::from(v), 8);
                    }
                    black_box(total)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
