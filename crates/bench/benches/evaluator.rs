//! Criterion benchmark (vendored shim) for the `tpe-engine` evaluator hot
//! path: cold vs cached pricing (per operand precision — the `price_*`
//! scenarios are the W8 baseline, `*_w4`/`*_w16` track the precision-keyed
//! cache) and the dense/serial cycle estimates — the unit of work every
//! sweep point, grid cell and serve query pays.
//!
//! Besides the usual `name: N ns/iter` lines, this bench writes
//! `BENCH_evaluator.json` (flat JSON, median ns per scenario) so CI and
//! future PRs can track the perf trajectory mechanically.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::PeStyle;
use tpe_engine::schedule::cached_serial_cycles;
use tpe_engine::{
    CycleModel, EngineCache, EngineSpec, Evaluator, SampleProfile, SerialSampleCaps, SweepWorkload,
};
use tpe_sim::array::ClassicArch;
use tpe_workloads::{models, LayerShape, NetworkModel};

fn serial_spec() -> EngineSpec {
    EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0)
}

fn dense_spec() -> EngineSpec {
    EngineSpec::dense(PeStyle::Opt1, ClassicArch::Tpu, 1.5)
}

fn probe_layer() -> LayerShape {
    LayerShape::new("bench-probe", 64, 256, 128, 1)
}

/// One benchmark scenario: a named closure performing one unit of the
/// hot path.
type Scenario = (&'static str, Box<dyn FnMut() -> f64>);

/// The benchmark scenarios, shared by the criterion printout and the JSON
/// emitter.
fn scenarios() -> Vec<Scenario> {
    let caps = SampleProfile::Sweep.caps();
    let model_caps = SampleProfile::Quick.caps();
    let net: &'static NetworkModel = &*Box::leak(Box::new(models::resnet18()));
    let warm = EngineCache::new();
    // Warm the shared cache once so the `_cached` scenarios measure pure
    // lookup + assembly (per precision: W4/W8/W16 are distinct keys).
    for p in [Precision::W8, Precision::W4, Precision::W16] {
        Evaluator::new(&warm).price(&serial_spec().with_precision(p));
    }
    Evaluator::new(&warm).price(&dense_spec());
    cached_serial_cycles(&warm, &serial_spec(), &probe_layer(), 42, caps);
    Evaluator::new(&warm).model_report(&serial_spec(), net, 42, model_caps);
    let warm: &'static EngineCache = &*Box::leak(Box::new(warm));

    let price_cold = |p: Precision| -> Scenario {
        let name = match p {
            Precision::W4 => "price_cold_w4",
            Precision::W16 => "price_cold_w16",
            _ => "price_cold",
        };
        (
            name,
            Box::new(move || {
                let cache = EngineCache::new();
                let spec = serial_spec().with_precision(p);
                let price = Evaluator::new(&cache).price(&spec).unwrap();
                black_box(price.area_um2)
            }),
        )
    };
    let price_cached = |p: Precision| -> Scenario {
        let name = match p {
            Precision::W4 => "price_cached_w4",
            Precision::W16 => "price_cached_w16",
            _ => "price_cached",
        };
        (
            name,
            Box::new(move || {
                let spec = serial_spec().with_precision(p);
                let price = Evaluator::new(warm).price(&spec).unwrap();
                black_box(price.area_um2)
            }),
        )
    };

    vec![
        price_cold(Precision::W8),
        price_cached(Precision::W8),
        (
            // The tpe-obs overhead pin: identical to `price_cached` minus
            // the per-call counter increment. The delta between the two
            // medians is the instrumentation cost of the warm path.
            "price_cached_uninstr",
            Box::new(|| {
                let price = Evaluator::new(warm)
                    .price_uninstrumented(&serial_spec())
                    .unwrap();
                black_box(price.area_um2)
            }),
        ),
        price_cold(Precision::W4),
        price_cached(Precision::W4),
        price_cold(Precision::W16),
        price_cached(Precision::W16),
        (
            "dense_layer_metrics",
            Box::new(|| {
                let w = SweepWorkload::Layer(probe_layer());
                let m = Evaluator::new(warm).metrics(&dense_spec(), &w, 42).unwrap();
                black_box(m.delay_us)
            }),
        ),
        (
            "serial_cycles_cold",
            Box::new(move || {
                let cache = EngineCache::new();
                let rec = cached_serial_cycles(&cache, &serial_spec(), &probe_layer(), 42, caps);
                black_box(rec.cycles)
            }),
        ),
        (
            "serial_cycles_cached",
            Box::new(move || {
                let rec = cached_serial_cycles(warm, &serial_spec(), &probe_layer(), 42, caps);
                black_box(rec.cycles)
            }),
        ),
        (
            // A whole ResNet-18 report from an empty cache: synthesis +
            // the dedup'd per-layer walk. The model-map counterpart below
            // must beat this by ≥ 10× (CI-pinned).
            "model_report_cold",
            Box::new(move || {
                let cache = EngineCache::new();
                let r = Evaluator::new(&cache)
                    .model_report(&serial_spec(), net, 42, model_caps)
                    .unwrap();
                black_box(r.delay_us)
            }),
        ),
        (
            // Same request against the pre-warmed cache: one model-map
            // lookup handing out Arc-backed rows — no per-layer rewalk,
            // no row re-clones.
            "model_report_warm",
            Box::new(move || {
                let r = Evaluator::new(warm)
                    .model_report(&serial_spec(), net, 42, model_caps)
                    .unwrap();
                black_box(r.delay_us)
            }),
        ),
        (
            // The closed-form replacement for `serial_cycles_cold`: same
            // cold cache, same probe layer, `--cycle-model analytic`. The
            // ratio between the two cold medians is the headline speedup
            // of this cycle model (CI pins it at ≥ 50×).
            "serial_cycles_cold_analytic",
            Box::new(move || {
                let cache = EngineCache::new();
                let analytic_caps = SerialSampleCaps {
                    model: CycleModel::Analytic,
                    ..caps
                };
                let rec =
                    cached_serial_cycles(&cache, &serial_spec(), &probe_layer(), 42, analytic_caps);
                black_box(rec.cycles)
            }),
        ),
        (
            // The pure traffic model: per-layer operand/weight/output
            // bytes from the tiling geometry, no cache involved — the
            // marginal cost the roofline adds to every layer row.
            "traffic_cold",
            Box::new(|| {
                let t = tpe_engine::layer_traffic(&serial_spec(), &probe_layer());
                black_box(t.total_bytes())
            }),
        ),
        (
            // `model_report_cold` under a DRAM-starved corner: the same
            // synthesis + layer walk plus a roofline application per
            // layer. Its overhead over the unbounded cold median is the
            // full memory-hierarchy tax on whole-model evaluation.
            "model_report_membound",
            Box::new(move || {
                let cache = EngineCache::new();
                let spec = serial_spec().with_memory(tpe_engine::MemorySpec::edge());
                let r = Evaluator::new(&cache)
                    .model_report(&spec, net, 42, model_caps)
                    .unwrap();
                black_box(r.delay_us)
            }),
        ),
    ]
}

fn bench_evaluator(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    group.sample_size(20);
    for (name, mut f) in scenarios() {
        group.bench_function(name, |b| b.iter(&mut f));
    }
    group.finish();
}

/// Median ns/iter over `samples` timed samples after a short warm-up.
fn measure(f: &mut dyn FnMut() -> f64, samples: usize) -> f64 {
    for _ in 0..3 {
        black_box(f());
    }
    // Scale iterations so one sample is ~1 ms or at least one call.
    let probe = Instant::now();
    black_box(f());
    let per_iter = probe.elapsed();
    let iters = (1_000_000u128 / per_iter.as_nanos().max(1)).clamp(1, 10_000) as usize;
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    medians.sort_by(|a, b| a.total_cmp(b));
    medians[medians.len() / 2]
}

/// Writes `BENCH_evaluator.json`: the perf-trajectory artifact.
fn emit_json() {
    let mut entries = Vec::new();
    for (name, mut f) in scenarios() {
        let ns = measure(&mut f, 9);
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"ns_per_iter\": {ns:.1}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"evaluator\",\n  \"unit\": \"ns/iter\",\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // Default to the workspace root regardless of cargo's bench CWD.
    let path = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_evaluator.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&path, &json).expect("writing BENCH_evaluator.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_evaluator);

fn main() {
    benches();
    emit_json();
}
