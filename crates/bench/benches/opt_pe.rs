//! Criterion benchmark: MAC datapath flavors and the notation interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpe_arith::encode::{Encoder, EncodingKind, EntEncoder, MbeEncoder};
use tpe_arith::mac::{CompressAccMac, SerialDigitMac, TraditionalMac};
use tpe_core::notation::{interp, nests};
use tpe_workloads::distributions::normal_int8_matrix;

fn bench_macs(c: &mut Criterion) {
    let a = normal_int8_matrix(1, 1024, 1.0, 5);
    let b = normal_int8_matrix(1, 1024, 1.0, 6);
    let av: Vec<i64> = a.iter().map(|&x| i64::from(x)).collect();
    let bv: Vec<i64> = b.iter().map(|&x| i64::from(x)).collect();

    let mut group = c.benchmark_group("dot_product_k1024");
    group.bench_function("traditional_mac", |bench| {
        bench.iter(|| {
            let mut mac = TraditionalMac::new(MbeEncoder, 32);
            for (&x, &y) in av.iter().zip(&bv) {
                mac.mac(black_box(x), black_box(y), 8);
            }
            black_box(mac.value())
        })
    });
    group.bench_function("opt1_compress_acc", |bench| {
        bench.iter(|| {
            let mut mac = CompressAccMac::new(EntEncoder, 32);
            for (&x, &y) in av.iter().zip(&bv) {
                mac.mac(black_box(x), black_box(y), 8);
            }
            black_box(mac.resolve())
        })
    });
    group.bench_function("opt3_serial_digits", |bench| {
        bench.iter(|| {
            let mut mac = SerialDigitMac::new(32);
            for (&x, &y) in av.iter().zip(&bv) {
                for d in EntEncoder.encode_nonzero(x, 8) {
                    mac.step(d, y);
                }
            }
            black_box(mac.resolve())
        })
    });
    group.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let a = normal_int8_matrix(4, 8, 1.0, 9);
    let b = normal_int8_matrix(8, 4, 1.0, 10);
    let mut group = c.benchmark_group("notation_interpreter_4x4x8");
    for (name, nest) in [
        (
            "traditional",
            nests::traditional_mac(4, 4, 8, EncodingKind::EnT),
        ),
        ("opt1", nests::opt1(4, 4, 8, EncodingKind::EnT)),
        ("opt4", nests::opt4(4, 4, 8, EncodingKind::EnT)),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(interp::execute(&nest, &a, &b).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_macs, bench_interpreter);
criterion_main!(benches);
