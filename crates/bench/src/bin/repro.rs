//! `repro` — regenerate the paper's tables and figures, explore the
//! design space, and serve the canonical evaluation stack.
//!
//! Subcommands are declared once in [`tpe_bench::cli::commands`]; run
//! `repro help` for the generated list. Unknown commands and flag errors
//! exit 2.

use tpe_bench::cli::{dispatch, CliOutcome};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        CliOutcome::Ok(out) => println!("{out}"),
        CliOutcome::Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
