//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p tpe-bench --release --bin repro -- <experiment>
//!
//! experiments:
//!   table1 table2 table3 table5 table7
//!   fig3 fig9 fig11 [gpt2|mobilenetv3] fig12 fig13 fig14
//!   sync-model notation
//!   ablate-encoders ablate-sync ablate-group
//!   dse [--filter S] [--objectives a,b,..] [--model S] [--threads N]
//!       [--seed S] [--out F.csv] [--json F.json]
//!   models [--model S] [--arch S] [--threads N] [--seed S]
//!          [--out F.csv] [--json F.json]
//!   all
//! ```

use tpe_bench::experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let out = match cmd {
        "table1" => exp::table1(),
        "table2" => exp::table2(),
        "table3" => exp::table3(),
        "table5" => exp::table5(),
        "table7" => exp::table7(),
        "fig3" => exp::fig3(),
        "fig2-schemes" => exp::fig2_schemes(),
        "sweep-width" => exp::sweep_width(),
        "sweep-precision" => exp::sweep_precision(),
        "fig9" => exp::fig9(),
        "fig11" => {
            let net = args.get(1).map(String::as_str).unwrap_or("gpt2");
            exp::fig11(net)
        }
        "fig12" => exp::fig12(),
        "fig13" => exp::fig13(),
        "fig14" => exp::fig14(),
        "sync-model" => exp::sync_model(),
        "notation" => exp::notation(),
        "ablate-encoders" => exp::ablate_encoders(),
        "ablate-sync" => exp::ablate_sync(),
        "ablate-group" => exp::ablate_group(),
        "ablate-operand-selection" => exp::ablate_operand_selection(),
        "dse" => {
            let out = exp::dse(&args[1..]);
            if out.starts_with("error:") {
                eprint!("{out}");
                std::process::exit(2);
            }
            out
        }
        "models" => {
            let out = exp::models(&args[1..]);
            if out.starts_with("error:") {
                eprint!("{out}");
                std::process::exit(2);
            }
            out
        }
        "all" => exp::all(),
        _ => {
            eprintln!(
                "usage: repro <table1|table2|table3|table5|table7|fig3|fig2-schemes|sweep-width|sweep-precision|fig9|fig11 [net]|fig12|\
                 fig13|fig14|sync-model|notation|ablate-encoders|ablate-sync|ablate-group|ablate-operand-selection|\
                 dse [--filter S] [--objectives a,b,..] [--model S] [--threads N] [--seed S] [--out F.csv] [--json F.json]|\
                 models [--model S] [--arch S] [--threads N] [--seed S] [--out F.csv] [--json F.json]|all>"
            );
            std::process::exit(2);
        }
    };
    println!("{out}");
}
