//! The `repro profile` command: a cold + warm instrumented workload over
//! a fresh [`EngineCache`], reporting where evaluation time actually goes
//! from the `tpe-obs` per-stage histograms the evaluator records into
//! (`eval_synthesis_ns`, `eval_price_assemble_ns`, `eval_serial_sample_ns`,
//! `eval_model_assemble_ns`, `eval_model_schedule_ns`, `eval_traffic_ns`).
//!
//! The cold phase prices the full Table VII roster, evaluates the default
//! sweep layer slice across it, and runs ResNet18 end to end on a serial
//! and a dense engine. The warm phase reruns the identical workload on the
//! now-hot cache — the cold-only spans live inside the cache-miss
//! closures, so their per-stage deltas collapse to (near) zero and the
//! wall-clock ratio is the cache's speedup. A warm micro-loop then times
//! cached pricing with and without instrumentation
//! (`Evaluator::price` vs `price_uninstrumented`) to pin the
//! observability overhead of the hot path in ns/call.
//!
//! `--out F.json` archives the stage table as `BENCH_profile.json`
//! (CI asserts `dominant_cold_stage` stays `serial_sample` — the paper's
//! serial-cycle sampling is the workload-dependent cost center).
//! `--cycle-model analytic` swaps the Monte-Carlo sampler for the
//! closed-form convolution path; CI runs a second profile in that mode
//! and asserts serial-cycle evaluation no longer dominates the cold
//! path (the `eval_serial_analytic_ns` stage is orders of magnitude
//! cheaper than the sampled one it replaces).

use std::fmt::Write as _;
use std::time::Instant;

use tpe_dse::space::default_workloads;
use tpe_engine::{roster, CycleModel, EngineCache, Evaluator, SweepWorkload, MODEL_SAMPLE_CAPS};
use tpe_obs::{Registry, Snapshot};
use tpe_workloads::models;

/// The evaluator stages profiled, as registered in `tpe-engine::eval`
/// (name in the registry = `eval_<stage>_ns`). `model_assemble` is the
/// dedup'd whole-model walk behind the model map's miss path;
/// `model_schedule` is the naive per-layer oracle, which production
/// evaluation no longer takes (its row pins that at zero calls);
/// `traffic` is the roofline's per-layer byte accounting (recorded on
/// model-record assembly and on every bare-layer metrics call).
const STAGES: [&str; 7] = [
    "synthesis",
    "price_assemble",
    "serial_sample",
    "serial_analytic",
    "model_assemble",
    "model_schedule",
    "traffic",
];

/// One stage's windowed numbers, pulled from a snapshot delta.
struct StageWindow {
    name: &'static str,
    calls: u64,
    total_ms: f64,
    mean_us: f64,
    p99_us: f64,
}

/// Extracts the four stage windows from a `Registry` snapshot delta.
fn stage_windows(delta: &Snapshot) -> Vec<StageWindow> {
    STAGES
        .iter()
        .map(|stage| {
            let h = delta
                .histogram(&format!("eval_{stage}_ns"))
                .cloned()
                .unwrap_or_default();
            StageWindow {
                name: stage,
                calls: h.count(),
                total_ms: h.sum as f64 / 1e6,
                mean_us: h.mean() / 1e3,
                p99_us: h.quantile(0.99) as f64 / 1e3,
            }
        })
        .collect()
}

/// The profiled workload: every roster engine priced, the default sweep
/// layer slice evaluated across the roster, and ResNet18 end to end on
/// one serial and one dense engine. `quick` shrinks every axis so tests
/// stay fast while still touching each stage.
fn run_workload(
    cache: &EngineCache,
    seed: u64,
    quick: bool,
    cycle_model: CycleModel,
) -> (usize, usize, usize) {
    let eval = Evaluator::new(cache).with_cycle_model(cycle_model);
    let all = roster::paper_roster();
    // Quick keeps two dense + two serial engines so every stage still
    // sees calls (serial_sample only runs on serial-style engines).
    let engines: Vec<_> = if quick {
        vec![
            all[0].clone(),
            all[4].clone(),
            all[10].clone(),
            all[11].clone(),
        ]
    } else {
        all
    };
    let layers: Vec<SweepWorkload> = default_workloads()
        .into_iter()
        .filter(|w| matches!(w, SweepWorkload::Layer(_)))
        .take(if quick { 2 } else { usize::MAX })
        .collect();

    let mut priced = 0usize;
    for spec in &engines {
        priced += usize::from(eval.price(spec).is_some());
    }
    let mut layer_points = 0usize;
    for spec in &engines {
        for w in &layers {
            layer_points += usize::from(eval.metrics(spec, w, seed).is_some());
        }
    }
    // ResNet18 end to end: the serial engine drives `serial_sample` +
    // `model_schedule`, the dense one is the schedule-only contrast.
    let net = models::resnet18();
    let model_engines: Vec<&str> = if quick {
        vec!["OPT4E[EN-T]/28nm@2.00GHz"]
    } else {
        vec!["OPT4E[EN-T]/28nm@2.00GHz", "MAC(TPU)/28nm@1.00GHz"]
    };
    let mut model_runs = 0usize;
    for name in model_engines {
        let spec = roster::find(name).expect("roster engine");
        model_runs += usize::from(
            eval.model_report(&spec, &net, seed, MODEL_SAMPLE_CAPS)
                .is_some(),
        );
    }
    (priced, layer_points, model_runs)
}

/// Median ns/call of `f` over `iters`-call samples (median of 5).
fn time_ns_per_call(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Runs the cold/warm profile (`repro profile [--quick] [--seed S]
/// [--cycle-model sampled|analytic] [--out F.json]`).
pub fn profile(args: &[String]) -> String {
    match try_profile(args) {
        Ok(report) => report,
        Err(msg) => {
            format!(
                "error: {msg}\nusage: repro profile [--quick] [--seed S] \
                 [--cycle-model sampled|analytic] [--out F.json]\n"
            )
        }
    }
}

fn try_profile(args: &[String]) -> Result<String, String> {
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut cycle_model = CycleModel::Sampled;
    let mut out_json: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--cycle-model" => {
                let v = it.next().ok_or("--cycle-model needs a value")?;
                cycle_model = CycleModel::parse(v)
                    .ok_or_else(|| format!("unknown cycle model `{v}` (sampled|analytic)"))?;
            }
            "--out" => out_json = Some(it.next().ok_or("--out needs a value")?.clone()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    // A fresh cache so "cold" means cold; the stage histograms live in the
    // process-wide registry, so the windows below are snapshot deltas.
    let cache = EngineCache::new();
    let registry = Registry::global();

    let snap0 = registry.snapshot();
    let t0 = Instant::now();
    let (priced, layer_points, model_runs) = run_workload(&cache, seed, quick, cycle_model);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snap1 = registry.snapshot();
    let t1 = Instant::now();
    run_workload(&cache, seed, quick, cycle_model);
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    let snap2 = registry.snapshot();

    let cold = stage_windows(&snap1.since(&snap0));
    let warm = stage_windows(&snap2.since(&snap1));
    let instrumented_ms: f64 = cold.iter().map(|s| s.total_ms).sum();
    let dominant = cold
        .iter()
        .max_by(|a, b| a.total_ms.total_cmp(&b.total_ms))
        .expect("stages");
    let dominant_share = if instrumented_ms > 0.0 {
        dominant.total_ms / instrumented_ms
    } else {
        0.0
    };
    // The serial-cycle cost center across both backends: the share CI
    // gates on (sampled mode must stay dominated by it, analytic mode
    // must not be).
    let serial_ms: f64 = cold
        .iter()
        .filter(|s| s.name.starts_with("serial_"))
        .map(|s| s.total_ms)
        .sum();
    let serial_cold_share = if instrumented_ms > 0.0 {
        serial_ms / instrumented_ms
    } else {
        0.0
    };

    // Warm hot-path micro-loop: cached pricing with vs without the
    // per-call instrumentation (one relaxed counter inc).
    let eval = Evaluator::new(&cache);
    let spec = &roster::paper_roster()[0];
    let iters = if quick { 2_000 } else { 20_000 };
    let warm_price_ns = time_ns_per_call(iters, || {
        std::hint::black_box(eval.price(std::hint::black_box(spec)));
    });
    let warm_price_uninstr_ns = time_ns_per_call(iters, || {
        std::hint::black_box(eval.price_uninstrumented(std::hint::black_box(spec)));
    });
    let overhead_ns = warm_price_ns - warm_price_uninstr_ns;

    let mut out = String::new();
    writeln!(
        out,
        "repro profile — cold vs warm instrumented workload over a fresh cache \
         (seed {seed}, cycle model {}{})",
        cycle_model.name(),
        if quick { ", --quick" } else { "" }
    )
    .unwrap();
    writeln!(
        out,
        "cold: {priced} engines priced, {layer_points} layer points, \
         {model_runs} ResNet18 run(s) in {cold_ms:.1} ms; \
         warm rerun of the same workload: {warm_ms:.1} ms ({:.0}x)",
        cold_ms / warm_ms.max(1e-9),
    )
    .unwrap();
    writeln!(
        out,
        "\nper-stage (cold window, from the tpe-obs eval histograms):\n\
         {:<16} {:>7} {:>11} {:>10} {:>10}",
        "stage", "calls", "total ms", "mean µs", "p99 µs"
    )
    .unwrap();
    for s in &cold {
        writeln!(
            out,
            "{:<16} {:>7} {:>11.2} {:>10.1} {:>10.1}",
            s.name, s.calls, s.total_ms, s.mean_us, s.p99_us
        )
        .unwrap();
    }
    writeln!(
        out,
        "dominant cold stage: {} ({:.1}% of the {:.1} ms instrumented time)",
        dominant.name,
        dominant_share * 100.0,
        instrumented_ms,
    )
    .unwrap();
    writeln!(
        out,
        "serial-cycle share of the cold path: {:.1}% ({serial_ms:.2} ms)",
        serial_cold_share * 100.0,
    )
    .unwrap();
    // Every cold-only stage span lives inside a cache-miss closure (the
    // model map covers whole-model assembly too), so the warm rerun
    // records nothing for them. `traffic` is the exception: bare-layer
    // metrics recompute their allocation-free byte accounting per call,
    // so it records warm too and stays out of this zero check.
    let warm_cold_path_calls: u64 = warm
        .iter()
        .filter(|s| s.name != "traffic")
        .map(|s| s.calls)
        .sum();
    writeln!(
        out,
        "warm window cold-path records (all stages incl. model_assemble): {} \
         — cache hits skip the spans entirely",
        warm_cold_path_calls,
    )
    .unwrap();
    writeln!(
        out,
        "warm cached price: {warm_price_ns:.1} ns/call instrumented vs \
         {warm_price_uninstr_ns:.1} ns/call uninstrumented ({overhead_ns:+.1} ns observability \
         overhead)",
    )
    .unwrap();

    if let Some(path) = &out_json {
        let stages_json: Vec<String> = cold
            .iter()
            .map(|s| {
                format!(
                    "    \"{}\": {{\"calls\": {}, \"total_ms\": {:.3}, \"mean_us\": {:.2}, \
                     \"p99_us\": {:.2}}}",
                    s.name, s.calls, s.total_ms, s.mean_us, s.p99_us
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"seed\": {seed},\n  \"quick\": {quick},\n  \
             \"cycle_model\": \"{}\",\n  \"cold_ms\": {cold_ms:.3},\n  \
             \"warm_ms\": {warm_ms:.3},\n  \"stages_cold\": {{\n{}\n  }},\n  \
             \"dominant_cold_stage\": \"{}\",\n  \"dominant_share\": {dominant_share:.4},\n  \
             \"serial_cold_share\": {serial_cold_share:.4},\n  \
             \"serial_cold_ms\": {serial_ms:.3},\n  \
             \"warm_price_ns_instrumented\": {warm_price_ns:.1},\n  \
             \"warm_price_ns_uninstrumented\": {warm_price_uninstr_ns:.1},\n  \
             \"warm_price_overhead_ns\": {overhead_ns:.1}\n}}\n",
            cycle_model.name(),
            stages_json.join(",\n"),
            dominant.name,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        writeln!(out, "profile written to {path}").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Structural check on the quick profile: every stage row renders,
    /// the workload exercised each cold stage, and the JSON artifact
    /// carries the fields CI pins. (Dominance itself is asserted by CI
    /// on a standalone full run — inside this parallel test binary other
    /// tests record into the same global histograms.)
    #[test]
    fn quick_profile_renders_stages_and_json() {
        let out_path = std::env::temp_dir().join("tpe_profile_test.json");
        let out = out_path.to_str().unwrap().to_string();
        let report = profile(&args(&["--quick", "--out", &out]));
        assert!(!report.starts_with("error:"), "{report}");
        for stage in STAGES {
            assert!(report.contains(stage), "missing stage {stage}: {report}");
        }
        assert!(report.contains("dominant cold stage:"), "{report}");
        assert!(report.contains("warm cached price:"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        for field in [
            "\"dominant_cold_stage\"",
            "\"stages_cold\"",
            "\"serial_sample\"",
            "\"warm_price_overhead_ns\"",
            "\"quick\": true",
        ] {
            assert!(json.contains(field), "missing {field}: {json}");
        }
        let _ = std::fs::remove_file(&out_path);
    }

    /// The analytic profile runs the same workload through the
    /// closed-form path: the report and JSON carry the mode, and the
    /// cold window records into `serial_analytic` instead of
    /// `serial_sample` rows (dominance itself is a CI assertion on a
    /// standalone run, as above).
    #[test]
    fn analytic_profile_records_the_analytic_stage() {
        let out_path = std::env::temp_dir().join("tpe_profile_analytic_test.json");
        let out = out_path.to_str().unwrap().to_string();
        let report = profile(&args(&[
            "--quick",
            "--cycle-model",
            "analytic",
            "--out",
            &out,
        ]));
        assert!(!report.starts_with("error:"), "{report}");
        assert!(report.contains("cycle model analytic"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"cycle_model\": \"analytic\""), "{json}");
        assert!(json.contains("\"serial_analytic\""), "{json}");
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(profile(&args(&["--bogus"])).contains("usage:"));
        assert!(profile(&args(&["--seed", "x"])).contains("usage:"));
        assert!(profile(&args(&["--seed"])).contains("usage:"));
        assert!(profile(&args(&["--cycle-model", "warp"])).contains("usage:"));
    }
}
