//! Figures 11, 12 and 13: DNN/LLM workload comparisons of OPT4E against an
//! equal-area parallel-MAC TPE.

use tpe_core::arch::workload::{
    dense_layer, equal_area_lane_scale, evaluate_network, serial_layer,
};
use tpe_core::arch::ArchModel;
use tpe_cost::report::{num, Table};
use tpe_workloads::models;
use tpe_workloads::NetworkModel;

fn opt4e() -> ArchModel {
    ArchModel::table7_ours()
        .into_iter()
        .find(|a| a.name == "OPT4E")
        .expect("OPT4E configured")
}

/// Figure 11: per-sublayer delay and OPT4E column utilization for GPT-2
/// (`net = "gpt2"`) or MobileNetV3 (`net = "mobilenetv3"`).
pub fn fig11(net: &str) -> String {
    let arch = opt4e();
    let scale = equal_area_lane_scale(&arch);
    let layers = match net {
        "gpt2" => models::gpt2_decode_sublayers("L0", 1024),
        "mobilenetv3" => {
            let net = models::mobilenet_v3();
            net.layers
                .iter()
                .filter(|l| {
                    l.name.starts_with("b3")
                        || l.name.starts_with("b11")
                        || l.name.starts_with("b13")
                })
                .cloned()
                .collect()
        }
        other => panic!("unknown net {other}; use gpt2 or mobilenetv3"),
    };
    let mut t = Table::new([
        "sublayer",
        "K",
        "MAC delay(us)",
        "OPT4E delay(us)",
        "speedup",
        "util%",
        "busy-min%",
        "busy-max%",
    ]);
    for (i, layer) in layers.iter().enumerate() {
        let s = serial_layer(&arch, layer, 1000 + i as u64);
        let d = dense_layer(layer, 1.0, scale);
        t.row([
            layer.name.clone(),
            layer.k.to_string(),
            num(d.delay_us, 3),
            num(s.delay_us, 3),
            num(d.delay_us / s.delay_us, 2),
            num(s.utilization * 100.0, 1),
            num(s.busy_min * 100.0, 1),
            num(s.busy_max * 100.0, 1),
        ]);
    }
    format!(
        "Figure 11 ({net}) — sublayer delay & OPT4E column utilization (equal-area MAC baseline)\n{}\n\
         paper utilization bands: GPT-2 96.0–98.2%; MobileNetV3 92.3–98.4% (DW dips, PW peaks)\n",
        t.render()
    )
}

/// Figure 12: normalized delay of OPT4E vs the parallel-MAC TPE across
/// networks, with the OPT4E idle ratio.
pub fn fig12() -> String {
    let arch = opt4e();
    let mut t = Table::new(["network", "norm. delay%", "util%", "idle%"]);
    for net in NetworkModel::all() {
        let r = evaluate_network(&arch, &net, 7);
        t.row([
            net.name.clone(),
            num(100.0 / r.speedup, 1),
            num(r.utilization * 100.0, 1),
            num((1.0 - r.utilization) * 100.0, 1),
        ]);
    }
    format!(
        "Figure 12 — normalized delay (MAC TPE = 100%) and OPT4E idle ratio\n{}\n\
         paper utilization band across backbones: 96.8–98.8%\n",
        t.render()
    )
}

/// Figure 13: normalized speedup and energy-consumption ratio across
/// networks.
pub fn fig13() -> String {
    let arch = opt4e();
    let mut t = Table::new(["network", "speedup", "energy ratio (OPT4E/MAC)"]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for net in NetworkModel::all() {
        let r = evaluate_network(&arch, &net, 13);
        rows.push((net.name.clone(), r.speedup, r.energy_ratio));
        t.row([net.name.clone(), num(r.speedup, 2), num(r.energy_ratio, 3)]);
    }
    let pick = |n: &str| {
        rows.iter()
            .find(|(name, _, _)| name == n)
            .map(|r| r.1)
            .unwrap_or(0.0)
    };
    format!(
        "Figure 13 — speedup & energy ratio of OPT4E vs equal-area parallel-MAC TPE\n{}\n\
         paper: MobileViT ×1.89, ViT ×2.02, GPT-2 ×2.16 are the largest speedups;\n\
         measured here: MobileViT ×{:.2}, ViT ×{:.2}, GPT-2 ×{:.2}\n\
         higher-reduction-dimension networks save more energy (paper §V-D)\n",
        t.render(),
        pick("MobileViT"),
        pick("ViT"),
        pick("GPT-2"),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_both_networks_render() {
        let g = super::fig11("gpt2");
        assert!(g.contains("qkv"));
        let m = super::fig11("mobilenetv3");
        assert!(m.contains("dw"));
    }

    #[test]
    #[should_panic(expected = "unknown net")]
    fn fig11_rejects_unknown() {
        super::fig11("alexnet");
    }
}
