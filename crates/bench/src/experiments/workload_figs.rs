//! Figures 11, 12 and 13: DNN/LLM workload comparisons of OPT4E against an
//! equal-area parallel-MAC TPE.
//!
//! The serial side prices and samples through `tpe-engine`'s canonical
//! evaluator — the same cached path `repro dse`, `repro models` and
//! `repro serve` use — so the figures can never drift from the sweeps.
//! The dense baseline keeps the core `dense_layer` model: its equal-area
//! lane scaling (a hypothetical MAC array grown to the OPT4E's silicon) is
//! a figure-specific comparison, not an engine anyone schedules onto.

use tpe_arith::encode::EncodingKind;
use tpe_core::arch::workload::dense_layer;
use tpe_core::arch::PeStyle;
use tpe_cost::report::{num, Table};
use tpe_engine::cache::SerialLayerRecord;
use tpe_engine::schedule::{cached_serial_cycles, serial_config};
use tpe_engine::{EnginePrice, EngineSpec, Evaluator, SampleProfile};
use tpe_sim::array::ClassicArch;
use tpe_workloads::models;
use tpe_workloads::{LayerShape, NetworkModel};

/// The paper's OPT4E configuration as an engine spec (Table VII corner).
fn opt4e() -> EngineSpec {
    EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0)
}

/// Area-equalization factor: how many MAC-array lanes fit in the OPT4E's
/// silicon (Figures 11/12 compare "a systolic array and the OPT4E
/// architecture of the same area").
fn equal_area_scale(eval: &Evaluator, spec: &EngineSpec) -> f64 {
    let target = eval.price(spec).expect("OPT4E prices at 2 GHz");
    let mac = eval
        .price(&EngineSpec::dense(
            PeStyle::TraditionalMac,
            ClassicArch::Tpu,
            1.0,
        ))
        .expect("MAC baseline prices at 1 GHz");
    target.area_um2 / mac.area_um2
}

/// One serial layer through the cached engine path: delay, utilization
/// band and energy (per-column clock gating, §VI).
struct SerialLayer {
    delay_us: f64,
    utilization: f64,
    busy_min: f64,
    busy_max: f64,
    energy_uj: f64,
}

fn serial_layer(
    eval: &Evaluator,
    spec: &EngineSpec,
    price: &EnginePrice,
    layer: &LayerShape,
    seed: u64,
) -> SerialLayer {
    let rec: SerialLayerRecord = cached_serial_cycles(
        eval.cache(),
        spec,
        layer,
        seed,
        SampleProfile::Single.caps(),
    );
    let cfg = serial_config(spec);
    let delay_us = rec.cycles / (spec.freq_ghz * 1e3);
    // Busy columns switch their NP PE instances; idle (waiting) columns
    // are clock-gated (§VI: early finishers "enter an idle state, saving
    // power").
    let idle_total = rec.cycles * cfg.mp as f64 - rec.busy_sum;
    let energy_uj =
        (rec.busy_sum * price.e_active_fj + idle_total * price.e_idle_fj) * cfg.np as f64 * 1e-9;
    SerialLayer {
        delay_us,
        utilization: rec.utilization(),
        busy_min: rec.busy_min / rec.cycles,
        busy_max: rec.busy_max / rec.cycles,
        energy_uj,
    }
}

/// Figure 11: per-sublayer delay and OPT4E column utilization for GPT-2
/// (`net = "gpt2"`) or MobileNetV3 (`net = "mobilenetv3"`).
pub fn fig11(net: &str) -> String {
    let eval = Evaluator::global();
    let spec = opt4e();
    let price = eval.price(&spec).expect("OPT4E prices");
    let scale = equal_area_scale(&eval, &spec);
    let layers = match net {
        "gpt2" => models::gpt2_decode_sublayers("L0", 1024),
        "mobilenetv3" => {
            let net = models::mobilenet_v3();
            net.layers
                .iter()
                .filter(|l| {
                    l.name.starts_with("b3")
                        || l.name.starts_with("b11")
                        || l.name.starts_with("b13")
                })
                .cloned()
                .collect()
        }
        other => panic!("unknown net {other}; use gpt2 or mobilenetv3"),
    };
    let mut t = Table::new([
        "sublayer",
        "K",
        "MAC delay(us)",
        "OPT4E delay(us)",
        "speedup",
        "util%",
        "busy-min%",
        "busy-max%",
    ]);
    for (i, layer) in layers.iter().enumerate() {
        let s = serial_layer(&eval, &spec, &price, layer, 1000 + i as u64);
        let d = dense_layer(layer, 1.0, scale);
        t.row([
            layer.name.clone(),
            layer.k.to_string(),
            num(d.delay_us, 3),
            num(s.delay_us, 3),
            num(d.delay_us / s.delay_us, 2),
            num(s.utilization * 100.0, 1),
            num(s.busy_min * 100.0, 1),
            num(s.busy_max * 100.0, 1),
        ]);
    }
    format!(
        "Figure 11 ({net}) — sublayer delay & OPT4E column utilization (equal-area MAC baseline)\n{}\n\
         paper utilization bands: GPT-2 96.0–98.2%; MobileNetV3 92.3–98.4% (DW dips, PW peaks)\n",
        t.render()
    )
}

/// Network-level aggregates for Figures 12–13: OPT4E (through the engine
/// evaluator) versus the equal-area dense baseline, per-layer seeds
/// `seed + i` as the figures have always used.
struct NetworkFig {
    speedup: f64,
    energy_ratio: f64,
    utilization: f64,
}

fn evaluate_network(
    eval: &Evaluator,
    spec: &EngineSpec,
    net: &NetworkModel,
    seed: u64,
) -> NetworkFig {
    let price = eval.price(spec).expect("serial engine prices");
    let scale = equal_area_scale(eval, spec);
    let mut serial_delay = 0.0;
    let mut serial_energy = 0.0;
    let mut dense_delay = 0.0;
    let mut dense_energy = 0.0;
    let mut util_weighted = 0.0;
    for (i, layer) in net.layers.iter().enumerate() {
        let s = serial_layer(eval, spec, &price, layer, seed + i as u64);
        let d = dense_layer(layer, 1.0, scale);
        util_weighted += s.utilization * s.delay_us;
        serial_delay += s.delay_us;
        serial_energy += s.energy_uj;
        dense_delay += d.delay_us;
        dense_energy += d.energy_uj;
    }
    NetworkFig {
        speedup: dense_delay / serial_delay,
        energy_ratio: serial_energy / dense_energy,
        utilization: util_weighted / serial_delay,
    }
}

/// Figure 12: normalized delay of OPT4E vs the parallel-MAC TPE across
/// networks, with the OPT4E idle ratio.
pub fn fig12() -> String {
    let eval = Evaluator::global();
    let spec = opt4e();
    let mut t = Table::new(["network", "norm. delay%", "util%", "idle%"]);
    for net in NetworkModel::all() {
        let r = evaluate_network(&eval, &spec, &net, 7);
        t.row([
            net.name.clone(),
            num(100.0 / r.speedup, 1),
            num(r.utilization * 100.0, 1),
            num((1.0 - r.utilization) * 100.0, 1),
        ]);
    }
    format!(
        "Figure 12 — normalized delay (MAC TPE = 100%) and OPT4E idle ratio\n{}\n\
         paper utilization band across backbones: 96.8–98.8%\n",
        t.render()
    )
}

/// Figure 13: normalized speedup and energy-consumption ratio across
/// networks.
pub fn fig13() -> String {
    let eval = Evaluator::global();
    let spec = opt4e();
    let mut t = Table::new(["network", "speedup", "energy ratio (OPT4E/MAC)"]);
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for net in NetworkModel::all() {
        let r = evaluate_network(&eval, &spec, &net, 13);
        rows.push((net.name.clone(), r.speedup, r.energy_ratio));
        t.row([net.name.clone(), num(r.speedup, 2), num(r.energy_ratio, 3)]);
    }
    let pick = |n: &str| {
        rows.iter()
            .find(|(name, _, _)| name == n)
            .map(|r| r.1)
            .unwrap_or(0.0)
    };
    format!(
        "Figure 13 — speedup & energy ratio of OPT4E vs equal-area parallel-MAC TPE\n{}\n\
         paper: MobileViT ×1.89, ViT ×2.02, GPT-2 ×2.16 are the largest speedups;\n\
         measured here: MobileViT ×{:.2}, ViT ×{:.2}, GPT-2 ×{:.2}\n\
         higher-reduction-dimension networks save more energy (paper §V-D)\n",
        t.render(),
        pick("MobileViT"),
        pick("ViT"),
        pick("GPT-2"),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_both_networks_render() {
        let g = super::fig11("gpt2");
        assert!(g.contains("qkv"));
        let m = super::fig11("mobilenetv3");
        assert!(m.contains("dw"));
    }

    #[test]
    #[should_panic(expected = "unknown net")]
    fn fig11_rejects_unknown() {
        super::fig11("alexnet");
    }

    /// The engine-evaluated serial side must agree with `tpe-core`'s
    /// original per-layer workload model bit for bit — the two paths share
    /// one sampler and one price.
    #[test]
    fn engine_path_matches_core_serial_layer() {
        use tpe_core::arch::workload as core_wl;
        use tpe_core::arch::ArchModel;
        use tpe_workloads::LayerShape;

        let eval = tpe_engine::Evaluator::global();
        let spec = super::opt4e();
        let price = eval.price(&spec).unwrap();
        let arch = ArchModel::table7_ours()
            .into_iter()
            .find(|a| a.name == "OPT4E")
            .unwrap();
        let layer = LayerShape::new("probe", 64, 512, 256, 1);
        let ours = super::serial_layer(&eval, &spec, &price, &layer, 123);
        let core = core_wl::serial_layer(&arch, &layer, 123);
        assert_eq!(ours.delay_us.to_bits(), core.delay_us.to_bits());
        assert_eq!(ours.utilization.to_bits(), core.utilization.to_bits());
        assert_eq!(ours.energy_uj.to_bits(), core.energy_uj.to_bits());
        assert_eq!(ours.busy_min.to_bits(), core.busy_min.to_bits());
        assert_eq!(ours.busy_max.to_bits(), core.busy_max.to_bits());
    }
}
