//! Ablation studies for the design choices DESIGN.md calls out.

use tpe_arith::encode::EncodingKind;
use tpe_core::analytic::sync_model;
use tpe_cost::components::Component;
use tpe_cost::report::{num, Table};
use tpe_cost::synthesis::PeDesign;
use tpe_sim::{BitsliceArray, BitsliceConfig};
use tpe_workloads::distributions::normal_int8_matrix;

/// Encoder ablation: the same OPT3-style serial array driven by each
/// encoding — isolates the contribution of EN-T over Booth, CSD and
/// radix-2 bit-serial in cycles per GEMM.
pub fn ablate_encoders() -> String {
    let a = normal_int8_matrix(64, 256, 1.0, 555);
    let mut t = Table::new(["encoding", "cycles", "avg PPs/MAC", "util%", "vs EN-T"]);
    let mut ent_cycles = 0u64;
    for kind in [
        EncodingKind::EnT,
        EncodingKind::Csd,
        EncodingKind::Mbe,
        EncodingKind::BitSerialSignMagnitude,
        EncodingKind::BitSerialComplement,
    ] {
        let cfg = BitsliceConfig {
            mp: 32,
            np: 32,
            lanes_per_pe: 1,
            kt: 64,
            encoding: kind,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, 32);
        if kind == EncodingKind::EnT {
            ent_cycles = stats.cycles;
        }
        t.row([
            kind.to_string(),
            stats.cycles.to_string(),
            num(stats.avg_pps_per_mac(), 2),
            num(stats.utilization() * 100.0, 1),
            format!("×{:.2}", stats.cycles as f64 / ent_cycles as f64),
        ]);
    }
    format!(
        "Ablation — encoder choice on the serial array (64×256 N(0,1) GEMM)\n{}\n\
         EN-T's consecutive-ones skipping buys ~1.7× over complement bit-serial;\n\
         CSD is the minimal-weight bound, within a few % of EN-T at higher encoder cost.\n",
        t.render()
    )
}

/// Sync-granularity ablation: KT sweep against the Eq. 7/8 analytic model.
pub fn ablate_sync() -> String {
    let a = normal_int8_matrix(32, 576, 1.0, 777);
    let mut t = Table::new(["KT (operands/sync)", "cycles", "util%", "syncs"]);
    for kt in [8usize, 16, 32, 64, 144, 576] {
        let cfg = BitsliceConfig {
            mp: 32,
            np: 32,
            lanes_per_pe: 1,
            kt,
            encoding: EncodingKind::EnT,
        };
        let stats = BitsliceArray::new(cfg).cycle_stats(&a, 32);
        t.row([
            kt.to_string(),
            stats.cycles.to_string(),
            num(stats.utilization() * 100.0, 1),
            stats.sync_events.to_string(),
        ]);
    }
    let e = sync_model::expected_tsync(576, 0.445, 32);
    format!(
        "Ablation — synchronization granularity (K=576, 32 columns)\n{}\n\
         coarser sync → drift averages out → higher utilization;\n\
         Eq. 8 at digit sparsity 0.445: E[Tsync] = {:.0} slots per full reduction\n",
        t.render(),
        e
    )
}

/// Group-size ablation: lanes sharing one compressor tree and DFF bank
/// (OPT4E's 4-lane grouping) — area per lane versus group size.
pub fn ablate_group() -> String {
    let mut t = Table::new(["group lanes", "tree", "area(um2)", "area/lane", "delay(ns)"]);
    for lanes in [1u32, 2, 4, 8] {
        let tree_inputs = lanes + 2; // n lanes + the carry-save feedback pair
        let d = PeDesign::builder(format!("group{lanes}"))
            .comp(Component::Cppg { width: 8 }, lanes)
            .comp(Component::Mux { ways: 5, width: 8 }, lanes)
            .comp(
                Component::CompressorTree {
                    inputs: tree_inputs,
                    width: 20,
                },
                1,
            )
            .state(40 + 2 * lanes + 8)
            .nominal_delay(0.29 + 0.055 * f64::from(lanes.ilog2()))
            .build();
        let r = d.synthesize(2.0).expect("group timing");
        t.row([
            lanes.to_string(),
            format!("{}-2", tree_inputs),
            num(r.area_um2, 1),
            num(r.area_um2 / f64::from(lanes), 1),
            num(d.nominal_delay_ns, 2),
        ]);
    }
    format!(
        "Ablation — PE-group size (lanes sharing one compressor tree + DFFs)\n{}\n\
         4 lanes (OPT4E) roughly balances DFF amortization against tree depth growth\n\
         (paper: 0.29 ns → 0.40 ns from OPT4C to the 4-lane group, DFF area ÷4)\n",
        t.render()
    )
}

/// Operand-selection ablation (§VI): encoding the sparser operand —
/// post-ReLU activations with a fraction of exact zeros — cuts serial
/// cycles proportionally, on top of digit sparsity.
pub fn ablate_operand_selection() -> String {
    use tpe_core::arch::workload::cycles_per_mac_with_zeros;
    use tpe_core::arch::ArchModel;
    let arch = ArchModel::table7_ours()
        .into_iter()
        .find(|a| a.name == "OPT4E")
        .expect("OPT4E");
    let dense = cycles_per_mac_with_zeros(&arch, 0.0, 42);
    let mut t = Table::new(["zero fraction", "cycles/MAC", "speedup vs dense operand"]);
    for z in [0.0, 0.2, 0.4, 0.5, 0.6, 0.8] {
        let c = cycles_per_mac_with_zeros(&arch, z, 42);
        t.row([
            format!("{z:.1}"),
            format!("{c:.2}"),
            format!("×{:.2}", dense / c),
        ]);
    }
    format!(
        "Ablation — operand selection (§VI): encode the ReLU-sparse operand\n{}\n\
         zero operands are skipped entirely by the OPT4 prefetcher, so cycles\n\
         scale with (1 − zero fraction) × avg NumPPs\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn encoder_ablation_orders_encodings() {
        let s = super::ablate_encoders();
        assert!(s.contains("EN-T") && s.contains("bit-serial(C)"));
    }

    #[test]
    fn operand_selection_scales_with_zeros() {
        let s = super::ablate_operand_selection();
        assert!(s.contains("0.5"));
        // 50% zeros ≈ ×2 speedup.
        assert!(
            s.contains("×1.9") || s.contains("×2.0") || s.contains("×2.1"),
            "{s}"
        );
    }

    #[test]
    fn group_ablation_shows_amortization() {
        let s = super::ablate_group();
        assert!(s.contains("area/lane"));
    }
}
