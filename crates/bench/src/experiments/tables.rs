//! Tables I, II, III, V and VII.

use tpe_arith::encode::EncodingKind;
use tpe_core::analytic::numpps;
use tpe_core::arch::Table7Row;
use tpe_core::baselines;
use tpe_cost::anchors;
use tpe_cost::components::Component;
use tpe_cost::report::{num, ratio, Table};

/// Table I: component decomposition of the INT8 MAC (model vs paper).
pub fn table1() -> String {
    let mut t = Table::new([
        "Unit",
        "Bit",
        "Area(um2)",
        "paper",
        "Delay(ns)",
        "paper",
        "Power(uW@2ns)",
        "paper",
    ]);
    for row in &anchors::TABLE1_MAC {
        let c = Component::MacUnit {
            acc_width: row.width,
        }
        .cost();
        t.row([
            "MAC".to_string(),
            row.width.to_string(),
            num(c.area_um2, 2),
            num(row.area_um2, 2),
            num(c.delay_ns, 2),
            num(row.delay_ns, 2),
            num(c.energy_fj * 0.5, 1),
            num(row.power_uw, 1),
        ]);
    }
    let tree = Component::CompressorTree {
        inputs: 4,
        width: 14,
    }
    .cost();
    t.row([
        "4-2 Compressor Tree".into(),
        "14".into(),
        num(tree.area_um2, 2),
        num(anchors::TABLE1_COMPRESSOR_TREE_14.area_um2, 2),
        num(tree.delay_ns, 2),
        num(anchors::TABLE1_COMPRESSOR_TREE_14.delay_ns, 2),
        "-".into(),
        num(anchors::TABLE1_COMPRESSOR_TREE_14.power_uw, 1),
    ]);
    let fa = Component::CarryPropagateAdder { width: 14 }.cost();
    t.row([
        "Full Adder".into(),
        "14".into(),
        num(fa.area_um2, 2),
        num(anchors::TABLE1_FULL_ADDER_14.area_um2, 2),
        num(fa.delay_ns, 2),
        num(anchors::TABLE1_FULL_ADDER_14.delay_ns, 2),
        "-".into(),
        num(anchors::TABLE1_FULL_ADDER_14.power_uw, 1),
    ]);
    for row in &anchors::TABLE1_ACCUMULATOR {
        let c = Component::Accumulator { width: row.width }.cost();
        t.row([
            "Accumulator".to_string(),
            row.width.to_string(),
            num(c.area_um2, 2),
            num(row.area_um2, 2),
            num(c.delay_ns, 2),
            num(row.delay_ns, 2),
            num(c.energy_fj * 0.5, 1),
            num(row.power_uw, 1),
        ]);
    }
    let mac32 = Component::MacUnit { acc_width: 32 }.cost();
    let acc32 = Component::Accumulator { width: 32 }.cost();
    let fa32 = Component::CarryPropagateAdder { width: 32 }.cost();
    format!(
        "Table I — INT8 MAC component decomposition (SMIC 28nm, 2ns clock)\n{}\n\
         32-bit reduction share: area {:.1}% (paper: 61.4%), delay {:.1}% (paper: 74.6%)\n\
         OPT1 rewrite: tpd {:.2} ns → {:.2} ns (paper: 1.95 → 0.92)\n",
        t.render(),
        (acc32.area_um2 + fa32.area_um2) / mac32.area_um2 * 100.0,
        (acc32.delay_ns + fa32.delay_ns) / mac32.delay_ns * 100.0,
        anchors::MAC_TPD_NS,
        anchors::OPT1_TPD_NS,
    )
}

/// Table II: NumPPs histograms over the full INT8 range (exact).
pub fn table2() -> String {
    let mut t = Table::new(["Encoding", "4 PPs", "3", "2", "1", "0", "avg", "≤3 (%)"]);
    for (kind, paper) in [
        (EncodingKind::Mbe, Some([81, 108, 54, 12, 1])),
        (EncodingKind::EnT, Some([72, 108, 60, 15, 1])),
        (EncodingKind::Csd, None),
    ] {
        let h = numpps::int8_histogram(kind);
        t.row([
            kind.to_string(),
            h[4].to_string(),
            h[3].to_string(),
            h[2].to_string(),
            h[1].to_string(),
            h[0].to_string(),
            num(numpps::int8_average(kind), 3),
            num(numpps::fraction_at_most(kind, 3) * 100.0, 1),
        ]);
        if let Some(p) = paper {
            t.row([
                format!("  (paper {kind})"),
                p[0].to_string(),
                p[1].to_string(),
                p[2].to_string(),
                p[3].to_string(),
                p[4].to_string(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    let bs = numpps::int8_histogram(EncodingKind::BitSerialComplement);
    let mut t2 = Table::new(["Encoding", "{8,7}", "{6,5}", "4", "{3,2}", "{1,0}"]);
    t2.row([
        "bit-serial".to_string(),
        (bs[8] + bs[7]).to_string(),
        (bs[6] + bs[5]).to_string(),
        bs[4].to_string(),
        (bs[3] + bs[2]).to_string(),
        (bs[1] + bs[0]).to_string(),
    ]);
    t2.row(["  (paper)", "9", "84", "70", "84", "9"]);
    format!(
        "Table II — NumPPs over INT8 (−128..127)\n{}\n{}\n",
        t.render(),
        t2.render()
    )
}

/// Table III: average NumPPs on 1024×1024 N(0,σ) matrices.
pub fn table3() -> String {
    let rows = numpps::table3(1024, 20240603);
    let mut t = Table::new([
        "Encoding", "N(0,0.5)", "N(0,1.0)", "N(0,2.5)", "N(0,5.0)", "paper",
    ]);
    for (kind, row) in rows {
        let paper = anchors::TABLE3_AVG_NUMPPS
            .iter()
            .find(|(n, _)| *n == kind.to_string())
            .map(|(_, v)| format!("{:.2}/{:.2}/{:.2}/{:.2}", v[0], v[1], v[2], v[3]))
            .unwrap_or_else(|| "-".into());
        t.row([
            kind.to_string(),
            num(row[0], 2),
            num(row[1], 2),
            num(row[2], 2),
            num(row[3], 2),
            paper,
        ]);
    }
    format!(
        "Table III — average NumPPs, 1024×1024 quantized N(0,σ) matrices\n{}\n\
         (bit-serial(M) counts one extra sign-slice cycle per operand, per the paper's convention)\n",
        t.render()
    )
}

/// Table V: 4-2 compressor tree vs width (flat delay).
pub fn table5() -> String {
    let mut t = Table::new(["Width", "Area(um2)", "paper", "Delay(ns)", "paper"]);
    for row in &anchors::TABLE5_COMPRESSOR_TREE {
        let c = Component::CompressorTree {
            inputs: 4,
            width: row.width,
        }
        .cost();
        t.row([
            row.width.to_string(),
            num(c.area_um2, 2),
            num(row.area_um2, 2),
            num(c.delay_ns, 2),
            num(row.delay_ns, 2),
        ]);
    }
    let cpa = |w| Component::CarryPropagateAdder { width: w }.cost().delay_ns;
    format!(
        "Table V — 4-2 compressor tree on SMIC 28nm (delay independent of width)\n{}\n\
         contrast: carry-propagate adder delay grows {:.2} ns (14b) → {:.2} ns (32b)\n",
        t.render(),
        cpa(14),
        cpa(32),
    )
}

/// Display name Table VII (and the paper anchors) use for a roster engine:
/// bare topology names for the MAC baselines, bare style names for the
/// serial designs.
fn table7_name(spec: &tpe_engine::EngineSpec) -> String {
    use tpe_core::arch::{ArchKind, PeStyle};
    match (spec.style, spec.kind) {
        (PeStyle::TraditionalMac, ArchKind::Dense(arch)) => {
            tpe_engine::classic_name(arch).to_string()
        }
        (_, ArchKind::Dense(_)) => spec.arch_label(),
        (_, ArchKind::Serial) => spec.style.name().to_string(),
    }
}

/// One Table VII row from the canonical engine price. Peak TOPS follows
/// the table's convention — the paper's *measured* EN-T effective NumPPs
/// (2.27, Table III) — rather than the analytic quantized-normal
/// expectation the sweeps use, so the printed numbers stay comparable to
/// the paper's column.
fn table7_row(spec: &tpe_engine::EngineSpec) -> Table7Row {
    use tpe_core::arch::array::EFFECTIVE_NUMPPS_NORMAL;
    let price = tpe_engine::Evaluator::global()
        .price(spec)
        .unwrap_or_else(|| panic!("{} cannot close timing", spec.label()));
    let raw_tops = price.lanes_total * 2.0 * spec.freq_ghz * 1e9 / 1e12;
    let peak_tops = if spec.style.is_serial() {
        raw_tops / EFFECTIVE_NUMPPS_NORMAL
    } else {
        raw_tops
    };
    Table7Row {
        name: table7_name(spec),
        freq_mhz: spec.freq_ghz * 1e3,
        area_um2: price.area_um2,
        power_w: price.table7_power_w(spec.freq_ghz),
        peak_tops,
    }
}

/// Table VII: array-level comparison, model vs paper. Rows price through
/// the `tpe-engine` roster and evaluator — the same cached path every
/// sweep, grid and serve query uses.
pub fn table7() -> String {
    let mut t = Table::new([
        "Design",
        "MHz",
        "Area(um2)",
        "paper",
        "Power(W)",
        "paper",
        "TOPS",
        "paper",
        "TOPS/W",
        "TOPS/mm2",
    ]);
    let paper_for = |name: &str| {
        anchors::TABLE7_OTHERS
            .iter()
            .chain(anchors::TABLE7_OURS.iter())
            .find(|a| a.name == name)
            .copied()
    };
    let mut dense_ae: Vec<(String, f64, f64)> = Vec::new();
    for spec in tpe_engine::roster::paper_roster() {
        let row = table7_row(&spec);
        let p = paper_for(&row.name);
        t.row([
            row.name.clone(),
            num(row.freq_mhz, 0),
            num(row.area_um2, 0),
            p.map_or("-".into(), |a| num(a.area_um2, 0)),
            num(row.power_w, 2),
            p.map_or("-".into(), |a| num(a.power_w, 2)),
            num(row.peak_tops, 2),
            p.map_or("-".into(), |a| num(a.peak_tops, 2)),
            num(row.energy_efficiency(), 2),
            num(row.area_efficiency(), 2),
        ]);
        dense_ae.push((
            row.name.clone(),
            row.area_efficiency(),
            row.energy_efficiency(),
        ));
    }
    // Improvement ratios OPT1(x) vs x — the paper's headline 1.27–1.56×.
    let find = |n: &str| {
        dense_ae
            .iter()
            .find(|(name, _, _)| name == n)
            .unwrap()
            .clone()
    };
    let mut ratios = String::new();
    for (base, opt) in [
        ("TPU", "OPT1(TPU)"),
        ("Ascend", "OPT1(Ascend)"),
        ("Trapezoid", "OPT1(Trapezoid)"),
        ("FlexFlow", "OPT2(FlexFlow)"),
    ] {
        let (_, bae, bee) = find(base);
        let (_, oae, oee) = find(opt);
        ratios.push_str(&format!(
            "  {opt} vs {base}: area-eff {} energy-eff {}\n",
            ratio(oae / bae),
            ratio(oee / bee)
        ));
    }
    // Bit-slice comparison vs Laconic.
    let (_, ae4e, ee4e) = find("OPT4E");
    let rel = baselines::vs_laconic("OPT4E", ee4e, ae4e);
    format!(
        "Table VII — array-level comparison (32×32 PEs; Cube 10×10×10; OPT4E 32×32 groups)\n{}\n\
         paper headline ratios — area-eff ×1.27/×1.28/×1.56/×1.44, energy-eff ×1.04/×1.56/×1.49/×1.20:\n{ratios}\
         OPT4E vs Laconic: energy-eff {} (paper ×12.10), area-eff {} (paper ×2.85)\n\
         published bit-slice baselines (28nm-normalized by the paper): {}\n",
        t.render(),
        ratio(rel.ee_vs_laconic),
        ratio(rel.ae_vs_laconic),
        anchors::TABLE7_OTHERS[4..]
            .iter()
            .map(|a| format!("{} {:.2}TOPS/W", a.name, a.peak_tops / a.power_w))
            .collect::<Vec<_>>()
            .join(", "),
    )
}
