//! The `repro serve` / `repro query` / `repro serve-smoke` commands: the
//! batched NDJSON query front end over the canonical evaluation stack.
//!
//! `serve` binds a TCP listener and answers engine/layer/model evaluation
//! queries (protocol in [`tpe_engine::serve`]) until a `shutdown` request
//! arrives; all connections share the process-wide [`EngineCache`].
//! `query` is the matching client. `serve-smoke` is the self-driving load
//! test: it spins a server thread over a dedicated cache instance (so the
//! measured hit rate is a deterministic property of the batch alone),
//! fires a mixed 1000-query batch, verifies the batched responses
//! byte-identical to sequential single-query replies, and reports
//! throughput plus the cache hit rate.

use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Below this batch size the >90% hit-rate bar is not enforced: a short
/// cold batch is dominated by first-touch misses, which says nothing
/// about steady-state serving (the property the bar guards).
const HIT_RATE_MIN_QUERIES: usize = 500;

use tpe_dse::space::default_workloads;
use tpe_dse::SweepWorkload;
use tpe_engine::serve::{query_batch, serve as serve_loop};
use tpe_engine::{roster, CacheStats, EngineCache};

/// Minimal flag parser shared by the three commands.
fn parse_flags(args: &[String], spec: &[(&str, bool)]) -> Result<Vec<Option<String>>, String> {
    let mut values: Vec<Option<String>> = vec![None; spec.len()];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(slot) = spec.iter().position(|(name, _)| name == flag) else {
            return Err(format!("unknown flag `{flag}`"));
        };
        let value = it
            .next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))?;
        values[slot] = Some(value);
    }
    for ((name, required), v) in spec.iter().zip(&values) {
        if *required && v.is_none() {
            return Err(format!("{name} is required"));
        }
    }
    Ok(values)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Runs the blocking serve loop (`repro serve [--port N]`; port 0 binds an
/// ephemeral port). Prints the bound address before serving, so callers
/// can scrape it.
pub fn serve(args: &[String]) -> String {
    match try_serve(args) {
        Ok(report) => report,
        Err(msg) => format!("error: {msg}\nusage: repro serve [--port N]\n"),
    }
}

fn try_serve(args: &[String]) -> Result<String, String> {
    let values = parse_flags(args, &[("--port", false)])?;
    let port: u16 = values[0]
        .as_deref()
        .map(|v| parse_num(v, "--port"))
        .transpose()?
        .unwrap_or(0);
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!(
        "repro serve listening on {addr} (NDJSON; ops: engine|layer|model|roster|stats|shutdown)"
    );
    std::io::stdout().flush().ok();
    let outcome = serve_loop(listener, EngineCache::global()).map_err(|e| e.to_string())?;
    let stats = EngineCache::global().stats();
    Ok(format!(
        "serve shut down cleanly: {} connection(s), {} request(s); \
         global cache {} hits / {} misses ({:.1}% hit rate)\n",
        outcome.connections,
        outcome.requests,
        stats.hits(),
        stats.misses(),
        stats.hit_rate() * 100.0,
    ))
}

/// Sends NDJSON requests to a running server
/// (`repro query [--host H] --port N [--file F] [--precision P]`; default
/// input is stdin). `--precision` stamps the given operand precision onto
/// every request that does not already carry a `precision` field — the
/// client-side way to re-ask a whole batch at W4/W16.
pub fn query(args: &[String]) -> String {
    match try_query(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro query [--host H] --port N [--file F] \
             [--precision W4|W8|W16|W8xW4]\n"
        ),
    }
}

/// Adds `"precision":"<p>"` to a flat request object that lacks one.
/// Requests already carrying the field (or non-object lines, which the
/// server will reject with a parse error anyway) pass through untouched.
fn stamp_precision(line: &str, precision: &str) -> String {
    let trimmed = line.trim_end();
    if line.contains("\"precision\"") {
        return line.to_string();
    }
    match trimmed.strip_suffix('}') {
        Some(head) => format!("{head},\"precision\":\"{precision}\"}}"),
        None => line.to_string(),
    }
}

fn try_query(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[
            ("--host", false),
            ("--port", true),
            ("--file", false),
            ("--precision", false),
        ],
    )?;
    let host = values[0].clone().unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = parse_num(values[1].as_deref().unwrap(), "--port")?;
    let lines: Vec<String> = match values[2].as_deref() {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))?
            .lines()
            .map(str::to_string)
            .collect(),
        None => std::io::stdin()
            .lock()
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| format!("reading stdin: {e}"))?,
    };
    let precision = values[3]
        .as_deref()
        .map(|p| {
            tpe_engine::Precision::parse(p)
                .map(|v| v.label())
                .ok_or_else(|| format!("unknown precision `{p}`"))
        })
        .transpose()?;
    let requests: Vec<String> = lines
        .into_iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| match &precision {
            Some(p) => stamp_precision(&l, p),
            None => l,
        })
        .collect();
    if requests.is_empty() {
        return Err("no requests to send".into());
    }
    let responses =
        query_batch(&format!("{host}:{port}"), &requests).map_err(|e| format!("query: {e}"))?;
    Ok(responses.join("\n") + "\n")
}

/// The deterministic mixed query batch the smoke fires: engine pricing
/// (cycling the W8/W4/W16/W8xW4 precision axis), layer evaluations over
/// the default dse workload slice, mixed-precision layer queries against
/// a fixed serial engine, and whole-model queries (including the
/// quantized ResNet18-W4 preset), cycling the Table VII roster.
///
/// Precision-bearing queries deliberately revisit a *bounded* set of
/// (engine, precision) keys: the smoke's >90% hit-rate bar is a
/// steady-state property, and mixing the axis must prove the
/// precision-keyed cache converges just like the W8-only batch did.
pub fn smoke_batch(n: usize) -> Vec<String> {
    let engines = roster::names();
    let layers: Vec<(String, usize, usize, usize, usize)> = default_workloads()
        .iter()
        .filter_map(|w| match w {
            SweepWorkload::Layer(l) => Some((l.name.clone(), l.m, l.n, l.k, l.repeats)),
            SweepWorkload::Model(_) => None,
        })
        .collect();
    let models = ["ResNet18", "MobileNetV3"];
    let precisions = ["W8", "W4", "W16", "W8xW4"];
    (0..n)
        .map(|i| {
            // Engine cycles fastest, workload slowest, so the batch walks
            // the full (engine x workload) product instead of aliasing on
            // shared divisors.
            let engine = &engines[i % engines.len()];
            let slow = i / engines.len();
            match i % 10 {
                0 => {
                    let precision = precisions[slow % precisions.len()];
                    format!(
                        r#"{{"id":{i},"op":"engine","engine":"{engine}","precision":"{precision}"}}"#
                    )
                }
                1..=6 => {
                    let (name, m, nn, k, r) = &layers[slow % layers.len()];
                    format!(
                        r#"{{"id":{i},"op":"layer","engine":"{engine}","workload":"{name}","m":{m},"n":{nn},"k":{k},"repeats":{r},"seed":42}}"#
                    )
                }
                7 => {
                    // Mixed-precision serial streaming against one fixed
                    // engine/layer pair: two cycle keys, many revisits.
                    let precision = ["W4", "W16"][slow % 2];
                    let (name, m, nn, k, r) = &layers[0];
                    format!(
                        r#"{{"id":{i},"op":"layer","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"{precision}","workload":"{name}","m":{m},"n":{nn},"k":{k},"repeats":{r},"seed":42}}"#
                    )
                }
                8 => {
                    let model = models[slow % models.len()];
                    format!(r#"{{"id":{i},"op":"model","engine":"{engine}","model":"{model}","seed":42}}"#)
                }
                _ => {
                    // The quantized preset streams W4 digit statistics —
                    // bounded to one fixed serial engine so its per-layer
                    // cycle keys converge to steady-state hits.
                    format!(
                        r#"{{"id":{i},"op":"model","engine":"OPT4E[EN-T]/28nm@2.00GHz","model":"ResNet18-W4","seed":42}}"#
                    )
                }
            }
        })
        .collect()
}

/// The self-driving load smoke (`repro serve-smoke [--queries N]`).
pub fn serve_smoke(args: &[String]) -> String {
    match try_serve_smoke(args) {
        Ok(report) => report,
        Err(msg) => format!("error: {msg}\nusage: repro serve-smoke [--queries N]\n"),
    }
}

fn try_serve_smoke(args: &[String]) -> Result<String, String> {
    let values = parse_flags(args, &[("--queries", false)])?;
    let queries: usize = values[0]
        .as_deref()
        .map(|v| parse_num(v, "--queries"))
        .transpose()?
        .unwrap_or(1000);
    if queries == 0 {
        return Err("--queries must be positive".into());
    }

    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // A dedicated cache instance (same type the real server shares
    // process-wide): the measured hit rate is then a deterministic
    // property of the batch alone — no distortion from whatever else the
    // process evaluated before or concurrently.
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let server = std::thread::spawn(move || serve_loop(listener, cache));

    // Whatever happens mid-smoke, the server must come down: run the
    // drive phase, then always send shutdown and join before reporting.
    let driven = drive_smoke(&addr.to_string(), queries, cache);
    let down = query_batch(
        &addr.to_string(),
        &[format!(r#"{{"id":{queries},"op":"shutdown"}}"#)],
    )
    .map_err(|e| format!("shutdown: {e}"))?;
    let outcome = server
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| format!("serve loop: {e}")))?;
    let (elapsed, delta, divergences) = driven?;

    let hit_rate = delta.hit_rate();
    let mut out = String::new();
    writeln!(
        out,
        "serve smoke — {} mixed queries (engine/layer/model over the {}-engine roster, \
         precisions mixed across W8/W4/W16/W8xW4) on {addr}",
        queries,
        roster::names().len()
    )
    .unwrap();
    writeln!(
        out,
        "batch wall-clock: {:.1} ms ({:.0} queries/s over one connection)",
        elapsed.as_secs_f64() * 1e3,
        queries as f64 / elapsed.as_secs_f64().max(1e-9),
    )
    .unwrap();
    writeln!(
        out,
        "serve cache over the batch: {} hits / {} misses ({:.1}% hit rate; \
         pricing {}h/{}m, workload cycles {}h/{}m)",
        delta.hits(),
        delta.misses(),
        hit_rate * 100.0,
        delta.price_hits,
        delta.price_misses,
        delta.cycle_hits,
        delta.cycle_misses,
    )
    .unwrap();
    writeln!(
        out,
        "batched vs sequential replies: {} / {} byte-identical",
        queries - divergences,
        queries
    )
    .unwrap();
    writeln!(
        out,
        "shutdown: {} ({} connection(s), {} request(s) served)",
        if down
            .first()
            .is_some_and(|r| r.contains("\"op\":\"shutdown\""))
        {
            "clean"
        } else {
            "NOT CLEAN"
        },
        outcome.connections,
        outcome.requests,
    )
    .unwrap();

    if divergences > 0 {
        return Err(format!(
            "{divergences} batched responses diverged from sequential replies\n{out}"
        ));
    }
    if queries >= HIT_RATE_MIN_QUERIES && hit_rate <= 0.90 {
        return Err(format!(
            "serve-cache hit rate {:.1}% does not clear the 90% bar\n{out}",
            hit_rate * 100.0
        ));
    }
    Ok(out)
}

/// The smoke's drive phase: fire the mixed batch over one connection,
/// validate every reply, then replay each request on its own fresh
/// connection and count byte divergences. Returns the batch wall-clock,
/// the cache-counter delta over the batch, and the divergence count.
fn drive_smoke(
    addr: &str,
    queries: usize,
    cache: &EngineCache,
) -> Result<(Duration, CacheStats, usize), String> {
    let batch = smoke_batch(queries);
    let before = cache.stats();
    let start = Instant::now();
    let batched = query_batch(addr, &batch).map_err(|e| format!("batch: {e}"))?;
    let elapsed = start.elapsed();
    let delta = cache.stats().since(&before);

    if batched.len() != batch.len() {
        return Err(format!(
            "expected {} responses, got {}",
            batch.len(),
            batched.len()
        ));
    }
    if let Some(bad) = batched.iter().find(|r| !r.contains("\"ok\":true")) {
        return Err(format!("request failed: {bad}"));
    }

    // Property: batched responses are byte-identical to sequential
    // single-query responses (fresh connection per request).
    let mut divergences = 0usize;
    for (req, batched_resp) in batch.iter().zip(&batched) {
        let single = query_batch(addr, std::slice::from_ref(req))
            .map_err(|e| format!("single query: {e}"))?;
        if single.len() != 1 || &single[0] != batched_resp {
            divergences += 1;
        }
    }
    Ok((elapsed, delta, divergences))
}

/// In-process variant for tests: answers the batch through
/// [`tpe_engine::serve::handle_line`] without sockets (the same code path
/// the server threads use per connection).
#[cfg(test)]
fn answer_locally(requests: &[String], cache: &EngineCache) -> Vec<String> {
    requests
        .iter()
        .map(|r| tpe_engine::serve::handle_line(r, cache).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn smoke_batch_mixes_all_ops_deterministically() {
        let batch = smoke_batch(100);
        assert_eq!(batch.len(), 100);
        assert_eq!(batch, smoke_batch(100), "batch must be deterministic");
        for op in ["\"op\":\"engine\"", "\"op\":\"layer\"", "\"op\":\"model\""] {
            assert!(batch.iter().any(|r| r.contains(op)), "missing {op}");
        }
        // The batch exercises the precision axis on every op family.
        for needle in [
            "\"precision\":\"W4\"",
            "\"precision\":\"W16\"",
            "\"precision\":\"W8xW4\"",
            "\"model\":\"ResNet18-W4\"",
        ] {
            assert!(batch.iter().any(|r| r.contains(needle)), "missing {needle}");
        }
        // Every request parses and answers ok against a fresh cache.
        let cache = EngineCache::new();
        for resp in answer_locally(&batch[..20], &cache) {
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
    }

    /// The full smoke at the acceptance batch size (the default 1000):
    /// server thread, TCP batch, >90% hit rate, byte-identity, clean
    /// shutdown.
    #[test]
    fn serve_smoke_end_to_end() {
        let report = serve_smoke(&[]);
        assert!(!report.starts_with("error:"), "{report}");
        assert!(report.contains("1000 / 1000 byte-identical"), "{report}");
        assert!(report.contains("shutdown: clean"), "{report}");
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(serve_smoke(&args(&["--bogus", "1"])).contains("usage:"));
        assert!(serve_smoke(&args(&["--queries", "0"])).contains("usage:"));
        assert!(query(&args(&[])).contains("usage:"), "--port is required");
        assert!(serve(&args(&["--port", "notaport"])).contains("usage:"));
    }

    /// `--precision` stamping: added when absent, never overrides an
    /// explicit field, and the stamped request evaluates at the new width.
    #[test]
    fn query_precision_stamping() {
        let plain = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]"}"#;
        let stamped = stamp_precision(plain, "W4");
        assert_eq!(
            stamped,
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]","precision":"W4"}"#
        );
        let explicit = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]","precision":"W16"}"#;
        assert_eq!(stamp_precision(explicit, "W4"), explicit);
        let cache = EngineCache::new();
        let resp = answer_locally(&[stamped], &cache);
        assert!(resp[0].contains("@W4\""), "{}", resp[0]);
    }
}
