//! The `repro serve` / `repro query` / `repro metrics` /
//! `repro serve-smoke` commands: the batched NDJSON query front end over
//! the canonical evaluation stack.
//!
//! `serve` binds a TCP listener and answers engine/layer/model evaluation
//! queries plus `tpe-dse`'s server-side `sweep`/`pareto` batch ops
//! (protocol in [`tpe_engine::serve`], slice ops in
//! [`tpe_dse::serve_ops`]) until a `shutdown` request arrives; requests
//! pipeline across a bounded worker pool (`--threads`) and all
//! connections share the process-wide [`EngineCache`]. `query` is the
//! matching client; `metrics` fetches one observability snapshot (JSON or
//! Prometheus text) from a running server. `serve-smoke` is the
//! self-driving load test: it spins a pooled server thread over a
//! dedicated cache instance (so the measured hit rate is a property of
//! the batch alone, give or take cold-key races between pool workers),
//! fires a mixed 1000-query batch (sweep/pareto ops included), verifies
//! the batched responses byte-identical to sequential single-query
//! replies, cross-checks the server's own `tpe-obs` request accounting
//! and eval-latency histogram against the client-side replay, and
//! reports throughput, both latency views and the cache hit rate
//! (optionally as JSON via `--out`).

use std::fmt::Write as _;
use std::io::{BufRead, Write as _};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Below this batch size the >90% hit-rate bar is not enforced: a short
/// cold batch is dominated by first-touch misses, which says nothing
/// about steady-state serving (the property the bar guards). The
/// server-vs-client latency cross-check gates on the same floor: tiny
/// batches are connect-overhead noise.
const HIT_RATE_MIN_QUERIES: usize = 500;

use tpe_dse::space::default_workloads;
use tpe_dse::{merge_shard_responses, DseOps, SweepWorkload};
use tpe_engine::serve::{
    parse_flat_object, query_batch, serve_with, serve_with_hook, BatchOps, JsonValue, ServeConfig,
    ServeObs, SnapshotOps,
};
use tpe_engine::{roster, snapshot, CacheStats, CycleModel, EngineCache};
use tpe_obs::HistogramSnapshot;

/// Minimal flag parser shared by the serving commands (and the
/// snapshot smoke next door).
pub(crate) fn parse_flags(
    args: &[String],
    spec: &[(&str, bool)],
) -> Result<Vec<Option<String>>, String> {
    let mut values: Vec<Option<String>> = vec![None; spec.len()];
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(slot) = spec.iter().position(|(name, _)| name == flag) else {
            return Err(format!("unknown flag `{flag}`"));
        };
        let value = it
            .next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))?;
        values[slot] = Some(value);
    }
    for ((name, required), v) in spec.iter().zip(&values) {
        if *required && v.is_none() {
            return Err(format!("{name} is required"));
        }
    }
    Ok(values)
}

pub(crate) fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Builds a [`ServeConfig`] from optional `--threads` / `--max-line-bytes`
/// flag values.
fn serve_config(
    threads: Option<&str>,
    max_line_bytes: Option<&str>,
    cycle_model: Option<&str>,
) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    if let Some(v) = threads {
        config.threads = parse_num(v, "--threads")?;
    }
    if let Some(v) = max_line_bytes {
        config.max_line_bytes = parse_num(v, "--max-line-bytes")?;
        if config.max_line_bytes == 0 {
            return Err("--max-line-bytes must be positive".into());
        }
    }
    if let Some(v) = cycle_model {
        config.cycle_model = CycleModel::parse(v)
            .ok_or_else(|| format!("unknown cycle model `{v}` (sampled|analytic)"))?;
    }
    Ok(config)
}

/// Runs the blocking serve loop (`repro serve [--port N] [--threads N]
/// [--max-line-bytes N] [--cycle-model sampled|analytic]
/// [--cache-snapshot F.bin] [--snapshot-every N]`; port 0 binds an
/// ephemeral port). Prints the bound address before serving, so callers
/// can scrape it. `--cache-snapshot` warm-starts the global cache from
/// the snapshot file (missing file → cold start; corrupt file → warn and
/// start cold), enables the `snapshot` op against that path, saves every
/// `--snapshot-every` requests, and always saves once more on clean
/// shutdown.
pub fn serve(args: &[String]) -> String {
    match try_serve(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro serve [--port N] [--threads N] [--max-line-bytes N] \
             [--cycle-model sampled|analytic] [--cache-snapshot F.bin] [--snapshot-every N]\n"
        ),
    }
}

fn try_serve(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[
            ("--port", false),
            ("--threads", false),
            ("--max-line-bytes", false),
            ("--cycle-model", false),
            ("--cache-snapshot", false),
            ("--snapshot-every", false),
        ],
    )?;
    let port: u16 = values[0]
        .as_deref()
        .map(|v| parse_num(v, "--port"))
        .transpose()?
        .unwrap_or(0);
    let config = serve_config(
        values[1].as_deref(),
        values[2].as_deref(),
        values[3].as_deref(),
    )?;
    let snapshot_path = values[4].as_deref().map(std::path::PathBuf::from);
    let snapshot_every: Option<u64> = values[5]
        .as_deref()
        .map(|v| parse_num(v, "--snapshot-every"))
        .transpose()?;
    if snapshot_every == Some(0) {
        return Err("--snapshot-every must be positive".into());
    }
    if snapshot_every.is_some() && snapshot_path.is_none() {
        return Err("--snapshot-every needs --cache-snapshot".into());
    }

    let cache = EngineCache::global();
    let warm_note = match &snapshot_path {
        Some(path) => match snapshot::load(cache, path) {
            Ok(Some(info)) => format!(
                "; warm-started from {} ({} entries, {} bytes)",
                path.display(),
                info.entries,
                info.bytes
            ),
            Ok(None) => format!("; cold start ({} not found yet)", path.display()),
            Err(e) => {
                eprintln!("warning: ignoring cache snapshot {}: {e}", path.display());
                "; cold start (snapshot rejected)".to_string()
            }
        },
        None => String::new(),
    };

    // With a snapshot path configured the op surface gains `snapshot`
    // (server-side save to that path — clients never choose the file).
    let snap_ops;
    let ops: &dyn BatchOps = match &snapshot_path {
        Some(path) => {
            snap_ops = SnapshotOps::new(&DseOps, path.clone());
            &snap_ops
        }
        None => &DseOps,
    };

    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    println!(
        "repro serve listening on {addr} ({} worker(s), max line {} bytes; NDJSON; \
         ops: engine|layer|metrics|model|roster|stats{}|shutdown; \
         default cycle model {}{warm_note})",
        config.effective_threads(),
        config.max_line_bytes,
        ops.op_names(),
        config.cycle_model.name(),
    );
    std::io::stdout().flush().ok();
    let outcome = match (&snapshot_path, snapshot_every) {
        (Some(path), Some(every)) => {
            let path = path.clone();
            let hook = move |handled: u64| {
                if handled.is_multiple_of(every) {
                    if let Err(e) = snapshot::save(cache, &path) {
                        eprintln!("warning: periodic snapshot failed: {e}");
                    }
                }
            };
            serve_with_hook(
                listener,
                cache,
                ops,
                config,
                ServeObs::global(),
                Some(&hook),
            )
        }
        _ => serve_with_hook(listener, cache, ops, config, ServeObs::global(), None),
    }
    .map_err(|e| e.to_string())?;
    let final_note = match &snapshot_path {
        Some(path) => match snapshot::save(cache, path) {
            Ok(info) => format!(
                "; final snapshot {} ({} entries, {} bytes)",
                path.display(),
                info.entries,
                info.bytes
            ),
            Err(e) => format!("; final snapshot FAILED: {e}"),
        },
        None => String::new(),
    };
    let stats = cache.stats();
    Ok(format!(
        "serve shut down cleanly: {} connection(s), {} request(s) on {} worker(s); \
         global cache {} hits / {} misses ({:.1}% hit rate){final_note}\n",
        outcome.connections,
        outcome.requests,
        outcome.workers,
        stats.hits(),
        stats.misses(),
        stats.hit_rate() * 100.0,
    ))
}

/// Sends NDJSON requests to a running server
/// (`repro query [--host H] --port N [--file F] [--precision P]
/// [--shards H:P,H:P,...]`; default input is stdin). `--precision`
/// stamps the given operand precision onto every request that does not
/// already carry a `precision` field — the client-side way to re-ask a
/// whole batch at W4/W16. `--shards` replaces `--port`: each
/// `sweep`/`pareto` request fans out across the listed servers with a
/// distinct `"shard":"k/n"` stamp and the responses are merged back
/// byte-identical to a single-node answer.
pub fn query(args: &[String]) -> String {
    match try_query(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro query [--host H] --port N [--file F] \
             [--precision W4|W8|W16|W8xW4] [--shards H:P,H:P,...]\n"
        ),
    }
}

/// Adds `"precision":"<p>"` to a flat request object that lacks one.
/// Requests already carrying the field (or non-object lines, which the
/// server will reject with a parse error anyway) pass through untouched.
fn stamp_precision(line: &str, precision: &str) -> String {
    let trimmed = line.trim_end();
    if line.contains("\"precision\"") {
        return line.to_string();
    }
    match trimmed.strip_suffix('}') {
        Some(head) => format!("{head},\"precision\":\"{precision}\"}}"),
        None => line.to_string(),
    }
}

fn try_query(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[
            ("--host", false),
            ("--port", false),
            ("--file", false),
            ("--precision", false),
            ("--shards", false),
        ],
    )?;
    let host = values[0].clone().unwrap_or_else(|| "127.0.0.1".into());
    let shards = values[4].as_deref();
    if shards.is_none() && values[1].is_none() {
        return Err("--port is required".into());
    }
    if shards.is_some() && values[1].is_some() {
        return Err("--shards and --port are mutually exclusive".into());
    }
    let lines: Vec<String> = match values[2].as_deref() {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))?
            .lines()
            .map(str::to_string)
            .collect(),
        None => std::io::stdin()
            .lock()
            .lines()
            .collect::<Result<_, _>>()
            .map_err(|e| format!("reading stdin: {e}"))?,
    };
    let precision = values[3]
        .as_deref()
        .map(|p| {
            tpe_engine::Precision::parse(p)
                .map(|v| v.label())
                .ok_or_else(|| format!("unknown precision `{p}`"))
        })
        .transpose()?;
    let requests: Vec<String> = lines
        .into_iter()
        .filter(|l| !l.trim().is_empty())
        .map(|l| match &precision {
            Some(p) => stamp_precision(&l, p),
            None => l,
        })
        .collect();
    if requests.is_empty() {
        return Err("no requests to send".into());
    }
    if let Some(list) = shards {
        return query_sharded(list, &requests);
    }
    let port: u16 = parse_num(values[1].as_deref().unwrap(), "--port")?;
    let responses =
        query_batch(&format!("{host}:{port}"), &requests).map_err(|e| format!("query: {e}"))?;
    Ok(responses.join("\n") + "\n")
}

/// Stamps `"shard":"k/n"` (and `"points":true` when absent — the merge
/// needs per-point rows) onto a flat slice request. Callers have already
/// rejected requests that carry a conflicting field.
fn stamp_shard(line: &str, k: usize, n: usize) -> String {
    let trimmed = line.trim_end();
    let head = trimmed.strip_suffix('}').unwrap_or(trimmed);
    let points = if line.contains("\"points\"") {
        ""
    } else {
        ",\"points\":true"
    };
    format!("{head},\"shard\":\"{k}/{n}\"{points}}}")
}

/// Pops one request's worth of lines off a shard's response stream: the
/// summary plus its `points_follow` rows (replies without the field —
/// error lines — are a single line).
fn take_response_group(responses: &[String], cursor: &mut usize) -> Option<Vec<String>> {
    let first = responses.get(*cursor)?;
    let follow = first
        .split("\"points_follow\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()?
                .parse::<usize>()
                .ok()
        })
        .unwrap_or(0);
    let end = *cursor + 1 + follow;
    if end > responses.len() {
        return None;
    }
    let group = responses[*cursor..end].to_vec();
    *cursor = end;
    Some(group)
}

/// The shard-merge client: fans each slice request out across the `n`
/// servers in `--shards host:port,...`, stamping shard `k` of `n` onto
/// the copy sent to server `k`, then reassembles the per-shard replies
/// through [`merge_shard_responses`] — byte-identical to what one server
/// holding the whole slice would answer. Only `sweep`/`pareto` requests
/// are accepted: point ops have no shard semantics (send those to any
/// one server with `--port`).
fn query_sharded(list: &str, requests: &[String]) -> Result<String, String> {
    let addrs: Vec<&str> = list.split(',').filter(|s| !s.is_empty()).collect();
    if addrs.is_empty() {
        return Err("--shards needs at least one host:port".into());
    }
    let n = addrs.len();
    for r in requests {
        let fields = parse_flat_object(r).map_err(|e| format!("request {r}: {e}"))?;
        match fields.get("op") {
            Some(JsonValue::Str(op)) if op == "sweep" || op == "pareto" => {}
            _ => {
                return Err(format!(
                    "--shards only serves sweep/pareto requests, got: {r}"
                ))
            }
        }
        if fields.contains_key("shard") {
            return Err(format!("request already carries a shard field: {r}"));
        }
        if matches!(fields.get("points"), Some(JsonValue::Bool(false))) {
            return Err(format!(
                "--shards needs per-point rows (`points` must not be false): {r}"
            ));
        }
    }
    let mut per_shard: Vec<Vec<String>> = Vec::with_capacity(n);
    for (k, addr) in addrs.iter().enumerate() {
        let stamped: Vec<String> = requests.iter().map(|r| stamp_shard(r, k, n)).collect();
        let responses =
            query_batch(addr, &stamped).map_err(|e| format!("shard {k} ({addr}): {e}"))?;
        per_shard.push(responses);
    }
    // Regroup each shard's flat response stream per request (summary +
    // points_follow rows), merge each request's shard group, concatenate.
    let mut cursors = vec![0usize; n];
    let mut out = String::new();
    for i in 0..requests.len() {
        let mut groups: Vec<Vec<String>> = Vec::with_capacity(n);
        for (k, responses) in per_shard.iter().enumerate() {
            let group = take_response_group(responses, &mut cursors[k])
                .ok_or_else(|| format!("shard {k}: truncated response stream at request {i}"))?;
            groups.push(group);
        }
        if let Some(bad) = groups
            .iter()
            .find_map(|g| g.first().filter(|l| l.contains("\"ok\":false")))
        {
            return Err(format!("shard request failed: {bad}"));
        }
        let merged = merge_shard_responses(&groups).map_err(|e| format!("request {i}: {e}"))?;
        for line in merged {
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Fetches one observability snapshot from a running server
/// (`repro metrics [--host H] --port N [--format json|prometheus]`).
/// The default prints the server's flat-JSON `metrics` reply verbatim;
/// `--format prometheus` unwraps the `text` field into the plain
/// Prometheus exposition, ready to pipe into a scrape file.
pub fn metrics(args: &[String]) -> String {
    match try_metrics(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro metrics [--host H] --port N [--format json|prometheus]\n"
        ),
    }
}

fn try_metrics(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[("--host", false), ("--port", true), ("--format", false)],
    )?;
    let host = values[0].clone().unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = parse_num(values[1].as_deref().unwrap(), "--port")?;
    let format = values[2].as_deref().unwrap_or("json");
    let request = match format {
        "json" => r#"{"id":0,"op":"metrics"}"#.to_string(),
        "prometheus" => r#"{"id":0,"op":"metrics","format":"prometheus"}"#.to_string(),
        other => {
            return Err(format!(
                "unknown format `{other}` (expected json|prometheus)"
            ))
        }
    };
    let reply = query_batch(&format!("{host}:{port}"), std::slice::from_ref(&request))
        .map_err(|e| format!("metrics query: {e}"))?
        .pop()
        .ok_or("empty metrics reply")?;
    if !reply.contains("\"ok\":true") {
        return Err(format!("metrics request failed: {reply}"));
    }
    if format == "prometheus" {
        // parse_flat_object undoes the wire's \u-escaping, so the `text`
        // field comes back as the plain multi-line exposition.
        let map = parse_flat_object(&reply).map_err(|e| format!("metrics reply: {e}"))?;
        match map.get("text") {
            Some(JsonValue::Str(text)) => Ok(text.clone()),
            _ => Err(format!("metrics reply carries no text field: {reply}")),
        }
    } else {
        Ok(reply + "\n")
    }
}

/// One parsed `metrics`-op reply: the server's own request accounting,
/// readable by name.
struct WireMetrics(std::collections::BTreeMap<String, JsonValue>);

impl WireMetrics {
    /// Polls `addr` once. The poll itself goes through the pool, but the
    /// snapshot is taken before the serving worker records it — so a
    /// fetched snapshot never includes its own request.
    fn fetch(addr: &str) -> Result<Self, String> {
        let reply = query_batch(addr, &[r#"{"id":0,"op":"metrics"}"#.to_string()])
            .map_err(|e| format!("metrics poll: {e}"))?
            .pop()
            .ok_or("empty metrics reply")?;
        if !reply.contains("\"ok\":true") {
            return Err(format!("metrics poll failed: {reply}"));
        }
        parse_flat_object(&reply)
            .map(Self)
            .map_err(|e| format!("metrics reply: {e}"))
    }

    /// A `ctr_<name>` counter value (0 when the metric is not yet
    /// registered — nothing recorded into it either).
    fn counter(&self, name: &str) -> u64 {
        match self.0.get(&format!("ctr_{name}")) {
            Some(JsonValue::Num(v)) => *v as u64,
            _ => 0,
        }
    }

    /// Rebuilds a `hist_<name>_*` family into a [`HistogramSnapshot`]
    /// (the wire trims trailing zero buckets; `from_parts` re-pads).
    fn histogram(&self, name: &str) -> Result<HistogramSnapshot, String> {
        let num = |suffix: &str| -> Result<u64, String> {
            match self.0.get(&format!("hist_{name}_{suffix}")) {
                Some(JsonValue::Num(v)) => Ok(*v as u64),
                _ => Err(format!("metrics reply lacks hist_{name}_{suffix}")),
            }
        };
        let buckets = match self.0.get(&format!("hist_{name}_buckets")) {
            Some(JsonValue::Str(csv)) if csv.is_empty() => Vec::new(),
            Some(JsonValue::Str(csv)) => csv
                .split(',')
                .map(|c| c.parse::<u64>().map_err(|e| format!("hist_{name}: {e}")))
                .collect::<Result<_, _>>()?,
            _ => return Err(format!("metrics reply lacks hist_{name}_buckets")),
        };
        Ok(HistogramSnapshot::from_parts(
            buckets,
            num("sum")?,
            num("max")?,
        ))
    }
}

/// The deterministic mixed query batch the smoke fires: engine pricing
/// (cycling the W8/W4/W16/W8xW4 precision axis), layer evaluations over
/// the default dse workload slice, mixed-precision layer queries against
/// a fixed serial engine, whole-model queries (including the quantized
/// ResNet18-W4 preset) cycling the Table VII roster, **and server-side
/// `sweep`/`pareto` slice ops** (summary-only, so every request still
/// answers exactly one line and the byte-identity replay stays 1:1).
///
/// Precision-bearing and slice queries deliberately revisit a *bounded*
/// set of cache keys: the smoke's >90% hit-rate bar is a steady-state
/// property, and mixing the axes must prove the shared cache converges
/// just like the W8-only batch did.
pub fn smoke_batch(n: usize) -> Vec<String> {
    let engines = roster::names();
    let layers: Vec<(String, usize, usize, usize, usize)> = default_workloads()
        .iter()
        .filter_map(|w| match w {
            SweepWorkload::Layer(l) => Some((l.name.clone(), l.m, l.n, l.k, l.repeats)),
            SweepWorkload::Model(_) => None,
        })
        .collect();
    let models = ["ResNet18", "MobileNetV3"];
    let precisions = ["W8", "W4", "W16", "W8xW4"];
    // Bounded slice filters: one serial engine (7 workloads incl. the
    // whole-model point) and one dense engine across its corners.
    let slice_filters = [
        "OPT4E[EN-T]/28nm@2.00GHz,precision=w8",
        "OPT1(TPU)/28nm@1.50,precision=w8",
    ];
    (0..n)
        .map(|i| {
            // Engine cycles fastest, workload slowest, so the batch walks
            // the full (engine x workload) product instead of aliasing on
            // shared divisors.
            let engine = &engines[i % engines.len()];
            let slow = i / engines.len();
            // Every 50th line (offset to hit both early and late in the
            // batch) exercises a server-side slice op instead of a point
            // query — heavy enough to prove the path, rare enough to keep
            // the throughput figure a point-query number.
            if i % 50 == 19 {
                let filter = slice_filters[slow % slice_filters.len()];
                return format!(r#"{{"id":{i},"op":"sweep","filter":"{filter}","seed":42}}"#);
            }
            if i % 50 == 49 {
                let filter = slice_filters[slow % slice_filters.len()];
                return format!(
                    r#"{{"id":{i},"op":"pareto","filter":"{filter}","seed":42,"points":false}}"#
                );
            }
            match i % 10 {
                0 => {
                    let precision = precisions[slow % precisions.len()];
                    format!(
                        r#"{{"id":{i},"op":"engine","engine":"{engine}","precision":"{precision}"}}"#
                    )
                }
                1..=6 => {
                    let (name, m, nn, k, r) = &layers[slow % layers.len()];
                    format!(
                        r#"{{"id":{i},"op":"layer","engine":"{engine}","workload":"{name}","m":{m},"n":{nn},"k":{k},"repeats":{r},"seed":42}}"#
                    )
                }
                7 => {
                    // Mixed-precision serial streaming against one fixed
                    // engine/layer pair: two cycle keys, many revisits.
                    let precision = ["W4", "W16"][slow % 2];
                    let (name, m, nn, k, r) = &layers[0];
                    format!(
                        r#"{{"id":{i},"op":"layer","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"{precision}","workload":"{name}","m":{m},"n":{nn},"k":{k},"repeats":{r},"seed":42}}"#
                    )
                }
                8 => {
                    let model = models[slow % models.len()];
                    format!(r#"{{"id":{i},"op":"model","engine":"{engine}","model":"{model}","seed":42}}"#)
                }
                _ => {
                    // The quantized preset streams W4 digit statistics —
                    // bounded to one fixed serial engine so its per-layer
                    // cycle keys converge to steady-state hits.
                    format!(
                        r#"{{"id":{i},"op":"model","engine":"OPT4E[EN-T]/28nm@2.00GHz","model":"ResNet18-W4","seed":42}}"#
                    )
                }
            }
        })
        .collect()
}

/// Latency distribution of the sequential replay phase, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LatencySummary {
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

impl LatencySummary {
    /// Nearest-rank percentiles over the per-query samples.
    fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "no latency samples");
        samples.sort_by(f64::total_cmp);
        let at = |p: f64| samples[((p * (samples.len() - 1) as f64).round()) as usize];
        Self {
            p50_us: at(0.50),
            p90_us: at(0.90),
            p99_us: at(0.99),
            max_us: *samples.last().unwrap(),
        }
    }

    /// Percentiles from a windowed server-side nanosecond histogram:
    /// each quantile is linearly interpolated within its log2 bucket
    /// (never above the bucket's upper bound, itself ≤2× the true order
    /// statistic); `max` is the histogram's all-time max, an upper bound
    /// on the window's.
    fn from_ns_window(w: &HistogramSnapshot) -> Self {
        Self {
            p50_us: w.quantile(0.50) as f64 / 1e3,
            p90_us: w.quantile(0.90) as f64 / 1e3,
            p99_us: w.quantile(0.99) as f64 / 1e3,
            max_us: w.max as f64 / 1e3,
        }
    }
}

/// Everything the smoke's drive phase measures.
struct SmokeMeasurement {
    elapsed: Duration,
    delta: CacheStats,
    divergences: usize,
    latency: LatencySummary,
    /// `sweep`/`pareto` requests the fired batch contained (0 for
    /// batches too short to reach a slice-op index).
    slice_ops: usize,
    /// Server-side per-request eval latency over the drive window, from
    /// the `serve_eval_ns` histogram via the `metrics` op.
    server_latency: LatencySummary,
    /// Point/slice op requests the server counted over the drive window
    /// (must be exactly batch + replay = 2 × queries).
    counted_ops: u64,
    /// `serve_eval_ns` records over the window (the 2 × queries drive
    /// plus the opening `metrics` poll itself).
    eval_records: u64,
    /// `serve_queue_wait_ns` records over the window (same expectation).
    queue_records: u64,
}

/// The self-driving load smoke
/// (`repro serve-smoke [--queries N] [--threads N] [--out F.json]
/// [--min-qps N]`). `--min-qps` turns the batch throughput figure into a
/// hard floor — the CI regression gate for the serving hot path.
pub fn serve_smoke(args: &[String]) -> String {
    match try_serve_smoke(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro serve-smoke [--queries N] [--threads N] [--out F.json] \
             [--min-qps N]\n"
        ),
    }
}

fn try_serve_smoke(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[
            ("--queries", false),
            ("--threads", false),
            ("--out", false),
            ("--min-qps", false),
        ],
    )?;
    let queries: usize = values[0]
        .as_deref()
        .map(|v| parse_num(v, "--queries"))
        .transpose()?
        .unwrap_or(1000);
    if queries == 0 {
        return Err("--queries must be positive".into());
    }
    let config = serve_config(values[1].as_deref(), None, None)?;
    let out_json = values[2].clone();
    let min_qps: Option<f64> = values[3]
        .as_deref()
        .map(|v| parse_num(v, "--min-qps"))
        .transpose()?;
    if min_qps.is_some_and(|f| !f.is_finite() || f <= 0.0) {
        return Err("--min-qps must be positive".into());
    }

    let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // A dedicated cache instance (same type the real server shares
    // process-wide): the measured hit rate is then a property of the
    // batch alone — no distortion from whatever else the process
    // evaluated before. (Under the worker pool two workers can race one
    // cold key and both count a miss, so the counters may wobble by a
    // few cold-start misses run-to-run; the >90% bar has ample slack.)
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let server = std::thread::spawn(move || serve_with(listener, cache, &DseOps, config));

    // Whatever happens mid-smoke, the server must come down: run the
    // drive phase, then always send shutdown and join before reporting.
    let driven = drive_smoke(&addr.to_string(), queries, cache);
    let down = query_batch(
        &addr.to_string(),
        &[format!(r#"{{"id":{queries},"op":"shutdown"}}"#)],
    )
    .map_err(|e| format!("shutdown: {e}"))?;
    let outcome = server
        .join()
        .map_err(|_| "server thread panicked".to_string())
        .and_then(|r| r.map_err(|e| format!("serve loop: {e}")))?;
    let m = driven?;

    let hit_rate = m.delta.hit_rate();
    let qps = queries as f64 / m.elapsed.as_secs_f64().max(1e-9);
    let mut out = String::new();
    writeln!(
        out,
        "serve smoke — {} mixed queries (engine/layer/model over the {}-engine roster, \
         precisions mixed across W8/W4/W16/W8xW4{}) on {addr} with {} pool worker(s)",
        queries,
        roster::names().len(),
        if m.slice_ops > 0 {
            format!(", {} sweep/pareto slice ops in the mix", m.slice_ops)
        } else {
            String::new()
        },
        outcome.workers,
    )
    .unwrap();
    writeln!(
        out,
        "batch wall-clock: {:.1} ms ({:.0} queries/s over one pipelined connection)",
        m.elapsed.as_secs_f64() * 1e3,
        qps,
    )
    .unwrap();
    let model_hit_rate = if m.delta.model_lookups > 0 {
        m.delta.model_hits as f64 / m.delta.model_lookups as f64
    } else {
        0.0
    };
    writeln!(
        out,
        "serve cache over the batch: {} hits / {} misses ({:.1}% hit rate; \
         pricing {}h/{}m, workload cycles {}h/{}m, model reports {}h/{}m; \
         lookups consistent: {})",
        m.delta.hits(),
        m.delta.misses(),
        hit_rate * 100.0,
        m.delta.price_hits,
        m.delta.price_misses,
        m.delta.cycle_hits,
        m.delta.cycle_misses,
        m.delta.model_hits,
        m.delta.model_misses,
        m.delta.lookups() == m.delta.hits() + m.delta.misses(),
    )
    .unwrap();
    writeln!(
        out,
        "sequential-replay latency: p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        m.latency.p50_us, m.latency.p90_us, m.latency.p99_us, m.latency.max_us,
    )
    .unwrap();
    writeln!(
        out,
        "server-side eval latency (metrics op, log2-bucket resolution): \
         p50 {:.0} µs, p90 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        m.server_latency.p50_us,
        m.server_latency.p90_us,
        m.server_latency.p99_us,
        m.server_latency.max_us,
    )
    .unwrap();
    let expected_ops = 2 * queries as u64;
    let accounting_ok = m.counted_ops == expected_ops
        && m.eval_records == expected_ops + 1
        && m.queue_records == expected_ops + 1;
    writeln!(
        out,
        "server-side accounting: {} point/slice ops counted (expected {}), \
         {} eval / {} queue-wait records (expected {} incl. the opening metrics poll) — {}",
        m.counted_ops,
        expected_ops,
        m.eval_records,
        m.queue_records,
        expected_ops + 1,
        if accounting_ok {
            "consistent"
        } else {
            "INCONSISTENT"
        },
    )
    .unwrap();
    writeln!(
        out,
        "batched vs sequential replies: {} / {} byte-identical",
        queries - m.divergences,
        queries
    )
    .unwrap();
    writeln!(
        out,
        "shutdown: {} ({} connection(s), {} request(s) served)",
        if down
            .first()
            .is_some_and(|r| r.contains("\"op\":\"shutdown\""))
        {
            "clean"
        } else {
            "NOT CLEAN"
        },
        outcome.connections,
        outcome.requests,
    )
    .unwrap();

    if let Some(path) = &out_json {
        let json = format!(
            "{{\n  \"queries\": {queries},\n  \"workers\": {},\n  \
             \"throughput_qps\": {:.1},\n  \"batch_ms\": {:.3},\n  \
             \"hit_rate\": {:.4},\n  \"hits\": {},\n  \"misses\": {},\n  \
             \"model_hit_rate\": {model_hit_rate:.4},\n  \
             \"model_hits\": {},\n  \"model_misses\": {},\n  \
             \"lookups_consistent\": {},\n  \"divergences\": {},\n  \
             \"server_accounting_consistent\": {accounting_ok},\n  \
             \"latency_us\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \
             \"max\": {:.1}}},\n  \
             \"latency_us_server\": {{\"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \
             \"max\": {:.1}}}\n}}\n",
            outcome.workers,
            qps,
            m.elapsed.as_secs_f64() * 1e3,
            hit_rate,
            m.delta.hits(),
            m.delta.misses(),
            m.delta.model_hits,
            m.delta.model_misses,
            m.delta.lookups() == m.delta.hits() + m.delta.misses(),
            m.divergences,
            m.latency.p50_us,
            m.latency.p90_us,
            m.latency.p99_us,
            m.latency.max_us,
            m.server_latency.p50_us,
            m.server_latency.p90_us,
            m.server_latency.p99_us,
            m.server_latency.max_us,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        writeln!(out, "latency-percentile summary written to {path}").unwrap();
    }

    if m.divergences > 0 {
        return Err(format!(
            "{} batched responses diverged from sequential replies\n{out}",
            m.divergences
        ));
    }
    if queries >= HIT_RATE_MIN_QUERIES && hit_rate <= 0.90 {
        return Err(format!(
            "serve-cache hit rate {:.1}% does not clear the 90% bar\n{out}",
            hit_rate * 100.0
        ));
    }
    if m.delta.lookups() != m.delta.hits() + m.delta.misses() {
        return Err(format!(
            "cache stats inconsistent: {} lookups vs {} hits + {} misses\n{out}",
            m.delta.lookups(),
            m.delta.hits(),
            m.delta.misses()
        ));
    }
    if !accounting_ok {
        return Err(format!(
            "server-side metrics accounting diverged from the drive\n{out}"
        ));
    }
    // Cross-check the two latency views: the server-side eval p50 omits
    // connect/socket overhead, so it must sit at or below the client
    // replay p50. Within-bucket interpolation tightened the histogram
    // quantiles, so the slack is 1.5× (down from the pre-interpolation
    // 2× bucket bound). Gated like the hit-rate bar: tiny batches are
    // all connect noise.
    if queries >= HIT_RATE_MIN_QUERIES && m.server_latency.p50_us > m.latency.p50_us * 1.5 {
        return Err(format!(
            "server-side p50 {:.0} µs exceeds 1.5x the client replay p50 {:.0} µs\n{out}",
            m.server_latency.p50_us, m.latency.p50_us
        ));
    }
    if let Some(floor) = min_qps {
        if qps < floor {
            return Err(format!(
                "throughput {qps:.0} queries/s is below the --min-qps floor {floor:.0}\n{out}"
            ));
        }
    }
    Ok(out)
}

/// The smoke's drive phase: fire the mixed batch over one pipelined
/// connection, validate every reply, then replay each request on its own
/// fresh connection (timing each for the latency percentiles) and count
/// byte divergences.
fn drive_smoke(
    addr: &str,
    queries: usize,
    cache: &EngineCache,
) -> Result<SmokeMeasurement, String> {
    let batch = smoke_batch(queries);
    let slice_ops = batch
        .iter()
        .filter(|r| r.contains("\"op\":\"sweep\"") || r.contains("\"op\":\"pareto\""))
        .count();
    // Opening metrics poll: the server snapshots *before* recording the
    // poll itself, so this window base excludes it — the drive window
    // then covers exactly (this poll) + batch + replay.
    let obs_before = WireMetrics::fetch(addr)?;
    let before = cache.stats();
    let start = Instant::now();
    let batched = query_batch(addr, &batch).map_err(|e| format!("batch: {e}"))?;
    let elapsed = start.elapsed();
    let delta = cache.stats().since(&before);

    if batched.len() != batch.len() {
        return Err(format!(
            "expected {} responses, got {}",
            batch.len(),
            batched.len()
        ));
    }
    if let Some(bad) = batched.iter().find(|r| !r.contains("\"ok\":true")) {
        return Err(format!("request failed: {bad}"));
    }

    // Property: batched responses are byte-identical to sequential
    // single-query responses (fresh connection per request). The replay
    // doubles as the latency probe: each single query is one full
    // connect → evaluate → respond round trip.
    let mut divergences = 0usize;
    let mut samples = Vec::with_capacity(batch.len());
    for (req, batched_resp) in batch.iter().zip(&batched) {
        let t0 = Instant::now();
        let single = query_batch(addr, std::slice::from_ref(req))
            .map_err(|e| format!("single query: {e}"))?;
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        if single.first() != Some(batched_resp) {
            divergences += 1;
        }
    }

    // Closing poll: workers record each request before replying, so with
    // every replay response read, the after-snapshot must already cover
    // the full 2 × queries drive.
    let obs_after = WireMetrics::fetch(addr)?;
    let counted_ops = ["engine", "layer", "model", "sweep", "pareto"]
        .iter()
        .map(|op| {
            let name = format!("serve_op_{op}");
            obs_after.counter(&name) - obs_before.counter(&name)
        })
        .sum();
    let eval_window = obs_after
        .histogram("serve_eval_ns")?
        .since(&obs_before.histogram("serve_eval_ns")?);
    let queue_window = obs_after
        .histogram("serve_queue_wait_ns")?
        .since(&obs_before.histogram("serve_queue_wait_ns")?);
    Ok(SmokeMeasurement {
        elapsed,
        delta,
        divergences,
        latency: LatencySummary::from_samples(samples),
        slice_ops,
        server_latency: LatencySummary::from_ns_window(&eval_window),
        counted_ops,
        eval_records: eval_window.count(),
        queue_records: queue_window.count(),
    })
}

/// In-process variant for tests: answers the batch through
/// [`tpe_engine::serve::handle_request`] with the same `sweep`/`pareto`
/// ops attached — the code path the server's pool workers run per
/// request.
#[cfg(test)]
fn answer_locally(requests: &[String], cache: &EngineCache) -> Vec<String> {
    requests
        .iter()
        .flat_map(|r| tpe_engine::serve::handle_request(r, cache, &DseOps).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn smoke_batch_mixes_all_ops_deterministically() {
        let batch = smoke_batch(100);
        assert_eq!(batch.len(), 100);
        assert_eq!(batch, smoke_batch(100), "batch must be deterministic");
        for op in [
            "\"op\":\"engine\"",
            "\"op\":\"layer\"",
            "\"op\":\"model\"",
            "\"op\":\"sweep\"",
            "\"op\":\"pareto\"",
        ] {
            assert!(batch.iter().any(|r| r.contains(op)), "missing {op}");
        }
        // The batch exercises the precision axis on every op family.
        for needle in [
            "\"precision\":\"W4\"",
            "\"precision\":\"W16\"",
            "\"precision\":\"W8xW4\"",
            "\"model\":\"ResNet18-W4\"",
        ] {
            assert!(batch.iter().any(|r| r.contains(needle)), "missing {needle}");
        }
        // Every request parses and answers ok against a fresh cache
        // (covering a sweep op at index 19 and a pareto at 49).
        let cache = EngineCache::new();
        for resp in answer_locally(&batch[..50], &cache) {
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
    }

    /// The slice ops in the smoke batch answer exactly one line each —
    /// what keeps the byte-identity replay a 1:1 zip.
    #[test]
    fn smoke_slice_ops_are_summary_only() {
        let cache = EngineCache::new();
        let mut slices = 0usize;
        for r in smoke_batch(100)
            .iter()
            .filter(|r| r.contains("\"op\":\"sweep\"") || r.contains("\"op\":\"pareto\""))
        {
            let (lines, _) = tpe_engine::serve::handle_request(r, &cache, &DseOps);
            assert_eq!(lines.len(), 1, "{r} answered {} lines", lines.len());
            assert!(lines[0].contains("\"points_follow\":0"), "{}", lines[0]);
            slices += 1;
        }
        assert!(slices >= 2, "smoke must include slice ops");
    }

    #[test]
    fn latency_percentiles_are_order_statistics() {
        let s = LatencySummary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(s.p50_us, 51.0);
        assert_eq!(s.p90_us, 90.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
    }

    /// The full smoke at the acceptance batch size (the default 1000):
    /// pooled server thread, TCP batch with sweep/pareto in the mix,
    /// >90% hit rate, byte-identity, latency percentiles, clean shutdown.
    #[test]
    fn serve_smoke_end_to_end() {
        let out_path = std::env::temp_dir().join("tpe_serve_smoke_test.json");
        let out = out_path.to_str().unwrap().to_string();
        let report = serve_smoke(&args(&["--threads", "4", "--out", &out]));
        assert!(!report.starts_with("error:"), "{report}");
        assert!(report.contains("1000 / 1000 byte-identical"), "{report}");
        assert!(report.contains("shutdown: clean"), "{report}");
        assert!(
            report.contains("sequential-replay latency: p50"),
            "{report}"
        );
        assert!(
            report.contains("server-side eval latency (metrics op"),
            "{report}"
        );
        assert!(
            report.contains("2000 point/slice ops counted (expected 2000)"),
            "{report}"
        );
        assert!(report.contains("— consistent"), "{report}");
        assert!(report.contains("4 pool worker(s)"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        for field in [
            "\"throughput_qps\"",
            "\"latency_us\"",
            "\"latency_us_server\"",
            "\"p99\"",
            "\"model_hit_rate\"",
            "\"lookups_consistent\": true",
            "\"server_accounting_consistent\": true",
            "\"divergences\": 0",
        ] {
            assert!(json.contains(field), "{json}");
        }
        let _ = std::fs::remove_file(&out_path);
    }

    /// The wire-histogram helper rebuilds a snapshot a `metrics` reply
    /// carries: trimmed bucket CSV re-padded, quantiles usable.
    #[test]
    fn wire_metrics_rebuilds_histograms_and_counters() {
        // Two samples ~500 ns (bucket 9) and one 1500 ns (bucket 11).
        let reply = r#"{"id":0,"ok":true,"op":"metrics","uptime_ms":5,"ctr_serve_op_layer":7,"hist_serve_eval_ns_count":3,"hist_serve_eval_ns_sum":2500,"hist_serve_eval_ns_max":1500,"hist_serve_eval_ns_p50":511,"hist_serve_eval_ns_p90":1500,"hist_serve_eval_ns_p99":1500,"hist_serve_eval_ns_buckets":"0,0,0,0,0,0,0,0,0,2,0,1"}"#;
        let wire = WireMetrics(parse_flat_object(reply).unwrap());
        assert_eq!(wire.counter("serve_op_layer"), 7);
        assert_eq!(wire.counter("serve_op_sweep"), 0, "absent counters read 0");
        let h = wire.histogram("serve_eval_ns").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum, 2500);
        assert_eq!(h.quantile(0.5), 511, "log2 bucket upper bound");
        assert_eq!(h.quantile(0.99), 1500, "capped by the tracked max");
        assert!(wire.histogram("no_such_hist").is_err());
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(serve_smoke(&args(&["--bogus", "1"])).contains("usage:"));
        assert!(serve_smoke(&args(&["--queries", "0"])).contains("usage:"));
        assert!(serve_smoke(&args(&["--min-qps", "0"])).contains("usage:"));
        assert!(serve_smoke(&args(&["--min-qps", "x"])).contains("usage:"));
        assert!(query(&args(&[])).contains("usage:"), "--port is required");
        assert!(metrics(&args(&[])).contains("usage:"), "--port is required");
        assert!(metrics(&args(&["--port", "1", "--format", "xml"])).contains("usage:"));
        assert!(serve(&args(&["--port", "notaport"])).contains("usage:"));
        assert!(serve(&args(&["--threads", "x"])).contains("usage:"));
        assert!(serve(&args(&["--max-line-bytes", "0"])).contains("usage:"));
        assert!(serve(&args(&["--snapshot-every", "0"])).contains("usage:"));
        assert!(
            serve(&args(&["--snapshot-every", "5"])).contains("needs --cache-snapshot"),
            "periodic saves make no sense without a snapshot path"
        );
    }

    /// Shard stamping appends the shard spec (and `points:true` when the
    /// request does not pick) without disturbing existing fields.
    #[test]
    fn shard_stamping_and_response_grouping() {
        let plain = r#"{"id":3,"op":"sweep","filter":"f","seed":42}"#;
        assert_eq!(
            stamp_shard(plain, 1, 3),
            r#"{"id":3,"op":"sweep","filter":"f","seed":42,"shard":"1/3","points":true}"#
        );
        let explicit = r#"{"id":3,"op":"pareto","filter":"f","points":true}"#;
        assert_eq!(
            stamp_shard(explicit, 0, 2),
            r#"{"id":3,"op":"pareto","filter":"f","points":true,"shard":"0/2"}"#
        );

        // Grouping walks summary + points_follow rows, one group per
        // request; error lines (no points_follow) group alone.
        let stream = vec![
            r#"{"id":1,"ok":true,"points_follow":2}"#.to_string(),
            "row-a".to_string(),
            "row-b".to_string(),
            r#"{"id":2,"ok":false,"error":"nope"}"#.to_string(),
            r#"{"id":3,"ok":true,"points_follow":1}"#.to_string(),
        ];
        let mut cursor = 0;
        assert_eq!(take_response_group(&stream, &mut cursor).unwrap().len(), 3);
        assert_eq!(take_response_group(&stream, &mut cursor).unwrap().len(), 1);
        assert!(
            take_response_group(&stream, &mut cursor).is_none(),
            "id 3 promises one row the stream does not carry"
        );
    }

    /// `query_sharded` rejects requests the shard protocol cannot carry.
    #[test]
    fn query_sharded_rejects_unshardable_requests() {
        let sweep = |extra: &str| vec![format!(r#"{{"id":1,"op":"sweep","filter":"f"{extra}}}"#)];
        let point = vec![r#"{"id":1,"op":"engine","engine":"x"}"#.to_string()];
        assert!(query_sharded("", &sweep(""))
            .unwrap_err()
            .contains("at least one"));
        assert!(query_sharded("h:1", &point)
            .unwrap_err()
            .contains("only serves sweep/pareto"));
        assert!(query_sharded("h:1", &sweep(r#","shard":"0/2""#))
            .unwrap_err()
            .contains("already carries a shard field"));
        assert!(query_sharded("h:1", &sweep(r#","points":false"#))
            .unwrap_err()
            .contains("per-point rows"));
    }

    /// The full sharded round trip: two pooled servers over disjoint
    /// caches, one slice request fanned out via `query_sharded`, merged
    /// output byte-identical to the single-node answer for both ops.
    #[test]
    fn query_sharded_matches_single_node_bytes() {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..2 {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            addrs.push(listener.local_addr().unwrap().to_string());
            let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
            handles.push(std::thread::spawn(move || {
                serve_with(listener, cache, &DseOps, ServeConfig::default())
            }));
        }
        let shard_list = addrs.join(",");
        let filter = "OPT1(TPU)/28nm@1.50,precision=w8";
        for op in ["sweep", "pareto"] {
            let request = format!(r#"{{"id":7,"op":"{op}","filter":"{filter}","seed":42}}"#);
            let single_req =
                format!(r#"{{"id":7,"op":"{op}","filter":"{filter}","seed":42,"points":true}}"#);
            let merged = query_sharded(&shard_list, &[request]).unwrap();
            let single = answer_locally(&[single_req], &EngineCache::new()).join("\n") + "\n";
            assert_eq!(merged, single, "{op} shard merge must be byte-identical");
        }
        for addr in &addrs {
            query_batch(addr, &[r#"{"id":9,"op":"shutdown"}"#.to_string()]).unwrap();
        }
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    /// `--precision` stamping: added when absent, never overrides an
    /// explicit field, and the stamped request evaluates at the new width.
    #[test]
    fn query_precision_stamping() {
        let plain = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]"}"#;
        let stamped = stamp_precision(plain, "W4");
        assert_eq!(
            stamped,
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]","precision":"W4"}"#
        );
        let explicit = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]","precision":"W16"}"#;
        assert_eq!(stamp_precision(explicit, "W4"), explicit);
        let cache = EngineCache::new();
        let resp = answer_locally(&[stamped], &cache);
        assert!(resp[0].contains("@W4\""), "{}", resp[0]);
    }
}
