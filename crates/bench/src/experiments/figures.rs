//! Figures 3, 9 and 14, plus the Eq. 7/8 synchronization model.

use tpe_arith::encode::{Encoder, EntEncoder, MbeEncoder};
use tpe_core::analytic::sync_model;
use tpe_core::arch::array::EFFECTIVE_NUMPPS_NORMAL;
use tpe_core::arch::PeStyle;
use tpe_cost::report::{num, Table};

/// Figure 3: worked encoding examples.
pub fn fig3() -> String {
    let mut out = String::from("Figure 3 — encoding worked examples\n");
    for v in [91i64, 124, 114, 15] {
        let ent = EntEncoder.encode(v, 8);
        let mbe = MbeEncoder.encode(v, 8);
        let fmt = |d: &[tpe_arith::encode::SignedDigit]| {
            d.iter()
                .rev()
                .map(|x| x.coeff.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "  {v:>4} = {v:08b}:  EN-T digits (msb→lsb) {{{}}} → {} PPs;  MBE {{{}}} → {} PPs\n",
            fmt(&ent),
            ent.iter().filter(|d| d.is_nonzero()).count(),
            fmt(&mbe),
            mbe.iter().filter(|d| d.is_nonzero()).count(),
        ));
    }
    out.push_str(
        "  paper: 91→{1,2,-1,-1} (4 PPs), 124→{2,0,-1,0} (2 PPs); Fig 2(E): 114→3, 15→2, 124→2\n",
    );
    out
}

/// Figure 9: PE area / power / area-efficiency / energy-efficiency versus
/// clock constraint for the six designs.
pub fn fig9() -> String {
    let mut t = Table::new([
        "GHz",
        "design",
        "area(um2)",
        "power(uW)",
        "AE(TOPS/mm2)",
        "EE(TOPS/W)",
    ]);
    let freqs = [0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0];
    for style in PeStyle::ALL {
        let design = style.design();
        for &f in &freqs {
            let Some(r) = design.synthesize(f) else {
                continue;
            };
            let ops = if style.is_serial() {
                2.0 * f64::from(style.lanes()) / EFFECTIVE_NUMPPS_NORMAL
            } else {
                2.0 * f64::from(style.lanes())
            };
            t.row([
                num(f, 2),
                style.name().to_string(),
                num(r.area_um2, 1),
                num(r.power_uw(1.0, 1.0), 1),
                num(r.area_efficiency(ops) / 1e3, 2),
                num(r.energy_efficiency(ops, 1.0), 2),
            ]);
        }
    }
    let quote = |s: PeStyle, f: f64| {
        s.design()
            .synthesize(f)
            .map(|r| format!("{:.0}", r.area_um2))
            .unwrap_or_else(|| "violation".into())
    };
    format!(
        "Figure 9 — PE sweeps under clock constraints (missing rows = timing violation)\n{}\n\
         checkpoints: MAC@1GHz {} um2 (paper 367), MAC@1.5GHz {} um2 (paper 707), MAC@1.6GHz {}\n\
         optimal frequencies (paper): MAC 1.0, OPT1 1.5, OPT3 2.0, OPT4C 2.5, OPT4E 2.0 GHz\n",
        t.render(),
        quote(PeStyle::TraditionalMac, 1.0),
        quote(PeStyle::TraditionalMac, 1.5),
        quote(PeStyle::TraditionalMac, 1.6),
    )
}

/// Figure 14: single-PE throughput and energy per operation for best /
/// worst / general operand cases.
pub fn fig14() -> String {
    let mac = PeStyle::TraditionalMac
        .design()
        .synthesize(1.0)
        .expect("MAC@1GHz");
    let opt4c = PeStyle::Opt4C
        .design()
        .synthesize(2.5)
        .expect("OPT4C@2.5GHz");
    let opt4e = PeStyle::Opt4E.design().synthesize(2.0).expect("OPT4E@2GHz");

    // Cycles per MAC for the serial designs: the operand's NumPPs.
    let cases = [
        ("best (1 PP)", 1.0),
        ("general (EN-T avg)", EFFECTIVE_NUMPPS_NORMAL),
        ("worst (4 PPs)", 4.0),
    ];
    let mut t = Table::new(["case", "PE", "GOPS", "fJ/op", "vs 1 MAC"]);
    for (label, pps) in cases {
        // One parallel MAC at 1 GHz: 2 GOPS regardless of the data.
        let mac_gops = 2.0 * 1.0;
        let mac_fj = mac.power_uw(1.0, 1.0) / (2.0 * 1.0);
        t.row([
            label.to_string(),
            "1× MAC".into(),
            num(mac_gops, 2),
            num(mac_fj, 1),
            "×1.00".into(),
        ]);
        // Three OPT4C PEs (the paper's area-equivalence to one MAC).
        let gops_4c = 3.0 * 2.0 * 2.5 / pps;
        let fj_4c = 3.0 * opt4c.power_uw(1.0, 1.0) / (gops_4c * 1.0);
        t.row([
            label.to_string(),
            "3× OPT4C".into(),
            num(gops_4c, 2),
            num(fj_4c, 1),
            format!("×{:.2}", gops_4c / mac_gops),
        ]);
        // One OPT4E group (4 lanes).
        let gops_4e = 4.0 * 2.0 * 2.0 / pps;
        let fj_4e = opt4e.power_uw(1.0, 1.0) / gops_4e;
        t.row([
            label.to_string(),
            "1× OPT4E grp".into(),
            num(gops_4e, 2),
            num(fj_4e, 1),
            format!("×{:.2}", gops_4e / mac_gops),
        ]);
    }
    format!(
        "Figure 14 — per-PE throughput & energy (1 MAC ≈ 3 OPT4C ≈ 1 OPT4E group by area)\n{}\n\
         paper: general case ≈2.7× (3×OPT4C) and ≈3.6× (OPT4E) the MAC throughput, lower energy/op;\n\
         worst case halves a single OPT4C's throughput; best case doubles it.\n\
         model PE areas: MAC {:.0} um2, OPT4C {:.0} um2, OPT4E group {:.0} um2 (paper: 246 / 81.27 / 311)\n",
        t.render(),
        mac.area_um2,
        opt4c.area_um2,
        opt4e.area_um2,
    )
}

/// Eqs. 7–8: the synchronization-time model with Monte-Carlo validation.
pub fn sync_model() -> String {
    let mut t = Table::new([
        "K",
        "sparsity",
        "MP",
        "E[T_single]",
        "E[Tsync]",
        "MC",
        "saving%",
    ]);
    for (k, s, mp) in [
        (576u64, 0.38, 32u32),
        (576, 0.445, 32),
        (64, 0.445, 32),
        (768, 0.445, 32),
        (3072, 0.445, 32),
        (576, 0.38, 1),
        (576, 0.38, 256),
    ] {
        let single = sync_model::expected_single(k, s);
        let e = sync_model::expected_tsync(k, s, mp);
        let mc = sync_model::simulate_tsync(k, s, mp, 60, 99);
        t.row([
            k.to_string(),
            num(s, 3),
            mp.to_string(),
            num(single, 1),
            num(e, 1),
            num(mc, 1),
            num(sync_model::saving_vs_dense(k, s, mp) * 100.0, 2),
        ]);
    }
    format!(
        "Eqs. 7–8 — E[Tsync] column-synchronization model (MC = Monte-Carlo check)\n{}\n\
         paper worked example: K=576 (ResNet-18 img2col), s=0.38 (EN-T weights), E[Tsync]=381,\n\
         saving ≈ 33.84% vs the dense 576-cycle reduction\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_contains_all_designs_and_violations() {
        let s = super::fig9();
        for d in ["MAC", "OPT1", "OPT2", "OPT3", "OPT4C", "OPT4E"] {
            assert!(s.contains(d));
        }
        assert!(s.contains("violation"), "MAC@1.6GHz must violate timing");
    }

    #[test]
    fn fig14_shows_throughput_inversion() {
        let s = super::fig14();
        assert!(s.contains("3× OPT4C"));
        assert!(s.contains("1× OPT4E grp"));
    }
}
