//! The `repro snapshot-smoke` experiment: the warm-start acceptance gate
//! for cache snapshot persistence.
//!
//! ```text
//! repro snapshot-smoke [--filter SUBSTR] [--snapshot F.bin]
//!                      [--min-speedup X] [--out F.json]
//! ```
//!
//! Four phases, each a correctness gate, all timed:
//!
//! 1. **Cold sweep** — evaluate the (optionally filtered) design space on
//!    a fresh cache: the baseline every warm figure is measured against.
//! 2. **Save / load round trip** — snapshot the warmed cache, load it
//!    into a *fresh* cache, and re-sweep: the warm-from-disk run must
//!    finish ≥ `--min-speedup`× faster than cold (default 10×, the CI
//!    bar), record **zero** cache misses, and emit byte-identical CSV.
//! 3. **In-memory warm reference** — re-sweep on the still-warm original
//!    cache, so the report separates "what the disk round trip costs"
//!    from "what memoization alone buys".
//! 4. **Server restart** — serve the slice plus a whole-model query from
//!    one process-lifetime cache, save via the `snapshot` op, "restart"
//!    (a second serve loop on a fresh cache warm-started from the file),
//!    and replay the same requests: the replay must answer
//!    byte-identically with a 100% cache hit rate — the model op served
//!    straight from the persisted model map — the durability story end
//!    to end.
//!
//! `--out` writes the measurements as `BENCH_snapshot.json` for CI
//! artifact upload.

use std::fmt::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Instant;

use super::serve::{parse_flags, parse_num};
use tpe_dse::emit::to_csv;
use tpe_dse::{
    pareto_front_per_workload, sweep_with_cache, DseOps, Objective, SweepConfig, SweepOutcome,
};
use tpe_engine::serve::{json_escape, query_batch, serve_with, ServeConfig, SnapshotOps};
use tpe_engine::{snapshot, EngineCache};

/// Runs the warm-start smoke and renders the report.
pub fn snapshot_smoke(args: &[String]) -> String {
    match try_snapshot_smoke(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro snapshot-smoke [--filter SUBSTR] [--snapshot F.bin] \
             [--min-speedup X] [--out F.json]\n"
        ),
    }
}

/// CSV of a sweep outcome with its per-workload front marked — the byte
/// string the warm runs must reproduce exactly.
fn outcome_csv(outcome: &SweepOutcome) -> String {
    let front = pareto_front_per_workload(&outcome.results, &Objective::DEFAULT);
    to_csv(&outcome.results, &front)
}

fn try_snapshot_smoke(args: &[String]) -> Result<String, String> {
    let values = parse_flags(
        args,
        &[
            ("--filter", false),
            ("--snapshot", false),
            ("--min-speedup", false),
            ("--out", false),
        ],
    )?;
    let filter = values[0].clone().unwrap_or_default();
    let default_snap = values[1].is_none();
    let snap_path = values[1].clone().map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("tpe-snapshot-smoke-{}.bin", std::process::id()))
    });
    let min_speedup: f64 = values[2]
        .as_deref()
        .map(|v| parse_num(v, "--min-speedup"))
        .transpose()?
        .unwrap_or(10.0);
    if !min_speedup.is_finite() || min_speedup <= 0.0 {
        return Err("--min-speedup must be positive".into());
    }
    let out_json = values[3].clone();

    let points = tpe_dse::slice_space(None)?.enumerate_filtered(&filter);
    if points.is_empty() {
        return Err(format!("no design points match filter `{filter}`"));
    }
    let config = SweepConfig {
        threads: 0,
        seed: 42,
        ..SweepConfig::default()
    };

    // Phase 1: cold baseline on a fresh cache.
    let cold_cache = EngineCache::new();
    let cold = sweep_with_cache(&points, config, &cold_cache);
    let cold_ms = cold.elapsed.as_secs_f64() * 1e3;
    let cold_csv = outcome_csv(&cold);

    // Phase 2: save, load into a fresh cache, re-sweep from disk state.
    let t = Instant::now();
    let info = snapshot::save(&cold_cache, &snap_path)
        .map_err(|e| format!("saving {}: {e}", snap_path.display()))?;
    let save_ms = t.elapsed().as_secs_f64() * 1e3;
    let disk_cache = EngineCache::new();
    let t = Instant::now();
    snapshot::load(&disk_cache, &snap_path)
        .map_err(|e| format!("loading {}: {e}", snap_path.display()))?
        .ok_or("snapshot vanished between save and load")?;
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_disk = sweep_with_cache(&points, config, &disk_cache);
    let warm_disk_ms = warm_disk.elapsed.as_secs_f64() * 1e3;

    // Phase 3: the in-memory warm reference on the original cache.
    let warm_mem = sweep_with_cache(&points, config, &cold_cache);
    let warm_mem_ms = warm_mem.elapsed.as_secs_f64() * 1e3;

    let speedup = cold_ms / warm_disk_ms.max(1e-9);
    let ratio_disk_vs_mem = warm_disk_ms / warm_mem_ms.max(1e-9);

    // Phase 4: server restart. Run A sweeps cold, runs a whole-model
    // query (populating the cache's model map), and saves through the
    // `snapshot` op; run B warm-starts from that file and must replay
    // both requests byte-identically without a single cache miss — the
    // model op answered straight from the persisted model map.
    let restart_path = snap_path.with_extension("restart.bin");
    let sweep_req = format!(
        r#"{{"id":1,"op":"sweep","filter":"{}","seed":42}}"#,
        json_escape(&filter)
    );
    let model_req =
        r#"{"id":2,"op":"model","engine":"OPT4E[EN-T]/28nm@2.00GHz","model":"resnet18","seed":42}"#
            .to_string();
    let serve_config = ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    };
    let run_server = |cache: &'static EngineCache,
                      snapshot_op_path: Option<PathBuf>,
                      requests: Vec<String>|
     -> Result<Vec<String>, String> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| e.to_string())?;
        let addr = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        let server = std::thread::spawn(move || match snapshot_op_path {
            Some(path) => {
                let ops = SnapshotOps::new(&DseOps, path);
                serve_with(listener, cache, &ops, serve_config)
            }
            None => serve_with(listener, cache, &DseOps, serve_config),
        });
        let replies = query_batch(&addr, &requests).map_err(|e| format!("restart query: {e}"))?;
        server
            .join()
            .map_err(|_| "restart server panicked".to_string())
            .and_then(|r| r.map_err(|e| format!("restart serve loop: {e}")))?;
        Ok(replies)
    };
    let cache_a: &'static EngineCache = Box::leak(Box::new(EngineCache::new()));
    let replies_a = run_server(
        cache_a,
        Some(restart_path.clone()),
        vec![
            sweep_req.clone(),
            model_req.clone(),
            r#"{"id":3,"op":"snapshot"}"#.to_string(),
            r#"{"id":4,"op":"shutdown"}"#.to_string(),
        ],
    )?;
    let cache_b: &'static EngineCache = Box::leak(Box::new(EngineCache::new()));
    snapshot::load(cache_b, &restart_path)
        .map_err(|e| format!("restart load: {e}"))?
        .ok_or("restart snapshot missing")?;
    let before_b = cache_b.stats();
    let replies_b = run_server(
        cache_b,
        None,
        vec![
            sweep_req,
            model_req,
            r#"{"id":3,"op":"shutdown"}"#.to_string(),
        ],
    )?;
    let replay_delta = cache_b.stats().since(&before_b);
    let replay_hit_rate = replay_delta.hit_rate();
    let model_replay_hit_rate = if replay_delta.model_lookups > 0 {
        replay_delta.model_hits as f64 / replay_delta.model_lookups as f64
    } else {
        0.0
    };
    let replay_identical = replies_a.first() == replies_b.first()
        && replies_a.get(1) == replies_b.get(1)
        && replies_b.len() >= 2;
    let _ = std::fs::remove_file(&restart_path);
    if default_snap {
        let _ = std::fs::remove_file(&snap_path);
    }

    let mut out = String::new();
    writeln!(
        out,
        "Snapshot warm-start smoke — {} design point(s){}",
        points.len(),
        if filter.is_empty() {
            " (full space)".to_string()
        } else {
            format!(" (filter `{filter}`)")
        },
    )
    .unwrap();
    writeln!(
        out,
        "snapshot: {} entries, {} bytes; save {save_ms:.1} ms, load {load_ms:.1} ms",
        info.entries, info.bytes,
    )
    .unwrap();
    writeln!(
        out,
        "sweep wall-clock: cold {cold_ms:.1} ms, warm-from-disk {warm_disk_ms:.1} ms \
         (×{speedup:.1} vs cold), warm-in-memory {warm_mem_ms:.1} ms \
         (disk/mem ratio ×{ratio_disk_vs_mem:.2})",
    )
    .unwrap();
    writeln!(
        out,
        "warm-from-disk cache: {} hits / {} misses; CSV byte-identical to cold: {}",
        warm_disk.cache.hits(),
        warm_disk.cache.misses(),
        outcome_csv(&warm_disk) == cold_csv,
    )
    .unwrap();
    writeln!(
        out,
        "server restart replay: {} hits / {} misses ({:.1}% hit rate; \
         model map {}/{} = {:.1}%), response byte-identical: {replay_identical}",
        replay_delta.hits(),
        replay_delta.misses(),
        replay_hit_rate * 100.0,
        replay_delta.model_hits,
        replay_delta.model_lookups,
        model_replay_hit_rate * 100.0,
    )
    .unwrap();

    if let Some(path) = &out_json {
        let json = format!(
            "{{\n  \"points\": {},\n  \"snapshot_bytes\": {},\n  \"entries\": {},\n  \
             \"save_ms\": {save_ms:.3},\n  \"load_ms\": {load_ms:.3},\n  \
             \"cold_ms\": {cold_ms:.3},\n  \"warm_mem_ms\": {warm_mem_ms:.3},\n  \
             \"warm_disk_ms\": {warm_disk_ms:.3},\n  \"speedup_vs_cold\": {speedup:.2},\n  \
             \"ratio_disk_vs_mem\": {ratio_disk_vs_mem:.3},\n  \
             \"replay_hit_rate\": {replay_hit_rate:.4},\n  \
             \"model_replay_hit_rate\": {model_replay_hit_rate:.4}\n}}\n",
            points.len(),
            info.bytes,
            info.entries,
        );
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        writeln!(out, "measurements written to {path}").unwrap();
    }

    // The gates, after the report is fully rendered so failures carry it.
    if warm_disk.cache.misses() != 0 {
        return Err(format!(
            "warm-from-disk sweep missed the cache {} time(s) — snapshot is not complete\n{out}",
            warm_disk.cache.misses()
        ));
    }
    if outcome_csv(&warm_disk) != cold_csv {
        return Err(format!(
            "warm-from-disk sweep diverged from the cold CSV\n{out}"
        ));
    }
    if speedup < min_speedup {
        return Err(format!(
            "warm-from-disk speedup ×{speedup:.1} is below the ×{min_speedup:.1} floor\n{out}"
        ));
    }
    if !replay_identical {
        return Err(format!(
            "restart replay diverged from the pre-restart response\n{out}"
        ));
    }
    if replay_delta.misses() != 0 {
        return Err(format!(
            "restart replay missed the cache {} time(s) — warm start is not complete\n{out}",
            replay_delta.misses()
        ));
    }
    if replay_delta.model_lookups == 0 || replay_delta.model_misses != 0 {
        return Err(format!(
            "restart replay must answer the model op from the persisted model map \
             ({} lookups, {} misses)\n{out}",
            replay_delta.model_lookups, replay_delta.model_misses
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// The full smoke on a one-engine slice (debug-profile friendly).
    /// The serial OPT4E engine makes the cold run sampling-bound, so the
    /// warm ratio is real; the floor is still relaxed to ×2, leaving the
    /// ×10 CI bar to the release-mode full-space run, while every
    /// correctness gate (zero misses, byte identity, restart replay)
    /// binds at full strength.
    #[test]
    fn snapshot_smoke_end_to_end() {
        let out_path = std::env::temp_dir().join(format!(
            "tpe-snapshot-smoke-test-{}.json",
            std::process::id()
        ));
        let out = out_path.to_str().unwrap().to_string();
        let report = snapshot_smoke(&args(&[
            "--filter",
            "OPT4E[EN-T]/28nm@2.00GHz,precision=w8",
            "--min-speedup",
            "2",
            "--out",
            &out,
        ]));
        assert!(!report.starts_with("error:"), "{report}");
        assert!(
            report.contains("CSV byte-identical to cold: true"),
            "{report}"
        );
        assert!(report.contains("(100.0% hit rate;"), "{report}");
        assert!(report.contains("= 100.0%)"), "{report}");
        assert!(report.contains("response byte-identical: true"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        for field in [
            "\"snapshot_bytes\"",
            "\"save_ms\"",
            "\"load_ms\"",
            "\"cold_ms\"",
            "\"warm_disk_ms\"",
            "\"speedup_vs_cold\"",
            "\"replay_hit_rate\": 1.0000",
            "\"model_replay_hit_rate\": 1.0000",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(snapshot_smoke(&args(&["--bogus", "1"])).contains("usage:"));
        assert!(snapshot_smoke(&args(&["--min-speedup", "0"])).contains("usage:"));
        assert!(snapshot_smoke(&args(&["--min-speedup", "x"])).contains("usage:"));
        assert!(snapshot_smoke(&args(&["--filter", "no-such-point"])).contains("no design points"));
    }
}
