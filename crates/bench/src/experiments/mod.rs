//! One module per experiment family; each function returns the rendered
//! report text.

mod ablations;
mod dse;
mod figures;
mod models;
mod notation_demo;
mod profile;
mod schemes;
mod serve;
mod snapshot;
mod tables;
mod workload_figs;

pub use ablations::{ablate_encoders, ablate_group, ablate_operand_selection, ablate_sync};
pub use dse::dse;
pub use figures::{fig14, fig3, fig9, sync_model};
pub use models::models;
pub use notation_demo::notation;
pub use profile::profile;
pub use schemes::{fig2_schemes, sweep_precision, sweep_width};
pub use serve::{metrics, query, serve, serve_smoke, smoke_batch};
pub use snapshot::snapshot_smoke;
pub use tables::{table1, table2, table3, table5, table7};
pub use workload_figs::{fig11, fig12, fig13};

/// Runs every experiment in paper order, concatenating the reports.
pub fn all() -> String {
    let mut out = String::new();
    for (name, text) in [
        ("table1", table1()),
        ("table2", table2()),
        ("table3", table3()),
        ("table5", table5()),
        ("fig3", fig3()),
        ("fig2-schemes", fig2_schemes()),
        ("sweep-width", sweep_width()),
        ("sweep-precision", sweep_precision()),
        ("notation", notation()),
        ("fig9", fig9()),
        ("table7", table7()),
        ("sync-model", sync_model()),
        ("fig11-gpt2", fig11("gpt2")),
        ("fig11-mobilenetv3", fig11("mobilenetv3")),
        ("fig12", fig12()),
        ("fig13", fig13()),
        ("fig14", fig14()),
        ("ablate-encoders", ablate_encoders()),
        ("ablate-sync", ablate_sync()),
        ("ablate-group", ablate_group()),
        ("ablate-operand-selection", ablate_operand_selection()),
        ("dse", dse(&[])),
        ("models", models(&[])),
        ("serve-smoke", serve_smoke(&[])),
        // Bounded serial-engine slice: the full-space ×10 gate is CI's
        // release-mode run; `all` proves the persistence path end to end.
        (
            "snapshot-smoke",
            snapshot_smoke(&[
                "--filter".to_string(),
                "OPT4E[EN-T]/28nm@2.00GHz,precision=w8".to_string(),
                "--min-speedup".to_string(),
                "2".to_string(),
            ]),
        ),
    ] {
        out.push_str(&format!("\n════════ {name} ════════\n"));
        out.push_str(&text);
    }
    out
}

#[cfg(test)]
mod tests {
    /// Every experiment renders non-trivial output with its key markers.
    #[test]
    fn all_experiments_render() {
        for (text, marker) in [
            (super::table1(), "Accumulator"),
            (super::table2(), "EN-T"),
            (super::table5(), "0.32"),
            (super::fig3(), "91"),
            (super::sync_model(), "381"),
            (super::fig14(), "best"),
        ] {
            assert!(text.contains(marker), "missing `{marker}` in:\n{text}");
            assert!(text.len() > 100);
        }
    }
}
