//! The `repro models` experiment: run every network of the Figure 12/13
//! sweep end-to-end through the `tpe-pipeline` scheduling model on the
//! full Table VII engine roster, and render per-model reports.
//!
//! ```text
//! repro models [--model SUBSTR] [--arch SUBSTR] [--threads N] [--seed S]
//!              [--out models.csv] [--json models.json]
//! ```
//!
//! Like `repro dse`, the grid runs twice — once on one thread, once on
//! `--threads` workers — to measure scaling and *prove* the parallel run
//! emits byte-identical CSV to the serial reference.

use std::fmt::Write as _;

use tpe_dse::emit::{model_csv, model_json};
use tpe_engine::{CycleModel, SerialSampleCaps};
use tpe_pipeline::{run_grid, EngineSpec, GridConfig, ModelRun};
use tpe_workloads::NetworkModel;

/// Parsed CLI options for the model grid.
struct ModelOptions {
    model_filter: String,
    arch_filter: String,
    precision: Option<tpe_dse::Precision>,
    threads: usize,
    seed: u64,
    cycle_model: CycleModel,
    out_csv: Option<String>,
    out_json: Option<String>,
    cache_load: Option<String>,
    cache_save: Option<String>,
}

fn parse_options(args: &[String]) -> Result<ModelOptions, String> {
    let mut opts = ModelOptions {
        model_filter: String::new(),
        arch_filter: String::new(),
        precision: None,
        threads: 0,
        seed: 42,
        cycle_model: CycleModel::Sampled,
        out_csv: None,
        out_json: None,
        cache_load: None,
        cache_save: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--model" => opts.model_filter = value("--model")?,
            "--arch" => opts.arch_filter = value("--arch")?,
            "--precision" => {
                let v = value("--precision")?;
                opts.precision = Some(
                    tpe_dse::Precision::parse(&v)
                        .ok_or_else(|| format!("unknown precision `{v}`"))?,
                );
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--cycle-model" => {
                let v = value("--cycle-model")?;
                opts.cycle_model = CycleModel::parse(&v)
                    .ok_or_else(|| format!("unknown cycle model `{v}` (sampled|analytic)"))?;
            }
            "--out" => opts.out_csv = Some(value("--out")?),
            "--json" => opts.out_json = Some(value("--json")?),
            "--cache-load" => opts.cache_load = Some(value("--cache-load")?),
            "--cache-save" => opts.cache_save = Some(value("--cache-save")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs the model-level pipeline grid and renders the report.
pub fn models(args: &[String]) -> String {
    match try_models(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro models [--model SUBSTR] [--arch SUBSTR] \
             [--precision W4|W8|W16|W8xW4] [--cycle-model sampled|analytic] \
             [--threads N] [--seed S] [--out FILE.csv] [--json FILE.json] \
             [--cache-load F.bin] [--cache-save F.bin]\n"
        ),
    }
}

fn try_models(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    let model_needle = opts.model_filter.to_ascii_lowercase();
    // The catalog: the ten Figure 12/13 networks when unfiltered, with the
    // mixed-precision presets (ResNet18-W4) reachable by name.
    let pool = if model_needle.is_empty() {
        NetworkModel::all()
    } else {
        NetworkModel::catalog()
    };
    let nets: Vec<NetworkModel> = pool
        .into_iter()
        .filter(|n| model_needle.is_empty() || n.name.to_ascii_lowercase().contains(&model_needle))
        .collect();
    if nets.is_empty() {
        return Err(format!("no network matches `{}`", opts.model_filter));
    }
    let arch_needle = opts.arch_filter.to_ascii_lowercase();
    // `--precision` reprices the whole roster at that operand width (the
    // default W8 keeps the Table VII roster byte-identical).
    let engines: Vec<EngineSpec> = EngineSpec::paper_roster()
        .into_iter()
        .map(|e| match opts.precision {
            Some(p) => e.with_precision(p),
            None => e,
        })
        .filter(|e| arch_needle.is_empty() || e.label().to_ascii_lowercase().contains(&arch_needle))
        .collect();
    if engines.is_empty() {
        return Err(format!("no engine matches `{}`", opts.arch_filter));
    }

    // Both grid runs price engines through the process-wide cache, so a
    // loaded snapshot warms the whole command.
    let load_note = super::dse::cache_load_note(opts.cache_load.as_deref())?;

    let caps = SerialSampleCaps {
        model: opts.cycle_model,
        ..GridConfig::default().caps
    };
    let serial = run_grid(
        &nets,
        &engines,
        GridConfig {
            threads: 1,
            seed: opts.seed,
            caps,
        },
    );
    let parallel = run_grid(
        &nets,
        &engines,
        GridConfig {
            threads: opts.threads,
            seed: opts.seed,
            caps,
        },
    );
    let csv = model_csv(&parallel.runs);
    assert_eq!(
        model_csv(&serial.runs),
        csv,
        "parallel model grid diverged from the serial reference"
    );
    let save_note = super::dse::cache_save_note(opts.cache_save.as_deref())?;

    if let Some(path) = &opts.out_csv {
        std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.out_json {
        std::fs::write(path, model_json(&parallel.runs))
            .map_err(|e| format!("writing {path}: {e}"))?;
    }

    let mut out = String::new();
    writeln!(
        out,
        "Model-level scheduling pipeline — {} network(s) × {} engine(s) \
         (img2col tiling → per-layer cycle/energy model → end-to-end aggregation)",
        nets.len(),
        engines.len()
    )
    .unwrap();
    if opts.cycle_model != CycleModel::Sampled {
        writeln!(
            out,
            "cycle model: {} (closed-form serial cycles; seed-independent)",
            opts.cycle_model.name()
        )
        .unwrap();
    }
    if !opts.model_filter.is_empty() || !opts.arch_filter.is_empty() {
        writeln!(
            out,
            "filters: model `{}`, arch `{}`",
            opts.model_filter, opts.arch_filter
        )
        .unwrap();
    }
    out.push_str(&load_note);
    out.push_str(&save_note);
    writeln!(
        out,
        "grid wall-clock: {:.0} ms on 1 thread, {:.0} ms on {} threads \
         (outputs byte-identical)",
        serial.elapsed.as_secs_f64() * 1e3,
        parallel.elapsed.as_secs_f64() * 1e3,
        parallel.threads,
    )
    .unwrap();

    for net in &nets {
        let runs: Vec<&ModelRun> = parallel
            .runs
            .iter()
            .filter(|r| r.model == net.name)
            .collect();
        writeln!(
            out,
            "\n{} — {} layers, {:.2} GMACs:",
            net.name,
            net.layers.len(),
            net.total_macs() as f64 / 1e9
        )
        .unwrap();
        writeln!(
            out,
            "| {:<26} | {:>10} | {:>8} | {:>9} | {:>6} | {:>9} | {:>7} |",
            "engine", "delay(ms)", "GOPS", "peak TOPS", "util", "energy(mJ)", "TOPS/W"
        )
        .unwrap();
        writeln!(
            out,
            "|{:-<28}|{:-<12}|{:-<10}|{:-<11}|{:-<8}|{:-<11}|{:-<9}|",
            "", "", "", "", "", "", ""
        )
        .unwrap();
        let mut best: Option<(&ModelRun, f64)> = None;
        for run in runs {
            match &run.report {
                Some(r) => {
                    writeln!(
                        out,
                        "| {:<26} | {:>10.3} | {:>8.1} | {:>9.2} | {:>6.3} | {:>9.3} | {:>7.2} |",
                        run.engine.label(),
                        r.delay_us / 1e3,
                        r.throughput_gops(),
                        r.peak_tops,
                        r.utilization,
                        r.energy_uj / 1e3,
                        r.tops_per_w(),
                    )
                    .unwrap();
                    if best.as_ref().is_none_or(|&(_, d)| r.delay_us < d) {
                        best = Some((run, r.delay_us));
                    }
                }
                None => {
                    writeln!(
                        out,
                        "| {:<26} | {:>10} | {:>8} | {:>9} | {:>6} | {:>9} | {:>7} |",
                        run.engine.label(),
                        "— fails",
                        "timing",
                        "—",
                        "—",
                        "—",
                        "—"
                    )
                    .unwrap();
                }
            }
        }
        if let Some((run, _)) = best {
            writeln!(out, "fastest: {}", run.engine.label()).unwrap();
        }
    }
    if let Some(path) = &opts.out_csv {
        writeln!(out, "\nfull grid written to {path}").unwrap();
    }
    if let Some(path) = &opts.out_json {
        writeln!(out, "grid + per-layer JSON written to {path}").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// A filtered grid renders the full report structure (dense engines
    /// only, to stay fast in debug test runs).
    #[test]
    fn filtered_models_report_renders() {
        let report = models(&args(&[
            "--model",
            "resnet18",
            "--arch",
            "OPT1",
            "--threads",
            "2",
        ]));
        assert!(report.contains("ResNet18"), "{report}");
        assert!(report.contains("fastest:"), "{report}");
        assert!(report.contains("byte-identical"), "{report}");
        assert!(report.contains("TOPS/W"), "{report}");
    }

    /// `--precision` reprices the roster (labels carry the suffix) and the
    /// quantized preset resolves through the catalog.
    #[test]
    fn precision_flag_and_quantized_preset_render() {
        let report = models(&args(&[
            "--model",
            "resnet18",
            "--arch",
            "OPT1(TPU)",
            "--precision",
            "w16",
            "--threads",
            "2",
        ]));
        assert!(report.contains("@W16"), "{report}");
        assert!(report.contains("ResNet18-W4"), "catalog preset: {report}");
        assert!(report.contains("fastest:"), "{report}");
    }

    /// `--cycle-model analytic` runs the whole grid through the
    /// closed-form serial-cycle path and reports the mode (default
    /// sampled output stays byte-identical — no mode line at all).
    #[test]
    fn analytic_cycle_model_flag_reports_the_mode() {
        let report = models(&args(&[
            "--model",
            "resnet18",
            "--arch",
            "OPT4E[EN-T]",
            "--cycle-model",
            "analytic",
            "--threads",
            "2",
        ]));
        assert!(report.contains("cycle model: analytic"), "{report}");
        assert!(report.contains("fastest:"), "{report}");
    }

    /// `--cache-save`/`--cache-load` thread the shared snapshot helpers
    /// through the grid command.
    #[test]
    fn cache_flags_save_and_load() {
        let path = std::env::temp_dir().join(format!("tpe-models-snap-{}.bin", std::process::id()));
        let p = path.to_str().unwrap();
        let grid = &[
            "--model",
            "resnet18",
            "--arch",
            "OPT1(TPU)",
            "--threads",
            "2",
        ];
        let saved = models(&args(&[grid as &[&str], &["--cache-save", p]].concat()));
        assert!(
            saved.contains(&format!("cache snapshot saved to {p}")),
            "{saved}"
        );
        let loaded = models(&args(&[grid as &[&str], &["--cache-load", p]].concat()));
        assert!(
            loaded.contains(&format!("cache snapshot loaded from {p}")),
            "{loaded}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(models(&args(&["--bogus"])).contains("usage:"));
        assert!(models(&args(&["--cycle-model", "fast"])).contains("usage:"));
        assert!(models(&args(&["--model", "no-such-net"])).contains("no network"));
        assert!(models(&args(&["--arch", "no-such-engine"])).contains("no engine"));
        assert!(models(&args(&["--precision", "w99"])).contains("usage:"));
    }
}
