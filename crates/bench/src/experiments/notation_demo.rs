//! The notation demo: prints the five loop nests (Figures 4–8) and the
//! primitive activation counts proving each rewrite's structural claim.

use tpe_arith::encode::EncodingKind;
use tpe_core::notation::interp::execute;
use tpe_core::notation::{costing, legality, nests, printer};
use tpe_cost::report::Table;
use tpe_workloads::distributions::uniform_int8_matrix;
use tpe_workloads::matrix::matmul_i8;

/// Renders all five nests with interpreter-verified GEMM equivalence and
/// primitive counts.
pub fn notation() -> String {
    let (m, n, k) = (4, 4, 8);
    let enc = EncodingKind::EnT;
    let a = uniform_int8_matrix(m, k, 314);
    let b = uniform_int8_matrix(k, n, 159);
    let reference = matmul_i8(&a, &b);

    let nests = [
        nests::traditional_mac(m, n, k, enc),
        nests::opt1(m, n, k, enc),
        nests::opt2(m, n, k, enc),
        nests::opt3(m, n, k, enc),
        nests::opt4(m, n, k, enc),
    ];
    let mut out = String::new();
    let mut t = Table::new([
        "nest",
        "encodes",
        "maps",
        "shifts",
        "half_reduces",
        "adds",
        "accumulates",
        "syncs",
        "GEMM ok",
        "legal",
        "enc-shared/N",
    ]);
    for nest in &nests {
        out.push_str(&printer::render(nest));
        out.push('\n');
        let (c, stats) = execute(nest, &a, &b).expect("nest executes");
        t.row([
            nest.name
                .split(" from")
                .next()
                .unwrap_or(&nest.name)
                .to_string(),
            stats.encodes.to_string(),
            stats.maps.to_string(),
            stats.shifts.to_string(),
            stats.half_reduces.to_string(),
            stats.adds.to_string(),
            stats.accumulates.to_string(),
            stats.syncs.to_string(),
            if c == reference { "OK" } else { "MISMATCH" }.to_string(),
            if legality::check(nest).is_ok() {
                "legal"
            } else {
                "ILLEGAL"
            }
            .to_string(),
            if legality::encoder_shared_over_n(nest) {
                "shared"
            } else {
                "per-PE"
            }
            .to_string(),
        ]);
    }
    // The notation → costing bridge: derive a PE design from each nest.
    let mut c = Table::new([
        "nest",
        "derived delay(ns)",
        "derived area(um2) @1GHz",
        "fmax(GHz)",
    ]);
    for nest in &nests {
        let d = costing::pe_design_of(nest);
        c.row([
            nest.name
                .split(" from")
                .next()
                .unwrap_or(&nest.name)
                .to_string(),
            format!("{:.2}", d.nominal_delay_ns),
            d.synthesize(1.0)
                .map_or("violation".into(), |r| format!("{:.0}", r.area_um2)),
            format!("{:.2}", d.max_frequency_ghz()),
        ]);
    }
    format!(
        "The compute-centric notation (Figures 4–8): every nest below computes the\n\
         identical 4×4×8 GEMM through the interpreter.\n\n{out}\nPrimitive activations:\n{}\n\
         Derived hardware (notation → cost bridge; §III's claim mechanized):\n{}",
        t.render(),
        c.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_shows_all_five_nests_verified() {
        let s = super::notation();
        assert!(s.contains("GEMM ok"));
        assert!(!s.contains("MISMATCH"), "a nest failed verification:\n{s}");
        assert!(!s.contains("ILLEGAL"), "a nest failed legality:\n{s}");
        assert_eq!(
            s.matches("shared").count(),
            2,
            "only OPT4 shares (+ header)"
        );
        assert!(s.contains("OPT4"));
    }
}
