//! The `repro dse` experiment: sweep the full design space in parallel,
//! extract the Pareto front, and report cache + scaling behaviour.
//!
//! ```text
//! repro dse [--filter SUBSTR] [--objectives area,delay,energy]
//!           [--model SUBSTR] [--threads N] [--seed S]
//!           [--out sweep.csv] [--json sweep.json]
//! ```
//!
//! The sweep runs twice — once on one thread, once on `--threads` workers
//! — both to measure the parallel speedup and to *prove* the parallel run
//! is byte-identical to the serial one (the executor's determinism
//! contract).
//!
//! `--model` swaps the workload axis for whole networks (matched by name
//! substring; `--model all` keeps every Figure 12/13 network), so the
//! Pareto front is extracted over *end-to-end model* objectives instead
//! of single layers. The default space also carries ResNet-18 end-to-end
//! as its seventh workload.
//!
//! `--memory` grows the memory axis beyond the default `Unbounded`
//! corner: a comma list of roster corner names (`edge,hbm`) or `all` for
//! every named corner. Each point then carries the roofline-bounded
//! delay, its `bytes_moved`/`intensity_ops_per_byte` traffic numbers and
//! a `bound` column, and `--filter memory=<name>` slices the axis
//! exactly.

use std::fmt::Write as _;

use tpe_dse::emit::{to_csv, to_json};
use tpe_dse::{
    pareto_front_per_workload, sweep, sweep_with_cache, CycleModel, EngineCache, Objective,
    SweepConfig,
};

/// Parsed CLI options for the sweep.
struct DseOptions {
    filter: String,
    objectives: Vec<Objective>,
    model: Option<String>,
    precisions: Option<Vec<tpe_dse::Precision>>,
    memories: Option<Vec<tpe_engine::MemorySpec>>,
    threads: usize,
    seed: u64,
    cycle_model: CycleModel,
    out_csv: Option<String>,
    out_json: Option<String>,
    cache_load: Option<String>,
    cache_save: Option<String>,
}

/// Parses a comma-separated precision list ("w4,w8,w16").
fn parse_precisions(list: &str) -> Result<Vec<tpe_dse::Precision>, String> {
    let precisions: Vec<tpe_dse::Precision> = list
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            tpe_dse::Precision::parse(part.trim())
                .ok_or_else(|| format!("unknown precision `{part}`"))
        })
        .collect::<Result<_, _>>()?;
    if precisions.is_empty() {
        return Err("--precision needs at least one value".into());
    }
    Ok(precisions)
}

/// Parses a comma-separated memory-corner list ("edge,hbm"), or "all"
/// for every named roster corner (including `unbounded`).
fn parse_memories(list: &str) -> Result<Vec<tpe_engine::MemorySpec>, String> {
    if list.trim().eq_ignore_ascii_case("all") {
        return Ok(tpe_engine::roster::memory_corners());
    }
    let memories: Vec<tpe_engine::MemorySpec> = list
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            tpe_engine::roster::find_memory(part.trim())
                .ok_or_else(|| format!("unknown memory corner `{part}`"))
        })
        .collect::<Result<_, _>>()?;
    if memories.is_empty() {
        return Err("--memory needs at least one value".into());
    }
    Ok(memories)
}

fn parse_options(args: &[String]) -> Result<DseOptions, String> {
    let mut opts = DseOptions {
        filter: String::new(),
        objectives: Objective::DEFAULT.to_vec(),
        model: None,
        precisions: None,
        memories: None,
        threads: 0,
        seed: 42,
        cycle_model: CycleModel::Sampled,
        out_csv: None,
        out_json: None,
        cache_load: None,
        cache_save: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--filter" => opts.filter = value("--filter")?,
            "--objectives" => opts.objectives = Objective::parse_list(&value("--objectives")?)?,
            "--model" => opts.model = Some(value("--model")?),
            "--precision" => opts.precisions = Some(parse_precisions(&value("--precision")?)?),
            "--memory" => opts.memories = Some(parse_memories(&value("--memory")?)?),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--cycle-model" => {
                let v = value("--cycle-model")?;
                opts.cycle_model = CycleModel::parse(&v)
                    .ok_or_else(|| format!("unknown cycle model `{v}` (sampled|analytic)"))?;
            }
            "--out" => opts.out_csv = Some(value("--out")?),
            "--json" => opts.out_json = Some(value("--json")?),
            "--cache-load" => opts.cache_load = Some(value("--cache-load")?),
            "--cache-save" => opts.cache_save = Some(value("--cache-save")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// Warm-starts the global cache from a snapshot file when `--cache-load`
/// is given (missing file → note a cold run; corrupt file → hard error —
/// a CI gate that silently ran cold would pass for the wrong reason).
/// Returns the report note.
pub(crate) fn cache_load_note(path: Option<&str>) -> Result<String, String> {
    let Some(path) = path else {
        return Ok(String::new());
    };
    let info = tpe_engine::snapshot::load(EngineCache::global(), std::path::Path::new(path))
        .map_err(|e| format!("loading cache snapshot {path}: {e}"))?;
    Ok(match info {
        Some(info) => format!(
            "cache snapshot loaded from {path} ({} entries, {} bytes)\n",
            info.entries, info.bytes
        ),
        None => format!("cache snapshot {path} not found — running cold\n"),
    })
}

/// Saves the global cache to a snapshot file when `--cache-save` is
/// given. Returns the report note.
pub(crate) fn cache_save_note(path: Option<&str>) -> Result<String, String> {
    let Some(path) = path else {
        return Ok(String::new());
    };
    let info = tpe_engine::snapshot::save(EngineCache::global(), std::path::Path::new(path))
        .map_err(|e| format!("saving cache snapshot {path}: {e}"))?;
    Ok(format!(
        "cache snapshot saved to {path} ({} entries, {} bytes)\n",
        info.entries, info.bytes
    ))
}

/// Topology axis value of a point, for the report's coverage breakdown.
fn topology_key(p: &tpe_dse::DesignPoint) -> String {
    tpe_dse::emit::topology_name(p.kind()).to_string()
}

/// Runs the design-space sweep and renders the report.
pub fn dse(args: &[String]) -> String {
    match try_dse(args) {
        Ok(report) => report,
        Err(msg) => format!(
            "error: {msg}\nusage: repro dse [--filter SUBSTR[,precision=W4][,memory=edge]] \
             [--objectives area,delay,energy,power,throughput,utilization] [--model SUBSTR|all] \
             [--precision W4,W8,W16,W8xW4] [--memory edge,mobile,hbm|all] \
             [--cycle-model sampled|analytic] [--threads N] \
             [--seed S] [--out FILE.csv] [--json FILE.json] [--cache-load F.bin] \
             [--cache-save F.bin]\n"
        ),
    }
}

fn try_dse(args: &[String]) -> Result<String, String> {
    let opts = parse_options(args)?;
    // `--model all` (or any matching substring) swaps the workload axis
    // for whole networks: the front becomes model-level. `slice_space` is
    // shared with the serve `sweep`/`pareto` ops, so a filter addresses
    // the same points over the wire as here.
    let mut space = tpe_dse::slice_space(opts.model.as_deref())?;
    if let Some(precisions) = &opts.precisions {
        space.precisions = precisions.clone();
    }
    if let Some(memories) = &opts.memories {
        space.memories = memories.clone();
    }
    let points = space.enumerate_filtered(&opts.filter);
    if points.is_empty() {
        return Err(format!("no design points match filter `{}`", opts.filter));
    }

    // `--cache-load` warm-starts the global cache the parallel run uses;
    // the serial reference below stays on an isolated cache, so the
    // reported 1-thread timing remains an honest cold figure either way.
    let load_note = cache_load_note(opts.cache_load.as_deref())?;

    // Serial reference on an isolated cache (honest cold timing), the
    // parallel run against the process-wide global cache every other
    // consumer shares. Memoization cannot change values, so the equality
    // assertion below also pins global-vs-isolated agreement.
    let serial = sweep_with_cache(
        &points,
        SweepConfig {
            threads: 1,
            seed: opts.seed,
            cycle_model: opts.cycle_model,
        },
        &EngineCache::new(),
    );
    let parallel = sweep(
        &points,
        SweepConfig {
            threads: opts.threads,
            seed: opts.seed,
            cycle_model: opts.cycle_model,
        },
    );
    assert_eq!(
        serial.results, parallel.results,
        "parallel sweep diverged from the serial reference"
    );

    let save_note = cache_save_note(opts.cache_save.as_deref())?;

    let front = pareto_front_per_workload(&parallel.results, &opts.objectives);
    let csv = to_csv(&parallel.results, &front);

    if let Some(path) = &opts.out_csv {
        std::fs::write(path, &csv).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.out_json {
        let json = to_json(&parallel.results, &front, &opts.objectives);
        std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    }

    let mut out = String::new();
    let objective_names: Vec<&str> = opts.objectives.iter().map(|o| o.name()).collect();
    // Axis breakdown of the points actually swept (a --filter can narrow
    // any axis, so counting the full space here would misreport coverage).
    let distinct = |f: &dyn Fn(&tpe_dse::DesignPoint) -> String| {
        let mut values: Vec<String> = points.iter().map(f).collect();
        values.sort();
        values.dedup();
        values.len()
    };
    writeln!(
        out,
        "Design-space exploration — {} points (legality-pruned cross product spanning {} styles, \
         {} topologies, {} encodings, {} precisions, {} memories, {} corners, {} workloads)",
        points.len(),
        distinct(&|p| p.style().name().to_string()),
        distinct(&topology_key),
        distinct(&|p| p.encoding().to_string()),
        distinct(&|p| p.precision().label()),
        distinct(&|p| p.memory().name.to_string()),
        distinct(&|p| p.corner().label()),
        distinct(&|p| p.workload.name().to_string())
    )
    .unwrap();
    if !opts.filter.is_empty() {
        writeln!(out, "filter: `{}`", opts.filter).unwrap();
    }
    if opts.cycle_model != CycleModel::Sampled {
        writeln!(
            out,
            "cycle model: {} (closed-form serial cycles; seed-independent)",
            opts.cycle_model.name()
        )
        .unwrap();
    }
    if let Some(name) = &opts.model {
        writeln!(
            out,
            "whole-model workloads (`--model {name}`): every point evaluates a \
             complete network through the tpe-pipeline scheduler"
        )
        .unwrap();
    }
    writeln!(
        out,
        "feasible: {} / {} (the rest fail timing at their corner)",
        parallel.feasible_count(),
        points.len()
    )
    .unwrap();
    writeln!(
        out,
        "eval cache (global, this run): {} hits / {} misses ({:.1}% hit rate; \
         pricing {}h/{}m, workload cycles {}h/{}m)",
        parallel.cache.hits(),
        parallel.cache.misses(),
        parallel.cache.hit_rate() * 100.0,
        parallel.cache.price_hits,
        parallel.cache.price_misses,
        parallel.cache.cycle_hits,
        parallel.cache.cycle_misses,
    )
    .unwrap();
    out.push_str(&load_note);
    out.push_str(&save_note);
    let speedup = serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64().max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    writeln!(
        out,
        "sweep wall-clock: {:.0} ms on 1 thread, {:.0} ms on {} threads — speedup ×{:.2} \
         ({} core(s) available; outputs byte-identical)",
        serial.elapsed.as_secs_f64() * 1e3,
        parallel.elapsed.as_secs_f64() * 1e3,
        parallel.threads,
        speedup,
        cores
    )
    .unwrap();

    writeln!(
        out,
        "\nPareto front over [{}], extracted per workload — {} of {} feasible points:",
        objective_names.join(", "),
        front.len(),
        parallel.feasible_count()
    )
    .unwrap();
    writeln!(
        out,
        "| {:<42} | {:>10} | {:>9} | {:>8} | {:>8} | {:>6} | {:>6} |",
        "design point", "area(um2)", "delay(us)", "fJ/MAC", "GOPS", "util", "W"
    )
    .unwrap();
    writeln!(
        out,
        "|{:-<44}|{:-<12}|{:-<11}|{:-<10}|{:-<10}|{:-<8}|{:-<8}|",
        "", "", "", "", "", "", ""
    )
    .unwrap();
    let mut rows: Vec<usize> = front.clone();
    rows.sort_by(|&a, &b| {
        let (ma, mb) = (
            parallel.results[a].metrics.as_ref().unwrap(),
            parallel.results[b].metrics.as_ref().unwrap(),
        );
        ma.area_um2.total_cmp(&mb.area_um2)
    });
    const MAX_ROWS: usize = 40;
    for &i in rows.iter().take(MAX_ROWS) {
        let r = &parallel.results[i];
        let m = r.metrics.as_ref().unwrap();
        writeln!(
            out,
            "| {:<42} | {:>10.0} | {:>9.2} | {:>8.2} | {:>8.1} | {:>6.3} | {:>6.3} |",
            r.point.label(),
            m.area_um2,
            m.delay_us,
            m.energy_per_mac_fj,
            m.throughput_gops,
            m.utilization,
            m.power_w
        )
        .unwrap();
    }
    if rows.len() > MAX_ROWS {
        writeln!(
            out,
            "… {} more front points (use --out to dump all)",
            rows.len() - MAX_ROWS
        )
        .unwrap();
    }
    if let Some(path) = &opts.out_csv {
        writeln!(out, "\nfull sweep written to {path}").unwrap();
    }
    if let Some(path) = &opts.out_json {
        writeln!(out, "front + sweep JSON written to {path}").unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// A filtered sweep renders the full report structure. (Filtered to
    /// the dense family to stay fast in debug test runs.)
    #[test]
    fn filtered_dse_report_renders() {
        let report = dse(&args(&["--filter", "(TPU)", "--threads", "2"]));
        assert!(report.contains("Pareto front"), "{report}");
        assert!(report.contains("eval cache"), "{report}");
        assert!(report.contains("hit rate"), "{report}");
        assert!(report.contains("speedup"), "{report}");
    }

    /// `--model` puts whole networks on the Pareto front (dense-only
    /// filter keeps the debug-profile run fast; model cycles are
    /// closed-form there).
    #[test]
    fn model_mode_sweeps_whole_networks() {
        let report = dse(&args(&[
            "--model",
            "resnet18",
            "--filter",
            "OPT1(",
            "--threads",
            "2",
        ]));
        assert!(report.contains("whole-model workloads"), "{report}");
        assert!(report.contains("/ResNet18"), "{report}");
        assert!(report.contains("Pareto front"), "{report}");
    }

    /// `--precision` restricts the axis and `precision=` filter terms
    /// select it (the CI smoke's `--filter precision=w4` path).
    #[test]
    fn precision_flag_and_filter_narrow_the_axis() {
        let report = dse(&args(&["--filter", "(TPU),precision=w4", "--threads", "2"]));
        assert!(report.contains("1 precisions"), "{report}");
        assert!(report.contains("@W4"), "{report}");
        let report = dse(&args(&[
            "--precision",
            "w16",
            "--filter",
            "OPT1(Trapezoid)",
            "--threads",
            "2",
        ]));
        assert!(report.contains("1 precisions"), "{report}");
        assert!(report.contains("@W16"), "{report}");
    }

    /// `--memory` grows the memory axis and `memory=` filter terms slice
    /// it: a corner-pinned sweep labels its points `@edge` and reports a
    /// single memory value, while the default axis stays `unbounded`.
    #[test]
    fn memory_flag_and_filter_grow_and_slice_the_axis() {
        let report = dse(&args(&[
            "--memory",
            "edge",
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8",
            "--threads",
            "2",
        ]));
        assert!(report.contains("1 memories"), "{report}");
        assert!(report.contains("@edge"), "{report}");
        let sliced = dse(&args(&[
            "--memory",
            "all",
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8,memory=hbm",
            "--threads",
            "2",
        ]));
        assert!(sliced.contains("1 memories"), "{sliced}");
        assert!(sliced.contains("@hbm"), "{sliced}");
        let default = dse(&args(&[
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8",
            "--threads",
            "2",
        ]));
        assert!(default.contains("1 memories"), "{default}");
        for corner in ["@edge", "@mobile", "@hbm"] {
            assert!(!default.contains(corner), "{default}");
        }
    }

    /// `--cycle-model analytic` sweeps the closed-form path and reports
    /// the mode; its objective values differ from the sampled run only in
    /// cycle-derived columns (checked in the golden projection tests).
    #[test]
    fn analytic_cycle_model_flag_reports_the_mode() {
        let report = dse(&args(&[
            "--filter",
            "OPT3[EN-T]/28nm@2.00,precision=w8",
            "--cycle-model",
            "analytic",
            "--threads",
            "2",
        ]));
        assert!(report.contains("cycle model: analytic"), "{report}");
        assert!(report.contains("Pareto front"), "{report}");
        let sampled = dse(&args(&[
            "--filter",
            "OPT3[EN-T]/28nm@2.00,precision=w8",
            "--threads",
            "2",
        ]));
        assert!(!sampled.contains("cycle model:"), "{sampled}");
    }

    /// `--cache-save` then `--cache-load` round-trips the warm state: the
    /// second run reports the loaded snapshot, and a corrupt file is a
    /// hard error (never a silent cold run).
    #[test]
    fn cache_save_load_round_trip() {
        let path = std::env::temp_dir().join(format!("tpe-dse-snap-{}.bin", std::process::id()));
        let p = path.to_str().unwrap();
        let saved = dse(&args(&[
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8",
            "--cache-save",
            p,
        ]));
        assert!(
            saved.contains(&format!("cache snapshot saved to {p}")),
            "{saved}"
        );
        let loaded = dse(&args(&[
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8",
            "--cache-load",
            p,
        ]));
        assert!(
            loaded.contains(&format!("cache snapshot loaded from {p}")),
            "{loaded}"
        );
        std::fs::write(&path, b"not a snapshot").unwrap();
        let corrupt = dse(&args(&["--filter", "(TPU)", "--cache-load", p]));
        assert!(
            corrupt.contains("error: loading cache snapshot"),
            "{corrupt}"
        );
        let _ = std::fs::remove_file(&path);
        let missing = dse(&args(&[
            "--filter",
            "OPT1(TPU)/28nm@1.50,precision=w8",
            "--cache-load",
            p,
        ]));
        assert!(missing.contains("not found — running cold"), "{missing}");
    }

    #[test]
    fn bad_flags_render_usage() {
        assert!(dse(&args(&["--bogus"])).contains("usage:"));
        assert!(dse(&args(&["--cycle-model", "turbo"])).contains("usage:"));
        assert!(dse(&args(&["--objectives", "area"])).contains("usage:"));
        assert!(dse(&args(&["--filter", "no-such-point-anywhere"])).contains("no design points"));
        assert!(dse(&args(&["--model", "no-such-net"])).contains("usage:"));
        assert!(dse(&args(&["--precision", "w99"])).contains("usage:"));
        assert!(dse(&args(&["--precision", ""])).contains("usage:"));
        assert!(dse(&args(&["--memory", "l9"])).contains("usage:"));
        assert!(dse(&args(&["--memory", ""])).contains("usage:"));
    }
}
