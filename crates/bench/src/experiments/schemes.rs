//! Figure 2 PE-scheme comparison and the accumulator-width sweep behind
//! Table I's bottleneck claim.

use tpe_cost::components::Component;
use tpe_cost::report::{num, Table};
use tpe_cost::synthesis::PeDesign;
use tpe_cost::timing;
use tpe_sim::pe_schemes::compare_schemes;
use tpe_workloads::distributions::normal_int8_matrix;

/// Figure 2: the six PE computation schemes on the same dot product.
pub fn fig2_schemes() -> String {
    let a: Vec<i8> = normal_int8_matrix(1, 2048, 1.0, 21).data().to_vec();
    let b: Vec<i8> = normal_int8_matrix(1, 2048, 1.0, 22).data().to_vec();
    let results = compare_schemes(&a, &b);
    let reference = results[0].1.value;
    let mut t = Table::new(["scheme", "cycles", "PPs", "cycles/MAC", "exact"]);
    for (name, r) in &results {
        t.row([
            name.to_string(),
            r.cycles.to_string(),
            r.partial_products.to_string(),
            num(r.cycles as f64 / 2048.0, 2),
            (r.value == reference).to_string(),
        ]);
    }
    let worked = compare_schemes(&[114, 15, 124], &[1, 1, 1]);
    let serial = worked
        .iter()
        .find(|(n, _)| n.contains("2B"))
        .unwrap()
        .1
        .cycles;
    let encoded = worked
        .iter()
        .find(|(n, _)| n.contains("2E"))
        .unwrap()
        .1
        .cycles;
    format!(
        "Figure 2 — PE schemes on a K=2048 N(0,1) dot product (8 lanes where applicable)\n{}\n\
         worked example {{114, 15, 124}}: bit-serial {} cycles (paper 4+4+5=13), encoded {} (paper 3+2+2=7)\n",
        t.render(),
        serial,
        encoded
    )
}

/// Accumulator-width sweep: how the accumulation bottleneck (QI) grows
/// with width for the MAC, and how OPT1's compressor path stays flat —
/// the quantitative version of §II-A.
pub fn sweep_width() -> String {
    let mut t = Table::new([
        "acc width",
        "MAC delay(ns)",
        "MAC fmax(GHz)",
        "OPT1 tree delay(ns)",
        "OPT1 fmax(GHz)",
        "reduction area share %",
    ]);
    for width in [16u32, 20, 24, 28, 32, 40, 48] {
        let mac = Component::MacUnit { acc_width: width }.cost();
        let acc = Component::Accumulator { width }.cost();
        let fa = Component::CarryPropagateAdder { width }.cost();
        let tree = Component::CompressorTree { inputs: 4, width }.cost();
        // OPT1's critical path: multiplier front + accumulate tree.
        let front = Component::MultiplierFront { acc_width: 32 }.cost();
        let opt1_delay = front.delay_ns + tree.delay_ns;
        t.row([
            width.to_string(),
            num(mac.delay_ns, 2),
            num(timing::max_frequency_ghz(mac.delay_ns), 2),
            num(opt1_delay, 2),
            num(timing::max_frequency_ghz(opt1_delay), 2),
            num((acc.area_um2 + fa.area_um2) / mac.area_um2 * 100.0, 1),
        ]);
    }
    // OPT1-style width invariance also holds for the synthesized design.
    let opt1 = |w: u32| {
        PeDesign::builder(format!("opt1-{w}"))
            .comp(Component::MultiplierFront { acc_width: 32 }, 1)
            .comp(
                Component::CompressorTree {
                    inputs: 4,
                    width: w,
                },
                1,
            )
            .state(2 * w + 16)
            .nominal_delay(
                Component::MultiplierFront { acc_width: 32 }.cost().delay_ns
                    + Component::CompressorTree {
                        inputs: 4,
                        width: w,
                    }
                    .cost()
                    .delay_ns,
            )
            .build()
    };
    let a16 = opt1(16).synthesize(1.5).map(|r| r.area_um2).unwrap_or(0.0);
    let a48 = opt1(48).synthesize(1.5).map(|r| r.area_um2).unwrap_or(0.0);
    format!(
        "Accumulator-width sweep — the QI bottleneck (§II-A): MAC delay grows with\n\
         accumulator width; the compressor path does not.\n{}\n\
         OPT1 area at 1.5 GHz scales only with register width: {:.0} µm² (16b) → {:.0} µm² (48b)\n",
        t.render(),
        a16,
        a48
    )
}

/// Precision sweep: digit statistics and serial cost from INT4 to INT16.
pub fn sweep_precision() -> String {
    use tpe_arith::encode::EncodingKind;
    use tpe_core::analytic::precision;
    let mut t = Table::new([
        "width",
        "EN-T avg (exhaustive)",
        "MBE avg",
        "EN-T avg (normal data)",
        "serial cost vs INT8",
    ]);
    for w in [4u32, 6, 8, 10, 12, 16] {
        let (ent, mbe) = if w <= 12 {
            (
                num(precision::exhaustive_average(EncodingKind::EnT, w), 3),
                num(precision::exhaustive_average(EncodingKind::Mbe, w), 3),
            )
        } else {
            ("-".into(), "-".into())
        };
        t.row([
            w.to_string(),
            ent,
            mbe,
            num(precision::sampled_average(EncodingKind::EnT, w, 9), 2),
            format!(
                "×{:.2}",
                precision::relative_serial_cost(EncodingKind::EnT, w, 9)
            ),
        ]);
    }
    format!(
        "Precision sweep — digit statistics beyond INT8\n{}\n\
         serial cycles grow linearly in width (digit slots = ⌈w/2⌉ at ~constant digit\n\
         sparsity) while a parallel multiplier grows quadratically — why bit-slice\n\
         designs favor low precision.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_all_schemes_exact() {
        let s = super::fig2_schemes();
        assert!(!s.contains("false"), "a scheme diverged:\n{s}");
        assert!(s.contains("bit-serial 13 cycles") || s.contains("13 cycles"));
    }

    #[test]
    fn precision_sweep_renders() {
        let s = super::sweep_precision();
        assert!(s.contains("16"));
        assert!(s.contains("×2.") || s.contains("×1.9"), "{s}");
    }

    #[test]
    fn width_sweep_shows_flat_compressor() {
        let s = super::sweep_width();
        assert!(s.contains("48"));
        assert!(s.contains("reduction area share"));
    }
}
