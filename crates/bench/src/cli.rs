//! The `repro` command table: one declarative list of every subcommand,
//! from which help text and dispatch are both generated — so the usage
//! text can never drift from what the binary actually accepts again.

use crate::experiments as exp;

/// How a dispatch attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliOutcome {
    /// Print to stdout, exit 0.
    Ok(String),
    /// Print to stderr, exit 2 (bad flags, unknown command, runtime error).
    Err(String),
}

/// One `repro` subcommand.
pub struct Command {
    /// Subcommand name as typed.
    pub name: &'static str,
    /// Argument synopsis ("" when the command takes none).
    pub args: &'static str,
    /// One-line description for the generated help.
    pub about: &'static str,
    run: fn(&[String]) -> CliOutcome,
}

/// Wraps an argument-parsing experiment whose error convention is an
/// `error:`-prefixed report.
fn fallible(out: String) -> CliOutcome {
    if out.starts_with("error:") {
        CliOutcome::Err(out)
    } else {
        CliOutcome::Ok(out)
    }
}

macro_rules! cmd {
    ($name:literal, $args:literal, $about:literal, $run:expr) => {
        Command {
            name: $name,
            args: $args,
            about: $about,
            run: $run,
        }
    };
}

/// The command table, in help order (paper order, then the service
/// commands, then the aggregates).
pub fn commands() -> Vec<Command> {
    vec![
        cmd!("table1", "", "Table I: INT8 MAC component decomposition", |_| {
            CliOutcome::Ok(exp::table1())
        }),
        cmd!("table2", "", "Table II: NumPPs histograms over INT8", |_| {
            CliOutcome::Ok(exp::table2())
        }),
        cmd!("table3", "", "Table III: average NumPPs on N(0,sigma) matrices", |_| {
            CliOutcome::Ok(exp::table3())
        }),
        cmd!("table5", "", "Table V: 4-2 compressor tree vs width", |_| {
            CliOutcome::Ok(exp::table5())
        }),
        cmd!("table7", "", "Table VII: array-level comparison (engine roster)", |_| {
            CliOutcome::Ok(exp::table7())
        }),
        cmd!("fig3", "", "Figure 3: worked encoding examples", |_| {
            CliOutcome::Ok(exp::fig3())
        }),
        cmd!("fig2-schemes", "", "Figure 2: PE scheme cost walk-through", |_| {
            CliOutcome::Ok(exp::fig2_schemes())
        }),
        cmd!("sweep-width", "", "Accumulator-width sweep across PE schemes", |_| {
            CliOutcome::Ok(exp::sweep_width())
        }),
        cmd!("sweep-precision", "", "Operand-precision sweep across PE schemes", |_| {
            CliOutcome::Ok(exp::sweep_precision())
        }),
        cmd!("fig9", "", "Figure 9: PE sweeps under clock constraints", |_| {
            CliOutcome::Ok(exp::fig9())
        }),
        cmd!(
            "fig11",
            "[gpt2|mobilenetv3]",
            "Figure 11: sublayer delay & utilization",
            |a| {
                let net = a.first().map(String::as_str).unwrap_or("gpt2");
                if !matches!(net, "gpt2" | "mobilenetv3") {
                    return CliOutcome::Err(format!(
                        "error: unknown net `{net}`\nusage: repro fig11 [gpt2|mobilenetv3]\n"
                    ));
                }
                CliOutcome::Ok(exp::fig11(net))
            }
        ),
        cmd!("fig12", "", "Figure 12: normalized delay across networks", |_| {
            CliOutcome::Ok(exp::fig12())
        }),
        cmd!("fig13", "", "Figure 13: speedup & energy ratio across networks", |_| {
            CliOutcome::Ok(exp::fig13())
        }),
        cmd!("fig14", "", "Figure 14: per-PE throughput & energy cases", |_| {
            CliOutcome::Ok(exp::fig14())
        }),
        cmd!("sync-model", "", "Eqs. 7-8: synchronization-time model", |_| {
            CliOutcome::Ok(exp::sync_model())
        }),
        cmd!("notation", "", "Loop-nest notation demo (Section III)", |_| {
            CliOutcome::Ok(exp::notation())
        }),
        cmd!("ablate-encoders", "", "Ablation: encoder choice", |_| {
            CliOutcome::Ok(exp::ablate_encoders())
        }),
        cmd!("ablate-sync", "", "Ablation: sync granularity", |_| {
            CliOutcome::Ok(exp::ablate_sync())
        }),
        cmd!("ablate-group", "", "Ablation: OPT4E group size", |_| {
            CliOutcome::Ok(exp::ablate_group())
        }),
        cmd!("ablate-operand-selection", "", "Ablation: zero-skip operand selection", |_| {
            CliOutcome::Ok(exp::ablate_operand_selection())
        }),
        cmd!(
            "dse",
            "[--filter S[,precision=W4]] [--objectives a,b,..] [--model S|all] [--precision W4,W8,..] [--cycle-model sampled|analytic] [--threads N] [--seed S] [--out F.csv] [--json F.json] [--cache-load F.bin] [--cache-save F.bin]",
            "Design-space sweep + Pareto front (tpe-dse)",
            |a| fallible(exp::dse(a))
        ),
        cmd!(
            "models",
            "[--model S] [--arch S] [--precision W4|W8|W16|W8xW4] [--cycle-model sampled|analytic] [--threads N] [--seed S] [--out F.csv] [--json F.json] [--cache-load F.bin] [--cache-save F.bin]",
            "Model-level grid: every network x the engine roster",
            |a| fallible(exp::models(a))
        ),
        cmd!(
            "serve",
            "[--port N] [--threads N] [--max-line-bytes N] [--cycle-model sampled|analytic] [--cache-snapshot F.bin] [--snapshot-every N]",
            "TCP/NDJSON batch query server (worker pool, sweep/pareto/fleet ops, global cache)",
            |a| fallible(exp::serve(a))
        ),
        cmd!(
            "query",
            "[--host H] --port N [--file F] [--precision P] [--shards H:P,H:P,..]",
            "Client: send NDJSON requests (file or stdin) to a serve instance or shard fleet",
            |a| fallible(exp::query(a))
        ),
        cmd!(
            "metrics",
            "[--host H] --port N [--format json|prometheus]",
            "Client: fetch an observability snapshot from a serve instance",
            |a| fallible(exp::metrics(a))
        ),
        cmd!(
            "serve-smoke",
            "[--queries N] [--threads N] [--out F.json] [--min-qps N]",
            "Self-driving load smoke: mixed batch incl. sweep/pareto, client+server latency views",
            |a| fallible(exp::serve_smoke(a))
        ),
        cmd!(
            "snapshot-smoke",
            "[--filter S] [--snapshot F.bin] [--min-speedup X] [--out F.json]",
            "Warm-start smoke: snapshot round trip, >=10x warm sweep, server restart replay",
            |a| fallible(exp::snapshot_smoke(a))
        ),
        cmd!(
            "profile",
            "[--quick] [--seed S] [--cycle-model sampled|analytic] [--out F.json]",
            "Cold/warm per-stage evaluation profile from the tpe-obs histograms",
            |a| fallible(exp::profile(a))
        ),
        cmd!("all", "", "Every experiment in paper order", |_| {
            CliOutcome::Ok(exp::all())
        }),
    ]
}

/// The generated help text — the only usage text there is.
pub fn help() -> String {
    let table = commands();
    let width = table.iter().map(|c| c.name.len()).max().unwrap_or(0);
    let mut out = String::from(
        "repro — regenerate the paper's tables and figures, explore the design space,\n\
         and serve the canonical evaluation stack\n\nusage: repro <command> [args]\n\ncommands:\n",
    );
    for c in &table {
        out.push_str(&format!("  {:<width$}  {}\n", c.name, c.about));
        if !c.args.is_empty() {
            out.push_str(&format!("  {:<width$}  {}\n", "", c.args));
        }
    }
    out.push_str("\nrun `repro help` to print this list; unknown commands exit 2\n");
    out
}

/// Dispatches a full argv tail (`args[0]` is the command).
pub fn dispatch(args: &[String]) -> CliOutcome {
    let Some(cmd) = args.first() else {
        return CliOutcome::Err(help());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => CliOutcome::Ok(help()),
        name => match commands().iter().find(|c| c.name == name) {
            Some(c) => (c.run)(&args[1..]),
            None => CliOutcome::Err(format!("error: unknown command `{name}`\n\n{}", help())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The help text is generated from the table, so every command —
    /// including the four the old hand-written usage string omitted —
    /// appears in it.
    #[test]
    fn help_lists_every_command() {
        let help = help();
        for c in commands() {
            assert!(help.contains(c.name), "help omits `{}`", c.name);
        }
        // The historical drift victims, by name.
        for drifted in [
            "fig2-schemes",
            "sweep-width",
            "sweep-precision",
            "ablate-operand-selection",
        ] {
            assert!(help.contains(drifted), "help omits `{drifted}`");
        }
        assert!(help.contains("usage: repro <command>"));
    }

    #[test]
    fn command_names_are_unique_and_all_is_last() {
        let table = commands();
        let mut names: Vec<&str> = table.iter().map(|c| c.name).collect();
        assert_eq!(table.last().unwrap().name, "all");
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate command names");
    }

    #[test]
    fn unknown_commands_error_and_help_succeeds() {
        let unknown = dispatch(&["no-such-experiment".to_string()]);
        match unknown {
            CliOutcome::Err(msg) => {
                assert!(msg.contains("unknown command"), "{msg}");
                assert!(msg.contains("usage: repro"), "{msg}");
            }
            CliOutcome::Ok(_) => panic!("unknown command must not succeed"),
        }
        assert!(
            matches!(dispatch(&[]), CliOutcome::Err(_)),
            "bare repro errors"
        );
        for h in ["help", "--help", "-h"] {
            assert!(
                matches!(dispatch(&[h.to_string()]), CliOutcome::Ok(_)),
                "`{h}` must exit 0"
            );
        }
    }

    #[test]
    fn dispatch_runs_a_real_experiment() {
        match dispatch(&["table5".to_string()]) {
            CliOutcome::Ok(out) => assert!(out.contains("compressor"), "{out}"),
            CliOutcome::Err(e) => panic!("table5 failed: {e}"),
        }
        // Flag errors surface as exit-2 outcomes through the table too.
        assert!(matches!(
            dispatch(&["dse".to_string(), "--bogus".to_string()]),
            CliOutcome::Err(_)
        ));
    }
}
