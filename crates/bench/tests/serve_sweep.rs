//! Golden test for the serve layer's `sweep`/`pareto` batch ops: the
//! per-point lines a `sweep` op answers carry the **exact CSV rows**
//! `repro dse` writes for the same slice (same filter, same seed, same
//! objectives) — so the dse CSV pipeline is queryable over the wire with
//! no loss of fidelity, batched through the pooled server included.

use std::net::TcpListener;

use tpe_dse::emit::{to_csv, CSV_HEADER};
use tpe_dse::{pareto_front_per_workload, sweep_with_cache, DseOps, Objective, SweepConfig};
use tpe_engine::serve::{handle_request, query_batch, serve_with, ServeConfig};
use tpe_engine::EngineCache;

/// A three-precision slice of the default space: one serial engine × 7
/// workloads (6 layers + ResNet-18 end-to-end) × W8/W4/W16.
const FILTER: &str = "OPT4E[EN-T]/28nm@2.00GHz";
const SEED: u64 = 42;

/// Extracts a JSON string field's raw value from a response line,
/// undoing the protocol's `\"`/`\\` escaping.
fn string_field(line: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = line
        .find(&marker)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + marker.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return out,
            '\\' => out.push(chars.next().expect("dangling escape")),
            c => out.push(c),
        }
    }
    panic!("unterminated {key} field in {line}");
}

/// The `repro dse` reference CSV for the slice: filtered enumeration,
/// 1-thread sweep, per-workload front over the default objectives.
fn reference_csv() -> String {
    let points = tpe_dse::slice_space(None)
        .unwrap()
        .enumerate_filtered(FILTER);
    assert_eq!(points.len(), 21, "slice shape changed");
    let outcome = sweep_with_cache(
        &points,
        SweepConfig {
            threads: 1,
            seed: SEED,
            ..SweepConfig::default()
        },
        &EngineCache::new(),
    );
    let front = pareto_front_per_workload(&outcome.results, &Objective::DEFAULT);
    to_csv(&outcome.results, &front)
}

/// Reassembles a full CSV document from a sweep op's response lines.
fn csv_from_sweep_lines(lines: &[String]) -> String {
    let header = string_field(&lines[0], "csv_header");
    assert_eq!(header, CSV_HEADER, "served schema drifted");
    let mut csv = header;
    csv.push('\n');
    for line in &lines[1..] {
        csv.push_str(&string_field(line, "csv"));
        csv.push('\n');
    }
    csv
}

#[test]
fn sweep_op_point_rows_are_byte_identical_to_repro_dse() {
    let cache = EngineCache::new();
    let req = format!(r#"{{"id":1,"op":"sweep","filter":"{FILTER}","seed":{SEED},"points":true}}"#);
    let (lines, down) = handle_request(&req, &cache, &DseOps);
    assert!(!down);
    assert_eq!(lines.len(), 22, "summary + 21 point lines: {}", lines.len());
    assert!(lines[0].contains("\"points_follow\":21"), "{}", lines[0]);

    let reference = reference_csv();
    assert_eq!(
        csv_from_sweep_lines(&lines),
        reference,
        "served sweep rows drifted from the repro dse CSV"
    );
}

#[test]
fn pareto_op_front_rows_are_the_reference_front() {
    let cache = EngineCache::new();
    let req = format!(r#"{{"id":2,"op":"pareto","filter":"{FILTER}","seed":{SEED}}}"#);
    let (lines, _) = handle_request(&req, &cache, &DseOps);

    let reference = reference_csv();
    let front_rows: Vec<&str> = reference
        .lines()
        .skip(1)
        .filter(|row| {
            // The `pareto` column sits right before the 9 metric cells
            // and the 4-cell memory group.
            let cells: Vec<&str> = row.split(',').collect();
            cells[cells.len() - 14] == "1"
        })
        .collect();
    assert_eq!(
        lines.len(),
        1 + front_rows.len(),
        "summary + one line per front point: {lines:?}"
    );
    for (line, row) in lines[1..].iter().zip(&front_rows) {
        assert_eq!(&string_field(line, "csv"), row, "front row drifted");
        assert!(line.contains("\"pareto\":true"), "{line}");
    }
}

/// The same sweep through a real pooled server: `query_batch` reads the
/// announced per-point lines, responses stay contiguous and in request
/// order, and the bytes equal the in-process answer.
#[test]
fn sweep_op_round_trips_through_a_pooled_server() {
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let config = ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve_with(listener, cache, &DseOps, config));

    let sweep_req =
        format!(r#"{{"id":1,"op":"sweep","filter":"{FILTER}","seed":{SEED},"points":true}}"#);
    let tail_req = r#"{"id":2,"op":"engine","engine":"OPT4E[EN-T]"}"#.to_string();
    let replies = query_batch(&addr, &[sweep_req.clone(), tail_req]).expect("batch");
    assert_eq!(replies.len(), 1 + 21 + 1, "{}", replies.len());

    let (local, _) = handle_request(&sweep_req, &EngineCache::new(), &DseOps);
    assert_eq!(&replies[..22], &local[..], "socket bytes diverged");
    assert!(
        replies[22].starts_with("{\"id\":2,\"ok\":true,\"op\":\"engine\""),
        "the next request's reply follows the sweep block: {}",
        replies[22]
    );

    query_batch(&addr, &[r#"{"id":0,"op":"shutdown"}"#.to_string()]).expect("shutdown");
    server.join().unwrap().expect("serve loop");
}
