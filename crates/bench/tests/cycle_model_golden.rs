//! Golden discipline for the dual cycle models.
//!
//! The sampled mode stays the default, and its snapshots are pinned
//! byte-identical by `golden.rs` (which never mentions cycle models —
//! exactly the point). This file adds the analytic side of the contract:
//!
//! * a pinned analytic-mode golden (`dse_default_analytic.csv`, the W8
//!   slice of the default space under `--cycle-model analytic`), and
//! * a projection test documenting **exactly** which CSV columns may
//!   differ between the two modes and which must not.
//!
//! Column contract (per `tpe_dse::emit::CSV_HEADER`):
//!
//! * **must not differ** — every identity column (label … repeats),
//!   `feasible`, and the synthesis-derived `area_um2`, `peak_tops`,
//!   `precision`: the cycle model only changes how serial sync rounds
//!   are priced, never what the silicon is.
//! * **may differ, serial rows only** — the cycle/latency-derived
//!   `delay_us`, `energy_uj`, `fj_per_mac`, `gops`, `utilization`,
//!   `power_w`: the sampler's Monte-Carlo estimate vs the closed-form
//!   expectation of the same distribution.
//! * **may differ on any row** — `pareto`: front membership is computed
//!   from the delay/energy objectives, so a serial point moving by a
//!   sampling error can promote or demote its dense neighbours.
//!
//! Dense engines never enter the serial cycle model, so a dense row must
//! be identical between modes in every column except `pareto`.
//!
//! Regenerate the analytic golden after a conscious model change with:
//! `REGEN_GOLDEN=1 cargo test -p tpe-bench --test cycle_model_golden`.

use tpe_dse::emit::to_csv;
use tpe_dse::{
    pareto_front_per_workload, sweep, CycleModel, DesignPoint, DesignSpace, Objective, Precision,
    SweepConfig,
};

/// The W8 slice of the default space: 672 of the 2016 points — enough to
/// cover every engine style × topology × workload while keeping the
/// double (sampled + analytic) sweep affordable in debug test runs.
fn w8_points() -> Vec<DesignPoint> {
    let points: Vec<DesignPoint> = DesignSpace::paper_default()
        .enumerate()
        .into_iter()
        .filter(|p| p.engine.precision == Precision::W8)
        .collect();
    assert_eq!(points.len(), 672, "default-space W8 slice size changed");
    points
}

fn sweep_csv(points: &[DesignPoint], cycle_model: CycleModel) -> String {
    let outcome = sweep(
        points,
        SweepConfig {
            threads: 1,
            seed: 42,
            cycle_model,
        },
    );
    let front = pareto_front_per_workload(&outcome.results, &Objective::DEFAULT);
    to_csv(&outcome.results, &front)
}

/// The analytic-mode golden: the W8 default-space sweep under
/// `--cycle-model analytic` is pinned byte-identical (the closed form is
/// seed-independent, so this snapshot has no Monte-Carlo caveats at all).
#[test]
fn analytic_dse_w8_slice_matches_pinned_golden() {
    let csv = sweep_csv(&w8_points(), CycleModel::Analytic);
    let path = format!(
        "{}/tests/golden/dse_default_analytic.csv",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::write(&path, &csv).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    for (i, (a, e)) in csv.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "analytic golden: line {} drifted", i + 1);
    }
    assert_eq!(csv, expected, "analytic golden: byte-level drift");
}

/// Column indices in `CSV_HEADER` order.
const FEASIBLE: usize = 14;
const PARETO: usize = 15;
const AREA_UM2: usize = 16;
const PEAK_TOPS: usize = 21;
const PRECISION: usize = 24;
const MEMORY: usize = 25;
const BYTES_MOVED: usize = 26;
const INTENSITY: usize = 27;
const BOUND: usize = 28;
const TOPOLOGY: usize = 2;

/// The projection test: sweeps the same W8 slice under both modes and
/// enforces the column contract from the module docs, row by row.
#[test]
fn cross_mode_projection_pins_which_columns_may_differ() {
    let points = w8_points();
    let sampled = sweep_csv(&points, CycleModel::Sampled);
    let analytic = sweep_csv(&points, CycleModel::Analytic);
    assert_eq!(sampled.lines().count(), analytic.lines().count());

    let mut serial_cycle_columns_moved = false;
    for (i, (s_line, a_line)) in sampled.lines().zip(analytic.lines()).enumerate().skip(1) {
        // Default-space rows carry no quoted fields; a quote would break
        // the positional split below, so fail loudly instead of silently.
        assert!(
            !s_line.contains('"') && !a_line.contains('"'),
            "row {i} has quoted fields; projection split needs updating"
        );
        let s: Vec<&str> = s_line.split(',').collect();
        let a: Vec<&str> = a_line.split(',').collect();
        assert_eq!(s.len(), a.len(), "row {i}: column count diverged");

        // Identity + feasibility prefix: must never differ.
        for c in 0..=FEASIBLE {
            assert_eq!(s[c], a[c], "row {i}: identity column {c} diverged");
        }
        // Synthesis-derived columns: must never differ. Neither may the
        // memory-hierarchy group: traffic is pure tiling geometry (no
        // cycles involved), and the `Unbounded` default binds nothing.
        for c in [
            AREA_UM2,
            PEAK_TOPS,
            PRECISION,
            MEMORY,
            BYTES_MOVED,
            INTENSITY,
            BOUND,
        ] {
            assert_eq!(s[c], a[c], "row {i}: synthesis column {c} diverged");
        }
        // Dense rows never touch the serial cycle model: everything but
        // the (front-relative) pareto marker must be identical.
        if s[TOPOLOGY] != "Serial" {
            for (c, (sv, av)) in s.iter().zip(&a).enumerate() {
                if c != PARETO {
                    assert_eq!(sv, av, "row {i}: dense column {c} diverged");
                }
            }
        } else if s[FEASIBLE] == "1" {
            serial_cycle_columns_moved |= s[AREA_UM2 + 1..PRECISION]
                .iter()
                .zip(&a[AREA_UM2 + 1..PRECISION])
                .any(|(sv, av)| sv != av);
        }
    }
    // The partition has teeth only if the allowed columns actually move:
    // a Monte-Carlo estimate agreeing bit-for-bit with the closed form
    // across every serial row would mean one path is calling the other.
    assert!(
        serial_cycle_columns_moved,
        "no serial cycle-derived column differs — modes are not independent"
    );
}
