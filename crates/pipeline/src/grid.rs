//! The deterministic parallel (model × engine) grid executor.
//!
//! Same discipline as `tpe-dse`'s sweep: cells are claimed from an atomic
//! cursor by scoped worker threads, every cell's RNG is seeded from the
//! grid seed and the cell's own `(engine, model)` label, and results merge
//! back into input order — so the output is **byte-identical across runs
//! and thread counts** (pinned by the determinism tests and asserted on
//! every `repro models` run). Cells evaluate through
//! [`tpe_engine::Evaluator`] against the process-wide cache, so engines
//! are priced once per process and repeated (engine, model, seed) cells —
//! across grid runs, dse sweeps and serve queries — are served from
//! memory: one whole-model record lookup per warm cell
//! ([`tpe_engine::ModelKey`]), not an O(layers) rewalk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tpe_engine::caps::{SampleProfile, SerialSampleCaps};
use tpe_engine::{EngineSpec, Evaluator, ModelReport};
use tpe_workloads::NetworkModel;

/// Grid parameters.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Global seed mixed into every cell's layer sampling.
    pub seed: u64,
    /// Serial-layer sampling caps.
    pub caps: SerialSampleCaps,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            seed: 42,
            caps: SampleProfile::Model.caps(),
        }
    }
}

impl GridConfig {
    /// A config for debug-profile tests: explicit threads/seed, very tight
    /// sampling caps so whole-model cells stay fast unoptimized.
    pub fn quick_test(threads: usize, seed: u64) -> Self {
        Self {
            threads,
            seed,
            caps: SampleProfile::Quick.caps(),
        }
    }

    /// The effective worker count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// One (model × engine) cell's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRun {
    /// Network name.
    pub model: String,
    /// The engine the model was scheduled onto.
    pub engine: EngineSpec,
    /// The end-to-end report, or `None` when the engine fails timing.
    pub report: Option<ModelReport>,
}

impl ModelRun {
    /// Whether the engine closed timing.
    pub fn feasible(&self) -> bool {
        self.report.is_some()
    }
}

/// Everything a grid run produces.
#[derive(Debug)]
pub struct GridOutcome {
    /// One run per (model, engine) cell, model-major, in input order.
    pub runs: Vec<ModelRun>,
    /// Wall-clock spent evaluating.
    pub elapsed: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl GridOutcome {
    /// Number of cells whose engine closed timing.
    pub fn feasible_count(&self) -> usize {
        self.runs.iter().filter(|r| r.feasible()).count()
    }
}

/// Evaluates every model on every engine (model-major cell order).
pub fn run_grid(
    models: &[NetworkModel],
    engines: &[EngineSpec],
    config: GridConfig,
) -> GridOutcome {
    let start = Instant::now();
    // The evaluator is authoritative about the cycle model: it stamps its
    // own mode onto the caps it evaluates with, so the grid must hand the
    // config's choice over instead of relying on the caps field alone.
    let evaluator = Evaluator::global().with_cycle_model(config.caps.model);
    let cells: Vec<(usize, usize)> = (0..models.len())
        .flat_map(|mi| (0..engines.len()).map(move |ei| (mi, ei)))
        .collect();
    let threads = config.effective_threads().min(cells.len()).max(1);

    let eval_cell = |&(mi, ei): &(usize, usize)| -> ModelRun {
        let (model, engine) = (&models[mi], &engines[ei]);
        ModelRun {
            model: model.name.clone(),
            engine: engine.clone(),
            report: evaluator.model_report(engine, model, config.seed, config.caps),
        }
    };

    let mut runs: Vec<Option<ModelRun>> = vec![None; cells.len()];
    if threads == 1 {
        for (slot, cell) in runs.iter_mut().zip(&cells) {
            *slot = Some(eval_cell(cell));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, ModelRun)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= cells.len() {
                                break;
                            }
                            local.push((i, eval_cell(&cells[i])));
                        }
                        local
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("grid worker panicked"))
                .collect()
        });
        for (i, run) in collected.drain(..).flatten() {
            runs[i] = Some(run);
        }
    }

    GridOutcome {
        runs: runs
            .into_iter()
            .map(|r| r.expect("every cell evaluated exactly once"))
            .collect(),
        elapsed: start.elapsed(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpe_arith::encode::EncodingKind;
    use tpe_core::arch::PeStyle;
    use tpe_sim::array::ClassicArch;
    use tpe_workloads::models;

    fn small_grid() -> (Vec<NetworkModel>, Vec<EngineSpec>) {
        (
            vec![models::resnet18()],
            vec![
                EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
                EngineSpec::dense(PeStyle::Opt1, ClassicArch::Trapezoid, 1.5),
                EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
            ],
        )
    }

    #[test]
    fn grid_covers_all_cells_in_model_major_order() {
        let (ms, es) = small_grid();
        let outcome = run_grid(&ms, &es, GridConfig::quick_test(2, 5));
        assert_eq!(outcome.runs.len(), ms.len() * es.len());
        for (i, run) in outcome.runs.iter().enumerate() {
            assert_eq!(run.model, ms[i / es.len()].name);
            assert_eq!(run.engine.label(), es[i % es.len()].label());
            let r = run.report.as_ref().expect("paper clocks are feasible");
            assert_eq!(r.layer_count(), ms[i / es.len()].layers.len());
            assert!(r.delay_us > 0.0 && r.energy_uj > 0.0);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (ms, es) = small_grid();
        let serial = run_grid(&ms, &es, GridConfig::quick_test(1, 3));
        let parallel = run_grid(&ms, &es, GridConfig::quick_test(4, 3));
        assert_eq!(serial.runs, parallel.runs);
    }

    #[test]
    fn infeasible_engines_yield_empty_reports() {
        let engines = vec![EngineSpec::dense(
            PeStyle::TraditionalMac,
            ClassicArch::Tpu,
            2.0, // beyond the MAC's 1.5 GHz wall
        )];
        let outcome = run_grid(
            &[models::resnet18()],
            &engines,
            GridConfig::quick_test(1, 1),
        );
        assert_eq!(outcome.feasible_count(), 0);
        assert!(!outcome.runs[0].feasible());
    }

    /// The memory-hierarchy acceptance bar: pinning the paper roster to a
    /// finite memory corner flips at least one (engine × model) cell to a
    /// non-compute bound, and every flipped cell's end-to-end delay
    /// strictly exceeds its compute-only (unbounded) delay. The unbounded
    /// grid itself stays all-compute — the default numbers carry no
    /// roofline tax.
    #[test]
    fn finite_memory_corner_flips_grid_cells_off_the_compute_bound() {
        use tpe_engine::Bound;
        let models = vec![models::resnet18()];
        let free_engines = EngineSpec::paper_roster();
        let edge_engines: Vec<EngineSpec> = free_engines
            .iter()
            .map(|e| e.clone().with_memory(tpe_engine::MemorySpec::edge()))
            .collect();
        let config = GridConfig::quick_test(2, 42);
        let free = run_grid(&models, &free_engines, config);
        let edge = run_grid(&models, &edge_engines, config);

        assert!(free
            .runs
            .iter()
            .filter_map(|r| r.report.as_ref())
            .all(|r| r.bound == Bound::Compute));

        let mut flipped = 0usize;
        for (f, e) in free.runs.iter().zip(&edge.runs) {
            assert_eq!(f.feasible(), e.feasible(), "memory never affects timing");
            let (Some(fr), Some(er)) = (&f.report, &e.report) else {
                continue;
            };
            assert_eq!(fr.bytes_moved, er.bytes_moved, "traffic is corner-free");
            if er.bound != Bound::Compute {
                flipped += 1;
                assert!(
                    er.delay_us > fr.delay_us,
                    "{}: memory-bound delay {} must exceed compute-only {}",
                    e.engine.label(),
                    er.delay_us,
                    fr.delay_us
                );
            }
        }
        assert!(flipped > 0, "no roster cell hit a memory wall at `edge`");
    }

    /// Repeated identical grids are served from the global cache: the
    /// second run is byte-identical and every feasible cell answers from
    /// the whole-model map — one record hit per cell, no per-layer
    /// rewalk. (Sibling tests share the process-global counters and may
    /// add their own misses concurrently, so no zero-miss assertion —
    /// the isolated-cache equivalent is pinned in `tpe-engine`'s suite.)
    #[test]
    fn repeated_grids_hit_the_global_cache() {
        let (ms, es) = small_grid();
        let config = GridConfig::quick_test(1, 77);
        let first = run_grid(&ms, &es, config);
        let before = tpe_engine::EngineCache::global().stats();
        let second = run_grid(&ms, &es, config);
        let delta = tpe_engine::EngineCache::global().stats().since(&before);
        assert_eq!(first.runs, second.runs);
        assert!(delta.hits() > 0, "warm rerun must hit: {delta:?}");
        assert!(
            delta.model_hits >= second.feasible_count() as u64,
            "each feasible cell must be a model-map hit: {delta:?}"
        );
    }
}
