#![warn(missing_docs)]

//! # tpe-pipeline
//!
//! Model-level scheduling pipeline: whole-DNN evaluation on bit-weight TPE
//! arrays.
//!
//! The paper's end-to-end results (Figures 11–13) score architectures on
//! *complete networks*, not isolated layers: per-layer utilization dips
//! (depthwise K = 9/25 in Figure 11(B)), tiling residue on skinny GEMV
//! tails, and the delay mix across dozens of layers are what separate the
//! designs in practice. This crate turns the workspace's point evaluators
//! into that model-serving pipeline:
//!
//! ```text
//! workloads::models ──► img2col-lowered GEMM layers (tpe-workloads)
//!        │
//!        ▼  per layer
//! [`schedule`] ── tiling onto the engine's array geometry
//!        │        · dense: systolic / OS-systolic / adder-tree / cube
//!        │          closed-form cycle models (tpe-sim, Table VII)
//!        │        · serial: the shared encoder-parameterized
//!        │          [`sample_serial_cycles`] sync model (Eq. 7)
//!        ▼
//! [`report`] ── per-layer cycles / utilization / energy, aggregated to
//!        │       end-to-end [`ModelReport`]s (latency, GOPS, TOPS/W,
//!        │       delay-weighted utilization)
//!        ▼
//! [`grid`] ── deterministic parallel (model × engine) sweep; results are
//!              byte-identical across thread counts, like `tpe-dse`.
//! ```
//!
//! Engine pricing ([`engine`]) composes the same `tpe-core`/`tpe-cost`
//! synthesis path as `tpe-dse`, with the shared
//! [`tpe_cost::power::PE_BUSY`]/[`tpe_cost::power::PE_IDLE`] activity
//! points, so layer-level sweeps and model-level reports account energy
//! identically. `repro models` renders the grid; `repro dse --model NAME`
//! puts whole-model workloads on the Pareto front.
//!
//! [`sample_serial_cycles`]: tpe_core::arch::workload::sample_serial_cycles
//!
//! ## Quickstart
//!
//! ```
//! use tpe_pipeline::{run_grid, EngineSpec, GridConfig};
//! use tpe_workloads::models;
//!
//! let models = vec![models::resnet18()];
//! let engines = EngineSpec::paper_roster();
//! let outcome = run_grid(&models, &engines, GridConfig::quick_test(2, 42));
//! assert_eq!(outcome.runs.len(), engines.len());
//! let best = outcome
//!     .runs
//!     .iter()
//!     .filter_map(|r| r.report.as_ref())
//!     .min_by(|a, b| a.delay_us.total_cmp(&b.delay_us))
//!     .unwrap();
//! assert!(best.delay_us > 0.0);
//! ```

pub mod engine;
pub mod grid;
pub mod report;
pub mod schedule;

pub use engine::{EnginePrice, EngineSpec};
pub use grid::{run_grid, GridConfig, GridOutcome, ModelRun};
pub use report::{LayerReport, ModelReport};
pub use schedule::{dense_model_cycles, evaluate_model, serial_model_cycles, MODEL_SAMPLE_CAPS};

/// FNV-1a over a label: the stable seed component used everywhere the
/// workspace derives per-work-item RNG streams. Independent of sweep order
/// and thread assignment, which is what makes parallel runs byte-identical
/// to serial ones (`tpe-dse` re-exports this as `label_hash`).
pub fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_label_sensitive() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("ResNet18/OPT4E"), fnv1a("ResNet18/OPT4E"));
        assert_ne!(fnv1a("ResNet18/OPT4E"), fnv1a("ResNet18/OPT3"));
    }
}
