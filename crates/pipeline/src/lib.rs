#![warn(missing_docs)]

//! # tpe-pipeline
//!
//! Model-level scheduling pipeline: whole-DNN evaluation on bit-weight TPE
//! arrays.
//!
//! The paper's end-to-end results (Figures 11–13) score architectures on
//! *complete networks*, not isolated layers: per-layer utilization dips
//! (depthwise K = 9/25 in Figure 11(B)), tiling residue on skinny GEMV
//! tails, and the delay mix across dozens of layers are what separate the
//! designs in practice. This crate owns the **grid executor** — the
//! deterministic parallel (model × engine) sweep behind `repro models` —
//! while the evaluation stack it drives (engine specs, pricing, layer
//! scheduling, reports) lives in [`tpe_engine`], the canonical
//! implementation shared with `tpe-dse` and `repro serve`:
//!
//! ```text
//! workloads::models ──► img2col-lowered GEMM layers (tpe-workloads)
//!        │
//!        ▼  per (model × engine) cell
//! tpe_engine::Evaluator ── pricing (global cache) + per-layer scheduling
//!        │                 → end-to-end ModelReport
//!        ▼
//! [`grid`] ── deterministic parallel executor; results are
//!              byte-identical across runs and thread counts.
//! ```
//!
//! Every cell's RNG is seeded from the grid seed and the cell's own
//! `(engine, model)` label, so results never depend on evaluation order,
//! and all synthesis/sampling is memoized in the process-wide
//! [`tpe_engine::EngineCache`] — a grid run after a `repro dse` sweep
//! reuses everything the sweep already priced.
//!
//! ## Quickstart
//!
//! ```
//! use tpe_pipeline::{run_grid, EngineSpec, GridConfig};
//! use tpe_workloads::models;
//!
//! let models = vec![models::resnet18()];
//! let engines = EngineSpec::paper_roster();
//! let outcome = run_grid(&models, &engines, GridConfig::quick_test(2, 42));
//! assert_eq!(outcome.runs.len(), engines.len());
//! let best = outcome
//!     .runs
//!     .iter()
//!     .filter_map(|r| r.report.as_ref())
//!     .min_by(|a, b| a.delay_us.total_cmp(&b.delay_us))
//!     .unwrap();
//! assert!(best.delay_us > 0.0);
//! ```

pub mod grid;

/// The canonical engine-spec module (re-exported from `tpe-engine`, where
/// the implementation moved).
pub use tpe_engine::spec as engine;

pub use grid::{run_grid, GridConfig, GridOutcome, ModelRun};
pub use tpe_engine::fnv1a;
pub use tpe_engine::report::{LayerReport, ModelReport};
pub use tpe_engine::schedule::{
    dense_model_cycles, dense_tiles, evaluate_model, schedule_layer, serial_model_cycles,
    MODEL_SAMPLE_CAPS,
};
pub use tpe_engine::spec::{EnginePrice, EngineSpec};
