//! Execution engines: the (PE style × array × encoding × clock) targets a
//! model is scheduled onto, and their synthesis-derived pricing.
//!
//! An [`EngineSpec`] is the architecture half of a `tpe-dse` design point —
//! everything except the workload. [`EngineSpec::price`] composes the same
//! path the sweep evaluator uses (`PeStyle` design → `tpe-cost` synthesis →
//! node scaling → array support logic), with the shared
//! [`tpe_cost::power::PE_BUSY`]/[`tpe_cost::power::PE_IDLE`] activity
//! points, so a model report and a layer sweep price one engine
//! identically.

use tpe_arith::encode::EncodingKind;
use tpe_core::arch::array::ARRAY_OVERHEAD_FRAC;
use tpe_core::arch::workload::effective_numpps;
use tpe_core::arch::{ArchKind, ArchModel, ArrayModel, PeStyle};
use tpe_cost::process::{scale_area_um2, scale_power_w, ProcessNode};
use tpe_sim::array::ClassicArch;

/// One fully-specified execution engine (a design point minus workload).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// PE microarchitecture (Figure 9).
    pub style: PeStyle,
    /// Array organization (Table VII).
    pub kind: ArchKind,
    /// Multiplicand encoding (serial datapaths; dense multipliers carry
    /// their built-in Booth encoding).
    pub encoding: EncodingKind,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Process node costs are scaled to.
    pub node: ProcessNode,
    /// Display name of the node.
    pub node_name: &'static str,
}

impl EngineSpec {
    /// A dense engine (classic topology) at SMIC 28 nm.
    pub fn dense(style: PeStyle, arch: ClassicArch, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Dense(arch),
            encoding: EncodingKind::Mbe,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// A serial (column-synchronous) engine at SMIC 28 nm.
    pub fn serial(style: PeStyle, encoding: EncodingKind, freq_ghz: f64) -> Self {
        Self {
            style,
            kind: ArchKind::Serial,
            encoding,
            freq_ghz,
            node: ProcessNode::SMIC28,
            node_name: "28nm",
        }
    }

    /// The `repro models` roster: the four classic dense baselines at
    /// their Table VII clocks, their OPT1/OPT2 retrofits, and the three
    /// serial styles under EN-T — every Table VII configuration, so each
    /// model is scored across all four dense array geometries *and* all
    /// serial PE styles.
    pub fn paper_roster() -> Vec<EngineSpec> {
        use ClassicArch::*;
        vec![
            EngineSpec::dense(PeStyle::TraditionalMac, Tpu, 1.0),
            EngineSpec::dense(PeStyle::TraditionalMac, Ascend, 1.0),
            EngineSpec::dense(PeStyle::TraditionalMac, Trapezoid, 1.0),
            EngineSpec::dense(PeStyle::TraditionalMac, FlexFlow, 1.0),
            EngineSpec::dense(PeStyle::Opt1, Tpu, 1.5),
            EngineSpec::dense(PeStyle::Opt1, Ascend, 1.5),
            EngineSpec::dense(PeStyle::Opt1, Trapezoid, 1.5),
            EngineSpec::dense(PeStyle::Opt1, FlexFlow, 1.5),
            EngineSpec::dense(PeStyle::Opt2, FlexFlow, 1.5),
            EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
            EngineSpec::serial(PeStyle::Opt4C, EncodingKind::EnT, 2.5),
            EngineSpec::serial(PeStyle::Opt4E, EncodingKind::EnT, 2.0),
        ]
    }

    /// Architecture half of the label ("OPT1(TPU)", "OPT3\[EN-T\]").
    pub fn arch_label(&self) -> String {
        match self.kind {
            ArchKind::Dense(arch) => format!("{}({})", self.style.name(), classic_name(arch)),
            ArchKind::Serial => format!("{}[{}]", self.style.name(), self.encoding),
        }
    }

    /// Full engine label, stable across runs — the seed/filter/CSV key
    /// ("OPT4E\[EN-T\]/28nm\@2.00GHz").
    pub fn label(&self) -> String {
        format!(
            "{}/{}@{:.2}GHz",
            self.arch_label(),
            self.node_name,
            self.freq_ghz
        )
    }

    /// PE instances at the paper's array sizes (10×10×10 Cube, else 32×32).
    pub fn pe_instances(&self) -> usize {
        match self.kind {
            ArchKind::Dense(ClassicArch::Ascend) => 1000,
            _ => 1024,
        }
    }

    /// The equivalent `tpe-core` architecture model.
    pub fn arch_model(&self) -> ArchModel {
        ArchModel {
            name: self.arch_label(),
            style: self.style,
            kind: self.kind,
            pe_instances: self.pe_instances(),
            freq_ghz: self.freq_ghz,
        }
    }

    /// Prices the engine: PE synthesis at the clock, node scaling, array
    /// support logic. `None` when the PE cannot close timing.
    pub fn price(&self) -> Option<EnginePrice> {
        let design = match self.kind {
            ArchKind::Dense(_) => self.arch_model().pe_design(),
            ArchKind::Serial => self.style.design_with_encoding(self.encoding),
        };
        let report = design.synthesize(self.freq_ghz)?;
        let instances = self.pe_instances() as f64;
        let support = scale_area_um2(
            ArrayModel::new(self.arch_model()).support_area_um2_for(self.encoding),
            ProcessNode::SMIC28,
            self.node,
        );
        let pe_area = scale_area_um2(report.area_um2, ProcessNode::SMIC28, self.node);
        let area_um2 = (pe_area * instances + support) * (1.0 + ARRAY_OVERHEAD_FRAC);

        let lanes_total = instances * f64::from(report.lanes);
        let raw_tops = lanes_total * 2.0 * self.freq_ghz * 1e9 / 1e12;
        let peak_tops = match self.kind {
            ArchKind::Dense(_) => raw_tops,
            ArchKind::Serial => raw_tops / effective_numpps(self.encoding.encoder().as_ref()),
        };

        Some(EnginePrice {
            area_um2,
            e_active_fj: scale_power_w(report.busy_power_uw(), ProcessNode::SMIC28, self.node)
                / self.freq_ghz,
            e_idle_fj: scale_power_w(report.idle_power_uw(), ProcessNode::SMIC28, self.node)
                / self.freq_ghz,
            instances,
            lanes_total,
            peak_tops,
        })
    }
}

/// Display name of a classic dense topology.
pub fn classic_name(arch: ClassicArch) -> &'static str {
    match arch {
        ClassicArch::Tpu => "TPU",
        ClassicArch::Ascend => "Ascend",
        ClassicArch::Trapezoid => "Trapezoid",
        ClassicArch::FlexFlow => "FlexFlow",
    }
}

/// A priced engine: everything the scheduler needs to turn cycles into
/// delay, energy and efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnginePrice {
    /// Total array area (µm², node-scaled, support + overhead included).
    pub area_um2: f64,
    /// Energy per PE-instance-cycle while busy (fJ, [`tpe_cost::power::PE_BUSY`]).
    pub e_active_fj: f64,
    /// Energy per PE-instance-cycle while clock-gated (fJ,
    /// [`tpe_cost::power::PE_IDLE`]).
    pub e_idle_fj: f64,
    /// PE (or PE-group) instances in the array.
    pub instances: f64,
    /// Total MAC-equivalent lanes (instances × lanes per instance).
    pub lanes_total: f64,
    /// Peak throughput (TOPS; serial engines divide by effective NumPPs).
    pub peak_tops: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_covers_all_topologies_and_serial_styles() {
        let roster = EngineSpec::paper_roster();
        for arch in ClassicArch::ALL {
            assert!(
                roster.iter().any(|e| e.kind == ArchKind::Dense(arch)),
                "{arch:?} missing from roster"
            );
        }
        for style in [PeStyle::Opt3, PeStyle::Opt4C, PeStyle::Opt4E] {
            assert!(roster.iter().any(|e| e.style == style));
        }
        let mut labels: Vec<String> = roster.iter().map(EngineSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), roster.len(), "duplicate engine labels");
    }

    #[test]
    fn every_roster_engine_prices_at_its_paper_clock() {
        for engine in EngineSpec::paper_roster() {
            let price = engine
                .price()
                .unwrap_or_else(|| panic!("{} fails timing", engine.label()));
            assert!(price.area_um2 > 0.0 && price.area_um2.is_finite());
            assert!(price.e_active_fj > price.e_idle_fj);
            assert!(price.peak_tops > 0.0);
        }
    }

    #[test]
    fn mac_engine_walls_beyond_1p5_ghz() {
        let mut e = EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 2.0);
        assert!(e.price().is_none());
        e.freq_ghz = 1.0;
        assert!(e.price().is_some());
    }

    #[test]
    fn serial_peak_tops_divides_by_effective_numpps() {
        let opt3 = EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0)
            .price()
            .unwrap();
        // 1024 lanes × 2 ops × 2 GHz = 4.096 raw TOPS; EN-T's ~2.27
        // effective NumPPs lands near Table VII's 1.80 TOPS.
        assert!((1.6..2.1).contains(&opt3.peak_tops), "{}", opt3.peak_tops);
    }
}
