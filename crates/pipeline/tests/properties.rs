//! Property tests for the model-level pipeline: per-model aggregates are
//! exactly the sum (or delay-weighted mean) of their per-layer rows, and
//! the parallel grid is byte-identical across runs and thread counts.

use proptest::prelude::*;
use tpe_arith::encode::EncodingKind;
use tpe_core::arch::PeStyle;
use tpe_pipeline::{run_grid, EngineSpec, GridConfig, MODEL_SAMPLE_CAPS};
use tpe_sim::array::ClassicArch;
use tpe_workloads::models;
use tpe_workloads::{LayerShape, NetworkModel};

/// A small synthetic network whose layer shapes are drawn by proptest.
fn synthetic_net(shapes: &[(usize, usize, usize, usize)]) -> NetworkModel {
    NetworkModel {
        name: "synthetic".into(),
        layers: shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k, r))| LayerShape::new(format!("l{i}"), m, n, k, r))
            .collect(),
    }
}

fn engines_under_test() -> Vec<EngineSpec> {
    vec![
        EngineSpec::dense(PeStyle::TraditionalMac, ClassicArch::Tpu, 1.0),
        EngineSpec::dense(PeStyle::Opt1, ClassicArch::Ascend, 1.5),
        EngineSpec::serial(PeStyle::Opt3, EncodingKind::EnT, 2.0),
        EngineSpec::serial(PeStyle::Opt4E, EncodingKind::Mbe, 2.0),
    ]
}

/// [`engines_under_test`] plus each engine pinned to the `edge` memory
/// corner — the aggregate identities must hold with rooflines applied too.
fn engines_under_test_with_memory_corners() -> Vec<EngineSpec> {
    let free = engines_under_test();
    let edge: Vec<EngineSpec> = free
        .iter()
        .map(|e| e.clone().with_memory(tpe_engine::MemorySpec::edge()))
        .collect();
    free.into_iter().chain(edge).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Per-model aggregate cycles / delay / energy / MACs / bytes moved
    /// equal the sum of the per-layer results, and utilization is their
    /// delay-weighted mean, on every engine family — with and without a
    /// finite memory corner bounding the layers.
    #[test]
    fn aggregates_equal_sum_of_per_layer_results(
        shapes in prop::collection::vec(
            (1usize..48, 1usize..64, 1usize..96, 1usize..4),
            1..6,
        ),
        seed in 0u64..1000,
    ) {
        let net = synthetic_net(&shapes);
        for engine in engines_under_test_with_memory_corners() {
            let price = engine.price().expect("paper clocks close timing");
            let report =
                tpe_pipeline::evaluate_model(&engine, &price, &net, seed, MODEL_SAMPLE_CAPS);
            prop_assert_eq!(report.layers.len(), net.layers.len());

            let cycles: f64 = report.layers.iter().map(|l| l.cycles).sum();
            let delay: f64 = report.layers.iter().map(|l| l.delay_us).sum();
            let energy: f64 = report.layers.iter().map(|l| l.energy_uj).sum();
            let macs: u64 = report.layers.iter().map(|l| l.macs).sum();
            let bytes: f64 = report.layers.iter().map(|l| l.bytes_moved).sum();
            prop_assert_eq!(report.cycles.to_bits(), cycles.to_bits());
            prop_assert_eq!(report.delay_us.to_bits(), delay.to_bits());
            prop_assert_eq!(report.energy_uj.to_bits(), energy.to_bits());
            prop_assert_eq!(report.bytes_moved.to_bits(), bytes.to_bits());
            prop_assert_eq!(report.total_macs, macs);
            prop_assert_eq!(report.total_macs, net.total_macs());
            prop_assert_eq!(
                report.intensity_ops_per_byte.to_bits(),
                (2.0 * macs as f64 / bytes).to_bits()
            );

            let weighted: f64 = report
                .layers
                .iter()
                .map(|l| l.utilization * l.delay_us)
                .sum();
            prop_assert!((report.utilization - weighted / delay).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&report.utilization));
        }
    }
}

/// The grid emits byte-identical CSV across runs and thread counts — the
/// determinism contract `repro models` asserts on every invocation.
#[test]
fn model_grid_csv_is_byte_identical_across_runs_and_thread_counts() {
    let nets = vec![models::resnet18(), models::mobilenet_v3()];
    let engines = engines_under_test();
    let emit = |threads: usize| {
        let outcome = run_grid(&nets, &engines, GridConfig::quick_test(threads, 77));
        tpe_dse::emit::model_csv(&outcome.runs)
    };
    let once = emit(1);
    assert_eq!(once, emit(1), "same thread count must reproduce");
    for threads in [2, 3, 8] {
        assert_eq!(
            once,
            emit(threads),
            "CSV bytes diverged at {threads} threads"
        );
    }
    assert_eq!(once.lines().count(), nets.len() * engines.len() + 1);
}

/// Whole-model workloads inside the `tpe-dse` sweep obey the same
/// contract: serial vs N-thread sweeps over model points emit identical
/// CSV, and different seeds actually reach the per-layer samplers.
#[test]
fn dse_model_points_are_thread_count_invariant() {
    use tpe_dse::{pareto_front, sweep, DesignSpace, Objective, SweepConfig};

    let space = DesignSpace::with_models("mobilenetv3").unwrap();
    // Serial points only: they are the ones that sample RNG streams.
    let points = space.enumerate_filtered("OPT4E[EN-T]/28nm");
    assert!(!points.is_empty());
    let emit = |threads: usize, seed: u64| {
        let outcome = sweep(
            &points,
            SweepConfig {
                threads,
                seed,
                ..SweepConfig::default()
            },
        );
        let front = pareto_front(&outcome.results, &Objective::DEFAULT);
        tpe_dse::emit::to_csv(&outcome.results, &front)
    };
    let reference = emit(1, 5);
    assert_eq!(
        reference,
        emit(4, 5),
        "model-point sweep must be thread-invariant"
    );
    assert_ne!(reference, emit(1, 6), "seed must reach the model sampler");
    assert!(reference.contains(",model,"), "rows must be whole-model");
}
