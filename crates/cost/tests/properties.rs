//! Property tests for the cost model: the physical sanity conditions any
//! synthesis substitute must uphold.

use proptest::prelude::*;
use tpe_cost::components::Component;
use tpe_cost::power::EnergyBreakdown;
use tpe_cost::synthesis::PeDesign;
use tpe_cost::timing;

fn toy(delay: f64, state: u32) -> PeDesign {
    PeDesign::builder("toy")
        .comp(
            Component::CompressorTree {
                inputs: 4,
                width: 24,
            },
            1,
        )
        .comp(Component::Mux { ways: 5, width: 10 }, 2)
        .state(state)
        .nominal_delay(delay)
        .build()
}

proptest! {
    /// Area never shrinks as the clock constraint tightens, and once
    /// timing fails it fails for all higher frequencies.
    #[test]
    fn area_monotone_and_feasibility_downward_closed(
        delay in 0.2f64..2.0,
        state in 8u32..128,
    ) {
        let d = toy(delay, state);
        let mut last_area = 0.0;
        let mut failed = false;
        let mut f = 0.4;
        while f <= 3.2 {
            match d.synthesize(f) {
                Some(r) => {
                    prop_assert!(!failed, "feasible at {f} after failing earlier");
                    prop_assert!(r.area_um2 + 1e-9 >= last_area, "area shrank at {f}");
                    last_area = r.area_um2;
                }
                None => failed = true,
            }
            f += 0.1;
        }
    }

    /// The model's max frequency is consistent with pointwise feasibility.
    #[test]
    fn max_frequency_is_the_boundary(delay in 0.2f64..2.0) {
        let fmax = timing::max_frequency_ghz(delay);
        prop_assert!(timing::area_factor(delay, fmax * 0.99).is_some());
        prop_assert!(timing::area_factor(delay, fmax * 1.01).is_none());
    }

    /// Power increases with frequency, activity and clock duty.
    #[test]
    fn power_monotonicity(
        comb in 10.0f64..500.0,
        dff in 5.0f64..200.0,
        f in 0.5f64..3.0,
        act in 0.0f64..1.0,
    ) {
        let e = EnergyBreakdown { comb_fj: comb, dff_fj: dff, leakage_uw: 1.0 };
        prop_assert!(e.power_uw(f, act, 1.0) <= e.power_uw(f + 0.1, act, 1.0));
        prop_assert!(e.power_uw(f, act, 1.0) <= e.power_uw(f, (act + 0.1).min(1.0), 1.0) + 1e-12);
        prop_assert!(e.power_uw(f, act, 0.5) <= e.power_uw(f, act, 1.0));
        prop_assert!(e.power_uw(f, 0.0, 0.0) >= 1.0 - 1e-12, "leakage floor");
    }

    /// Component costs are non-negative and grow with width.
    #[test]
    fn component_width_monotonicity(w in 8u32..40) {
        for make in [
            |w| Component::Accumulator { width: w },
            |w| Component::CarryPropagateAdder { width: w },
            |w| Component::CompressorTree { inputs: 4, width: w },
            |w| Component::DffBank { bits: w },
        ] {
            let small = make(w).cost();
            let big = make(w + 8).cost();
            prop_assert!(small.area_um2 >= 0.0 && small.energy_fj >= 0.0);
            prop_assert!(big.area_um2 >= small.area_um2, "area must grow with width");
        }
    }

    /// Compressor trees grow with input count but keep depth-logarithmic
    /// delay.
    #[test]
    fn tree_scaling(inputs in 3u32..24) {
        let t = Component::CompressorTree { inputs, width: 24 }.cost();
        let t2 = Component::CompressorTree { inputs: inputs + 1, width: 24 }.cost();
        prop_assert!(t2.area_um2 >= t.area_um2);
        prop_assert!(t.delay_ns <= 0.16 * f64::from(inputs), "delay must stay shallow");
    }
}
