//! Clock-constraint synthesis model: timing feasibility and area inflation.
//!
//! When a synthesis tool is asked for a period shorter than a design's
//! relaxed critical path, it buys speed with area: gate upsizing, logic
//! duplication and restructuring. §V-B of the paper quantifies this for the
//! traditional MAC — 246 µm² relaxed, 367 µm² at 1 GHz, 707 µm² at 1.5 GHz
//! (×1.93 per half GHz) — and reports that it fails timing beyond 1.5 GHz,
//! while the compressor-based designs keep flat, width-independent paths
//! and inflate far more slowly (OPT1 ×1.14 from 1→1.5 GHz, OPT3 ×1.09 from
//! 1.5→2 GHz).
//!
//! The model here:
//!
//! * Per cycle, the combinational path must fit in
//!   `period × (1 − margin) − t_seq` where `t_seq` is DFF clk→Q + setup
//!   and `margin` is the paper's 8% timing margin.
//! * Synthesis can shorten a path by at most [`MAX_SPEEDUP`]×; the area
//!   factor grows as `1 + α·(x − 1)^β` in the required speedup `x`.
//! * α and β are fitted to the MAC quotes above (two equations, two
//!   unknowns), then *validated* against the OPT1/OPT3 growth quotes in the
//!   tests.

use crate::gates::SEQUENTIAL_OVERHEAD_NS;

/// Fitted area-inflation coefficient (see module docs).
pub const ALPHA: f64 = 0.248;
/// Fitted area-inflation exponent.
pub const BETA: f64 = 1.868;
/// Maximum combinational speedup synthesis restructuring can deliver.
/// The MAC's 1.5 GHz wall corresponds to x ≈ 3.95.
pub const MAX_SPEEDUP: f64 = 4.0;
/// The paper's timing margin relative to the clock period (8–10%).
pub const TIMING_MARGIN: f64 = 0.08;

/// Combinational time budget available within one period at `freq_ghz`.
pub fn comb_budget_ns(freq_ghz: f64) -> f64 {
    let period = 1.0 / freq_ghz;
    period * (1.0 - TIMING_MARGIN) - SEQUENTIAL_OVERHEAD_NS
}

/// The synthesis area factor needed to run a path of `nominal_ns` at
/// `freq_ghz`, or `None` if timing cannot be met at any area.
///
/// ```
/// use tpe_cost::timing::area_factor;
/// // A 1.95 ns path at a relaxed 0.4 GHz clock needs no inflation.
/// assert_eq!(area_factor(1.95, 0.4), Some(1.0));
/// // At 1.5 GHz it inflates heavily but is feasible…
/// assert!(area_factor(1.95, 1.5).unwrap() > 2.0);
/// // …and beyond the wall it fails.
/// assert_eq!(area_factor(1.95, 1.7), None);
/// ```
pub fn area_factor(nominal_ns: f64, freq_ghz: f64) -> Option<f64> {
    assert!(nominal_ns >= 0.0 && freq_ghz > 0.0);
    let budget = comb_budget_ns(freq_ghz);
    if budget <= 0.0 {
        return None;
    }
    let x = nominal_ns / budget;
    if x <= 1.0 {
        return Some(1.0);
    }
    if x > MAX_SPEEDUP {
        return None;
    }
    Some(1.0 + ALPHA * (x - 1.0).powf(BETA))
}

/// Highest frequency (GHz) at which a path of `nominal_ns` closes timing.
pub fn max_frequency_ghz(nominal_ns: f64) -> f64 {
    // budget must be ≥ nominal / MAX_SPEEDUP:
    // period ≥ (nominal/MAX_SPEEDUP + t_seq) / (1 − margin)
    let min_period = (nominal_ns / MAX_SPEEDUP + SEQUENTIAL_OVERHEAD_NS) / (1.0 - TIMING_MARGIN);
    1.0 / min_period
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors;

    /// Fit check: the MAC area curve reproduces §V-B within 5%.
    #[test]
    fn mac_area_curve_calibration() {
        let nominal = anchors::MAC_TPD_NS;
        let base = anchors::MAC_AREA_RELAXED_UM2;
        let at_1 = base * area_factor(nominal, 1.0).unwrap();
        let at_1_5 = base * area_factor(nominal, 1.5).unwrap();
        assert!(
            (at_1 - anchors::MAC_AREA_1GHZ_UM2).abs() / anchors::MAC_AREA_1GHZ_UM2 < 0.05,
            "MAC @1GHz: model {at_1} vs paper {}",
            anchors::MAC_AREA_1GHZ_UM2
        );
        assert!(
            (at_1_5 - anchors::MAC_AREA_1_5GHZ_UM2).abs() / anchors::MAC_AREA_1_5GHZ_UM2 < 0.05,
            "MAC @1.5GHz: model {at_1_5} vs paper {}",
            anchors::MAC_AREA_1_5GHZ_UM2
        );
    }

    /// Validation on data NOT used in the fit: OPT1's growth from 1 to
    /// 1.5 GHz is ×1.14 in the paper; the model lands within 6 points.
    #[test]
    fn opt1_growth_validation() {
        let nominal = anchors::OPT1_TPD_NS;
        let growth = area_factor(nominal, 1.5).unwrap() / area_factor(nominal, 1.0).unwrap();
        assert!(
            (growth - anchors::OPT1_AREA_GROWTH_1_TO_1_5).abs() < 0.06,
            "OPT1 growth {growth} vs paper {}",
            anchors::OPT1_AREA_GROWTH_1_TO_1_5
        );
    }

    /// The MAC's frequency wall sits at ≈1.5 GHz.
    #[test]
    fn mac_frequency_wall() {
        let f = max_frequency_ghz(anchors::MAC_TPD_NS);
        assert!(
            (f - anchors::MAC_MAX_FREQ_GHZ).abs() < 0.1,
            "wall at {f} GHz"
        );
        assert!(area_factor(anchors::MAC_TPD_NS, 1.49).is_some());
        assert!(area_factor(anchors::MAC_TPD_NS, 1.6).is_none());
    }

    /// Compressor-based paths clear 2 GHz+ — the paper's headline timing
    /// result.
    #[test]
    fn opt_designs_clear_high_frequencies() {
        assert!(max_frequency_ghz(anchors::OPT1_TPD_NS) > 2.0);
        assert!(max_frequency_ghz(anchors::OPT4C_TPD_NS) > 3.0);
        assert!(max_frequency_ghz(anchors::OPT4E_TPD_NS) > 2.0);
    }

    /// Monotonicity: higher frequency never shrinks area.
    #[test]
    fn area_factor_monotone_in_frequency() {
        let mut last = 0.0;
        let mut f = 0.4;
        while f < 1.45 {
            let a = area_factor(1.95, f).unwrap();
            assert!(a >= last);
            last = a;
            f += 0.05;
        }
    }

    #[test]
    fn relaxed_clock_costs_nothing() {
        assert_eq!(area_factor(0.3, 0.5), Some(1.0));
        assert_eq!(area_factor(0.0, 3.0), Some(1.0));
    }
}
