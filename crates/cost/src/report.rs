//! Text rendering for synthesis reports and experiment tables.
//!
//! The `repro` harness prints paper-style tables; these helpers keep the
//! formatting consistent (fixed-width markdown-ish tables that diff cleanly
//! against EXPERIMENTS.md).

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", c, w = width[i]);
            }
            out.push_str("|\n");
        };
        line(&mut out, &self.header);
        for (i, w) in width.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

impl Table {
    /// Renders the table as CSV (header + rows), for plotting pipelines.
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper prints them: `(×1.27)`.
pub fn ratio(x: f64) -> String {
    format!("(×{x:.2})")
}

/// Formats a float with engineering-friendly precision.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "area"]);
        t.row(["MAC", "238.51"]);
        t.row(["OPT1-long-name", "1.0"]);
        let s = t.render();
        assert!(s.contains("| MAC            | 238.51 |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn ratio_format_matches_paper() {
        assert_eq!(ratio(1.27), "(×1.27)");
    }

    #[test]
    fn csv_escapes_and_renders() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "has,comma"]);
        t.row(["has\"quote", "x"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n");
    }
}
