//! Process-node normalization.
//!
//! The paper compares against accelerators published at other nodes by
//! normalizing their area and power to 28 nm, "based on references from the
//! TSMC annual report". We implement the standard first-order scaling used
//! for such normalizations: area scales with the square of feature size;
//! dynamic power scales with capacitance (≈ linear in feature size) and the
//! square of supply voltage.

/// A CMOS process node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessNode {
    /// Feature size in nm.
    pub nm: f64,
    /// Nominal core supply in volts.
    pub vdd: f64,
}

impl ProcessNode {
    /// SMIC 28 nm HKC+ RVT at the paper's operating voltage.
    pub const SMIC28: ProcessNode = ProcessNode {
        nm: 28.0,
        vdd: 0.72,
    };
    /// TSMC 65 nm (Laconic, Bitlet-era designs).
    pub const N65: ProcessNode = ProcessNode { nm: 65.0, vdd: 1.0 };
    /// TSMC 40 nm.
    pub const N40: ProcessNode = ProcessNode { nm: 40.0, vdd: 0.9 };
    /// 28 nm generic (Sibia, Bitwave, HUAA report at 28 nm).
    pub const N28: ProcessNode = ProcessNode { nm: 28.0, vdd: 0.8 };
    /// TSMC 16 nm FinFET.
    pub const N16: ProcessNode = ProcessNode { nm: 16.0, vdd: 0.8 };
}

/// Scales an area from `from` to `to`: `area × (to.nm / from.nm)²`.
pub fn scale_area_um2(area_um2: f64, from: ProcessNode, to: ProcessNode) -> f64 {
    area_um2 * (to.nm / from.nm).powi(2)
}

/// Scales dynamic power: capacitance ∝ feature size, energy ∝ C·V².
pub fn scale_power_w(power_w: f64, from: ProcessNode, to: ProcessNode) -> f64 {
    power_w * (to.nm / from.nm) * (to.vdd / from.vdd).powi(2)
}

/// Scales an energy-per-op figure the same way as power.
pub fn scale_energy(energy: f64, from: ProcessNode, to: ProcessNode) -> f64 {
    scale_power_w(energy, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scaling_is_quadratic() {
        let a = scale_area_um2(1000.0, ProcessNode::N65, ProcessNode::SMIC28);
        assert!((a - 1000.0 * (28.0f64 / 65.0).powi(2)).abs() < 1e-9);
        assert!(a < 200.0);
    }

    #[test]
    fn identity_scaling() {
        assert_eq!(
            scale_area_um2(123.0, ProcessNode::SMIC28, ProcessNode::SMIC28),
            123.0
        );
    }

    #[test]
    fn power_scaling_includes_voltage() {
        let p = scale_power_w(1.0, ProcessNode::N65, ProcessNode::SMIC28);
        // 28/65 × (0.72/1.0)² ≈ 0.223
        assert!((p - (28.0 / 65.0) * 0.72f64.powi(2)).abs() < 1e-9);
    }
}
