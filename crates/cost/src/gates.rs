//! Standard-cell library constants for bottom-up component estimates.
//!
//! Values are representative SMIC-28nm RVT cell figures, tuned so composed
//! components agree with the paper's anchors: a 4-2 compressor tree of
//! width `w` contains `2w` full adders, and Table V gives 52.92 µm² at
//! `w = 14` → ≈1.89 µm² per full-adder cell, which is the keystone the
//! other cells are scaled around.

/// Area of a mirror full-adder cell (µm²). Derived from Table V:
/// 52.92 µm² / (2 × 14) FAs.
pub const FA_AREA_UM2: f64 = 1.89;

/// Area of a half-adder cell (µm²).
pub const HA_AREA_UM2: f64 = 1.15;

/// Area of a 2:1 mux (µm²).
pub const MUX2_AREA_UM2: f64 = 0.85;

/// Area of an XOR2 gate (µm²).
pub const XOR2_AREA_UM2: f64 = 0.80;

/// Area of a NAND2-equivalent gate (µm²) — the generic "random logic" unit.
pub const NAND2_AREA_UM2: f64 = 0.45;

/// Area of a D flip-flop with scan (µm²). Chosen so an OPT4E group's shared
/// DFF bank matches the paper's 311 µm² group quote.
pub const DFF_AREA_UM2: f64 = 1.80;

/// Propagation delay of one 3:2 compressor level (ns). Table V: a two-level
/// 4-2 tree shows 0.31–0.32 ns end to end, including input buffering.
pub const CSA_LEVEL_DELAY_NS: f64 = 0.155;

/// Delay of a 2:1 mux stage (ns).
pub const MUX_DELAY_NS: f64 = 0.04;

/// Delay of the Booth/EN-T digit encoder (ns) — a two-gate-level recoder.
pub const ENCODER_DELAY_NS: f64 = 0.09;

/// Sequential overhead per cycle: DFF clk→Q plus setup (ns). With the
/// paper's 8–10% timing margin this is what bounds OPT4C below ~3 GHz even
/// though its combinational path is 0.29 ns.
pub const SEQUENTIAL_OVERHEAD_NS: f64 = 0.12;

/// Dynamic energy per DFF clock-pin toggle (fJ) at 0.72 V — paid every
/// enabled cycle.
pub const DFF_CLOCK_ENERGY_FJ: f64 = 0.40;

/// Dynamic energy per DFF data toggle (fJ).
pub const DFF_DATA_ENERGY_FJ: f64 = 0.70;

/// Average data-toggle probability of datapath registers under dense
/// normally-distributed operands.
pub const DFF_DATA_ACTIVITY: f64 = 0.5;

/// Dynamic energy per full-adder output toggle (fJ).
pub const FA_TOGGLE_ENERGY_FJ: f64 = 0.55;

/// Average toggle probability of compressor-tree cells: carry-save state
/// settles once per cycle and sign-extension bits are mostly static.
pub const CSA_ACTIVITY: f64 = 0.6;

/// Glitch multiplier for carry-propagating structures (ripple/lookahead
/// adders and accumulators): carry chains re-evaluate multiple times per
/// cycle, unlike compressor trees whose cells settle once. This is the
/// activity asymmetry the paper leans on when it replaces `add` +
/// `accumulate` with `half_reduce` (and Bucket Getter's "low activity"
/// argument in Figure 2(G)).
pub const CARRY_CHAIN_GLITCH_FACTOR: f64 = 1.25;

/// Static leakage power per µm² of cell area (µW/µm²) at 0.72 V, 25 °C.
pub const LEAKAGE_UW_PER_UM2: f64 = 0.004;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors::TABLE5_COMPRESSOR_TREE;

    /// The keystone derivation: 2w FA cells reproduce Table V's area within
    /// a wiring margin that shrinks as width grows.
    #[test]
    fn fa_area_reproduces_table5() {
        for row in &TABLE5_COMPRESSOR_TREE {
            let composed = 2.0 * f64::from(row.width) * FA_AREA_UM2;
            let err = (composed - row.area_um2).abs() / row.area_um2;
            assert!(
                err < 0.10,
                "width {}: composed {composed} vs {}",
                row.width,
                row.area_um2
            );
        }
    }

    /// Two CSA levels reproduce the 4-2 tree delay.
    #[test]
    fn csa_delay_reproduces_table5() {
        assert!((2.0 * CSA_LEVEL_DELAY_NS - 0.31).abs() < 0.01);
    }
}
