//! Component-level cost descriptors mirroring the paper's Table IV
//! primitives.
//!
//! Each [`Component`] computes a [`CompCost`] — area, combinational delay
//! and per-operation switching energy — using the anchored models described
//! in the crate docs. These are the building blocks [`crate::synthesis`]
//! composes into whole processing elements.

use crate::anchors::{
    interp_area, interp_delay, interp_power, TABLE1_ACCUMULATOR, TABLE1_FULL_ADDER_14, TABLE1_MAC,
    TABLE5_COMPRESSOR_TREE,
};
use crate::gates;
use tpe_arith::compressor::wallace_depth;

/// Area / delay / energy of one hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompCost {
    /// Cell area in µm² (relaxed synthesis; constraint inflation is applied
    /// at the PE level).
    pub area_um2: f64,
    /// Combinational propagation delay in ns.
    pub delay_ns: f64,
    /// Dynamic switching energy per activation in fJ.
    pub energy_fj: f64,
}

impl CompCost {
    fn new(area_um2: f64, delay_ns: f64, energy_fj: f64) -> Self {
        Self {
            area_um2,
            delay_ns,
            energy_fj,
        }
    }
}

/// The hardware components of the paper's notation (Table IV) plus the
/// storage and array-support blocks needed to price whole PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields are described in each variant's doc
pub enum Component {
    /// A complete traditional INT8 MAC with the given accumulator width
    /// (Table I row).
    MacUnit { acc_width: u32 },
    /// High-width accumulator: register + resolved add (Table I rows).
    Accumulator { width: u32 },
    /// Carry-propagating adder (the `add` primitive).
    CarryPropagateAdder { width: u32 },
    /// The multiplier front end of a MAC — encoder + CPPG + muxes +
    /// partial-product compressor tree, i.e. Table I's MAC minus its
    /// accumulator and full adder. Anchor-derived at `acc_width`.
    MultiplierFront { acc_width: u32 },
    /// Carry-save compressor tree reducing `inputs` operands of `width`
    /// bits to a redundant pair (the `half_reduce` primitive).
    CompressorTree { inputs: u32, width: u32 },
    /// Radix-4 digit encoder for a `width`-bit multiplicand (`encode`).
    BoothEncoder { width: u32 },
    /// EN-T recoder (adds the one-bit carry chain over the Booth cells).
    EntEncoder { width: u32 },
    /// Priority ("sparse") encoder over `digits` encoded digits.
    SparseEncoder { digits: u32 },
    /// Candidate partial-product generator for a `width`-bit multiplier:
    /// produces {−2B, −B, 0, B, 2B}.
    Cppg { width: u32 },
    /// `ways`:1 multiplexer of `width` bits (the select half of `map`).
    Mux { ways: u32, width: u32 },
    /// Barrel shifter over `positions` shift amounts at `width` bits
    /// (the `shift` primitive).
    BarrelShifter { width: u32, positions: u32 },
    /// A bank of `bits` D flip-flops (pipeline/state registers).
    DffBank { bits: u32 },
    /// One SIMD vector-core lane: carry-propagate adder + shifter at
    /// `width` bits (hosts the relocated `add`/`shift` of OPT1/OPT2).
    SimdLane { width: u32 },
    /// Zero-detect / skip unit over `width` bits (bit-serial baselines).
    SkipZeroUnit { width: u32 },
}

impl Component {
    /// The cost of this component under relaxed (2 ns) synthesis.
    pub fn cost(&self) -> CompCost {
        match *self {
            Component::MacUnit { acc_width } => CompCost::new(
                interp_area(&TABLE1_MAC, acc_width),
                interp_delay(&TABLE1_MAC, acc_width),
                // Table I power at 2 ns (0.5 GHz) → energy/op = P/f, plus
                // carry-chain glitching in the resolved accumulation.
                interp_power(&TABLE1_MAC, acc_width) / 0.5 * gates::CARRY_CHAIN_GLITCH_FACTOR,
            ),
            Component::Accumulator { width } => CompCost::new(
                interp_area(&TABLE1_ACCUMULATOR, width),
                interp_delay(&TABLE1_ACCUMULATOR, width),
                interp_power(&TABLE1_ACCUMULATOR, width) / 0.5 * gates::CARRY_CHAIN_GLITCH_FACTOR,
            ),
            Component::CarryPropagateAdder { width } => {
                let base = &TABLE1_FULL_ADDER_14;
                // Area scales linearly with width; delay logarithmically
                // (synthesized lookahead structure).
                let area = base.area_um2 * f64::from(width) / 14.0;
                let delay =
                    base.delay_ns * (1.0 + 0.45 * (f64::from(width) / 14.0).log2().max(0.0));
                let energy = base.power_uw / 0.5 * f64::from(width) / 14.0
                    * gates::CARRY_CHAIN_GLITCH_FACTOR;
                CompCost::new(area, delay, energy)
            }
            Component::MultiplierFront { acc_width } => {
                let mac = Component::MacUnit { acc_width }.cost();
                let acc = Component::Accumulator { width: acc_width }.cost();
                let fa = Component::CarryPropagateAdder { width: 14 }.cost();
                CompCost::new(
                    (mac.area_um2 - acc.area_um2 - fa.area_um2).max(0.0),
                    (mac.delay_ns - acc.delay_ns - fa.delay_ns).max(0.1),
                    (mac.energy_fj - acc.energy_fj - fa.energy_fj).max(0.0),
                )
            }
            Component::CompressorTree { inputs, width } => {
                if inputs <= 2 {
                    return CompCost::new(0.0, 0.0, 0.0);
                }
                // A 4-2 tree (inputs = 4) of width w costs Table V's area;
                // generic trees scale by compressor count: an n:2 tree uses
                // (n − 2) CSA rows versus the 4-2 tree's 2 rows.
                let base = interp_area(&TABLE5_COMPRESSOR_TREE, width);
                let rows = f64::from(inputs - 2);
                let area = base * rows / 2.0;
                let depth = wallace_depth(inputs);
                let delay = f64::from(depth).max(1.0) * gates::CSA_LEVEL_DELAY_NS;
                // Upper (sign-extension) bits of a carry-save pair rarely
                // toggle; compressors also settle once (no carry-chain
                // glitching), giving the low activity the paper exploits.
                let energy =
                    rows * f64::from(width) * gates::FA_TOGGLE_ENERGY_FJ * gates::CSA_ACTIVITY;
                CompCost::new(area, delay, energy)
            }
            Component::BoothEncoder { width } => {
                let digits = f64::from(width.div_ceil(2));
                // Each digit encoder is a handful of gates over a 3-bit
                // slice (~6 NAND2-equivalents).
                CompCost::new(
                    digits * 6.0 * gates::NAND2_AREA_UM2,
                    gates::ENCODER_DELAY_NS,
                    digits * 1.2,
                )
            }
            Component::EntEncoder { width } => {
                let digits = f64::from(width.div_ceil(2));
                // Booth cells plus the pair-carry chain and sign handling.
                CompCost::new(
                    digits * 8.5 * gates::NAND2_AREA_UM2,
                    gates::ENCODER_DELAY_NS + 0.03,
                    digits * 1.5,
                )
            }
            Component::SparseEncoder { digits } => {
                // Priority encoder + valid mask over `digits` entries.
                let d = f64::from(digits);
                CompCost::new(d * 5.0 * gates::NAND2_AREA_UM2, 0.08, d * 0.9)
            }
            Component::Cppg { width } => {
                // ±B and ±2B: an inverter row and wiring; the +1 for two's
                // complement negation is folded into the compressor tree.
                let w = f64::from(width);
                CompCost::new(w * 1.1, 0.03, w * 0.4)
            }
            Component::Mux { ways, width } => {
                let stages = (32 - (ways - 1).leading_zeros()).max(1);
                let w = f64::from(width);
                CompCost::new(
                    w * f64::from(ways - 1) * gates::MUX2_AREA_UM2,
                    f64::from(stages) * gates::MUX_DELAY_NS,
                    w * 0.5,
                )
            }
            Component::BarrelShifter { width, positions } => {
                let stages = (32 - (positions - 1).leading_zeros()).max(1);
                let w = f64::from(width);
                CompCost::new(
                    w * f64::from(stages) * gates::MUX2_AREA_UM2 * 1.2,
                    f64::from(stages) * gates::MUX_DELAY_NS,
                    w * f64::from(stages) * 0.35,
                )
            }
            Component::DffBank { bits } => CompCost::new(
                f64::from(bits) * gates::DFF_AREA_UM2,
                0.0, // sequential overhead accounted separately
                f64::from(bits)
                    * (gates::DFF_CLOCK_ENERGY_FJ
                        + gates::DFF_DATA_ENERGY_FJ * gates::DFF_DATA_ACTIVITY),
            ),
            Component::SimdLane { width } => {
                let adder = Component::CarryPropagateAdder { width }.cost();
                let shifter = Component::BarrelShifter {
                    width,
                    positions: 4,
                }
                .cost();
                let regs = Component::DffBank { bits: width }.cost();
                CompCost::new(
                    adder.area_um2 + shifter.area_um2 + regs.area_um2,
                    adder.delay_ns + shifter.delay_ns,
                    adder.energy_fj + shifter.energy_fj + regs.energy_fj,
                )
            }
            Component::SkipZeroUnit { width } => {
                let w = f64::from(width);
                CompCost::new(w * 3.0 * gates::NAND2_AREA_UM2, 0.06, w * 0.6)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_unit_matches_table1() {
        let c = Component::MacUnit { acc_width: 32 }.cost();
        assert!((c.area_um2 - 238.51).abs() < 1e-6);
        assert!((c.delay_ns - 1.97).abs() < 1e-6);
    }

    #[test]
    fn compressor_tree_matches_table5_at_4_inputs() {
        for w in [14u32, 16, 20, 24, 28, 32] {
            let c = Component::CompressorTree {
                inputs: 4,
                width: w,
            }
            .cost();
            let expect = interp_area(&TABLE5_COMPRESSOR_TREE, w);
            assert!((c.area_um2 - expect).abs() < 1e-9, "width {w}");
            assert!((c.delay_ns - 0.31).abs() < 0.01, "flat delay at width {w}");
        }
    }

    /// The paper's structural claim: compressor delay is width-independent,
    /// carry-propagate delay is not.
    #[test]
    fn compressor_delay_flat_cpa_delay_grows() {
        let t14 = Component::CompressorTree {
            inputs: 4,
            width: 14,
        }
        .cost()
        .delay_ns;
        let t32 = Component::CompressorTree {
            inputs: 4,
            width: 32,
        }
        .cost()
        .delay_ns;
        assert!((t14 - t32).abs() < 1e-9);

        let a14 = Component::CarryPropagateAdder { width: 14 }.cost().delay_ns;
        let a32 = Component::CarryPropagateAdder { width: 32 }.cost().delay_ns;
        assert!(a32 > a14 * 1.3, "CPA delay must grow with width");
    }

    /// Table I's §II-A claim: at 32-bit accumulation, full adder +
    /// accumulator occupy ~61.4% of MAC logic area.
    #[test]
    fn accumulation_share_at_32_bits() {
        let mac = Component::MacUnit { acc_width: 32 }.cost().area_um2;
        let acc = Component::Accumulator { width: 32 }.cost().area_um2;
        let fa = Component::CarryPropagateAdder { width: 32 }.cost().area_um2;
        let share = (acc + fa) / mac;
        assert!(
            (share - 0.614).abs() < 0.35,
            "reduction share {share} should be roughly 61% (paper) — model gives a comparable dominance"
        );
        assert!(share > 0.5, "accumulation must dominate the 32-bit MAC");
    }

    #[test]
    fn trivial_tree_is_free() {
        let c = Component::CompressorTree {
            inputs: 2,
            width: 32,
        }
        .cost();
        assert_eq!(c.area_um2, 0.0);
    }

    #[test]
    fn mux_and_shifter_scale_with_width() {
        let m5 = Component::Mux { ways: 5, width: 10 }.cost();
        let m2 = Component::Mux { ways: 2, width: 10 }.cost();
        assert!(m5.area_um2 > m2.area_um2);
        let s = Component::BarrelShifter {
            width: 16,
            positions: 4,
        }
        .cost();
        assert!(s.delay_ns > 0.0 && s.area_um2 > 0.0);
    }
}
