//! The paper's published synthesis numbers, verbatim.
//!
//! These are the calibration anchors of the whole cost model and the
//! "paper" column of every regenerated table. Units: area µm², delay ns,
//! power µW (Table I's `TOP` column, measured at a 2 ns clock constraint).

/// One row of Table I / Table V: a component synthesized at a given width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnchorRow {
    /// Accumulator / word width in bits.
    pub width: u32,
    /// Synthesized cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Average power in µW at the 2 ns clock (Table I only; 0 when the
    /// paper does not report it).
    pub power_uw: f64,
}

/// Table I — complete INT8 MAC at accumulator widths 20–32
/// (SMIC 28nm, 2 ns clock constraint).
pub const TABLE1_MAC: [AnchorRow; 4] = [
    AnchorRow {
        width: 20,
        area_um2: 179.30,
        delay_ns: 1.56,
        power_uw: 27.1,
    },
    AnchorRow {
        width: 24,
        area_um2: 192.65,
        delay_ns: 1.67,
        power_uw: 29.2,
    },
    AnchorRow {
        width: 28,
        area_um2: 206.01,
        delay_ns: 1.84,
        power_uw: 31.4,
    },
    AnchorRow {
        width: 32,
        area_um2: 238.51,
        delay_ns: 1.97,
        power_uw: 36.3,
    },
];

/// Table I — the 14-bit 4-2 compressor tree inside the MAC.
pub const TABLE1_COMPRESSOR_TREE_14: AnchorRow = AnchorRow {
    width: 14,
    area_um2: 55.92,
    delay_ns: 0.31,
    power_uw: 8.5,
};

/// Table I — the 14-bit carry-propagating full adder inside the MAC.
pub const TABLE1_FULL_ADDER_14: AnchorRow = AnchorRow {
    width: 14,
    area_um2: 51.32,
    delay_ns: 0.34,
    power_uw: 7.7,
};

/// Table I — the high-width accumulator (register + resolved add).
pub const TABLE1_ACCUMULATOR: [AnchorRow; 4] = [
    AnchorRow {
        width: 20,
        area_um2: 57.32,
        delay_ns: 0.80,
        power_uw: 8.6,
    },
    AnchorRow {
        width: 24,
        area_um2: 62.43,
        delay_ns: 0.90,
        power_uw: 9.4,
    },
    AnchorRow {
        width: 28,
        area_um2: 82.78,
        delay_ns: 0.99,
        power_uw: 12.3,
    },
    AnchorRow {
        width: 32,
        area_um2: 95.13,
        delay_ns: 1.13,
        power_uw: 14.3,
    },
];

/// Table V — 4-2 compressor tree area/delay versus width. The paper's
/// structural point: delay is flat (≈0.32 ns) because compressors have no
/// carry chain, while area grows linearly with width.
pub const TABLE5_COMPRESSOR_TREE: [AnchorRow; 6] = [
    AnchorRow {
        width: 14,
        area_um2: 52.92,
        delay_ns: 0.31,
        power_uw: 0.0,
    },
    AnchorRow {
        width: 16,
        area_um2: 60.98,
        delay_ns: 0.32,
        power_uw: 0.0,
    },
    AnchorRow {
        width: 20,
        area_um2: 77.11,
        delay_ns: 0.32,
        power_uw: 0.0,
    },
    AnchorRow {
        width: 24,
        area_um2: 93.99,
        delay_ns: 0.32,
        power_uw: 0.0,
    },
    AnchorRow {
        width: 28,
        area_um2: 110.12,
        delay_ns: 0.32,
        power_uw: 0.0,
    },
    AnchorRow {
        width: 32,
        area_um2: 126.25,
        delay_ns: 0.32,
        power_uw: 0.0,
    },
];

/// §IV-A / Figure 5: traditional MAC tpd at INT8 mul + INT32 acc, 2 ns clock.
pub const MAC_TPD_NS: f64 = 1.95;
/// §IV-A / Figure 5: OPT1 tpd after replacing the add+accumulate with a 4-2
/// compressor accumulation.
pub const OPT1_TPD_NS: f64 = 0.92;
/// Figure 8(C): OPT4C PE combinational delay.
pub const OPT4C_TPD_NS: f64 = 0.29;
/// Figure 8(E): OPT4E PE-group combinational delay.
pub const OPT4E_TPD_NS: f64 = 0.40;

/// §V-B: traditional MAC area at a 1 GHz clock constraint.
pub const MAC_AREA_1GHZ_UM2: f64 = 367.0;
/// §V-B: traditional MAC area at a 1.5 GHz clock constraint (×1.93).
pub const MAC_AREA_1_5GHZ_UM2: f64 = 707.0;
/// Figure 14 caption: relaxed-constraint parallel MAC PE area.
pub const MAC_AREA_RELAXED_UM2: f64 = 246.0;
/// §V-B: OPT1 area growth factor from 1.0 to 1.5 GHz.
pub const OPT1_AREA_GROWTH_1_TO_1_5: f64 = 1.14;
/// §V-B: OPT3 area growth factor from 1.5 to 2.0 GHz.
pub const OPT3_AREA_GROWTH_1_5_TO_2: f64 = 1.09;
/// Figure 14 caption: OPT4C PE area.
pub const OPT4C_AREA_UM2: f64 = 81.27;
/// Figure 14 caption: OPT4E PE-group (4 lanes) area.
pub const OPT4E_GROUP_AREA_UM2: f64 = 311.0;

/// §V-B: design frequency limits reported in Figure 9 (GHz).
pub const MAC_MAX_FREQ_GHZ: f64 = 1.5;
/// OPT1's frequency limit (optimal synthesis at 1.5 GHz).
pub const OPT1_MAX_FREQ_GHZ: f64 = 2.0;
/// OPT3's peak frequency (optimal at 2.0 GHz).
pub const OPT3_MAX_FREQ_GHZ: f64 = 2.5;
/// OPT4C is the only design reaching 3 GHz.
pub const OPT4C_MAX_FREQ_GHZ: f64 = 3.0;
/// OPT4E's limit ("easily up to 2 GHz").
pub const OPT4E_MAX_FREQ_GHZ: f64 = 2.5;

/// One row of Table VII (array level). Peak performance counts 1 MAC as
/// 2 ops, so a 32×32 array at 1 GHz is 2.05 TOPS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayAnchor {
    /// Design label as printed in Table VII.
    pub name: &'static str,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Total array area in µm².
    pub area_um2: f64,
    /// Total power in W.
    pub power_w: f64,
    /// Peak performance in TOPS.
    pub peak_tops: f64,
}

/// Table VII, "Others" half — the classic architectures and published
/// bit-slice baselines (already normalized to 28 nm by the paper).
pub const TABLE7_OTHERS: [ArrayAnchor; 8] = [
    ArrayAnchor {
        name: "TPU",
        freq_mhz: 1000.0,
        area_um2: 370_631.0,
        power_w: 0.25,
        peak_tops: 2.05,
    },
    ArrayAnchor {
        name: "Ascend",
        freq_mhz: 1000.0,
        area_um2: 320_783.0,
        power_w: 0.24,
        peak_tops: 2.05,
    },
    ArrayAnchor {
        name: "Trapezoid",
        freq_mhz: 1000.0,
        area_um2: 283_704.0,
        power_w: 0.22,
        peak_tops: 2.05,
    },
    ArrayAnchor {
        name: "FlexFlow",
        freq_mhz: 1000.0,
        area_um2: 332_848.0,
        power_w: 0.28,
        peak_tops: 2.05,
    },
    ArrayAnchor {
        name: "Laconic",
        freq_mhz: 1000.0,
        area_um2: 213_248.0,
        power_w: 1.21,
        peak_tops: 0.81,
    },
    ArrayAnchor {
        name: "Bitlet",
        freq_mhz: 1000.0,
        area_um2: 415_800.0,
        power_w: 0.23,
        peak_tops: 0.74,
    },
    ArrayAnchor {
        name: "Sibia",
        freq_mhz: 250.0,
        area_um2: 1_069_000.0,
        power_w: 0.10,
        peak_tops: 0.77,
    },
    ArrayAnchor {
        name: "Bitwave",
        freq_mhz: 250.0,
        area_um2: 861_681.0,
        power_w: 0.01,
        peak_tops: 0.22,
    },
];

/// Table VII, "Ours" half — the paper's measured OPT arrays.
pub const TABLE7_OURS: [ArrayAnchor; 8] = [
    ArrayAnchor {
        name: "OPT1(TPU)",
        freq_mhz: 1500.0,
        area_um2: 436_646.0,
        power_w: 0.37,
        peak_tops: 3.07,
    },
    ArrayAnchor {
        name: "OPT1(Ascend)",
        freq_mhz: 1500.0,
        area_um2: 332_185.0,
        power_w: 0.24,
        peak_tops: 3.07,
    },
    ArrayAnchor {
        name: "OPT1(Trapezoid)",
        freq_mhz: 1500.0,
        area_um2: 271_989.0,
        power_w: 0.22,
        peak_tops: 3.07,
    },
    ArrayAnchor {
        name: "OPT1(FlexFlow)",
        freq_mhz: 1500.0,
        area_um2: 373_898.0,
        power_w: 0.38,
        peak_tops: 3.07,
    },
    ArrayAnchor {
        name: "OPT2(FlexFlow)",
        freq_mhz: 1500.0,
        area_um2: 347_216.0,
        power_w: 0.35,
        peak_tops: 3.07,
    },
    ArrayAnchor {
        name: "OPT3",
        freq_mhz: 2000.0,
        area_um2: 460_349.0,
        power_w: 0.70,
        peak_tops: 1.80,
    },
    ArrayAnchor {
        name: "OPT4C",
        freq_mhz: 2500.0,
        area_um2: 259_298.0,
        power_w: 0.51,
        peak_tops: 2.25,
    },
    ArrayAnchor {
        name: "OPT4E",
        freq_mhz: 2000.0,
        area_um2: 672_419.0,
        power_w: 0.89,
        peak_tops: 7.22,
    },
];

/// Table III — the paper's measured average NumPPs on 1024×1024 normally
/// distributed matrices (σ ∈ {0.5, 1.0, 2.5, 5.0}).
pub const TABLE3_AVG_NUMPPS: [(&str, [f64; 4]); 4] = [
    ("EN-T", [2.27, 2.22, 2.26, 2.23]),
    ("MBE", [2.46, 2.41, 2.45, 2.42]),
    ("bit-serial(M)", [3.52, 3.52, 3.52, 3.53]),
    ("bit-serial(C)", [3.99, 3.98, 3.98, 3.98]),
];

/// Linear interpolation/extrapolation over anchor rows, by width.
///
/// # Panics
///
/// Panics if `rows` has fewer than two entries.
pub fn interp_area(rows: &[AnchorRow], width: u32) -> f64 {
    interp(rows, width, |r| r.area_um2)
}

/// Delay interpolation over anchor rows, by width.
pub fn interp_delay(rows: &[AnchorRow], width: u32) -> f64 {
    interp(rows, width, |r| r.delay_ns)
}

/// Power interpolation over anchor rows, by width.
pub fn interp_power(rows: &[AnchorRow], width: u32) -> f64 {
    interp(rows, width, |r| r.power_uw)
}

fn interp(rows: &[AnchorRow], width: u32, f: impl Fn(&AnchorRow) -> f64) -> f64 {
    assert!(rows.len() >= 2, "need at least two anchors");
    let w = f64::from(width);
    // Find the bracketing segment (clamped to the outer segments for
    // extrapolation).
    let mut i = 0;
    while i + 2 < rows.len() && f64::from(rows[i + 1].width) < w {
        i += 1;
    }
    let (a, b) = (&rows[i], &rows[i + 1]);
    let t = (w - f64::from(a.width)) / (f64::from(b.width) - f64::from(a.width));
    f(a) + t * (f(b) - f(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_hits_anchors_exactly() {
        for row in &TABLE5_COMPRESSOR_TREE {
            assert!((interp_area(&TABLE5_COMPRESSOR_TREE, row.width) - row.area_um2).abs() < 1e-9);
        }
        for row in &TABLE1_ACCUMULATOR {
            assert!((interp_delay(&TABLE1_ACCUMULATOR, row.width) - row.delay_ns).abs() < 1e-9);
        }
    }

    #[test]
    fn interpolation_between_anchors() {
        // Width 18 sits halfway between the 16 and 20 anchors.
        let a = interp_area(&TABLE5_COMPRESSOR_TREE, 18);
        assert!((a - (60.98 + 77.11) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_is_monotone_for_area() {
        let a40 = interp_area(&TABLE5_COMPRESSOR_TREE, 40);
        assert!(a40 > 126.25, "wider tree must be larger, got {a40}");
        let a12 = interp_area(&TABLE5_COMPRESSOR_TREE, 12);
        assert!(a12 < 52.92);
    }

    /// Sanity: Table VII's efficiency columns are consistent with
    /// area/power/peak (spot check TPU and OPT4E rows).
    #[test]
    fn table7_self_consistency() {
        let tpu = &TABLE7_OTHERS[0];
        let ae = tpu.peak_tops / (tpu.area_um2 / 1e6);
        assert!((ae - 5.53).abs() < 0.05, "TPU area efficiency {ae}");
        let ee = tpu.peak_tops / tpu.power_w;
        assert!((ee - 8.2).abs() < 0.2, "TPU energy efficiency {ee}");

        let e = &TABLE7_OURS[7];
        let ae = e.peak_tops / (e.area_um2 / 1e6);
        assert!((ae - 10.73).abs() < 0.05, "OPT4E area efficiency {ae}");
    }

    /// The paper's own TOPS arithmetic: 32×32 MACs at 1 GHz, 2 ops per MAC.
    #[test]
    fn peak_tops_convention() {
        let tops: f64 = 32.0 * 32.0 * 2.0 * 1e9 / 1e12;
        assert!((tops - 2.048).abs() < 1e-9);
        assert!((TABLE7_OTHERS[0].peak_tops - 2.05).abs() < 0.01);
    }
}
