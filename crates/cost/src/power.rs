//! Activity-based power model.
//!
//! Power decomposes as the paper's §V-B discussion does:
//!
//! * **clock network** — 30–60% of total, growing with frequency; modeled
//!   as a frequency-dependent share of the sequential + logic power;
//! * **DFF internal** — per-bit clock-toggle energy every cycle (clock
//!   gating reduces this when a PE idles);
//! * **combinational** — per-component switching energy, scaled by
//!   *activity* (the fraction of cycles the logic actually toggles — for
//!   sparse designs this is where skipped partial products save energy);
//! * **leakage** — proportional to area, frequency-independent.

use crate::gates::LEAKAGE_UW_PER_UM2;

/// An activity operating point of a PE datapath: combinational toggle
/// `activity` and clock-enable `clock_duty`, both ∈ [0, 1]. These are the
/// arguments of [`EnergyBreakdown::power_uw`] /
/// [`SynthReport::power_uw`](crate::SynthReport::power_uw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityPoint {
    /// Fraction of cycles the combinational logic toggles.
    pub activity: f64,
    /// Fraction of cycles the clock is enabled.
    pub clock_duty: f64,
}

/// A PE actively computing: full combinational switching, clock always on.
/// Single source of truth for every busy-energy account in the workspace
/// (`tpe-core`'s layer models, `tpe-dse`'s sweep evaluator, `tpe-pipeline`).
pub const PE_BUSY: ActivityPoint = ActivityPoint {
    activity: 1.0,
    clock_duty: 1.0,
};

/// A PE waiting at a `sync` barrier: combinational logic quiescent, clock
/// gated down to a 10% residual duty (§VI: early finishers "enter an idle
/// state, saving power" — gating is never perfect, so a residual clock
/// share and leakage remain).
pub const PE_IDLE: ActivityPoint = ActivityPoint {
    activity: 0.0,
    clock_duty: 0.1,
};

/// Fraction of total power consumed by the clock network at `freq_ghz`.
///
/// §V-B: "the clock network accounts for 30%∼60% of total power".
pub fn clock_network_share(freq_ghz: f64) -> f64 {
    (0.30 + 0.10 * freq_ghz).min(0.60)
}

/// Per-cycle energy accounting for one PE (or PE group).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Combinational switching energy at full activity (fJ/cycle).
    pub comb_fj: f64,
    /// DFF clock + data energy (fJ/cycle), paid whenever the clock runs.
    pub dff_fj: f64,
    /// Leakage power (µW), frequency-independent.
    pub leakage_uw: f64,
}

impl EnergyBreakdown {
    /// Average power in µW at `freq_ghz` with the given combinational
    /// `activity` ∈ [0, 1] and clock-enable duty `clock_duty` ∈ [0, 1]
    /// (idle PEs with gated clocks pay only leakage).
    ///
    /// The clock-network share inflates the dynamic portion:
    /// `P_dyn_total = P_dyn_logic / (1 − share)`.
    pub fn power_uw(&self, freq_ghz: f64, activity: f64, clock_duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&activity), "activity {activity}");
        assert!((0.0..=1.0).contains(&clock_duty), "clock duty {clock_duty}");
        let logic_fj = self.comb_fj * activity + self.dff_fj * clock_duty;
        let share = clock_network_share(freq_ghz);
        let dynamic_uw = logic_fj * freq_ghz / (1.0 - share);
        dynamic_uw + self.leakage_uw
    }

    /// Energy per cycle (fJ) at the given activity/duty, including the
    /// clock-network share and leakage.
    pub fn energy_per_cycle_fj(&self, freq_ghz: f64, activity: f64, clock_duty: f64) -> f64 {
        self.power_uw(freq_ghz, activity, clock_duty) / freq_ghz
    }

    /// Leakage for `area_um2` of standard cells.
    pub fn leakage_for_area(area_um2: f64) -> f64 {
        area_um2 * LEAKAGE_UW_PER_UM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_share_band() {
        assert!((clock_network_share(0.5) - 0.35).abs() < 1e-9);
        assert!((clock_network_share(1.0) - 0.40).abs() < 1e-9);
        assert_eq!(clock_network_share(4.0), 0.60);
    }

    #[test]
    fn idle_pe_pays_leakage_only_when_gated() {
        let e = EnergyBreakdown {
            comb_fj: 100.0,
            dff_fj: 50.0,
            leakage_uw: 2.0,
        };
        let idle = e.power_uw(1.0, 0.0, 0.0);
        assert!((idle - 2.0).abs() < 1e-9);
        let busy = e.power_uw(1.0, 1.0, 1.0);
        assert!(busy > 10.0 * idle);
    }

    #[test]
    fn power_scales_with_frequency_and_activity() {
        let e = EnergyBreakdown {
            comb_fj: 80.0,
            dff_fj: 40.0,
            leakage_uw: 0.5,
        };
        let p1 = e.power_uw(1.0, 0.5, 1.0);
        let p2 = e.power_uw(2.0, 0.5, 1.0);
        assert!(p2 > 1.9 * p1, "frequency scaling plus rising clock share");
        assert!(e.power_uw(1.0, 1.0, 1.0) > p1);
    }

    /// Energy per cycle rises with frequency only through the clock-network
    /// share (the paper's reason energy efficiency eventually drops).
    #[test]
    fn energy_per_cycle_rises_slowly_with_f() {
        let e = EnergyBreakdown {
            comb_fj: 80.0,
            dff_fj: 40.0,
            leakage_uw: 0.0,
        };
        let e1 = e.energy_per_cycle_fj(1.0, 1.0, 1.0);
        let e25 = e.energy_per_cycle_fj(2.5, 1.0, 1.0);
        assert!(e25 > e1 && e25 < e1 * 1.5);
    }
}
