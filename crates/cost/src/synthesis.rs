//! PE-level synthesis: composing components into a design and "running it
//! through the tool" at a clock constraint.
//!
//! A [`PeDesign`] is a bag of combinational [`Component`]s plus state bits
//! (DFFs) and a critical path. [`PeDesign::synthesize`] prices it at a
//! frequency: timing feasibility and area inflation come from
//! [`crate::timing`], power from [`crate::power`].

use crate::components::{CompCost, Component};
use crate::power::EnergyBreakdown;
use crate::timing;

/// A processing-element (or PE-group) design to be synthesized.
#[derive(Debug, Clone)]
pub struct PeDesign {
    /// Design name ("MAC", "OPT1", ...).
    pub name: String,
    /// Combinational components with instance counts.
    pub combinational: Vec<(Component, u32)>,
    /// State and pipeline DFB bits inside the PE (input operand registers,
    /// carry-save state, select registers...).
    pub state_bits: u32,
    /// Relaxed-synthesis critical path in ns. Built with
    /// [`PeDesignBuilder::critical_path`] or set directly from a paper
    /// quote.
    pub nominal_delay_ns: f64,
    /// Hard frequency cap (GHz) from the paper's Figure 9 sweep, applied on
    /// top of the timing model's own wall.
    pub max_freq_ghz: f64,
    /// Number of MAC-equivalent lanes this design provides (4 for an OPT4E
    /// group, 1 otherwise) — used for per-lane efficiency metrics.
    pub lanes: u32,
}

/// Builder for [`PeDesign`] (counted components accumulate; the critical
/// path is the sum of an explicit component chain).
#[derive(Debug, Clone)]
pub struct PeDesignBuilder {
    design: PeDesign,
}

impl PeDesignBuilder {
    /// Starts an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            design: PeDesign {
                name: name.into(),
                combinational: Vec::new(),
                state_bits: 0,
                nominal_delay_ns: 0.0,
                max_freq_ghz: f64::INFINITY,
                lanes: 1,
            },
        }
    }

    /// Adds `count` instances of a combinational component.
    pub fn comp(mut self, c: Component, count: u32) -> Self {
        self.design.combinational.push((c, count));
        self
    }

    /// Adds `bits` of DFF state.
    pub fn state(mut self, bits: u32) -> Self {
        self.design.state_bits += bits;
        self
    }

    /// Sets the critical path as a chain of components (delays add).
    pub fn critical_path(mut self, chain: &[Component]) -> Self {
        self.design.nominal_delay_ns = chain.iter().map(|c| c.cost().delay_ns).sum();
        self
    }

    /// Overrides the nominal delay with an explicit value (paper quote).
    pub fn nominal_delay(mut self, ns: f64) -> Self {
        self.design.nominal_delay_ns = ns;
        self
    }

    /// Caps the synthesizable frequency (paper's observed wall).
    pub fn max_freq(mut self, ghz: f64) -> Self {
        self.design.max_freq_ghz = ghz;
        self
    }

    /// Declares the number of MAC lanes the design provides.
    pub fn lanes(mut self, lanes: u32) -> Self {
        self.design.lanes = lanes;
        self
    }

    /// Finishes the design.
    pub fn build(self) -> PeDesign {
        self.design
    }
}

impl PeDesign {
    /// Starts a builder.
    pub fn builder(name: impl Into<String>) -> PeDesignBuilder {
        PeDesignBuilder::new(name)
    }

    /// Relaxed-synthesis combinational cost (sum over components).
    pub fn comb_cost(&self) -> CompCost {
        let mut total = CompCost::default();
        for (c, n) in &self.combinational {
            let cost = c.cost();
            let n = f64::from(*n);
            total.area_um2 += cost.area_um2 * n;
            total.energy_fj += cost.energy_fj * n;
        }
        total
    }

    /// Highest frequency this design closes timing at (model ∧ paper cap).
    pub fn max_frequency_ghz(&self) -> f64 {
        timing::max_frequency_ghz(self.nominal_delay_ns).min(self.max_freq_ghz)
    }

    /// Synthesizes at `freq_ghz`. Returns `None` on a timing violation.
    pub fn synthesize(&self, freq_ghz: f64) -> Option<SynthReport> {
        if freq_ghz > self.max_freq_ghz + 1e-9 {
            return None;
        }
        let factor = timing::area_factor(self.nominal_delay_ns, freq_ghz)?;
        let comb = self.comb_cost();
        let dff = Component::DffBank {
            bits: self.state_bits,
        }
        .cost();
        let comb_area = comb.area_um2 * factor;
        let dff_area = dff.area_um2;
        let area = comb_area + dff_area;
        Some(SynthReport {
            design: self.name.clone(),
            freq_ghz,
            area_um2: area,
            comb_area_um2: comb_area,
            dff_area_um2: dff_area,
            nominal_delay_ns: self.nominal_delay_ns,
            lanes: self.lanes,
            energy: EnergyBreakdown {
                // Upsized gates switch proportionally more capacitance.
                comb_fj: comb.energy_fj * factor,
                dff_fj: dff.energy_fj,
                leakage_uw: EnergyBreakdown::leakage_for_area(area),
            },
        })
    }
}

/// The outcome of synthesizing a [`PeDesign`] at a clock constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthReport {
    /// Design name.
    pub design: String,
    /// Clock constraint (GHz) the report was produced at.
    pub freq_ghz: f64,
    /// Total cell area (µm²).
    pub area_um2: f64,
    /// Combinational share of the area (µm², post-inflation).
    pub comb_area_um2: f64,
    /// Register share of the area (µm²).
    pub dff_area_um2: f64,
    /// The relaxed critical path the inflation was computed from.
    pub nominal_delay_ns: f64,
    /// MAC-equivalent lanes.
    pub lanes: u32,
    /// Per-cycle energy decomposition.
    pub energy: EnergyBreakdown,
}

impl SynthReport {
    /// Average power (µW) at combinational `activity` and clock duty.
    pub fn power_uw(&self, activity: f64, clock_duty: f64) -> f64 {
        self.energy.power_uw(self.freq_ghz, activity, clock_duty)
    }

    /// Average power (µW) at a named activity operating point
    /// ([`crate::power::PE_BUSY`] / [`crate::power::PE_IDLE`]).
    pub fn power_uw_at(&self, point: crate::power::ActivityPoint) -> f64 {
        self.power_uw(point.activity, point.clock_duty)
    }

    /// Power of a PE actively computing ([`crate::power::PE_BUSY`]).
    pub fn busy_power_uw(&self) -> f64 {
        self.power_uw_at(crate::power::PE_BUSY)
    }

    /// Power of a clock-gated PE waiting at a barrier
    /// ([`crate::power::PE_IDLE`]).
    pub fn idle_power_uw(&self) -> f64 {
        self.power_uw_at(crate::power::PE_IDLE)
    }

    /// Throughput-normalized area efficiency in GOPS/mm² given `ops_per_cycle`
    /// effective operations per cycle (2 per MAC lane-cycle for dense MACs).
    pub fn area_efficiency(&self, ops_per_cycle: f64) -> f64 {
        let gops = ops_per_cycle * self.freq_ghz;
        gops / (self.area_um2 / 1e6)
    }

    /// Energy efficiency in TOPS/W at the given activity.
    pub fn energy_efficiency(&self, ops_per_cycle: f64, activity: f64) -> f64 {
        let tops = ops_per_cycle * self.freq_ghz * 1e9 / 1e12;
        let watts = self.power_uw(activity, 1.0) * 1e-6;
        tops / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchors;

    fn toy_design(delay: f64) -> PeDesign {
        PeDesign::builder("toy")
            .comp(
                Component::CompressorTree {
                    inputs: 4,
                    width: 32,
                },
                1,
            )
            .state(64)
            .nominal_delay(delay)
            .build()
    }

    #[test]
    fn synthesize_reports_area_breakdown() {
        let d = toy_design(0.4);
        let r = d.synthesize(1.0).unwrap();
        assert!(r.comb_area_um2 > 0.0 && r.dff_area_um2 > 0.0);
        assert!((r.area_um2 - (r.comb_area_um2 + r.dff_area_um2)).abs() < 1e-9);
        assert!((r.dff_area_um2 - 64.0 * crate::gates::DFF_AREA_UM2).abs() < 1e-9);
    }

    #[test]
    fn timing_violation_returns_none() {
        let d = toy_design(anchors::MAC_TPD_NS);
        assert!(d.synthesize(1.5).is_some());
        assert!(d.synthesize(1.7).is_none());
    }

    #[test]
    fn paper_frequency_cap_enforced() {
        let d = PeDesign::builder("capped")
            .comp(
                Component::CompressorTree {
                    inputs: 3,
                    width: 16,
                },
                1,
            )
            .nominal_delay(0.3)
            .max_freq(2.0)
            .build();
        assert!(d.synthesize(2.0).is_some());
        assert!(d.synthesize(2.1).is_none());
    }

    #[test]
    fn area_grows_with_constraint() {
        let d = toy_design(1.0);
        let a1 = d.synthesize(0.8).unwrap().area_um2;
        let a2 = d.synthesize(1.6).unwrap().area_um2;
        assert!(a2 > a1);
    }

    #[test]
    fn efficiency_metrics_positive_and_consistent() {
        let d = toy_design(0.4);
        let r = d.synthesize(2.0).unwrap();
        let ae = r.area_efficiency(2.0);
        let ee = r.energy_efficiency(2.0, 1.0);
        assert!(ae > 0.0 && ee > 0.0);
        // Halving ops per cycle halves both.
        assert!((r.area_efficiency(1.0) - ae / 2.0).abs() < 1e-9);
    }

    #[test]
    fn builder_critical_path_composes_delays() {
        let d = PeDesign::builder("path")
            .critical_path(&[
                Component::Mux { ways: 5, width: 10 },
                Component::CompressorTree {
                    inputs: 3,
                    width: 16,
                },
            ])
            .build();
        let mux = Component::Mux { ways: 5, width: 10 }.cost().delay_ns;
        let tree = Component::CompressorTree {
            inputs: 3,
            width: 16,
        }
        .cost()
        .delay_ns;
        assert!((d.nominal_delay_ns - (mux + tree)).abs() < 1e-12);
    }
}
