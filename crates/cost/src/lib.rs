#![warn(missing_docs)]

//! # tpe-cost
//!
//! Area / delay / power model for TPE components, standing in for the
//! paper's Synopsys Design Compiler + PrimeTime PX flow on SMIC
//! 28nm-HKCP-RVT at 0.72 V.
//!
//! The model is **anchored interpolation + structural composition**:
//!
//! * Unit costs come from the paper's own synthesis tables where available
//!   ([`anchors`] holds Table I and Table V verbatim).
//! * Components not tabulated (encoders, muxes, CPPGs, DFF banks) are
//!   gate-count estimates over the [`gates`] cell library, scaled so that
//!   PE-level totals match the paper's §V quotes (traditional MAC 367 µm² at
//!   1 GHz → 707 µm² at 1.5 GHz, OPT4C PE 81.27 µm², OPT4E group 311 µm²).
//! * Clock-constraint behaviour — the area inflation a synthesis tool pays
//!   to close timing, and the frequency wall where it fails — is modeled in
//!   [`timing`] and calibrated to the area-growth factors the paper reports
//!   (×1.93 for the MAC from 1→1.5 GHz, ×1.14 for OPT1, ×1.09 for OPT3).
//!
//! Every calibration constant cites the paper datum next to it, so the
//! provenance of each number in the regenerated tables is auditable.

pub mod anchors;
pub mod components;
pub mod gates;
pub mod power;
pub mod process;
pub mod report;
pub mod synthesis;
pub mod timing;

pub use components::{CompCost, Component};
pub use synthesis::{PeDesign, SynthReport};
