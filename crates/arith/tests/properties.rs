//! Property-based tests for the arithmetic substrate.
//!
//! These pin the crate's central invariant: every encoder, compressor and
//! datapath is bit-exact against native integer arithmetic, for arbitrary
//! operands — not just the paper's worked examples.

use proptest::prelude::*;
use tpe_arith::adder::{word_add, AdderKind};
use tpe_arith::bits::{from_wrapped, to_wrapped};
use tpe_arith::compressor::{compress_4_2, compress_6_2, wallace_reduce};
use tpe_arith::csa::CsAccumulator;
use tpe_arith::encode::{
    decode, BitSerialComplement, BitSerialSignMagnitude, CsdEncoder, Encoder, EntEncoder,
    MbeEncoder,
};
use tpe_arith::mac::{reference_dot, CompressAccMac, SerialDigitMac, TraditionalMac};
use tpe_arith::multiplier::{array_multiply, booth_multiply, encoded_multiply};
use tpe_arith::pp::reduce_partial_products;

fn encoders() -> Vec<Box<dyn Encoder>> {
    vec![
        Box::new(MbeEncoder),
        Box::new(EntEncoder),
        Box::new(CsdEncoder),
        Box::new(BitSerialComplement),
        Box::new(BitSerialSignMagnitude),
    ]
}

proptest! {
    /// decode ∘ encode = id for every encoder at widths 8, 12, 16, 24.
    #[test]
    fn encoders_roundtrip(v in -8_388_608i64..8_388_608) {
        for enc in encoders() {
            for width in [24u32, 25, 32] {
                prop_assert_eq!(decode(&enc.encode(v, width)), v, "{} w={}", enc.name(), width);
            }
        }
    }

    /// Partial products of any encoding reduce to the exact product.
    #[test]
    fn products_exact(a in i16::MIN..=i16::MAX, b in i16::MIN..=i16::MAX) {
        let (a, b) = (i64::from(a), i64::from(b));
        for enc in encoders() {
            let digits = enc.encode(a, 16);
            prop_assert_eq!(reduce_partial_products(&digits, b), a * b, "{}", enc.name());
        }
    }

    /// Carry-save pairs always resolve to the true sum (mod 2^width).
    #[test]
    fn wallace_reduction_exact(ops in prop::collection::vec(-100_000i64..100_000, 0..40)) {
        let width = 40;
        let words: Vec<u64> = ops.iter().map(|&x| to_wrapped(x, width)).collect();
        let r = wallace_reduce(&words, width);
        prop_assert_eq!(r.pair.resolve(), ops.iter().sum::<i64>());
    }

    /// The fixed 4:2 and 6:2 compressors agree with the generic tree.
    #[test]
    fn fixed_compressors_exact(a in -1000i64..1000, b in -1000i64..1000,
                               c in -1000i64..1000, d in -1000i64..1000,
                               e in -1000i64..1000, f in -1000i64..1000) {
        let w = 24;
        let t = |x: i64| to_wrapped(x, w);
        let (s, cy) = compress_4_2(t(a), t(b), t(c), t(d), w);
        prop_assert_eq!(from_wrapped(s.wrapping_add(cy) & tpe_arith::bits::mask(w), w), a + b + c + d);
        let (s, cy) = compress_6_2([t(a), t(b), t(c), t(d), t(e), t(f)], w);
        prop_assert_eq!(from_wrapped(s.wrapping_add(cy) & tpe_arith::bits::mask(w), w), a + b + c + d + e + f);
    }

    /// The carry-save accumulator tracks a native i64 accumulator exactly.
    #[test]
    fn cs_accumulator_exact(values in prop::collection::vec(-30_000i64..30_000, 1..200)) {
        let mut acc = CsAccumulator::new(32);
        for &v in &values {
            acc.accumulate_value(v);
        }
        prop_assert_eq!(acc.resolve(), values.iter().sum::<i64>());
    }

    /// All word-adder architectures compute identical sums.
    #[test]
    fn adders_equivalent(a in i32::MIN..=i32::MAX, b in i32::MIN..=i32::MAX, cin in 0u8..2) {
        let (a, b) = (i64::from(a), i64::from(b));
        let kinds = [AdderKind::RippleCarry, AdderKind::CarryLookahead, AdderKind::CarrySelect];
        let results: Vec<u64> = kinds
            .iter()
            .map(|&k| word_add(k, to_wrapped(a, 32), to_wrapped(b, 32), cin, 32).sum)
            .collect();
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
        let expected = a.wrapping_add(b).wrapping_add(i64::from(cin));
        prop_assert_eq!(from_wrapped(results[0], 32), from_wrapped(to_wrapped(expected, 64), 32));
    }

    /// Traditional and OPT1 MACs agree with the reference dot product and
    /// with each other on random INT8 vectors.
    #[test]
    fn macs_agree(pairs in prop::collection::vec((-128i64..=127, -128i64..=127), 1..300)) {
        let a: Vec<i64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let expected = reference_dot(&a, &b, 32);

        let mut t = TraditionalMac::new(MbeEncoder, 32);
        let mut o = CompressAccMac::new(EntEncoder, 32);
        let mut s = SerialDigitMac::new(32);
        for (&x, &y) in a.iter().zip(&b) {
            t.mac(x, y, 8);
            o.mac(x, y, 8);
            for d in EntEncoder.encode_nonzero(x, 8) {
                s.step(d, y);
            }
        }
        prop_assert_eq!(t.value(), expected);
        prop_assert_eq!(o.resolve(), expected);
        prop_assert_eq!(s.resolve(), expected);
    }

    /// W16 regression: every MAC organization matches the reference dot
    /// product on random INT16 vectors under every encoder, at both the
    /// 64-bit W16 accumulator and a 40-bit one where individual partial
    /// products (top digit: ±2·b·2^16 ≈ 2^33) overflow nothing only
    /// because the datapath wraps — the case the old partial-product
    /// `to_wrapped` assert rejected outright.
    #[test]
    fn macs_agree_at_w16(pairs in prop::collection::vec((i16::MIN as i64..=i16::MAX as i64,
                                                         i16::MIN as i64..=i16::MAX as i64), 1..60)) {
        let a: Vec<i64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        fn dots<E: Encoder + Copy>(enc: E, a: &[i64], b: &[i64], acc_width: u32) -> [i64; 3] {
            let mut t = TraditionalMac::new(enc, acc_width);
            let mut o = CompressAccMac::new(enc, acc_width);
            let mut s = SerialDigitMac::new(acc_width);
            for (&x, &y) in a.iter().zip(b) {
                t.mac(x, y, 16);
                o.mac(x, y, 16);
                for d in enc.encode_nonzero(x, 16) {
                    s.step(d, y);
                }
            }
            [t.value(), o.resolve(), s.resolve()]
        }
        for acc_width in [40u32, 64] {
            let expected = reference_dot(&a, &b, acc_width);
            let runs = [
                ("MBE", dots(MbeEncoder, &a, &b, acc_width)),
                ("EN-T", dots(EntEncoder, &a, &b, acc_width)),
                ("CSD", dots(CsdEncoder, &a, &b, acc_width)),
                ("bit-serial(C)", dots(BitSerialComplement, &a, &b, acc_width)),
                ("bit-serial(M)", dots(BitSerialSignMagnitude, &a, &b, acc_width)),
            ];
            for (name, [t, o, s]) in runs {
                prop_assert_eq!(t, expected, "MacUnit {} acc={}", name, acc_width);
                prop_assert_eq!(o, expected, "OPT1 {} acc={}", name, acc_width);
                prop_assert_eq!(s, expected, "serial {} acc={}", name, acc_width);
            }
        }
    }

    /// Multiplier architectures are mutually equivalent.
    #[test]
    fn multipliers_equivalent(a in -2048i64..2048, b in -2048i64..2048) {
        let w = 12;
        let expected = a * b;
        prop_assert_eq!(array_multiply(a, b, w).product, expected);
        prop_assert_eq!(booth_multiply(a, b, w).product, expected);
        prop_assert_eq!(encoded_multiply(&EntEncoder, a, b, w).product, expected);
        prop_assert_eq!(encoded_multiply(&CsdEncoder, a, b, w).product, expected);
    }

    /// NumPPs ordering: CSD ≤ EN-T ≤ MBE digit count per operand... EN-T and
    /// MBE are incomparable pointwise, but CSD lower-bounds both.
    #[test]
    fn csd_is_pointwise_minimal(v in -32768i64..32768) {
        let csd = CsdEncoder.num_pps(v, 16);
        prop_assert!(csd <= MbeEncoder.num_pps(v, 16));
        prop_assert!(csd <= EntEncoder.num_pps(v, 16));
        prop_assert!(csd <= BitSerialComplement.num_pps(v, 16));
        prop_assert!(csd <= BitSerialSignMagnitude.num_pps(v, 16));
    }
}
