//! Carry-save compressors and reduction trees: the `half_reduce` primitive.
//!
//! A *compressor* sums many operands into a redundant (sum, carry) pair
//! using only parallel half/full adders — no carry chain. Its delay is
//! therefore **independent of operand bit width** (paper Table V: a 4-2
//! compressor tree holds ≈0.32 ns from 14 to 32 bits), which is the
//! structural fact behind OPT1: replacing the MAC's full adder + accumulator
//! with compressor accumulation halves the critical path.
//!
//! All word-level operations are performed modulo `2^width`; two's
//! complement wrapping guarantees `(sum + carry) mod 2^width` equals the
//! true input sum modulo `2^width`, so a final full add at the same width
//! recovers the exact signed result.

use crate::bits::{from_wrapped, mask};

/// A redundant carry-save pair. The represented value is
/// `sum + carry (mod 2^width)`, interpreted as `width`-bit two's complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CarrySave {
    /// Sum word.
    pub sum: u64,
    /// Carry word (already shifted into position).
    pub carry: u64,
    /// Word width in bits (1..=64).
    pub width: u32,
}

impl CarrySave {
    /// The zero pair at `width` bits.
    pub fn zero(width: u32) -> Self {
        assert!((1..=64).contains(&width));
        Self {
            sum: 0,
            carry: 0,
            width,
        }
    }

    /// Resolves the redundant pair with a full (carry-propagating) add.
    ///
    /// This is the single `add` the paper defers to the SIMD vector core.
    pub fn resolve(&self) -> i64 {
        from_wrapped(
            self.sum.wrapping_add(self.carry) & mask(self.width),
            self.width,
        )
    }
}

/// One layer of 3:2 compression (a vector of full adders).
///
/// Returns `(sum, carry)` with `sum + carry ≡ a + b + c (mod 2^width)`.
#[inline]
pub fn compress_3_2(a: u64, b: u64, c: u64, width: u32) -> (u64, u64) {
    let m = mask(width);
    let sum = (a ^ b ^ c) & m;
    let carry = (((a & b) | (a & c) | (b & c)) << 1) & m;
    (sum, carry)
}

/// A 4:2 compressor stage (two chained 3:2 layers), reducing four operands
/// to a carry-save pair.
#[inline]
pub fn compress_4_2(a: u64, b: u64, c: u64, d: u64, width: u32) -> (u64, u64) {
    let (s1, c1) = compress_3_2(a, b, c, width);
    compress_3_2(s1, c1, d, width)
}

/// A 6:2 compressor (the shared tree of an OPT4E PE group), reducing six
/// operands to a carry-save pair.
#[inline]
pub fn compress_6_2(ops: [u64; 6], width: u32) -> (u64, u64) {
    let (s1, c1) = compress_3_2(ops[0], ops[1], ops[2], width);
    let (s2, c2) = compress_3_2(ops[3], ops[4], ops[5], width);
    let (s3, c3) = compress_3_2(s1, c1, s2, width);
    compress_3_2(s3, c3, c2, width)
}

/// Result of a generic carry-save reduction, with structural statistics the
/// cost model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reduction {
    /// The carry-save output pair.
    pub pair: CarrySave,
    /// Number of 3:2 compressor levels on the critical path.
    pub depth: u32,
    /// Total number of full-adder-vector (3:2) instances used.
    pub compressor_count: u32,
}

/// Wallace-style carry-save reduction of arbitrarily many operands down to a
/// (sum, carry) pair, counting tree depth and compressor usage.
///
/// An empty input reduces to zero; a single operand passes through with
/// depth 0.
pub fn wallace_reduce(operands: &[u64], width: u32) -> Reduction {
    assert!((1..=64).contains(&width));
    let m = mask(width);
    let mut layer: Vec<u64> = operands.iter().map(|&x| x & m).collect();
    let mut depth = 0;
    let mut count = 0;
    while layer.len() > 2 {
        let mut next = Vec::with_capacity(layer.len() * 2 / 3 + 2);
        let mut chunks = layer.chunks_exact(3);
        for ch in &mut chunks {
            let (s, c) = compress_3_2(ch[0], ch[1], ch[2], width);
            next.push(s);
            next.push(c);
            count += 1;
        }
        next.extend_from_slice(chunks.remainder());
        layer = next;
        depth += 1;
    }
    let (sum, carry) = match layer.len() {
        0 => (0, 0),
        1 => (layer[0], 0),
        _ => (layer[0], layer[1]),
    };
    Reduction {
        pair: CarrySave { sum, carry, width },
        depth,
        compressor_count: count,
    }
}

/// Number of 3:2 levels a Wallace tree needs for `n` operands — the
/// compressor-tree depth the timing model uses.
pub fn wallace_depth(n: u32) -> u32 {
    // Sequence of maximum operand counts per depth: 2, 3, 4, 6, 9, 13, 19...
    let mut cap = 2u32;
    let mut depth = 0;
    while cap < n {
        cap = cap * 3 / 2;
        depth += 1;
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::to_wrapped;

    fn check_pair(expected: i64, sum: u64, carry: u64, width: u32) {
        let cs = CarrySave { sum, carry, width };
        assert_eq!(cs.resolve(), from_wrapped(to_wrapped(expected, 64), width));
    }

    #[test]
    fn compress_3_2_exact() {
        for a in -10i64..10 {
            for b in -10i64..10 {
                for c in -10i64..10 {
                    let (s, cy) =
                        compress_3_2(to_wrapped(a, 16), to_wrapped(b, 16), to_wrapped(c, 16), 16);
                    check_pair(a + b + c, s, cy, 16);
                }
            }
        }
    }

    #[test]
    fn compress_4_2_exact() {
        let vals = [-100i64, -7, -1, 0, 1, 5, 99, 127];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    for &d in &vals {
                        let (s, cy) = compress_4_2(
                            to_wrapped(a, 16),
                            to_wrapped(b, 16),
                            to_wrapped(c, 16),
                            to_wrapped(d, 16),
                            16,
                        );
                        check_pair(a + b + c + d, s, cy, 16);
                    }
                }
            }
        }
    }

    #[test]
    fn compress_6_2_exact() {
        let vals = [-128i64, -3, 0, 1, 64, 127];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let ops = [
                        to_wrapped(a, 20),
                        to_wrapped(b, 20),
                        to_wrapped(c, 20),
                        to_wrapped(a ^ 1, 20),
                        to_wrapped(-b, 20),
                        to_wrapped(c.wrapping_mul(3), 20),
                    ];
                    let expected = a + b + c + (a ^ 1) + (-b) + c.wrapping_mul(3);
                    let (s, cy) = compress_6_2(ops, 20);
                    check_pair(expected, s, cy, 20);
                }
            }
        }
    }

    #[test]
    fn wallace_reduce_many_operands() {
        let xs: Vec<i64> = (-20..=20).collect();
        let ops: Vec<u64> = xs.iter().map(|&x| to_wrapped(x, 32)).collect();
        let r = wallace_reduce(&ops, 32);
        assert_eq!(r.pair.resolve(), xs.iter().sum::<i64>());
        assert!(r.depth >= wallace_depth(ops.len() as u32));
    }

    #[test]
    fn wallace_reduce_edge_cases() {
        let r = wallace_reduce(&[], 8);
        assert_eq!(r.pair.resolve(), 0);
        assert_eq!(r.depth, 0);
        let r = wallace_reduce(&[to_wrapped(-5, 8)], 8);
        assert_eq!(r.pair.resolve(), -5);
        let r = wallace_reduce(&[to_wrapped(-5, 8), to_wrapped(7, 8)], 8);
        assert_eq!(r.pair.resolve(), 2);
        assert_eq!(r.compressor_count, 0);
    }

    #[test]
    fn wallace_depth_sequence() {
        assert_eq!(wallace_depth(2), 0);
        assert_eq!(wallace_depth(3), 1);
        assert_eq!(wallace_depth(4), 2);
        assert_eq!(wallace_depth(6), 3);
        assert_eq!(wallace_depth(9), 4);
    }

    /// Wrapping semantics: compression is exact modulo 2^width even when the
    /// true sum overflows the width.
    #[test]
    fn wrapping_is_exact_mod_2w() {
        let (s, cy) = compress_3_2(0xFF, 0xFF, 0xFF, 8);
        let cs = CarrySave {
            sum: s,
            carry: cy,
            width: 8,
        };
        // 3 × 255 = 765 ≡ 253 (mod 256) → signed −3; and −1·3 = −3. Exact.
        assert_eq!(cs.resolve(), -3);
    }
}
