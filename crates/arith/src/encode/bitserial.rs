//! Radix-2 bit-serial digit decompositions (Eq. 3 of the paper).
//!
//! Bit-serial accelerators (Stripes, Pragmatic, Bitlet, ...) do not encode:
//! they iterate over the raw bit slices of the multiplicand. Two operand
//! representations are compared by the paper:
//!
//! * **Complement** — Eq. 3: `SubA_bw = a_bw · 2^bw`, except the MSB which
//!   carries weight `−2^(w−1)`. NumPPs equals the popcount of the
//!   two's-complement pattern, which is *high for small negative values*
//!   (e.g. −1 is all ones). This is the "cannot skip consecutive 1s"
//!   weakness the paper's QII highlights.
//! * **Sign-magnitude** — one digit per set bit of |A|, each carrying the
//!   operand's sign. Hardware must additionally process the sign slice;
//!   cycle accounting for that belongs to the analytics layer, not the
//!   digit decomposition.

use super::{Encoder, SignedDigit};
use crate::bits::{bit, fits_signed, sign_magnitude};

/// Radix-2 decomposition of the two's-complement representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitSerialComplement;

impl Encoder for BitSerialComplement {
    fn name(&self) -> &'static str {
        "bit-serial(C)"
    }

    fn radix(&self) -> u8 {
        2
    }

    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            fits_signed(value, width),
            "value {value} does not fit in {width} bits"
        );
        (0..width)
            .map(|i| {
                let b = bit(value, i) as i8;
                let coeff = if i == width - 1 { -b } else { b };
                SignedDigit::new(coeff, i as u8)
            })
            .collect()
    }
}

/// Radix-2 decomposition of the sign-magnitude representation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitSerialSignMagnitude;

impl Encoder for BitSerialSignMagnitude {
    fn name(&self) -> &'static str {
        "bit-serial(M)"
    }

    fn radix(&self) -> u8 {
        2
    }

    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            fits_signed(value, width),
            "value {value} does not fit in {width} bits"
        );
        let (sign, magnitude) = sign_magnitude(value);
        // |−2^(w−1)| needs bit position w−1, hence width digit positions
        // cover every representable value.
        (0..width)
            .map(|i| {
                let b = ((magnitude >> i) & 1) as i8;
                SignedDigit::new(b * sign as i8, i as u8)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::popcount_twos;
    use crate::encode::{decode, Encoder};

    /// Figure 2(B)'s bit-serial examples: 114, 15, 124 need 4, 4 and 5
    /// non-zero slices under the complement representation.
    #[test]
    fn fig2_bit_serial_examples() {
        assert_eq!(BitSerialComplement.num_pps(114, 8), 4);
        assert_eq!(BitSerialComplement.num_pps(15, 8), 4);
        assert_eq!(BitSerialComplement.num_pps(124, 8), 5);
    }

    /// NumPPs under the complement representation equals popcount of the
    /// two's-complement pattern.
    #[test]
    fn complement_numpps_is_popcount() {
        for v in i8::MIN..=i8::MAX {
            let v = i64::from(v);
            assert_eq!(
                BitSerialComplement.num_pps(v, 8),
                popcount_twos(v, 8) as usize
            );
        }
    }

    /// Small negative numbers are the pathological case: −1 takes 8 cycles.
    #[test]
    fn negative_one_is_worst_case() {
        assert_eq!(BitSerialComplement.num_pps(-1, 8), 8);
        assert_eq!(BitSerialSignMagnitude.num_pps(-1, 8), 1);
    }

    /// Table II (bit-serial row) groups NumPPs into buckets:
    /// {8,7}: 9, {6,5}: 84, {4}: 70, {3,2}: 84, {1,0}: 9.
    #[test]
    fn table2_bit_serial_buckets() {
        let mut hist = [0usize; 9];
        for v in i8::MIN..=i8::MAX {
            hist[BitSerialComplement.num_pps(i64::from(v), 8)] += 1;
        }
        assert_eq!(hist[8] + hist[7], 9);
        assert_eq!(hist[6] + hist[5], 84);
        assert_eq!(hist[4], 70);
        assert_eq!(hist[3] + hist[2], 84);
        assert_eq!(hist[1] + hist[0], 9);
    }

    #[test]
    fn sign_magnitude_roundtrip_includes_min() {
        for v in i8::MIN..=i8::MAX {
            let v = i64::from(v);
            assert_eq!(decode(&BitSerialSignMagnitude.encode(v, 8)), v);
        }
    }

    #[test]
    fn complement_msb_weight_is_negative() {
        let d = BitSerialComplement.encode(-128, 8);
        assert_eq!(d[7].coeff, -1);
        assert_eq!(d[7].weight, 7);
        assert_eq!(decode(&d), -128);
    }
}
