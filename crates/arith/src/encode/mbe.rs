//! Radix-4 modified Booth encoding (MBE).
//!
//! Implements Eq. 2 of the paper: for an `w`-bit two's-complement
//! multiplicand `A`, digit `bw` is
//!
//! ```text
//! d_bw = −2·a_{2bw+1} + a_{2bw} + a_{2bw−1}        (a_{−1} = 0)
//! ```
//!
//! producing ⌈w/2⌉ digits in {−2,−1,0,1,2} on even bit weights, so that
//! `A = Σ d_bw · 4^bw`. A radix-4 parallel multiplier reduces exactly these
//! ⌈w/2⌉ partial products; a serial PE spends one cycle per **non-zero**
//! digit.

use super::{Encoder, SignedDigit};
use crate::bits::{bit, fits_signed};

/// The classic radix-4 modified Booth encoder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MbeEncoder;

impl MbeEncoder {
    /// Number of radix-4 digits produced for a `width`-bit operand.
    pub fn digit_count(width: u32) -> u32 {
        width.div_ceil(2)
    }
}

impl Encoder for MbeEncoder {
    fn name(&self) -> &'static str {
        "MBE"
    }

    fn radix(&self) -> u8 {
        4
    }

    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            fits_signed(value, width),
            "value {value} does not fit in {width} bits"
        );
        let n = Self::digit_count(width);
        (0..n)
            .map(|i| {
                let hi = i64::from(bit(value, 2 * i + 1));
                let mid = i64::from(bit(value, 2 * i));
                let lo = if i == 0 {
                    0
                } else {
                    i64::from(bit(value, 2 * i - 1))
                };
                let coeff = (-2 * hi + mid + lo) as i8;
                SignedDigit::new(coeff, (2 * i) as u8)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{decode, num_pps};

    /// The paper's Figure 3 companion example: Booth digits of 91 are
    /// {1, 2, −1, −1} on weights 2^6, 2^4, 2^2, 2^0.
    #[test]
    fn mbe_91() {
        let d = MbeEncoder.encode(91, 8);
        let coeffs: Vec<i8> = d.iter().map(|d| d.coeff).collect();
        assert_eq!(coeffs, vec![-1, -1, 2, 1]);
        assert_eq!(decode(&d), 91);
    }

    /// 124 encodes as {2, 0, −1, 0}: `124·B = (2B<<6) + (−B<<2)`.
    #[test]
    fn mbe_124() {
        let d = MbeEncoder.encode(124, 8);
        let coeffs: Vec<i8> = d.iter().map(|d| d.coeff).collect();
        assert_eq!(coeffs, vec![0, -1, 0, 2]);
        assert_eq!(num_pps(&d), 2);
    }

    /// Positive powers of two of the form 2·4^k need two Booth digits
    /// (the (+1, −2) pattern EN-T later collapses).
    #[test]
    fn mbe_32_takes_two_digits() {
        assert_eq!(MbeEncoder.num_pps(32, 8), 2);
        assert_eq!(MbeEncoder.num_pps(-32, 8), 1);
    }

    /// Digit coefficients stay in the radix-4 Booth digit set.
    #[test]
    fn digit_set_is_booth() {
        for v in i8::MIN..=i8::MAX {
            for d in MbeEncoder.encode_i8(v) {
                assert!((-2..=2).contains(&d.coeff));
                assert_eq!(d.weight % 2, 0, "MBE digits sit on even weights");
            }
        }
    }

    /// Table II (MBE row): NumPPs histogram over the full INT8 range is
    /// {4: 81, 3: 108, 2: 54, 1: 12, 0: 1}.
    #[test]
    fn table2_mbe_histogram() {
        let mut hist = [0usize; 5];
        for v in i8::MIN..=i8::MAX {
            hist[MbeEncoder.num_pps(i64::from(v), 8)] += 1;
        }
        assert_eq!(hist, [1, 12, 54, 108, 81]);
    }

    #[test]
    fn odd_width_roundtrip() {
        for v in -64..64 {
            assert_eq!(decode(&MbeEncoder.encode(v, 7)), v);
        }
    }
}
