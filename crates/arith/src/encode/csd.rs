//! Canonical-signed-digit (NAF) recoding, grouped into radix-4 digits.
//!
//! The non-adjacent form (NAF) is the unique minimal-Hamming-weight signed
//! binary representation: digits in {−1, 0, 1} with no two adjacent
//! non-zeros. Grouping NAF digit pairs `(naf[2i+1], naf[2i])` yields radix-4
//! digits `naf[2i] + 2·naf[2i+1] ∈ {−2,−1,0,1,2}` — and because of
//! non-adjacency each non-zero NAF digit lands in its own radix-4 digit, so
//! the radix-4 NumPPs equals the NAF weight, i.e. it is *provably minimal*
//! among signed-digit radix-4 encodings.
//!
//! The paper does not evaluate CSD directly (its encoder needs full carry
//! propagation, unlike EN-T's one-bit-of-state recoder), but CSD provides
//! the digit-count lower bound used by the `ablate-encoders` experiment:
//! over INT8 it averages 2.777 digits versus EN-T's 2.918 and Booth's 3.0.

use super::{Encoder, SignedDigit};
use crate::bits::fits_signed;

/// NAF digits of `value`, LSB first, each in {−1, 0, 1}.
///
/// The expansion terminates when the residue reaches zero; for a `w`-bit
/// input at most `w + 1` digits are produced.
///
/// ```
/// use tpe_arith::encode::naf_digits;
/// // 7 = 8 − 1 → digits [−1, 0, 0, 1]
/// assert_eq!(naf_digits(7), vec![-1, 0, 0, 1]);
/// ```
pub fn naf_digits(value: i64) -> Vec<i8> {
    let mut x = i128::from(value);
    let mut digits = Vec::new();
    while x != 0 {
        if x & 1 != 0 {
            // Choose the residue in {−1, +1} that makes the next bit zero.
            let d = 2 - (x.rem_euclid(4)) as i8; // x%4 == 1 → +1, x%4 == 3 → −1
            digits.push(d);
            x -= i128::from(d);
        } else {
            digits.push(0);
        }
        x >>= 1;
    }
    digits
}

/// Radix-4 grouping of the canonical signed-digit (NAF) form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsdEncoder;

impl Encoder for CsdEncoder {
    fn name(&self) -> &'static str {
        "CSD"
    }

    fn radix(&self) -> u8 {
        4
    }

    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            fits_signed(value, width),
            "value {value} does not fit in {width} bits"
        );
        let naf = naf_digits(value);
        // NAF of a width-bit value spans at most width+1 positions; one
        // extra radix-4 digit accommodates the overflow position.
        let n = (width.div_ceil(2) + 1) as usize;
        let naf_at = |i: usize| -> i8 { naf.get(i).copied().unwrap_or(0) };
        (0..n)
            .map(|i| {
                let coeff = naf_at(2 * i) + 2 * naf_at(2 * i + 1);
                SignedDigit::new(coeff, (2 * i) as u8)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{decode, num_pps, Encoder, EntEncoder};

    #[test]
    fn naf_is_nonadjacent_and_exact() {
        for v in -2048i64..=2048 {
            let naf = naf_digits(v);
            let mut acc: i64 = 0;
            for (i, &d) in naf.iter().enumerate() {
                assert!((-1..=1).contains(&d));
                acc += i64::from(d) << i;
            }
            assert_eq!(acc, v);
            for w in naf.windows(2) {
                assert!(
                    w[0] == 0 || w[1] == 0,
                    "adjacent non-zeros in NAF({v}): {naf:?}"
                );
            }
        }
    }

    #[test]
    fn csd_roundtrip_i8() {
        for v in i8::MIN..=i8::MAX {
            assert_eq!(decode(&CsdEncoder.encode(i64::from(v), 8)), i64::from(v));
        }
    }

    /// CSD is minimal-weight, therefore never worse than EN-T.
    #[test]
    fn csd_never_worse_than_ent() {
        for v in i8::MIN..=i8::MAX {
            let v = i64::from(v);
            assert!(
                CsdEncoder.num_pps(v, 8) <= EntEncoder.num_pps(v, 8),
                "CSD worse than EN-T at {v}"
            );
        }
    }

    /// CSD's INT8 histogram: strictly tighter than EN-T's Table II row.
    #[test]
    fn csd_int8_histogram() {
        let mut hist = [0usize; 5];
        for v in i8::MIN..=i8::MAX {
            hist[CsdEncoder.num_pps(i64::from(v), 8)] += 1;
        }
        assert_eq!(hist, [1, 15, 72, 120, 48]);
    }

    /// Minimality: no other tested encoder produces fewer non-zero digits.
    #[test]
    fn csd_is_minimal_weight() {
        use crate::encode::MbeEncoder;
        for v in (-32768i64..=32767).step_by(7) {
            assert!(CsdEncoder.num_pps(v, 16) <= MbeEncoder.num_pps(v, 16));
        }
    }

    #[test]
    fn digit_set_is_radix4() {
        for v in i8::MIN..=i8::MAX {
            for d in CsdEncoder.encode_i8(v) {
                assert!((-2..=2).contains(&d.coeff));
            }
        }
    }

    #[test]
    fn zero_has_no_pps() {
        assert_eq!(num_pps(&CsdEncoder.encode(0, 8)), 0);
    }
}
