//! EN-T encoding: sign-magnitude radix-4 carry recoding.
//!
//! The paper adopts the EN-T encoder of its companion work (Wu et al.,
//! ICCD 2024) because it "skips consecutive '1' bit-slices, not only
//! zeros". The ICCD paper's RTL is not available here, but EN-T's
//! observable behaviour in *this* paper fully pins the algorithm down:
//!
//! * Figure 3 worked examples — 91 → {1, 2, −1, −1}, 124 → {2, 0, −1, 0};
//! * Figure 2(E) — 114, 15, 124 need 3, 2 and 2 partial products;
//! * Table II — INT8 NumPPs histogram {4: 72, 3: 108, 2: 60, 1: 15, 0: 1}.
//!
//! All three are reproduced **exactly** (see the tests) by the following
//! recoding, which is the implementation used throughout this workspace:
//!
//! 1. Take the magnitude |A| of the operand.
//! 2. Walk its bit pairs LSB-first with a carry: `t = pair + carry`.
//!    Emit digit `t` for `t ∈ {0, 1, 2}`; emit `−1` with carry for `t = 3`
//!    (a "11" pair is where consecutive ones get absorbed); emit `0` with
//!    carry for `t = 4`.
//! 3. Negate every digit if `A < 0`.
//!
//! Step 2 is what rewrites a run of ones `0111…1100…0` into one positive
//! digit at the top and one −1 at the bottom — the consecutive-ones
//! skipping the paper credits EN-T with. Unlike canonical signed digits the
//! recoding is purely local (one carry bit of state), so its encoder is a
//! thin combinational block; it is not always minimal (CSD averages 2.777
//! digits over INT8, EN-T 2.918, Booth 3.0).

use super::{Encoder, SignedDigit};
use crate::bits::fits_signed;

/// The EN-T encoder: sign-magnitude radix-4 carry recoding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EntEncoder;

impl Encoder for EntEncoder {
    fn name(&self) -> &'static str {
        "EN-T"
    }

    fn radix(&self) -> u8 {
        4
    }

    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        assert!((1..=32).contains(&width), "width {width} out of range");
        assert!(
            fits_signed(value, width),
            "value {value} does not fit in {width} bits"
        );
        let magnitude = value.unsigned_abs();
        let negative = value < 0;
        let n = width.div_ceil(2);
        let mut carry = 0u64;
        let mut digits = Vec::with_capacity(n as usize);
        for i in 0..n {
            let t = ((magnitude >> (2 * i)) & 3) + carry;
            let (d, c): (i8, u64) = match t {
                3 => (-1, 1),
                4 => (0, 1),
                t => (t as i8, 0),
            };
            let coeff = if negative { -d } else { d };
            digits.push(SignedDigit::new(coeff, (2 * i) as u8));
            carry = c;
        }
        // |value| ≤ 2^(width−1) guarantees the top pair never overflows.
        debug_assert_eq!(carry, 0, "EN-T carry escaped the top digit");
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{decode, num_pps, Encoder, MbeEncoder};

    /// Figure 3(A): 91 encodes as {1, 2, −1, −1} (MSB-first) — at most 4
    /// partial products.
    #[test]
    fn fig3_91() {
        let d = EntEncoder.encode(91, 8);
        let coeffs: Vec<i8> = d.iter().map(|d| d.coeff).collect();
        assert_eq!(coeffs, vec![-1, -1, 2, 1]);
        assert_eq!(decode(&d), 91);
        assert_eq!(num_pps(&d), 4);
    }

    /// Figure 3(B): 124 (binary 01111100, a consecutive-ones run) encodes
    /// as {2, 0, −1, 0} — only 2 partial products.
    #[test]
    fn fig3_124() {
        let d = EntEncoder.encode(124, 8);
        let coeffs: Vec<i8> = d.iter().map(|d| d.coeff).collect();
        assert_eq!(coeffs, vec![0, -1, 0, 2]);
        assert_eq!(num_pps(&d), 2);
    }

    /// The introduction's Figure 2(E) example set: 114, 15 and 124 need
    /// 3, 2 and 2 partial products under the proposed encoding (versus
    /// 4, 4, 5 non-zero slices under radix-2 bit-serial).
    #[test]
    fn fig2_examples() {
        assert_eq!(EntEncoder.num_pps(114, 8), 3);
        assert_eq!(EntEncoder.num_pps(15, 8), 2);
        assert_eq!(EntEncoder.num_pps(124, 8), 2);
    }

    /// Table II (EN-T row): the INT8 NumPPs histogram is
    /// {4: 72, 3: 108, 2: 60, 1: 15, 0: 1}.
    #[test]
    fn table2_ent_histogram() {
        let mut hist = [0usize; 5];
        for v in i8::MIN..=i8::MAX {
            hist[EntEncoder.num_pps(i64::from(v), 8)] += 1;
        }
        assert_eq!(hist, [1, 15, 60, 108, 72]);
    }

    /// §II-C: under EN-T, 184 of 256 INT8 values generate ≤3 non-zero PPs
    /// (71.9%), versus 175 (68.4%) under MBE.
    #[test]
    fn sec2c_low_pp_fractions() {
        let leq3 = |enc: &dyn Encoder| {
            (i8::MIN..=i8::MAX)
                .filter(|&v| enc.num_pps(i64::from(v), 8) <= 3)
                .count()
        };
        assert_eq!(leq3(&EntEncoder), 184);
        assert_eq!(leq3(&MbeEncoder), 175);
    }

    /// EN-T averages fewer digits than Booth over the INT8 range
    /// (747/256 ≈ 2.918 vs exactly 3.0).
    #[test]
    fn fewer_average_digits_than_mbe() {
        let total = |enc: &dyn Encoder| -> usize {
            (i8::MIN..=i8::MAX)
                .map(|v| enc.num_pps(i64::from(v), 8))
                .sum()
        };
        assert_eq!(total(&EntEncoder), 747);
        assert_eq!(total(&MbeEncoder), 768);
    }

    /// The consecutive-ones absorption fires on the `2·4^k` family that
    /// Booth handles with two digits.
    #[test]
    fn collapses_positive_even_powers() {
        for v in [2i64, 8, 32] {
            assert_eq!(EntEncoder.num_pps(v, 8), 1, "EN-T({v}) should be 1 PP");
            assert_eq!(MbeEncoder.num_pps(v, 8), 2, "MBE({v}) is 2 PPs");
        }
    }

    /// Digits remain in the radix-4 candidate set {−2..2} on even weights,
    /// so the same CPPG serves both MBE and EN-T.
    #[test]
    fn digit_set_unchanged() {
        for v in i8::MIN..=i8::MAX {
            for d in EntEncoder.encode_i8(v) {
                assert!((-2..=2).contains(&d.coeff));
                assert_eq!(d.weight % 2, 0);
            }
        }
    }

    /// Sign symmetry: NumPPs(−v) = NumPPs(v) (magnitude-based recoding).
    #[test]
    fn sign_symmetric() {
        for v in 1i64..=127 {
            assert_eq!(EntEncoder.num_pps(v, 8), EntEncoder.num_pps(-v, 8));
        }
    }

    /// INT8 minimum: −128 encodes as the single digit −2·4^3.
    #[test]
    fn int8_min_is_single_digit() {
        let d = EntEncoder.encode(-128, 8);
        assert_eq!(num_pps(&d), 1);
        assert_eq!(decode(&d), -128);
    }

    /// 16-bit round-trip with the carry recoder active.
    #[test]
    fn wide_roundtrip() {
        for v in (-32768i64..=32767).step_by(13) {
            assert_eq!(decode(&EntEncoder.encode(v, 16)), v);
        }
        assert_eq!(decode(&EntEncoder.encode(-32768, 16)), -32768);
    }
}
