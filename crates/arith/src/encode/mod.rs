//! Signed-digit encoders: the `encode` primitive of the paper's notation.
//!
//! Every multiplier decomposes its multiplicand `A` into *signed digits*
//! `SubA_bw` such that `A = Σ coeff_bw · 2^weight_bw` (Eq. 1). The digit set
//! and weight spacing depend on the encoding:
//!
//! | Encoder | Radix | Digit set | Digits for width *w* |
//! |---|---|---|---|
//! | [`MbeEncoder`] | 4 | {−2,−1,0,1,2} | ⌈w/2⌉ |
//! | [`EntEncoder`] | 4 | {−2,−1,0,1,2} | ⌈w/2⌉ |
//! | [`CsdEncoder`] | 4 (grouped NAF) | {−2,−1,0,1,2} | ⌈w/2⌉ + 1 |
//! | [`BitSerialComplement`] | 2 | {−1,0,1} | w |
//! | [`BitSerialSignMagnitude`] | 2 | {−1,0,1} | w (magnitude bits) |
//!
//! The number of **non-zero** digits (`NumPPs`) is the paper's central
//! cost metric: it is the number of partial products a parallel multiplier
//! must reduce, and the number of cycles a bit-serial PE spends per operand.

mod bitserial;
mod csd;
mod ent;
mod mbe;

pub use bitserial::{BitSerialComplement, BitSerialSignMagnitude};
pub use csd::{naf_digits, CsdEncoder};
pub use ent::EntEncoder;
pub use mbe::MbeEncoder;

use std::fmt;

/// One signed digit of an encoded multiplicand: the value `coeff << weight`.
///
/// `coeff` is the output of the encoder (selecting one of the candidate
/// partial products in the CPPG) and `weight` is the bit weight the selected
/// partial product must be shifted by (the `shift` primitive's argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignedDigit {
    /// Digit coefficient, in {−2, −1, 0, 1, 2} for radix-4 encoders and
    /// {−1, 0, 1} for radix-2.
    pub coeff: i8,
    /// Bit weight: the digit contributes `coeff * 2^weight`.
    pub weight: u8,
}

impl SignedDigit {
    /// Creates a digit contributing `coeff * 2^weight`.
    pub fn new(coeff: i8, weight: u8) -> Self {
        Self { coeff, weight }
    }

    /// The signed value this digit contributes.
    pub fn value(self) -> i64 {
        i64::from(self.coeff) << self.weight
    }

    /// Whether this digit generates a partial product at all.
    pub fn is_nonzero(self) -> bool {
        self.coeff != 0
    }
}

impl fmt::Display for SignedDigit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}·2^{}", self.coeff, self.weight)
    }
}

/// Decodes a digit vector back to the value it represents.
///
/// ```
/// use tpe_arith::encode::{decode, SignedDigit};
/// let digits = [SignedDigit::new(2, 6), SignedDigit::new(-1, 2)];
/// assert_eq!(decode(&digits), 124);
/// ```
pub fn decode(digits: &[SignedDigit]) -> i64 {
    digits.iter().map(|d| d.value()).sum()
}

/// Number of non-zero digits — the paper's `NumPPs` metric.
pub fn num_pps(digits: &[SignedDigit]) -> usize {
    digits.iter().filter(|d| d.is_nonzero()).count()
}

/// A signed-digit encoder for two's-complement multiplicands.
///
/// Implementations must satisfy, for every `value` fitting in `width` signed
/// bits: `decode(&encode(value, width)) == value`. This invariant is
/// enforced by property tests in this crate and is what makes every derived
/// architecture bit-exact.
pub trait Encoder {
    /// Short name used in reports ("MBE", "EN-T", ...).
    fn name(&self) -> &'static str;

    /// The encoding radix (2 for bit-serial, 4 for Booth-family encoders).
    fn radix(&self) -> u8;

    /// Encodes `value` (interpreted at `width` two's-complement bits) into
    /// signed digits, **including** zero digits so that positional structure
    /// is preserved. Digits are ordered by increasing weight.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` signed bits, or if `width`
    /// is 0 or greater than 32 (digit weights must stay in range).
    fn encode(&self, value: i64, width: u32) -> Vec<SignedDigit>;

    /// Convenience: encode an INT8 operand (the paper's primary data type).
    fn encode_i8(&self, value: i8) -> Vec<SignedDigit> {
        self.encode(i64::from(value), 8)
    }

    /// Non-zero digits only — the partial products that actually get
    /// generated (what the `sparse` primitive extracts).
    fn encode_nonzero(&self, value: i64, width: u32) -> Vec<SignedDigit> {
        self.encode(value, width)
            .into_iter()
            .filter(|d| d.is_nonzero())
            .collect()
    }

    /// `NumPPs` for one operand: how many partial products it generates.
    fn num_pps(&self, value: i64, width: u32) -> usize {
        num_pps(&self.encode(value, width))
    }
}

/// Enumerates the encoders the paper compares, for table-driven experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// Radix-4 modified Booth encoding.
    Mbe,
    /// EN-T: MBE with redundant ±1/∓2 digit-pair elimination.
    EnT,
    /// Canonical-signed-digit (NAF) digits grouped into radix-4.
    Csd,
    /// Radix-2 bit-serial over the two's-complement representation.
    BitSerialComplement,
    /// Radix-2 bit-serial over the sign-magnitude representation.
    BitSerialSignMagnitude,
}

impl EncodingKind {
    /// All encoder kinds in the order the paper's tables list them.
    pub const ALL: [EncodingKind; 5] = [
        EncodingKind::EnT,
        EncodingKind::Mbe,
        EncodingKind::Csd,
        EncodingKind::BitSerialComplement,
        EncodingKind::BitSerialSignMagnitude,
    ];

    /// Returns the encoder implementation for this kind.
    pub fn encoder(self) -> Box<dyn Encoder> {
        match self {
            EncodingKind::Mbe => Box::new(MbeEncoder),
            EncodingKind::EnT => Box::new(EntEncoder),
            EncodingKind::Csd => Box::new(CsdEncoder),
            EncodingKind::BitSerialComplement => Box::new(BitSerialComplement),
            EncodingKind::BitSerialSignMagnitude => Box::new(BitSerialSignMagnitude),
        }
    }
}

impl fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            EncodingKind::Mbe => "MBE",
            EncodingKind::EnT => "EN-T",
            EncodingKind::Csd => "CSD",
            EncodingKind::BitSerialComplement => "bit-serial(C)",
            EncodingKind::BitSerialSignMagnitude => "bit-serial(M)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every encoder must round-trip every INT8 value.
    #[test]
    fn all_encoders_roundtrip_i8() {
        for kind in EncodingKind::ALL {
            let enc = kind.encoder();
            for v in i8::MIN..=i8::MAX {
                let digits = enc.encode(i64::from(v), 8);
                assert_eq!(
                    decode(&digits),
                    i64::from(v),
                    "{} failed to round-trip {v}: {digits:?}",
                    enc.name()
                );
            }
        }
    }

    /// Every encoder must round-trip a sample of INT16 values.
    #[test]
    fn all_encoders_roundtrip_i16_sample() {
        for kind in EncodingKind::ALL {
            let enc = kind.encoder();
            for v in (-32768i64..=32767).step_by(97) {
                let digits = enc.encode(v, 16);
                assert_eq!(decode(&digits), v, "{} failed on {v}", enc.name());
            }
        }
    }

    #[test]
    fn nonzero_filters_zeros() {
        let enc = MbeEncoder;
        let nz = enc.encode_nonzero(124, 8);
        assert!(nz.iter().all(|d| d.is_nonzero()));
        assert_eq!(decode(&nz), 124);
    }

    #[test]
    fn digit_display() {
        assert_eq!(SignedDigit::new(-2, 4).to_string(), "-2·2^4");
    }
}
