//! Operand precision: the bit widths of a MAC's two operands and its
//! accumulator.
//!
//! The paper's reference configuration is INT8 × INT8 → INT32, but every
//! encoder in this crate is width-generic and the bit-weight
//! transformations pay off *more* at low precision (fewer digit slots per
//! operand → fewer serial cycles; narrower accumulators → cheaper
//! reduction). [`Precision`] is the workspace-wide description of that
//! axis: `a_bits` is the width of the **encoded multiplicand** (weights),
//! `b_bits` the width of the streamed multiplier (activations), and
//! `acc_bits` the accumulator the reduction resolves into.
//!
//! The presets cover the deployment points the low-bit literature studies:
//! symmetric [`Precision::W4`] / [`Precision::W8`] / [`Precision::W16`]
//! plus the asymmetric [`Precision::W8X4`] (8-bit weights × 4-bit
//! activations). [`Precision::W8`] is the default everywhere and
//! reproduces the paper's configuration bit-for-bit.

use std::fmt;

/// Operand/accumulator bit widths of a MAC datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Width of the encoded multiplicand operand (the one decomposed into
    /// signed digits — weights in the paper's mapping).
    pub a_bits: u32,
    /// Width of the multiplier operand (streamed into the CPPG —
    /// activations in the paper's mapping).
    pub b_bits: u32,
    /// Accumulator width the reduction resolves into.
    pub acc_bits: u32,
}

impl Precision {
    /// INT4 × INT4 → INT16.
    pub const W4: Precision = Precision {
        a_bits: 4,
        b_bits: 4,
        acc_bits: 16,
    };

    /// INT8 × INT8 → INT32 — the paper's configuration and the workspace
    /// default.
    pub const W8: Precision = Precision {
        a_bits: 8,
        b_bits: 8,
        acc_bits: 32,
    };

    /// INT16 × INT16 → INT64.
    pub const W16: Precision = Precision {
        a_bits: 16,
        b_bits: 16,
        acc_bits: 64,
    };

    /// Asymmetric 8-bit weights × 4-bit activations → INT24.
    pub const W8X4: Precision = Precision {
        a_bits: 8,
        b_bits: 4,
        acc_bits: 24,
    };

    /// The named presets, in ascending multiplicand width.
    pub const PRESETS: [Precision; 4] = [
        Precision::W4,
        Precision::W8X4,
        Precision::W8,
        Precision::W16,
    ];

    /// A validated precision.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ a_bits, b_bits ≤ 16` (1-bit operands have no
    /// signed range, so the quantized-normal digit statistics degenerate),
    /// `acc_bits ≤ 64` and the accumulator holds at least one full
    /// product (`acc_bits ≥ a + b`).
    pub fn new(a_bits: u32, b_bits: u32, acc_bits: u32) -> Self {
        assert!(
            (2..=16).contains(&a_bits) && (2..=16).contains(&b_bits),
            "operand widths {a_bits}x{b_bits} out of the supported 2..=16 range"
        );
        assert!(
            acc_bits >= a_bits + b_bits && acc_bits <= 64,
            "accumulator width {acc_bits} must cover one {a_bits}x{b_bits} product and fit u64"
        );
        Self {
            a_bits,
            b_bits,
            acc_bits,
        }
    }

    /// Whether this is the paper's default [`Precision::W8`] configuration
    /// (labels omit the suffix for it).
    pub fn is_default(self) -> bool {
        self == Precision::W8
    }

    /// Radix-4 digit slots of the encoded multiplicand (⌈a/2⌉) — the
    /// partial-product count of a parallel Booth-family multiplier and the
    /// worst-case serial digit stream of the radix-4 encoders.
    pub fn digits(self) -> u32 {
        self.a_bits.div_ceil(2)
    }

    /// Width of one full product (`a_bits + b_bits`).
    pub fn product_bits(self) -> u32 {
        self.a_bits + self.b_bits
    }

    /// Stable display label: `W4` / `W8` / `W16` for the symmetric
    /// `{n, n, 4n}` family, `W8xW4` for the asymmetric preset, and the
    /// fully-spelled `W{a}xW{b}a{acc}` otherwise. [`Precision::parse`]
    /// round-trips every label this emits.
    pub fn label(self) -> String {
        if self == Precision::W8X4 {
            return "W8xW4".into();
        }
        if self.a_bits == self.b_bits && self.acc_bits == 4 * self.a_bits {
            return format!("W{}", self.a_bits);
        }
        format!("W{}xW{}a{}", self.a_bits, self.b_bits, self.acc_bits)
    }

    /// Parses a precision label, case-insensitively: `w4`-style symmetric
    /// names (`{n, n, 4n}`), `w8xw4` for the asymmetric preset, and the
    /// generic `w{a}xw{b}a{acc}` form. Returns `None` for anything that is
    /// not a valid precision.
    pub fn parse(s: &str) -> Option<Precision> {
        let s = s.to_ascii_lowercase();
        if s == "w8xw4" {
            return Some(Precision::W8X4);
        }
        let rest = s.strip_prefix('w')?;
        if let Ok(n) = rest.parse::<u32>() {
            if (2..=16).contains(&n) {
                return Some(Precision::new(n, n, 4 * n));
            }
            return None;
        }
        // Generic w{a}xw{b}a{acc}.
        let (a_str, tail) = rest.split_once("xw")?;
        let (b_str, acc_str) = tail.split_once('a')?;
        let (a, b, acc) = (
            a_str.parse().ok()?,
            b_str.parse().ok()?,
            acc_str.parse().ok()?,
        );
        if !(2..=16).contains(&a) || !(2..=16).contains(&b) || acc < a + b || acc > 64 {
            return None;
        }
        Some(Precision::new(a, b, acc))
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::W8
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_default_is_w8() {
        for p in Precision::PRESETS {
            let v = Precision::new(p.a_bits, p.b_bits, p.acc_bits);
            assert_eq!(v, p);
        }
        assert_eq!(Precision::default(), Precision::W8);
        assert!(Precision::W8.is_default());
        assert!(!Precision::W4.is_default());
        assert_eq!(Precision::W8.digits(), 4);
        assert_eq!(Precision::W16.product_bits(), 32);
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for p in Precision::PRESETS {
            assert_eq!(Precision::parse(&p.label()), Some(p), "{}", p.label());
        }
        let odd = Precision::new(6, 10, 28);
        assert_eq!(odd.label(), "W6xW10a28");
        assert_eq!(Precision::parse(&odd.label()), Some(odd));
        // Case-insensitive.
        assert_eq!(Precision::parse("w16"), Some(Precision::W16));
        assert_eq!(Precision::parse("W8XW4"), Some(Precision::W8X4));
    }

    #[test]
    fn parse_rejects_nonsense() {
        for bad in [
            "", "w", "w0", "w1", "w17", "x8", "w8x4", "w4xw4a6", "w1xw4a8", "8", "W4.5",
        ] {
            assert!(Precision::parse(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn accumulator_must_cover_a_product() {
        Precision::new(8, 8, 12);
    }

    #[test]
    fn preset_labels_are_stable() {
        assert_eq!(Precision::W4.label(), "W4");
        assert_eq!(Precision::W8.label(), "W8");
        assert_eq!(Precision::W16.label(), "W16");
        assert_eq!(Precision::W8X4.label(), "W8xW4");
    }
}
