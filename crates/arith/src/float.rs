//! Floating-point PE substrate: the Bucket accumulation scheme of
//! Figure 2(G).
//!
//! The paper positions its integer work against Bucket Getter (MICRO'23),
//! which attacks the *floating-point* flavor of the same bottleneck: FP
//! accumulation needs an align–add–normalize loop every cycle, so the
//! FP-accumulator dominates PE delay and power. The bucket scheme converts
//! the reduction into **fixed-point accumulation** inside a wide bucket,
//! normalizing once at the end — structurally the same move as OPT1's
//! "defer the carry-propagating add".
//!
//! This module provides a bit-accurate bfloat16-style format ([`Bf16`]),
//! exact product formation, and the two accumulation datapaths:
//!
//! * [`FpSequentialAccumulator`] — classic FP adds, one normalization per
//!   element (the Figure 2(G) "high activity" path);
//! * [`BucketAccumulator`] — one wide fixed-point bucket, one final
//!   normalization (the "low activity" path). Accumulation is *exact*
//!   (error-free) within the bucket range, so it is simultaneously faster
//!   hardware and numerically better — which the tests verify.

use crate::csa::CsAccumulator;

/// Mantissa bits of the bfloat16-style format (excluding the hidden one).
pub const MANT_BITS: u32 = 7;
/// Exponent bias.
pub const BIAS: i32 = 127;

/// A bfloat16-style float: 1 sign, 8 exponent, 7 mantissa bits.
///
/// Subnormals flush to zero and infinities/NaNs are rejected at
/// construction — DNN inference datapaths (and the paper's PEs) handle
/// normal numbers and zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bf16 {
    /// Sign: −1 or +1.
    sign: i8,
    /// Biased exponent, 0 = zero value, else 1..=254.
    exp: u8,
    /// Mantissa without the hidden bit (7 bits).
    mant: u8,
}

impl Bf16 {
    /// Zero.
    pub const ZERO: Bf16 = Bf16 {
        sign: 1,
        exp: 0,
        mant: 0,
    };

    /// Quantizes an `f32` to the nearest representable value
    /// (round-to-nearest-even on the mantissa).
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f32(x: f32) -> Self {
        assert!(x.is_finite(), "Bf16 models finite arithmetic only");
        if x == 0.0 {
            return Self::ZERO;
        }
        let bits = x.to_bits();
        let sign = if bits >> 31 == 1 { -1 } else { 1 };
        // Round f32's 23-bit mantissa to 7 bits (round-half-to-even).
        let mut exp = ((bits >> 23) & 0xFF) as i32;
        let mant23 = bits & 0x7F_FFFF;
        let shift = 23 - MANT_BITS;
        let lower = mant23 & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut mant = mant23 >> shift;
        if lower > half || (lower == half && mant & 1 == 1) {
            mant += 1;
            if mant == 1 << MANT_BITS {
                mant = 0;
                exp += 1;
            }
        }
        if exp <= 0 {
            return Self::ZERO; // flush subnormals
        }
        assert!(exp < 255, "overflow to infinity");
        Self {
            sign,
            exp: exp as u8,
            mant: mant as u8,
        }
    }

    /// The exact `f64` value.
    pub fn to_f64(self) -> f64 {
        if self.exp == 0 {
            return 0.0;
        }
        let significand = f64::from(self.mant) / f64::from(1u32 << MANT_BITS) + 1.0;
        f64::from(self.sign) * significand * 2f64.powi(i32::from(self.exp) - BIAS)
    }

    /// Whether this is zero.
    pub fn is_zero(self) -> bool {
        self.exp == 0
    }

    /// The significand including the hidden bit (8 bits), signed.
    fn signed_significand(self) -> i64 {
        if self.exp == 0 {
            0
        } else {
            i64::from(self.sign) * (i64::from(self.mant) | (1 << MANT_BITS))
        }
    }
}

/// An exact product of two [`Bf16`] values: a 16-bit significand at a
/// power-of-two scale (the fixed-point multiplication block of
/// Figure 2(G)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpProduct {
    /// Signed significand product (fits 16 bits + sign).
    pub significand: i64,
    /// Scale: the value is `significand · 2^scale`.
    pub scale: i32,
}

/// Multiplies exactly (no rounding: 8 × 8 significand bits fit easily).
pub fn multiply(a: Bf16, b: Bf16) -> FpProduct {
    if a.is_zero() || b.is_zero() {
        return FpProduct {
            significand: 0,
            scale: 0,
        };
    }
    FpProduct {
        significand: a.signed_significand() * b.signed_significand(),
        scale: i32::from(a.exp) + i32::from(b.exp) - 2 * BIAS - 2 * MANT_BITS as i32,
    }
}

/// Statistics of an accumulation run — what the energy model prices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FpStats {
    /// Align–add–normalize FP operations.
    pub fp_normalizations: u64,
    /// Fixed-point (compressor) accumulations.
    pub fixed_adds: u64,
}

/// Classic sequential FP accumulation at bf16-accumulator precision: every
/// element aligns, adds and re-normalizes through the FP accumulator.
#[derive(Debug, Clone, Copy)]
pub struct FpSequentialAccumulator {
    acc: f64,
    stats: FpStats,
}

impl Default for FpSequentialAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl FpSequentialAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            acc: 0.0,
            stats: FpStats::default(),
        }
    }

    /// Adds one product, rounding the running sum to bf16-style precision
    /// after every add (the per-cycle normalize).
    pub fn add(&mut self, p: FpProduct) {
        let addend = p.significand as f64 * 2f64.powi(p.scale);
        let exact = self.acc + addend;
        // Round the running sum to the accumulator's 8-bit significand.
        self.acc = if exact == 0.0 {
            0.0
        } else {
            Bf16::from_f32(exact as f32).to_f64()
        };
        self.stats.fp_normalizations += 1;
    }

    /// The accumulated value.
    pub fn value(&self) -> f64 {
        self.acc
    }

    /// Datapath statistics.
    pub fn stats(&self) -> FpStats {
        self.stats
    }
}

/// Bucket accumulation: products align into one wide fixed-point bucket
/// (here 2·MANT+1 fractional bits below `2^MIN_SCALE`, 64 bits total,
/// carry-save), with a single normalization at the end.
#[derive(Debug, Clone, Copy)]
pub struct BucketAccumulator {
    acc: CsAccumulator,
    /// The fixed exponent of the bucket's LSB.
    lsb_scale: i32,
    stats: FpStats,
}

impl BucketAccumulator {
    /// Creates a bucket whose least significant bit sits at `2^lsb_scale`.
    /// Products whose scale is below the LSB lose the sub-LSB bits
    /// (standard bucket behaviour); choose `lsb_scale` from the workload's
    /// minimum product exponent for exactness.
    pub fn new(lsb_scale: i32) -> Self {
        Self {
            acc: CsAccumulator::new(64),
            lsb_scale,
            stats: FpStats::default(),
        }
    }

    /// A bucket sized for products of values in `[2^min_exp, 2^max_exp)` —
    /// exact for bf16 products of that range.
    pub fn for_exponent_range(min_exp: i32) -> Self {
        // Product scale floor: 2·(min_exp − MANT_BITS).
        Self::new(2 * (min_exp - MANT_BITS as i32))
    }

    /// Accumulates one product through the compressor (no carry chain, no
    /// normalization).
    pub fn add(&mut self, p: FpProduct) {
        if p.significand == 0 {
            return;
        }
        let shift = p.scale - self.lsb_scale;
        let fixed = if shift >= 0 {
            p.significand << shift.min(62)
        } else {
            // Sub-LSB truncation (round toward zero).
            p.significand >> (-shift).min(62)
        };
        self.acc.accumulate_value(fixed);
        self.stats.fixed_adds += 1;
    }

    /// Resolves the bucket and normalizes once.
    pub fn value(&mut self) -> f64 {
        self.stats.fp_normalizations += 1;
        self.acc.resolve() as f64 * 2f64.powi(self.lsb_scale)
    }

    /// Datapath statistics.
    pub fn stats(&self) -> FpStats {
        self.stats
    }
}

/// Exact reference: f64 sum of exact products.
pub fn reference_dot(a: &[Bf16], b: &[Bf16]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let p = multiply(x, y);
            p.significand as f64 * 2f64.powi(p.scale)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[test]
    fn roundtrip_simple_values() {
        for x in [1.0f32, -2.5, 0.0, 96.0, 0.0078125, -1.0] {
            let v = bf(x);
            assert_eq!(v.to_f64(), f64::from(x), "{x}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + 2^-8 rounds down to 1.0 (tie to even); 1 + 3·2^-9 rounds up.
        assert_eq!(bf(1.0 + 1.0 / 256.0).to_f64(), 1.0);
        assert!(bf(1.0 + 3.0 / 512.0).to_f64() > 1.0);
    }

    #[test]
    fn products_are_exact() {
        for (x, y) in [(1.5f32, -2.25f32), (96.0, 0.031_25), (-0.625, -0.625)] {
            let p = multiply(bf(x), bf(y));
            let val = p.significand as f64 * 2f64.powi(p.scale);
            assert_eq!(val, f64::from(x) * f64::from(y), "{x}×{y}");
        }
    }

    #[test]
    fn zero_handling() {
        assert!(bf(0.0).is_zero());
        assert_eq!(multiply(bf(0.0), bf(5.0)).significand, 0);
        // Subnormal flush.
        assert!(bf(1e-40).is_zero());
    }

    /// The bucket accumulates *exactly* (within its window) while the
    /// sequential FP accumulator loses low-order bits — the numerical side
    /// of the Figure 2(G) trade.
    #[test]
    fn bucket_beats_sequential_accuracy() {
        // Values spanning a few binades around 1.0.
        let a: Vec<Bf16> = (0..512)
            .map(|i| bf(((i % 17) as f32 - 8.0) * 0.125 + 0.0625))
            .collect();
        let b: Vec<Bf16> = (0..512)
            .map(|i| bf(((i % 23) as f32 - 11.0) * 0.25))
            .collect();
        let exact = reference_dot(&a, &b);

        let mut seq = FpSequentialAccumulator::new();
        let mut bucket = BucketAccumulator::for_exponent_range(-8);
        for (&x, &y) in a.iter().zip(&b) {
            let p = multiply(x, y);
            seq.add(p);
            bucket.add(p);
        }
        let bucket_err = (bucket.value() - exact).abs();
        let seq_err = (seq.value() - exact).abs();
        assert_eq!(bucket_err, 0.0, "bucket is exact within its window");
        assert!(seq_err > 0.0, "bf16 sequential accumulation must round");
    }

    /// The structural claim: one normalization total versus one per
    /// element.
    #[test]
    fn bucket_normalizes_once() {
        let a: Vec<Bf16> = (1..=100).map(|i| bf(i as f32 / 16.0)).collect();
        let mut seq = FpSequentialAccumulator::new();
        let mut bucket = BucketAccumulator::for_exponent_range(-4);
        for &x in &a {
            let p = multiply(x, bf(1.0));
            seq.add(p);
            bucket.add(p);
        }
        let _ = bucket.value();
        assert_eq!(seq.stats().fp_normalizations, 100);
        assert_eq!(bucket.stats().fp_normalizations, 1);
        assert_eq!(bucket.stats().fixed_adds, 100);
    }

    /// Bucket value equals the exact sum for integer-valued inputs
    /// regardless of ordering (fixed-point associativity), while
    /// sequential FP accumulation is order-dependent.
    #[test]
    fn bucket_is_order_independent() {
        let mut vals: Vec<Bf16> = (1..=64).map(|i| bf(i as f32)).collect();
        let dot = |xs: &[Bf16], bucket: bool| -> f64 {
            let mut b = BucketAccumulator::for_exponent_range(0);
            let mut s = FpSequentialAccumulator::new();
            for &x in xs {
                let p = multiply(x, bf(1.0));
                if bucket {
                    b.add(p);
                } else {
                    s.add(p);
                }
            }
            if bucket {
                b.value()
            } else {
                s.value()
            }
        };
        let fwd = dot(&vals, true);
        vals.reverse();
        let rev = dot(&vals, true);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, (1..=64).sum::<i32>() as f64);
    }
}
