//! Carry-save accumulator: OPT1's replacement for the `add` + `accumulate`
//! pair.
//!
//! The traditional MAC resolves its compressor tree with a full adder and
//! accumulates the resolved value every cycle (Figure 5(A), lines 14–15).
//! OPT1 observes that the resolved value is not needed until the K-loop
//! finishes, so it keeps the running value *redundant*: each cycle a 4-2
//! compressor folds the new (sum, carry) contribution into the accumulated
//! (acc_s, acc_c) pair stored in DFFs. The single carry-propagating add
//! happens once per K reduction, in the external SIMD vector core.

use crate::bits::{fits_signed, mask, to_wrapped};
use crate::compressor::{compress_3_2, compress_4_2, CarrySave};

/// A carry-save accumulator of fixed width.
///
/// ```
/// use tpe_arith::csa::CsAccumulator;
///
/// let mut acc = CsAccumulator::new(32);
/// for v in [100, -3, 77, -1000] {
///     acc.accumulate_value(v);
/// }
/// assert_eq!(acc.resolve(), 100 - 3 + 77 - 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsAccumulator {
    state: CarrySave,
    ops: u64,
}

impl CsAccumulator {
    /// Creates an empty accumulator of `width` bits (1..=64).
    pub fn new(width: u32) -> Self {
        Self {
            state: CarrySave::zero(width),
            ops: 0,
        }
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.state.width
    }

    /// Number of accumulate operations performed since construction/reset.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// The redundant state currently held in the accumulator DFFs.
    pub fn state(&self) -> CarrySave {
        self.state
    }

    /// Folds an incoming carry-save pair into the accumulator through one
    /// 4-2 compressor stage — the per-cycle OPT1 operation.
    pub fn accumulate_pair(&mut self, sum: u64, carry: u64) {
        let w = self.state.width;
        let (s, c) = compress_4_2(
            self.state.sum,
            self.state.carry,
            sum & mask(w),
            carry & mask(w),
            w,
        );
        self.state.sum = s;
        self.state.carry = c;
        self.ops += 1;
    }

    /// Folds a single (non-redundant) word in through a 3-2 compressor.
    pub fn accumulate_word(&mut self, word: u64) {
        let w = self.state.width;
        let (s, c) = compress_3_2(self.state.sum, self.state.carry, word & mask(w), w);
        self.state.sum = s;
        self.state.carry = c;
        self.ops += 1;
    }

    /// Convenience: accumulate a signed value.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the accumulator width.
    pub fn accumulate_value(&mut self, value: i64) {
        assert!(
            fits_signed(value, self.state.width),
            "value {value} exceeds accumulator width {}",
            self.state.width
        );
        self.accumulate_word(to_wrapped(value, self.state.width));
    }

    /// Resolves the redundant state to a signed value (the deferred full
    /// add). The accumulator keeps its state; callers reset explicitly.
    pub fn resolve(&self) -> i64 {
        self.state.resolve()
    }

    /// Clears the accumulator for the next output element.
    pub fn reset(&mut self) {
        self.state = CarrySave::zero(self.state.width);
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_long_dot_product_exactly() {
        let mut acc = CsAccumulator::new(32);
        let mut expected: i64 = 0;
        // K = 4096 INT8×INT8 products: worst-case magnitude fits 32 bits.
        let mut x: i64 = 17;
        for k in 0..4096i64 {
            x = (x.wrapping_mul(1103515245).wrapping_add(12345)) % 128;
            let a = x - 64;
            let b = ((k * 37) % 255) - 127;
            expected += a * b;
            acc.accumulate_value(a * b);
        }
        assert_eq!(acc.resolve(), expected);
    }

    #[test]
    fn pair_accumulation_matches_value_accumulation() {
        let mut by_pair = CsAccumulator::new(24);
        let mut by_value = CsAccumulator::new(24);
        for v in [-300i64, 17, 123, -9999, 42] {
            let w = to_wrapped(v, 24);
            // Split v into an arbitrary redundant pair: (v − 5) + 5.
            by_pair.accumulate_pair(to_wrapped(v - 5, 24), to_wrapped(5, 24));
            by_value.accumulate_word(w);
        }
        assert_eq!(by_pair.resolve(), by_value.resolve());
    }

    #[test]
    fn reset_clears_state_and_count() {
        let mut acc = CsAccumulator::new(20);
        acc.accumulate_value(1234);
        acc.reset();
        assert_eq!(acc.resolve(), 0);
        assert_eq!(acc.op_count(), 0);
    }

    #[test]
    fn negative_accumulation_wraps_correctly() {
        let mut acc = CsAccumulator::new(20);
        for _ in 0..1000 {
            acc.accumulate_value(-500);
        }
        assert_eq!(acc.resolve(), -500_000);
    }

    #[test]
    #[should_panic(expected = "exceeds accumulator width")]
    fn rejects_oversized_value() {
        CsAccumulator::new(8).accumulate_value(200);
    }
}
