//! Complete multiply–accumulate datapaths.
//!
//! Two MAC organizations are modeled, mirroring Figure 5(C)/(D):
//!
//! * [`TraditionalMac`] — the TPU-like three-stage MAC: encode → partial
//!   products → compressor tree → **full adder → high-width accumulator**.
//!   The resolved accumulation happens every cycle, putting the
//!   width-dependent carry chain on the critical path (QI).
//! * [`CompressAccMac`] — the OPT1 datapath: encode → partial products →
//!   compressor tree → **4-2 compressor accumulation** in carry-save form;
//!   the full add happens once, at the end of the reduction.
//!
//! Both are bit-exact; the difference is purely structural (what sits on the
//! per-cycle critical path), which the cost model prices.

use crate::bits::{fits_signed, mask};
use crate::compressor::{wallace_reduce, CarrySave};
use crate::csa::CsAccumulator;
use crate::encode::{Encoder, SignedDigit};

/// One partial product `(coeff · b) << weight` as a `width`-bit
/// two's-complement pattern, with **hardware wrap semantics**: at wide
/// operand precisions an individual partial product can exceed the
/// accumulator's signed range (a 16-bit operand's top digit against a
/// 32-bit accumulator, say) and the datapath simply keeps the low `width`
/// bits — modular arithmetic makes the resolved dot product come out
/// right regardless. The previous implementation asserted the shifted
/// value fit `width` signed bits (a panic real hardware has no analogue
/// of) and clamped the shift at 62, which mis-wraps weights ≥ 63 against
/// a 64-bit accumulator; shifting in the u64 pattern domain is exact for
/// every weight.
fn wrap_pp(digit: SignedDigit, b: i64, width: u32) -> u64 {
    if digit.weight >= 64 {
        // 2^weight ≡ 0 (mod 2^width) for any width ≤ 64.
        return 0;
    }
    ((i64::from(digit.coeff).wrapping_mul(b) as u64) << digit.weight) & mask(width)
}

/// Per-operation structural statistics shared by both MAC flavors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Multiply–accumulate operations executed.
    pub macs: u64,
    /// Partial products generated (including zero digits for parallel MACs).
    pub partial_products: u64,
    /// Non-zero partial products (what sparse datapaths would process).
    pub nonzero_partial_products: u64,
    /// Carry-propagating full adds performed.
    pub full_adds: u64,
}

/// The traditional parallel MAC (Figure 2(A)): resolves its compressor tree
/// with a full adder and accumulates the resolved value every cycle.
#[derive(Debug)]
pub struct TraditionalMac<E: Encoder> {
    encoder: E,
    acc_width: u32,
    acc: i64,
    stats: MacStats,
}

impl<E: Encoder> TraditionalMac<E> {
    /// Creates a MAC with the given multiplicand encoder and accumulator
    /// width (e.g. 32 for the paper's INT8-mul/INT32-acc configuration).
    pub fn new(encoder: E, acc_width: u32) -> Self {
        assert!((2..=64).contains(&acc_width));
        Self {
            encoder,
            acc_width,
            acc: 0,
            stats: MacStats::default(),
        }
    }

    /// One MAC cycle: `acc += a × b` with `a` encoded at `a_width` bits.
    pub fn mac(&mut self, a: i64, b: i64, a_width: u32) {
        let digits = self.encoder.encode(a, a_width);
        let pps: Vec<u64> = digits
            .iter()
            .map(|d| wrap_pp(*d, b, self.acc_width))
            .collect();
        self.stats.partial_products += pps.len() as u64;
        self.stats.nonzero_partial_products +=
            digits.iter().filter(|d| d.is_nonzero()).count() as u64;
        // ❷ compressor tree over the PPs, ❸ full add + accumulate.
        let reduced = wallace_reduce(&pps, self.acc_width);
        let product = reduced.pair.resolve();
        self.stats.full_adds += 1;
        // Wrapping add: at a 64-bit accumulator the sum itself can wrap.
        self.acc = wrap_acc(self.acc.wrapping_add(product), self.acc_width);
        self.stats.macs += 1;
    }

    /// The accumulated value.
    pub fn value(&self) -> i64 {
        self.acc
    }

    /// Structural statistics so far.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Clears the accumulator for the next output element.
    pub fn reset(&mut self) {
        self.acc = 0;
    }
}

/// The OPT1 MAC (Figure 5(D)): the compressor tree's (sum, carry) output is
/// folded straight into a carry-save accumulator; one full add resolves the
/// result after the whole reduction.
#[derive(Debug)]
pub struct CompressAccMac<E: Encoder> {
    encoder: E,
    acc: CsAccumulator,
    stats: MacStats,
}

impl<E: Encoder> CompressAccMac<E> {
    /// Creates the OPT1-style MAC at the given accumulator width.
    pub fn new(encoder: E, acc_width: u32) -> Self {
        Self {
            encoder,
            acc: CsAccumulator::new(acc_width),
            stats: MacStats::default(),
        }
    }

    /// One MAC cycle — no carry propagation anywhere on this path.
    pub fn mac(&mut self, a: i64, b: i64, a_width: u32) {
        let w = self.acc.width();
        let digits = self.encoder.encode(a, a_width);
        let pps: Vec<u64> = digits.iter().map(|d| wrap_pp(*d, b, w)).collect();
        self.stats.partial_products += pps.len() as u64;
        self.stats.nonzero_partial_products +=
            digits.iter().filter(|d| d.is_nonzero()).count() as u64;
        let reduced = wallace_reduce(&pps, w);
        self.acc
            .accumulate_pair(reduced.pair.sum, reduced.pair.carry);
        self.stats.macs += 1;
    }

    /// The redundant carry-save state (what the PE's DFFs hold).
    pub fn state(&self) -> CarrySave {
        self.acc.state()
    }

    /// Resolves the accumulation with the single deferred full add.
    pub fn resolve(&mut self) -> i64 {
        self.stats.full_adds += 1;
        self.acc.resolve()
    }

    /// Structural statistics so far.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Clears the accumulator for the next output element.
    pub fn reset(&mut self) {
        self.acc.reset();
    }
}

/// Serially processed MAC over non-zero digits: the OPT3-style datapath.
/// Each call processes **one** non-zero partial product; the caller supplies
/// the digit (from the sparse encoder) and the multiplier.
#[derive(Debug)]
pub struct SerialDigitMac {
    acc: CsAccumulator,
    cycles: u64,
}

impl SerialDigitMac {
    /// Creates the serial MAC at the given accumulator width.
    pub fn new(acc_width: u32) -> Self {
        Self {
            acc: CsAccumulator::new(acc_width),
            cycles: 0,
        }
    }

    /// Processes one non-zero digit × multiplier in one cycle through the
    /// 3-2 compressor (Figure 7(C) step ❸).
    pub fn step(&mut self, digit: SignedDigit, b: i64) {
        debug_assert!(digit.is_nonzero(), "sparse encoder must skip zeros");
        let w = self.acc.width();
        self.acc.accumulate_word(wrap_pp(digit, b, w));
        self.cycles += 1;
    }

    /// Cycles (= non-zero PPs) spent so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resolves the accumulated dot product.
    pub fn resolve(&self) -> i64 {
        self.acc.resolve()
    }

    /// Clears accumulator and cycle count.
    pub fn reset(&mut self) {
        self.acc.reset();
        self.cycles = 0;
    }
}

fn wrap_acc(v: i64, width: u32) -> i64 {
    crate::bits::from_wrapped((v as u64) & crate::bits::mask(width), width)
}

/// Reference dot product used as ground truth in tests.
///
/// # Panics
///
/// Panics if the exact result does not fit `acc_width` signed bits (the
/// hardware would wrap; tests pick shapes that don't).
pub fn reference_dot(a: &[i64], b: &[i64], acc_width: u32) -> i64 {
    let dot: i64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    assert!(fits_signed(dot, acc_width));
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{EntEncoder, MbeEncoder};

    fn vectors(k: usize) -> (Vec<i64>, Vec<i64>) {
        let mut a = Vec::with_capacity(k);
        let mut b = Vec::with_capacity(k);
        let mut x = 7i64;
        for i in 0..k {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            a.push((x % 128).rem_euclid(256) - 128);
            b.push(((x >> 17) % 128).rem_euclid(256) - 128);
            let _ = i;
        }
        (a, b)
    }

    #[test]
    fn traditional_mac_matches_reference() {
        let (a, b) = vectors(512);
        let mut mac = TraditionalMac::new(MbeEncoder, 32);
        for (&x, &y) in a.iter().zip(&b) {
            mac.mac(x, y, 8);
        }
        assert_eq!(mac.value(), reference_dot(&a, &b, 32));
        assert_eq!(mac.stats().macs, 512);
        assert_eq!(mac.stats().full_adds, 512, "one resolved add per cycle");
    }

    #[test]
    fn opt1_mac_matches_reference_with_one_full_add() {
        let (a, b) = vectors(512);
        let mut mac = CompressAccMac::new(EntEncoder, 32);
        for (&x, &y) in a.iter().zip(&b) {
            mac.mac(x, y, 8);
        }
        assert_eq!(mac.resolve(), reference_dot(&a, &b, 32));
        assert_eq!(mac.stats().full_adds, 1, "OPT1 defers the full add");
    }

    #[test]
    fn serial_mac_cycles_equal_nonzero_pps() {
        use crate::encode::Encoder;
        let (a, b) = vectors(256);
        let mut mac = SerialDigitMac::new(32);
        let mut expected_cycles = 0u64;
        for (&x, &y) in a.iter().zip(&b) {
            for d in EntEncoder.encode_nonzero(x, 8) {
                mac.step(d, y);
                expected_cycles += 1;
            }
        }
        assert_eq!(mac.resolve(), reference_dot(&a, &b, 32));
        assert_eq!(mac.cycles(), expected_cycles);
    }

    #[test]
    fn both_macs_agree_on_int8_corners() {
        for a in [-128i64, -1, 0, 1, 127] {
            for b in [-128i64, -1, 0, 1, 127] {
                let mut t = TraditionalMac::new(MbeEncoder, 32);
                let mut o = CompressAccMac::new(MbeEncoder, 32);
                t.mac(a, b, 8);
                o.mac(a, b, 8);
                assert_eq!(t.value(), a * b);
                assert_eq!(o.resolve(), a * b);
            }
        }
    }

    #[test]
    fn reset_starts_fresh() {
        let mut mac = CompressAccMac::new(MbeEncoder, 32);
        mac.mac(5, 5, 8);
        mac.reset();
        mac.mac(-3, 4, 8);
        assert_eq!(mac.resolve(), -12);
    }
}
