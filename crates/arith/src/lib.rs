#![warn(missing_docs)]

//! # tpe-arith
//!
//! Bit-accurate arithmetic substrate for the bit-weight TPE workspace.
//!
//! A multiplier can be viewed as a multiplicand expanded into sub-operands
//! (signed digits), each multiplied by the other operand to form a partial
//! product at some *bit weight*, with all partial products reduced to the
//! final result (Eq. 1 of the paper):
//!
//! ```text
//! C = A × B = Σ_bw SubA_bw × B
//! ```
//!
//! This crate implements every arithmetic component that appears in that
//! decomposition, at the bit level, and verifies each against native integer
//! arithmetic:
//!
//! * [`bits`] — two's-complement / sign-magnitude bit manipulation.
//! * [`encode`] — signed-digit encoders: radix-4 modified Booth ([`encode::MbeEncoder`]),
//!   the EN-T redundant-pair-eliminating encoder ([`encode::EntEncoder`]),
//!   canonical-signed-digit/NAF recoding ([`encode::CsdEncoder`]) and the
//!   radix-2 bit-serial decompositions ([`encode::BitSerialComplement`],
//!   [`encode::BitSerialSignMagnitude`]).
//! * [`pp`] — candidate partial-product generation (CPPG), the `map`
//!   selection primitive and shifters.
//! * [`adder`] — half/full adders and word-level adder architectures
//!   (ripple-carry, carry-lookahead, carry-select) with structural stats.
//! * [`compressor`] — 3:2 / 4:2 / 6:2 compressors and generic carry-save
//!   (Wallace) reduction trees.
//! * [`csa`] — the carry-save accumulator that replaces the full
//!   adder + accumulator pair in the paper's OPT1 datapath.
//! * [`mac`] — complete multiply–accumulate datapaths: the traditional
//!   three-stage MAC and the compressor-accumulation MAC.
//! * [`multiplier`] — array, Booth and Wallace multiplier models.
//! * [`precision`] — operand/accumulator bit widths ([`Precision`]): the
//!   workspace-wide description of the INT4/INT8/INT16 precision axis.
//!
//! ## Example
//!
//! ```
//! use tpe_arith::encode::{Encoder, EntEncoder};
//! use tpe_arith::pp::reduce_partial_products;
//!
//! let digits = EntEncoder.encode_i8(-77);
//! assert_eq!(reduce_partial_products(&digits, 55), -77 * 55);
//! ```

pub mod adder;
pub mod bits;
pub mod compressor;
pub mod csa;
pub mod encode;
pub mod float;
pub mod mac;
pub mod multiplier;
pub mod pp;
pub mod precision;

pub use compressor::CarrySave;
pub use csa::CsAccumulator;
pub use encode::{Encoder, SignedDigit};
pub use precision::Precision;
