//! Word-level multiplier models: array, Booth (radix-4) and Wallace.
//!
//! These are the "micro-arithmetic logic level" designs the paper's
//! introduction surveys. Each produces the exact product plus structural
//! statistics (partial-product count, reduction depth) that the cost model
//! converts to area/delay. They also serve as independent oracles for the
//! encoder + compressor stack.

use crate::bits::{fits_signed, to_wrapped};
use crate::compressor::wallace_reduce;
use crate::encode::{Encoder, MbeEncoder};

/// A multiplication result with structural statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulResult {
    /// The exact signed product.
    pub product: i64,
    /// Number of partial-product rows generated.
    pub rows: u32,
    /// Carry-save reduction depth (3:2 levels).
    pub depth: u32,
}

/// Shift-and-add array multiplier: one row per multiplicand bit
/// (two's-complement, Baugh–Wooley-style sign handling via signed rows).
///
/// # Panics
///
/// Panics if operands don't fit their widths or `2·width > 62`.
pub fn array_multiply(a: i64, b: i64, width: u32) -> MulResult {
    assert!((2..=31).contains(&width));
    assert!(fits_signed(a, width) && fits_signed(b, width));
    let out_w = 2 * width;
    let rows: Vec<u64> = (0..width)
        .map(|i| {
            let bit = (a >> i) & 1;
            // MSB row carries negative weight under two's complement.
            let signed_row = if i == width - 1 {
                -(bit * b) << i
            } else {
                (bit * b) << i
            };
            to_wrapped(signed_row, out_w)
        })
        .collect();
    let red = wallace_reduce(&rows, out_w);
    MulResult {
        product: red.pair.resolve(),
        rows: width,
        depth: red.depth,
    }
}

/// Radix-4 Booth multiplier: ⌈width/2⌉ rows through the MBE encoder.
pub fn booth_multiply(a: i64, b: i64, width: u32) -> MulResult {
    encoded_multiply(&MbeEncoder, a, b, width)
}

/// Multiplier built from any signed-digit encoder + Wallace reduction.
pub fn encoded_multiply(enc: &dyn Encoder, a: i64, b: i64, width: u32) -> MulResult {
    assert!((2..=31).contains(&width));
    assert!(fits_signed(a, width) && fits_signed(b, width));
    let out_w = (2 * width + 2).min(64);
    let digits = enc.encode(a, width);
    let rows: Vec<u64> = digits
        .iter()
        .map(|d| to_wrapped((i64::from(d.coeff) * b) << d.weight, out_w))
        .collect();
    let red = wallace_reduce(&rows, out_w);
    MulResult {
        product: red.pair.resolve(),
        rows: rows.len() as u32,
        depth: red.depth,
    }
}

/// Unsigned-core Wallace multiplier with sign correction: all `width²` AND
/// terms reduced as one tree (the classic Wallace construction).
pub fn wallace_multiply(a: i64, b: i64, width: u32) -> MulResult {
    assert!((2..=15).contains(&width));
    assert!(fits_signed(a, width) && fits_signed(b, width));
    let out_w = 2 * width + 2;
    let mut rows = Vec::with_capacity((width * width) as usize);
    for i in 0..width {
        for j in 0..width {
            let ai = (a >> i) & 1;
            let bj = (b >> j) & 1;
            // Two's complement: MSB positions carry negative weight.
            let neg = (i == width - 1) ^ (j == width - 1);
            let term = (ai & bj) << (i + j);
            rows.push(to_wrapped(if neg { -term } else { term }, out_w));
        }
    }
    let red = wallace_reduce(&rows, out_w);
    MulResult {
        product: red.pair.resolve(),
        rows: rows.len() as u32,
        depth: red.depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{CsdEncoder, EntEncoder};

    #[test]
    fn all_multipliers_exact_on_int8() {
        for a in (i8::MIN..=i8::MAX).step_by(7) {
            for b in (i8::MIN..=i8::MAX).step_by(11) {
                let (a, b) = (i64::from(a), i64::from(b));
                let expect = a * b;
                assert_eq!(array_multiply(a, b, 8).product, expect, "array {a}×{b}");
                assert_eq!(booth_multiply(a, b, 8).product, expect, "booth {a}×{b}");
                assert_eq!(wallace_multiply(a, b, 8).product, expect, "wallace {a}×{b}");
                assert_eq!(
                    encoded_multiply(&EntEncoder, a, b, 8).product,
                    expect,
                    "ent {a}×{b}"
                );
                assert_eq!(
                    encoded_multiply(&CsdEncoder, a, b, 8).product,
                    expect,
                    "csd {a}×{b}"
                );
            }
        }
    }

    #[test]
    fn int8_corner_cases() {
        for (a, b) in [(-128, -128), (-128, 127), (127, 127), (0, -128), (-1, -1)] {
            assert_eq!(array_multiply(a, b, 8).product, a * b);
            assert_eq!(booth_multiply(a, b, 8).product, a * b);
            assert_eq!(wallace_multiply(a, b, 8).product, a * b);
        }
    }

    #[test]
    fn booth_halves_row_count() {
        let arr = array_multiply(93, -45, 8);
        let booth = booth_multiply(93, -45, 8);
        assert_eq!(arr.rows, 8);
        assert_eq!(booth.rows, 4);
        assert!(booth.depth <= arr.depth);
    }

    #[test]
    fn wallace_row_count_is_quadratic() {
        assert_eq!(wallace_multiply(3, 3, 8).rows, 64);
    }

    #[test]
    fn wider_operands() {
        for (a, b) in [(30000i64, -30000i64), (-32768, 32767), (12345, 321)] {
            assert_eq!(booth_multiply(a, b, 16).product, a * b);
            assert_eq!(array_multiply(a, b, 16).product, a * b);
        }
    }
}
