//! Partial-product generation: the CPPG, `map` and `shift` primitives.
//!
//! In the paper's MAC decomposition (Figure 1(A), step ❶) the *candidate
//! partial product generator* (CPPG) precomputes the small multiples
//! {−2B, −B, 0, B, 2B} of the multiplier once; the encoder's digit then
//! *selects* one candidate through a multiplexer (`map`), and a shifter
//! places it at the digit's bit weight (`shift`). The selection is the
//! non-commutative ♢ operation of Eq. 6.

use crate::encode::SignedDigit;

/// The candidate partial products a radix-4 CPPG precomputes for one
/// multiplier operand `B`: indexed by coefficient −2..=2.
///
/// Radix-2 architectures use the {−B, 0, B} subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cppg {
    b: i64,
}

impl Cppg {
    /// Builds the candidate set for multiplier `b`.
    pub fn new(b: i64) -> Self {
        Self { b }
    }

    /// The multiplier operand this CPPG serves.
    pub fn multiplier(&self) -> i64 {
        self.b
    }

    /// The `map` primitive: select the candidate for `coeff`.
    ///
    /// # Panics
    ///
    /// Panics if `coeff` is outside the radix-4 digit set {−2..2}.
    pub fn select(&self, coeff: i8) -> i64 {
        assert!(
            (-2..=2).contains(&coeff),
            "coefficient {coeff} outside the CPPG candidate set"
        );
        i64::from(coeff) * self.b
    }

    /// All five candidates in coefficient order −2, −1, 0, 1, 2 — what the
    /// hardware mux sees on its inputs.
    pub fn candidates(&self) -> [i64; 5] {
        [-2 * self.b, -self.b, 0, self.b, 2 * self.b]
    }
}

/// A generated partial product: a selected candidate placed at a bit weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialProduct {
    /// The selected candidate value (before shifting).
    pub mapped: i64,
    /// The bit weight it must be shifted to.
    pub weight: u8,
}

impl PartialProduct {
    /// The `shift` primitive: the partial product's contribution to the
    /// final sum.
    pub fn shifted(&self) -> i64 {
        self.mapped << self.weight
    }
}

/// Generates the partial products of `digits × b`, including zero digits
/// (what a fully parallel multiplier reduces).
pub fn generate_partial_products(digits: &[SignedDigit], b: i64) -> Vec<PartialProduct> {
    let cppg = Cppg::new(b);
    digits
        .iter()
        .map(|d| PartialProduct {
            mapped: cppg.select(d.coeff),
            weight: d.weight,
        })
        .collect()
}

/// Generates only the non-zero partial products (what the `sparse` primitive
/// leaves for a serial PE to iterate over).
pub fn generate_nonzero_partial_products(digits: &[SignedDigit], b: i64) -> Vec<PartialProduct> {
    digits
        .iter()
        .filter(|d| d.is_nonzero())
        .map(|d| PartialProduct {
            mapped: Cppg::new(b).select(d.coeff),
            weight: d.weight,
        })
        .collect()
}

/// Reduces the partial products of `digits × b` to the product value.
///
/// This is the specification the hardware reduction (compressor tree + final
/// add) must match; [`crate::compressor`] implements the same reduction in
/// carry-save form.
///
/// ```
/// use tpe_arith::encode::{Encoder, MbeEncoder};
/// use tpe_arith::pp::reduce_partial_products;
///
/// let digits = MbeEncoder.encode_i8(-103);
/// assert_eq!(reduce_partial_products(&digits, 99), -103 * 99);
/// ```
pub fn reduce_partial_products(digits: &[SignedDigit], b: i64) -> i64 {
    generate_partial_products(digits, b)
        .iter()
        .map(PartialProduct::shifted)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{BitSerialComplement, CsdEncoder, Encoder, EntEncoder, MbeEncoder};

    /// Exhaustive INT8 × INT8 check: every encoder's partial products reduce
    /// to the exact product.
    #[test]
    fn exhaustive_int8_products() {
        let encoders: [&dyn Encoder; 4] =
            [&MbeEncoder, &EntEncoder, &CsdEncoder, &BitSerialComplement];
        for enc in encoders {
            for a in (i8::MIN..=i8::MAX).step_by(3) {
                let digits = enc.encode(i64::from(a), 8);
                for b in (i8::MIN..=i8::MAX).step_by(5) {
                    assert_eq!(
                        reduce_partial_products(&digits, i64::from(b)),
                        i64::from(a) * i64::from(b),
                        "{} broke {a}×{b}",
                        enc.name()
                    );
                }
            }
        }
    }

    /// Figure 2(E): 114×B as three PPs: (B<<7) + (−B<<4) + (B<<1) is the
    /// bit-serial view; EN-T gets there with {2,0,−1,1}-style digits.
    #[test]
    fn nonzero_pp_count_matches_numpps() {
        let digits = EntEncoder.encode_i8(114);
        let pps = generate_nonzero_partial_products(&digits, 7);
        assert_eq!(pps.len(), 3);
        let total: i64 = pps.iter().map(PartialProduct::shifted).sum();
        assert_eq!(total, 114 * 7);
    }

    #[test]
    fn cppg_candidates_order() {
        let cppg = Cppg::new(13);
        assert_eq!(cppg.candidates(), [-26, -13, 0, 13, 26]);
        assert_eq!(cppg.select(-2), -26);
        assert_eq!(cppg.select(0), 0);
    }

    #[test]
    #[should_panic(expected = "outside the CPPG candidate set")]
    fn cppg_rejects_wild_coefficients() {
        Cppg::new(1).select(3);
    }
}
