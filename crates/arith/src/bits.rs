//! Two's-complement and sign-magnitude bit manipulation helpers.
//!
//! All word-level arithmetic in this workspace happens on `i64` values that
//! are interpreted at an explicit bit width `w ≤ 64`. The helpers here
//! convert between the signed value domain and the wrapped `u64` bit-pattern
//! domain, extract bit slices (with sign extension beyond the width), and
//! count set bits under both number representations.

/// Maximum bit width supported by the word-level helpers.
pub const MAX_WIDTH: u32 = 64;

/// Returns bit `i` of `value` under two's complement, sign-extending for
/// `i >= 64`.
///
/// ```
/// use tpe_arith::bits::bit;
/// assert_eq!(bit(-1, 63), 1);
/// assert_eq!(bit(6, 1), 1);
/// assert_eq!(bit(6, 0), 0);
/// ```
#[inline]
pub fn bit(value: i64, i: u32) -> u8 {
    if i >= 64 {
        // Sign extension: the value's sign bit repeats forever.
        (value < 0) as u8
    } else {
        ((value >> i) & 1) as u8
    }
}

/// Converts `value` into its `width`-bit two's-complement pattern.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds [`MAX_WIDTH`], or if `value` does not
/// fit in `width` signed bits.
///
/// ```
/// use tpe_arith::bits::to_wrapped;
/// assert_eq!(to_wrapped(-1, 8), 0xFF);
/// assert_eq!(to_wrapped(-128, 8), 0x80);
/// ```
#[inline]
pub fn to_wrapped(value: i64, width: u32) -> u64 {
    assert!(
        (1..=MAX_WIDTH).contains(&width),
        "width {width} out of range"
    );
    assert!(
        fits_signed(value, width),
        "value {value} does not fit in {width} signed bits"
    );
    (value as u64) & mask(width)
}

/// Interprets a `width`-bit pattern as a signed two's-complement value.
///
/// Bits above `width` are ignored.
///
/// ```
/// use tpe_arith::bits::from_wrapped;
/// assert_eq!(from_wrapped(0xFF, 8), -1);
/// assert_eq!(from_wrapped(0x80, 8), -128);
/// assert_eq!(from_wrapped(0x7F, 8), 127);
/// ```
#[inline]
pub fn from_wrapped(pattern: u64, width: u32) -> i64 {
    assert!(
        (1..=MAX_WIDTH).contains(&width),
        "width {width} out of range"
    );
    let shift = 64 - width;
    ((pattern << shift) as i64) >> shift
}

/// The all-ones mask of `width` low bits.
#[inline]
pub fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Whether `value` is representable in `width` signed two's-complement bits.
///
/// ```
/// use tpe_arith::bits::fits_signed;
/// assert!(fits_signed(127, 8));
/// assert!(fits_signed(-128, 8));
/// assert!(!fits_signed(128, 8));
/// ```
#[inline]
pub fn fits_signed(value: i64, width: u32) -> bool {
    if width >= 64 {
        return true;
    }
    let min = -(1i64 << (width - 1));
    let max = (1i64 << (width - 1)) - 1;
    (min..=max).contains(&value)
}

/// Two's-complement bits of `value`, LSB first.
///
/// ```
/// use tpe_arith::bits::to_bits;
/// assert_eq!(to_bits(6, 4), vec![0, 1, 1, 0]);
/// assert_eq!(to_bits(-1, 3), vec![1, 1, 1]);
/// ```
pub fn to_bits(value: i64, width: u32) -> Vec<u8> {
    assert!(
        fits_signed(value, width),
        "{value} does not fit in {width} bits"
    );
    (0..width).map(|i| bit(value, i)).collect()
}

/// Reassembles a signed value from LSB-first two's-complement bits.
///
/// # Panics
///
/// Panics if `bits` is empty or longer than [`MAX_WIDTH`].
pub fn from_bits(bits: &[u8]) -> i64 {
    assert!(!bits.is_empty() && bits.len() as u32 <= MAX_WIDTH);
    let mut pattern = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        pattern |= u64::from(b & 1) << i;
    }
    from_wrapped(pattern, bits.len() as u32)
}

/// Number of set bits in the `width`-bit two's-complement pattern of `value`.
///
/// For a negative value this counts the ones of its complement
/// representation, which is the quantity bit-serial accelerators that
/// operate on complement slices must iterate over.
///
/// ```
/// use tpe_arith::bits::popcount_twos;
/// assert_eq!(popcount_twos(-1, 8), 8);
/// assert_eq!(popcount_twos(5, 8), 2);
/// ```
pub fn popcount_twos(value: i64, width: u32) -> u32 {
    to_wrapped(value, width).count_ones()
}

/// Sign-magnitude decomposition: `(sign, magnitude)` with `sign ∈ {-1, 1}`.
///
/// Zero decomposes as `(1, 0)`.
///
/// ```
/// use tpe_arith::bits::sign_magnitude;
/// assert_eq!(sign_magnitude(-77), (-1, 77));
/// assert_eq!(sign_magnitude(0), (1, 0));
/// ```
pub fn sign_magnitude(value: i64) -> (i64, u64) {
    if value < 0 {
        (-1, value.unsigned_abs())
    } else {
        (1, value as u64)
    }
}

/// Sign-extends the low `from` bits of `pattern` up to `to` bits.
///
/// This models the sign-extension units that widen partial products before
/// reduction (OPT2's `Shift & Sign Extend` block).
///
/// ```
/// use tpe_arith::bits::sign_extend;
/// assert_eq!(sign_extend(0xFF, 8, 16), 0xFFFF);
/// assert_eq!(sign_extend(0x7F, 8, 16), 0x007F);
/// ```
pub fn sign_extend(pattern: u64, from: u32, to: u32) -> u64 {
    assert!(from >= 1 && from <= to && to <= MAX_WIDTH);
    let v = from_wrapped(pattern, from);
    (v as u64) & mask(to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_i8() {
        for v in i8::MIN..=i8::MAX {
            let v = i64::from(v);
            assert_eq!(from_wrapped(to_wrapped(v, 8), 8), v);
            assert_eq!(from_bits(&to_bits(v, 8)), v);
        }
    }

    #[test]
    fn roundtrip_wide() {
        for &v in &[0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789, -987_654_321] {
            assert_eq!(from_wrapped(to_wrapped(v, 64), 64), v);
        }
    }

    #[test]
    fn bit_sign_extension() {
        assert_eq!(bit(-1, 200), 1);
        assert_eq!(bit(1, 200), 0);
        assert_eq!(bit(i64::MIN, 63), 1);
    }

    #[test]
    fn fits_signed_boundaries() {
        assert!(fits_signed(-1, 1));
        assert!(fits_signed(0, 1));
        assert!(!fits_signed(1, 1));
        assert!(fits_signed(i64::MIN, 64));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_wrapped_rejects_overflow() {
        to_wrapped(128, 8);
    }

    #[test]
    fn popcount_matches_manual() {
        assert_eq!(popcount_twos(0, 8), 0);
        assert_eq!(popcount_twos(-128, 8), 1);
        assert_eq!(popcount_twos(127, 8), 7);
    }

    #[test]
    fn sign_extend_examples() {
        assert_eq!(sign_extend(0b1000, 4, 8), 0b1111_1000);
        assert_eq!(sign_extend(0b0111, 4, 8), 0b0000_0111);
    }
}
