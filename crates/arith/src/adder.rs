//! Bit-level adders: the `add` primitive and its word-level architectures.
//!
//! The full adder and the high-bit-width accumulator form step ❸ of the
//! traditional MAC and are the paper's QI bottleneck: their carry chain makes
//! delay grow with operand width. The word-level models here expose that
//! structural fact — each adder reports its gate-level depth so the cost
//! model can translate architecture choice into delay.

/// Result of a single-bit full add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitAdd {
    /// Sum output bit.
    pub sum: u8,
    /// Carry output bit.
    pub carry: u8,
}

/// One-bit half adder: two inputs, no carry-in.
#[inline]
pub fn half_add(a: u8, b: u8) -> BitAdd {
    BitAdd {
        sum: a ^ b,
        carry: a & b,
    }
}

/// One-bit full adder: three inputs.
#[inline]
pub fn full_add(a: u8, b: u8, cin: u8) -> BitAdd {
    BitAdd {
        sum: a ^ b ^ cin,
        carry: (a & b) | (a & cin) | (b & cin),
    }
}

/// Word adder architectures the paper's background section surveys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdderKind {
    /// Ripple-carry: minimal area, delay linear in width.
    RippleCarry,
    /// Carry-lookahead: delay logarithmic in width, larger area.
    CarryLookahead,
    /// Carry-select: delay ~√width blocks, duplicated logic.
    CarrySelect,
}

/// Outcome of a word-level addition, with structural statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordAdd {
    /// The `width`-bit wrapped sum (two's complement semantics).
    pub sum: u64,
    /// Carry out of the top bit.
    pub carry_out: u8,
    /// Gate levels on the critical path (full-adder-equivalent units for
    /// ripple; lookahead/select levels otherwise).
    pub depth: u32,
}

/// Adds two `width`-bit patterns under the chosen adder architecture.
///
/// All architectures produce identical numerical results (they differ only
/// in reported depth); this is asserted by tests, mirroring how RTL
/// equivalence checking would treat them.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
pub fn word_add(kind: AdderKind, a: u64, b: u64, cin: u8, width: u32) -> WordAdd {
    assert!((1..=64).contains(&width), "width {width} out of range");
    let m = crate::bits::mask(width);
    let a = a & m;
    let b = b & m;
    let (sum, carry_out) = bit_ripple(a, b, cin, width);
    let depth = match kind {
        AdderKind::RippleCarry => width,
        // One lookahead level per 4-bit group, log-composed.
        AdderKind::CarryLookahead => 2 + (32 - (width.div_ceil(4)).leading_zeros()),
        // √n blocks of ripple + mux chain.
        AdderKind::CarrySelect => {
            let block = (width as f64).sqrt().ceil() as u32;
            block + width.div_ceil(block)
        }
    };
    WordAdd {
        sum,
        carry_out,
        depth,
    }
}

/// Reference bit-serial ripple addition (ground truth for every adder kind).
fn bit_ripple(a: u64, b: u64, cin: u8, width: u32) -> (u64, u8) {
    let mut carry = cin & 1;
    let mut sum = 0u64;
    for i in 0..width {
        let r = full_add(((a >> i) & 1) as u8, ((b >> i) & 1) as u8, carry);
        sum |= u64::from(r.sum) << i;
        carry = r.carry;
    }
    (sum, carry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{from_wrapped, to_wrapped};

    #[test]
    fn full_add_truth_table() {
        let cases = [
            (0, 0, 0, 0, 0),
            (1, 0, 0, 1, 0),
            (0, 1, 0, 1, 0),
            (0, 0, 1, 1, 0),
            (1, 1, 0, 0, 1),
            (1, 0, 1, 0, 1),
            (0, 1, 1, 0, 1),
            (1, 1, 1, 1, 1),
        ];
        for (a, b, c, s, co) in cases {
            let r = full_add(a, b, c);
            assert_eq!((r.sum, r.carry), (s, co));
        }
    }

    #[test]
    fn half_add_truth_table() {
        assert_eq!(half_add(1, 1), BitAdd { sum: 0, carry: 1 });
        assert_eq!(half_add(1, 0), BitAdd { sum: 1, carry: 0 });
    }

    #[test]
    fn word_add_matches_native_all_kinds() {
        let kinds = [
            AdderKind::RippleCarry,
            AdderKind::CarryLookahead,
            AdderKind::CarrySelect,
        ];
        for kind in kinds {
            for a in -40i64..40 {
                for b in -40i64..40 {
                    let r = word_add(kind, to_wrapped(a, 8), to_wrapped(b, 8), 0, 8);
                    assert_eq!(
                        from_wrapped(r.sum, 8),
                        from_wrapped(to_wrapped(a + b, 16), 8),
                        "{kind:?} {a}+{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn depths_ordered_as_expected_at_32_bits() {
        let r = |k| word_add(k, 0, 0, 0, 32).depth;
        let ripple = r(AdderKind::RippleCarry);
        let cla = r(AdderKind::CarryLookahead);
        let csel = r(AdderKind::CarrySelect);
        assert!(cla < csel && csel < ripple, "{cla} < {csel} < {ripple}");
    }

    #[test]
    fn carry_out_detects_overflow() {
        let r = word_add(AdderKind::RippleCarry, 0xFF, 0x01, 0, 8);
        assert_eq!(r.sum, 0);
        assert_eq!(r.carry_out, 1);
    }
}
