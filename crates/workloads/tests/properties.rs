//! Property tests for the workload substrate.

use proptest::prelude::*;
use tpe_workloads::distributions::{quantize_symmetric, uniform_int8_matrix};
use tpe_workloads::img2col::{conv2d_direct, conv2d_gemm, ConvShape};
use tpe_workloads::matrix::{matmul_i8, Matrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// img2col + GEMM equals direct convolution for arbitrary shapes.
    #[test]
    fn im2col_equals_direct_conv(
        in_c in 1usize..4,
        out_c in 1usize..5,
        hw in 3usize..10,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(hw + 2 * padding >= kernel);
        let shape = ConvShape::standard(in_c, out_c, hw, kernel, stride, padding);
        let input = uniform_int8_matrix(1, in_c * hw * hw, seed).data().to_vec();
        let (m, _, k) = shape.gemm_dims();
        let weights = uniform_int8_matrix(1, m * k, seed + 1).data().to_vec();
        prop_assert_eq!(
            conv2d_gemm(&shape, &input, &weights),
            conv2d_direct(&shape, &input, &weights)
        );
    }

    /// Symmetric quantization: sign-preserving, full-scale, monotone.
    #[test]
    fn quantization_invariants(values in prop::collection::vec(-1000.0f64..1000.0, 2..100)) {
        let q = quantize_symmetric(&values);
        let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        prop_assume!(max_abs > 0.0);
        // The max-magnitude element hits ±127.
        prop_assert!(q.iter().any(|&v| v.unsigned_abs() == 127));
        // Signs preserved (up to rounding to zero).
        for (&x, &qx) in values.iter().zip(&q) {
            if qx != 0 {
                prop_assert_eq!(x.signum() as i32, i32::from(qx.signum()));
            }
        }
        // Monotone: larger magnitude never quantizes smaller.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i].abs() > values[j].abs() {
                    prop_assert!(q[i].unsigned_abs() >= q[j].unsigned_abs());
                }
            }
        }
    }

    /// Matrix transpose is an involution and matmul respects transposition:
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        m in 1usize..8,
        n in 1usize..8,
        k in 1usize..10,
        seed in 0u64..300,
    ) {
        let a = uniform_int8_matrix(m, k, seed);
        let b = uniform_int8_matrix(k, n, seed + 1);
        let c = matmul_i8(&a, &b);
        let ct = matmul_i8(&b.transposed(), &a.transposed());
        let ct_expected: Matrix<i32> = c.transposed();
        prop_assert_eq!(ct, ct_expected);
    }
}
