//! Seeded normal sampling and INT8 quantization.
//!
//! Normal variates come from an in-repo Box–Muller transform over `rand`'s
//! `StdRng` (keeping the dependency set to the workspace's allowed crates).
//! Quantization uses symmetric max-abs scaling — the standard scheme for
//! INT8 DNN tensors — which makes digit statistics σ-invariant, matching
//! the paper's Table III observation that average NumPPs barely moves from
//! σ = 0.5 to σ = 5.0.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded N(0, σ) sampler (Box–Muller).
#[derive(Debug)]
pub struct NormalSampler {
    rng: StdRng,
    sigma: f64,
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler for N(0, `sigma`) with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        Self {
            rng: StdRng::seed_from_u64(seed),
            sigma,
            spare: None,
        }
    }

    /// Draws one sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z * self.sigma;
        }
        // Box–Muller: two uniforms → two independent standard normals.
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }

    /// Draws `n` samples.
    pub fn sample_vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Symmetric max-abs INT8 quantization: `q = round(127 · x / max|x|)`.
///
/// Returns all zeros if the input is all zeros.
pub fn quantize_symmetric(values: &[f64]) -> Vec<i8> {
    let max_abs = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        return vec![0; values.len()];
    }
    let scale = 127.0 / max_abs;
    values
        .iter()
        .map(|&v| (v * scale).round().clamp(-128.0, 127.0) as i8)
        .collect()
}

/// A `rows × cols` INT8 matrix of quantized N(0, σ) values.
pub fn normal_int8_matrix(rows: usize, cols: usize, sigma: f64, seed: u64) -> Matrix<i8> {
    let mut sampler = NormalSampler::new(sigma, seed);
    let raw = sampler.sample_vec(rows * cols);
    Matrix::from_vec(rows, cols, quantize_symmetric(&raw))
}

/// Uniform INT8 matrix over the full range (for worst-case sweeps).
pub fn uniform_int8_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-128i16..=127) as i8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic() {
        let a = NormalSampler::new(1.0, 42).sample_vec(100);
        let b = NormalSampler::new(1.0, 42).sample_vec(100);
        assert_eq!(a, b);
        let c = NormalSampler::new(1.0, 43).sample_vec(100);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_moments_are_roughly_normal() {
        let xs = NormalSampler::new(2.0, 7).sample_vec(200_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.03, "sigma {}", var.sqrt());
    }

    #[test]
    fn quantization_uses_full_scale() {
        let q = quantize_symmetric(&[-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert_eq!(q, vec![-127, -64, 0, 64, 127]);
    }

    #[test]
    fn quantization_of_zeros() {
        assert_eq!(quantize_symmetric(&[0.0; 4]), vec![0; 4]);
    }

    /// Max-abs scaling makes the quantized distribution σ-invariant — the
    /// mechanism behind Table III's flat rows.
    #[test]
    fn quantized_distribution_sigma_invariant() {
        let stat = |sigma: f64| {
            let m = normal_int8_matrix(128, 128, sigma, 11);
            m.iter().map(|&v| f64::from(v).abs()).sum::<f64>() / (128.0 * 128.0)
        };
        let (a, b) = (stat(0.5), stat(5.0));
        assert!((a - b).abs() / a < 0.05, "mean |q| differs: {a} vs {b}");
    }

    #[test]
    fn uniform_matrix_covers_range() {
        let m = uniform_int8_matrix(64, 64, 3);
        assert!(m.iter().any(|&v| v < -100));
        assert!(m.iter().any(|&v| v > 100));
    }
}
