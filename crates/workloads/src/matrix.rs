//! Row-major matrices and the reference integer GEMM.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0);
        Self { rows, cols, data }
    }

    /// Builds a matrix element-wise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the row-major backing storage.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.data.iter()
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Display + Copy + Default> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(12) {
                write!(f, "{:>6} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "… ({} × {})", self.rows, self.cols)?;
        }
        Ok(())
    }
}

/// Reference INT8 × INT8 → INT32 GEMM: the ground truth every simulated
/// architecture must reproduce exactly.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul_i8(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut c = Matrix::<i32>::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = i32::from(a[(i, k)]);
            if aik == 0 {
                continue;
            }
            for j in 0..b.cols() {
                c[(i, j)] += aik * i32::from(b[(k, j)]);
            }
        }
    }
    c
}

/// Reference i32 GEMM for wider substrates.
pub fn matmul_i32(a: &Matrix<i32>, b: &Matrix<i32>) -> Matrix<i64> {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    let mut c = Matrix::<i64>::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let aik = i64::from(a[(i, k)]);
            for j in 0..b.cols() {
                c[(i, j)] += aik * i64::from(b[(k, j)]);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::<i8>::from_fn(3, 3, |r, c| if r == c { 1 } else { 0 });
        let b = Matrix::<i8>::from_fn(3, 2, |r, c| (r * 2 + c) as i8);
        let c = matmul_i8(&a, &b);
        for r in 0..3 {
            for col in 0..2 {
                assert_eq!(c[(r, col)], i32::from(b[(r, col)]));
            }
        }
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 2, vec![1i8, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5i8, 6, 7, 8]);
        let c = matmul_i8(&a, &b);
        assert_eq!(c.data(), &[19, 22, 43, 50]);
    }

    #[test]
    fn extreme_values_do_not_overflow_i32() {
        // 512 × (−128 × −128) = 8,388,608 — fits i32 comfortably.
        let a = Matrix::from_vec(1, 512, vec![-128i8; 512]);
        let b = Matrix::from_vec(512, 1, vec![-128i8; 512]);
        let c = matmul_i8(&a, &b);
        assert_eq!(c[(0, 0)], 512 * 16384);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::<i8>::from_fn(3, 5, |r, c| (r * 5 + c) as i8);
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = Matrix::<i8>::zeros(2, 3);
        let b = Matrix::<i8>::zeros(2, 3);
        matmul_i8(&a, &b);
    }

    #[test]
    fn row_slice_matches_indexing() {
        let a = Matrix::<i8>::from_fn(4, 4, |r, c| (r * 4 + c) as i8);
        assert_eq!(a.row(2), &[8, 9, 10, 11]);
    }
}
