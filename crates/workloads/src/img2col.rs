//! Convolution → GEMM lowering (img2col), both shape-level and data-level.
//!
//! The paper maps every DNN layer to a matrix multiplication before feeding
//! it to the TPE; §IV-C's ResNet-18 example lowers a 3×3 convolution over
//! 64 channels to a GEMM with reduction dimension K = 64·3·3 = 576.

use crate::matrix::{matmul_i8, Matrix};

/// Shape of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input height and width (square inputs for simplicity).
    pub input_hw: usize,
    /// Kernel height/width (square kernels).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub padding: usize,
    /// Channel groups (`in_channels` for a depthwise convolution).
    pub groups: usize,
}

impl ConvShape {
    /// A standard (non-grouped) convolution.
    pub fn standard(
        in_channels: usize,
        out_channels: usize,
        input_hw: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            input_hw,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// A depthwise convolution (one group per channel).
    pub fn depthwise(
        channels: usize,
        input_hw: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels: channels,
            out_channels: channels,
            input_hw,
            kernel,
            stride,
            padding,
            groups: channels,
        }
    }

    /// Output spatial size (height = width).
    pub fn output_hw(&self) -> usize {
        (self.input_hw + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// The GEMM this convolution lowers to, per group:
    /// `M = out_channels/groups`, `K = (in_channels/groups)·k²`,
    /// `N = output_hw²`.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        let m = self.out_channels / self.groups;
        let k = (self.in_channels / self.groups) * self.kernel * self.kernel;
        let n = self.output_hw() * self.output_hw();
        (m, n, k)
    }

    /// Total multiply–accumulates across all groups.
    pub fn macs(&self) -> u64 {
        let (m, n, k) = self.gemm_dims();
        (m * n * k * self.groups) as u64
    }
}

/// Lowers an input tensor (channel-major `[C][H][W]`, flattened) into the
/// img2col patch matrix of shape `K × N` where `K = C·k²`, `N = out_hw²`.
///
/// # Panics
///
/// Panics if `input.len() != in_channels · input_hw²` or the shape is
/// grouped (use per-group lowering for depthwise).
pub fn im2col(shape: &ConvShape, input: &[i8]) -> Matrix<i8> {
    assert_eq!(shape.groups, 1, "im2col lowers one group at a time");
    assert_eq!(
        input.len(),
        shape.in_channels * shape.input_hw * shape.input_hw,
        "input tensor size mismatch"
    );
    let out_hw = shape.output_hw();
    let k_dim = shape.in_channels * shape.kernel * shape.kernel;
    let n_dim = out_hw * out_hw;
    let hw = shape.input_hw;
    Matrix::from_fn(k_dim, n_dim, |kidx, nidx| {
        let c = kidx / (shape.kernel * shape.kernel);
        let rem = kidx % (shape.kernel * shape.kernel);
        let (kh, kw) = (rem / shape.kernel, rem % shape.kernel);
        let (oy, ox) = (nidx / out_hw, nidx % out_hw);
        let iy = (oy * shape.stride + kh) as isize - shape.padding as isize;
        let ix = (ox * shape.stride + kw) as isize - shape.padding as isize;
        if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize {
            0
        } else {
            input[c * hw * hw + iy as usize * hw + ix as usize]
        }
    })
}

/// Direct (sliding-window) convolution — the oracle for [`im2col`].
/// Weights are `[out_c][in_c][k][k]` flattened; returns `[out_c][oh][ow]`.
pub fn conv2d_direct(shape: &ConvShape, input: &[i8], weights: &[i8]) -> Vec<i32> {
    assert_eq!(shape.groups, 1);
    let out_hw = shape.output_hw();
    let hw = shape.input_hw;
    let k = shape.kernel;
    let mut out = vec![0i32; shape.out_channels * out_hw * out_hw];
    for oc in 0..shape.out_channels {
        for oy in 0..out_hw {
            for ox in 0..out_hw {
                let mut acc = 0i32;
                for ic in 0..shape.in_channels {
                    for kh in 0..k {
                        for kw in 0..k {
                            let iy = (oy * shape.stride + kh) as isize - shape.padding as isize;
                            let ix = (ox * shape.stride + kw) as isize - shape.padding as isize;
                            if iy < 0 || ix < 0 || iy >= hw as isize || ix >= hw as isize {
                                continue;
                            }
                            let x = input[ic * hw * hw + iy as usize * hw + ix as usize];
                            let w = weights[((oc * shape.in_channels + ic) * k + kh) * k + kw];
                            acc += i32::from(x) * i32::from(w);
                        }
                    }
                }
                out[oc * out_hw * out_hw + oy * out_hw + ox] = acc;
            }
        }
    }
    out
}

/// Convolution *via* GEMM: weights reshaped to `M × K`, patches `K × N`.
pub fn conv2d_gemm(shape: &ConvShape, input: &[i8], weights: &[i8]) -> Vec<i32> {
    let (m, _n, k) = shape.gemm_dims();
    let w = Matrix::from_vec(m, k, weights.to_vec());
    let patches = im2col(shape, input);
    let out = matmul_i8(&w, &patches);
    out.data().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::uniform_int8_matrix;

    /// The paper's §IV-C example: a ResNet-18 middle 3×3 conv over 64
    /// channels has reduction dimension 576.
    #[test]
    fn resnet18_mid_layer_reduction_is_576() {
        let conv = ConvShape::standard(64, 64, 56, 3, 1, 1);
        let (_, _, k) = conv.gemm_dims();
        assert_eq!(k, 576);
    }

    /// img2col + GEMM equals direct convolution on random data.
    #[test]
    fn gemm_lowering_matches_direct_conv() {
        let shape = ConvShape::standard(3, 8, 10, 3, 2, 1);
        let input = uniform_int8_matrix(1, 3 * 100, 5).data().to_vec();
        let (m, _, k) = shape.gemm_dims();
        let weights = uniform_int8_matrix(1, m * k, 6).data().to_vec();
        assert_eq!(
            conv2d_gemm(&shape, &input, &weights),
            conv2d_direct(&shape, &input, &weights)
        );
    }

    #[test]
    fn stride_and_padding_output_sizes() {
        assert_eq!(ConvShape::standard(1, 1, 224, 7, 2, 3).output_hw(), 112);
        assert_eq!(ConvShape::standard(1, 1, 56, 3, 1, 1).output_hw(), 56);
        assert_eq!(ConvShape::standard(1, 1, 28, 1, 1, 0).output_hw(), 28);
    }

    #[test]
    fn depthwise_gemm_dims() {
        // MobileNet DW 3×3: per-channel GEMM has K = 9 — the low reduction
        // dimension behind Figure 11(B)'s utilization dips.
        let dw = ConvShape::depthwise(112, 28, 3, 1, 1);
        let (m, n, k) = dw.gemm_dims();
        assert_eq!((m, k), (1, 9));
        assert_eq!(n, 28 * 28);
    }

    #[test]
    fn macs_counts_all_groups() {
        let dw = ConvShape::depthwise(16, 8, 3, 1, 1);
        assert_eq!(dw.macs(), 16 * 9 * 64);
    }

    #[test]
    fn zero_padding_contributes_zeros() {
        let shape = ConvShape::standard(1, 1, 2, 3, 1, 1);
        let patches = im2col(&shape, &[1, 2, 3, 4]);
        // Top-left output's first patch element is padding.
        assert_eq!(patches[(0, 0)], 0);
        // Center elements survive.
        assert_eq!(patches[(4, 0)], 1);
    }
}
