#![warn(missing_docs)]

//! # tpe-workloads
//!
//! Workload substrate for the bit-weight TPE experiments: matrices, seeded
//! synthetic data, convolution lowering and a DNN/LLM layer-shape database.
//!
//! The paper's workload-dependent quantities all reduce to two things:
//!
//! 1. the **bit-level digit statistics** of normally-distributed INT8
//!    tensors (§II-C evaluates N(0, σ) matrices; real DNN weights and
//!    activations follow the same family), and
//! 2. the **GEMM shapes** (M, N, K) of the evaluated networks — GPT-2,
//!    MobileNetV3, ResNet, ViT, MobileViT — since the reduction dimension K
//!    drives column-PE utilization (§V-D).
//!
//! This crate supplies both, deterministically (every generator is seeded).

pub mod distributions;
pub mod img2col;
pub mod matrix;
pub mod models;
pub mod sparsity;

pub use matrix::Matrix;
pub use models::{LayerShape, NetworkModel};
