//! DNN / LLM layer-shape database.
//!
//! Every network the paper evaluates (Figures 11–13) is represented as the
//! list of GEMMs its layers lower to. Channel tables follow the published
//! architectures; attention layers are decomposed into their constituent
//! GEMMs. Shapes — especially the reduction dimension K — are what drive
//! the column-synchronous utilization results, so they are kept faithful;
//! minor bookkeeping layers (biases, norms) are omitted as the paper does.

use crate::img2col::ConvShape;
use tpe_arith::Precision;

/// One GEMM-shaped layer: `C[m×n] = A[m×k] · B[k×n]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShape {
    /// Human-readable layer label (used as figure x-axis labels).
    pub name: String,
    /// Output rows (e.g. output channels, or tokens).
    pub m: usize,
    /// Output columns (e.g. output pixels, or features).
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// How many times this GEMM repeats in the network (e.g. per-group
    /// depthwise repeats, per-layer transformer repeats).
    pub repeats: usize,
    /// Layer-level operand precision override for mixed-precision
    /// schedules (`None` inherits the engine's precision — the default,
    /// and bit-identical to the pre-precision behavior). On serial
    /// engines a lower-precision layer streams proportionally fewer
    /// digits; dense parallel engines complete one full-width MAC per
    /// lane-cycle regardless, so the override only changes their
    /// numerics, not their schedule.
    pub precision: Option<Precision>,
}

impl LayerShape {
    /// Creates a layer shape at the engine-inherited (default) precision.
    pub fn new(name: impl Into<String>, m: usize, n: usize, k: usize, repeats: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0 && repeats > 0);
        Self {
            name: name.into(),
            m,
            n,
            k,
            repeats,
            precision: None,
        }
    }

    /// The same layer pinned to an explicit operand precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// From a convolution via img2col (one group).
    pub fn from_conv(name: impl Into<String>, conv: &ConvShape) -> Self {
        let (m, n, k) = conv.gemm_dims();
        Self::new(name, m, n, k, conv.groups)
    }

    /// Total multiply–accumulate count.
    pub fn macs(&self) -> u64 {
        (self.m * self.n * self.k * self.repeats) as u64
    }

    /// Distinct element counts of one GEMM instance —
    /// `(weights, activations, outputs)` = `(k·n, m·k, m·n)`. This is the
    /// byte-count basis of the memory-traffic model (multiply by repeats
    /// and the per-element byte width for a full layer).
    pub fn operand_elems(&self) -> (u64, u64, u64) {
        (
            (self.k * self.n) as u64,
            (self.m * self.k) as u64,
            (self.m * self.n) as u64,
        )
    }
}

/// A network: an ordered list of GEMM layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkModel {
    /// Network name as used in Figure 12/13 labels.
    pub name: String,
    /// The layers, in execution order.
    pub layers: Vec<LayerShape>,
}

impl NetworkModel {
    /// Total MACs over the whole network.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerShape::macs).sum()
    }

    /// All networks of the Figure 12/13 sweep, in display order.
    pub fn all() -> Vec<NetworkModel> {
        vec![
            resnet18(),
            resnet50(),
            vgg16(),
            mobilenet_v2(),
            mobilenet_v3(),
            efficientnet_b0(),
            mobilevit_s(),
            vit_b16(),
            gpt2(),
            bert_base(),
        ]
    }

    /// The full lookup catalog: the Figure 12/13 sweep plus the
    /// mixed-precision presets ([`resnet18_quantized`]). Name-based
    /// resolution (`repro models --model`, `repro dse --model`, the serve
    /// `model` op) searches this; [`Self::all`] stays the paper's
    /// ten-network default grid.
    pub fn catalog() -> Vec<NetworkModel> {
        let mut nets = Self::all();
        nets.push(resnet18_quantized());
        nets
    }
}

fn conv(name: &str, in_c: usize, out_c: usize, out_hw: usize, k: usize) -> LayerShape {
    LayerShape::new(name, out_c, out_hw * out_hw, in_c * k * k, 1)
}

fn dw(name: &str, channels: usize, out_hw: usize, k: usize) -> LayerShape {
    // Depthwise: one GEMM per channel with K = k².
    LayerShape::new(name, 1, out_hw * out_hw, k * k, channels)
}

/// ResNet-18 at 224×224 (the §IV-C sync example uses its 64-channel 3×3
/// middle layers: K = 576).
pub fn resnet18() -> NetworkModel {
    let mut layers = vec![conv("conv1-7x7", 3, 64, 112, 7)];
    for i in 0..4 {
        layers.push(conv(&format!("l1.{i}-3x3"), 64, 64, 56, 3));
    }
    layers.push(conv("l2.0-3x3s2", 64, 128, 28, 3));
    for i in 1..4 {
        layers.push(conv(&format!("l2.{i}-3x3"), 128, 128, 28, 3));
    }
    layers.push(conv("l3.0-3x3s2", 128, 256, 14, 3));
    for i in 1..4 {
        layers.push(conv(&format!("l3.{i}-3x3"), 256, 256, 14, 3));
    }
    layers.push(conv("l4.0-3x3s2", 256, 512, 7, 3));
    for i in 1..4 {
        layers.push(conv(&format!("l4.{i}-3x3"), 512, 512, 7, 3));
    }
    layers.push(LayerShape::new("fc", 1000, 1, 512, 1));
    NetworkModel {
        name: "ResNet18".into(),
        layers,
    }
}

/// Quantized ResNet-18: the standard mixed-precision deployment recipe —
/// the stem convolution and the classifier stay at W8 (they are the
/// accuracy-critical ends of the network), every middle block runs at W4.
/// On serial bit-slice engines the W4 layers stream roughly half the
/// digits, so this preset is where the precision axis pays off most
/// (T-MAC-style low-bit inference); dense parallel engines schedule it
/// identically to [`resnet18`].
pub fn resnet18_quantized() -> NetworkModel {
    let base = resnet18();
    let last = base.layers.len() - 1;
    let layers = base
        .layers
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 || i == last {
                l.with_precision(Precision::W8)
            } else {
                l.with_precision(Precision::W4)
            }
        })
        .collect();
    NetworkModel {
        name: "ResNet18-W4".into(),
        layers,
    }
}

/// ResNet-50 (bottleneck blocks; 1×1–3×3–1×1).
pub fn resnet50() -> NetworkModel {
    let mut layers = vec![conv("conv1-7x7", 3, 64, 112, 7)];
    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 56, 3),
        (128, 512, 28, 4),
        (256, 1024, 14, 6),
        (512, 2048, 7, 3),
    ];
    let mut in_c = 64;
    for (si, &(mid, out, hw, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            layers.push(conv(&format!("s{si}.{b}-1x1a"), in_c, mid, hw, 1));
            layers.push(conv(&format!("s{si}.{b}-3x3"), mid, mid, hw, 3));
            layers.push(conv(&format!("s{si}.{b}-1x1b"), mid, out, hw, 1));
            in_c = out;
        }
    }
    layers.push(LayerShape::new("fc", 1000, 1, 2048, 1));
    NetworkModel {
        name: "ResNet50".into(),
        layers,
    }
}

/// VGG-16 (all 3×3 convolutions — uniformly high K).
pub fn vgg16() -> NetworkModel {
    let cfg: [(usize, usize, usize, usize); 13] = [
        (3, 64, 224, 3),
        (64, 64, 224, 3),
        (64, 128, 112, 3),
        (128, 128, 112, 3),
        (128, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 256, 56, 3),
        (256, 512, 28, 3),
        (512, 512, 28, 3),
        (512, 512, 28, 3),
        (512, 512, 14, 3),
        (512, 512, 14, 3),
        (512, 512, 14, 3),
    ];
    let mut layers: Vec<LayerShape> = cfg
        .iter()
        .enumerate()
        .map(|(i, &(ic, oc, hw, k))| conv(&format!("conv{}", i + 1), ic, oc, hw, k))
        .collect();
    layers.push(LayerShape::new("fc1", 4096, 1, 25088, 1));
    layers.push(LayerShape::new("fc2", 4096, 1, 4096, 1));
    layers.push(LayerShape::new("fc3", 1000, 1, 4096, 1));
    NetworkModel {
        name: "VGG16".into(),
        layers,
    }
}

/// MobileNetV2 (inverted residuals: PW-expand, DW 3×3, PW-project).
pub fn mobilenet_v2() -> NetworkModel {
    let mut layers = vec![conv("conv1-3x3s2", 3, 32, 112, 3)];
    // (expansion, out_channels, blocks, out_hw of the stage)
    let cfg: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 112),
        (6, 24, 2, 56),
        (6, 32, 3, 28),
        (6, 64, 4, 14),
        (6, 96, 3, 14),
        (6, 160, 3, 7),
        (6, 320, 1, 7),
    ];
    let mut in_c = 32;
    for (si, &(t, out, blocks, hw)) in cfg.iter().enumerate() {
        for b in 0..blocks {
            let hidden = in_c * t;
            if t != 1 {
                layers.push(conv(&format!("b{si}.{b}-pw-exp"), in_c, hidden, hw, 1));
            }
            layers.push(dw(&format!("b{si}.{b}-dw3x3"), hidden, hw, 3));
            layers.push(conv(&format!("b{si}.{b}-pw-proj"), hidden, out, hw, 1));
            in_c = out;
        }
    }
    layers.push(conv("conv-last-1x1", 320, 1280, 7, 1));
    layers.push(LayerShape::new("fc", 1000, 1, 1280, 1));
    NetworkModel {
        name: "MobileNetV2".into(),
        layers,
    }
}

/// MobileNetV3-Large. The DW/PW alternation of its bneck blocks is the
/// Figure 11(B) workload: DW layers have K ∈ {9, 25} (low utilization),
/// PW layers K ∈ {16…960} (high utilization).
pub fn mobilenet_v3() -> NetworkModel {
    let mut layers = vec![conv("conv1-3x3s2", 3, 16, 112, 3)];
    // (expanded, out_c, kernel, out_hw) per bneck block of MobileNetV3-L.
    let cfg: [(usize, usize, usize, usize); 15] = [
        (16, 16, 3, 112),
        (64, 24, 3, 56),
        (72, 24, 3, 56),
        (72, 40, 5, 28),
        (120, 40, 5, 28),
        (120, 40, 5, 28),
        (240, 80, 3, 14),
        (200, 80, 3, 14),
        (184, 80, 3, 14),
        (184, 80, 3, 14),
        (480, 112, 3, 14),
        (672, 112, 3, 14),
        (672, 160, 5, 7),
        (960, 160, 5, 7),
        (960, 160, 5, 7),
    ];
    let mut in_c = 16;
    for (i, &(exp, out, k, hw)) in cfg.iter().enumerate() {
        if exp != in_c {
            layers.push(conv(&format!("b{i}-pw-exp"), in_c, exp, hw, 1));
        }
        layers.push(dw(&format!("b{i}-dw{k}x{k}"), exp, hw, k));
        layers.push(conv(&format!("b{i}-pw-proj"), exp, out, hw, 1));
        in_c = out;
    }
    layers.push(conv("conv-last-1x1", 160, 960, 7, 1));
    layers.push(LayerShape::new("fc1", 1280, 1, 960, 1));
    layers.push(LayerShape::new("fc2", 1000, 1, 1280, 1));
    NetworkModel {
        name: "MobileNetV3".into(),
        layers,
    }
}

/// EfficientNet-B0 (MBConv blocks, similar DW/PW texture).
pub fn efficientnet_b0() -> NetworkModel {
    let mut layers = vec![conv("stem-3x3s2", 3, 32, 112, 3)];
    // (expansion, out_c, kernel, blocks, out_hw)
    let cfg: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 3, 1, 112),
        (6, 24, 3, 2, 56),
        (6, 40, 5, 2, 28),
        (6, 80, 3, 3, 14),
        (6, 112, 5, 3, 14),
        (6, 192, 5, 4, 7),
        (6, 320, 3, 1, 7),
    ];
    let mut in_c = 32;
    for (si, &(t, out, k, blocks, hw)) in cfg.iter().enumerate() {
        for b in 0..blocks {
            let hidden = in_c * t;
            if t != 1 {
                layers.push(conv(&format!("mb{si}.{b}-pw-exp"), in_c, hidden, hw, 1));
            }
            layers.push(dw(&format!("mb{si}.{b}-dw{k}x{k}"), hidden, hw, k));
            layers.push(conv(&format!("mb{si}.{b}-pw-proj"), hidden, out, hw, 1));
            in_c = out;
        }
    }
    layers.push(conv("head-1x1", 320, 1280, 7, 1));
    layers.push(LayerShape::new("fc", 1000, 1, 1280, 1));
    NetworkModel {
        name: "EfficientNet-B0".into(),
        layers,
    }
}

/// One transformer encoder layer's GEMMs for `tokens` tokens at model
/// width `d` with `heads` heads and MLP expansion ×4.
fn transformer_layer(prefix: &str, tokens: usize, d: usize, heads: usize) -> Vec<LayerShape> {
    let dh = d / heads;
    vec![
        LayerShape::new(format!("{prefix}-qkv"), tokens, 3 * d, d, 1),
        LayerShape::new(format!("{prefix}-attn-qk"), tokens, tokens, dh, heads),
        LayerShape::new(format!("{prefix}-attn-v"), tokens, dh, tokens, heads),
        LayerShape::new(format!("{prefix}-proj"), tokens, d, d, 1),
        LayerShape::new(format!("{prefix}-fc1"), tokens, 4 * d, d, 1),
        LayerShape::new(format!("{prefix}-fc2"), tokens, d, 4 * d, 1),
    ]
}

/// ViT-B/16 at 224×224: 196 patches + class token, 12 layers, d = 768.
pub fn vit_b16() -> NetworkModel {
    let mut layers = vec![LayerShape::new("patch-embed", 197, 768, 768, 1)];
    for l in 0..12 {
        layers.extend(transformer_layer(&format!("L{l}"), 197, 768, 12));
    }
    layers.push(LayerShape::new("head", 1000, 1, 768, 1));
    NetworkModel {
        name: "ViT".into(),
        layers,
    }
}

/// MobileViT-S: MobileNetV2-style stem + three MobileViT transformer
/// stages (d = 144/192/240).
pub fn mobilevit_s() -> NetworkModel {
    let mut layers = vec![
        conv("stem-3x3s2", 3, 16, 128, 3),
        conv("mv2.0-pw-exp", 16, 64, 128, 1),
        dw("mv2.0-dw", 64, 128, 3),
        conv("mv2.0-pw-proj", 64, 32, 128, 1),
        conv("mv2.1-pw-exp", 32, 128, 64, 1),
        dw("mv2.1-dw", 128, 64, 3),
        conv("mv2.1-pw-proj", 128, 64, 64, 1),
    ];
    // (tokens, d, transformer blocks, conv channels, hw)
    let stages: [(usize, usize, usize, usize, usize); 3] = [
        (256, 144, 2, 96, 32),
        (64, 192, 4, 128, 16),
        (16, 240, 3, 160, 8),
    ];
    for (si, &(tokens, d, blocks, c, hw)) in stages.iter().enumerate() {
        layers.push(conv(&format!("s{si}-conv3x3"), c, c, hw, 3));
        layers.push(conv(&format!("s{si}-conv1x1"), c, d, hw, 1));
        for b in 0..blocks {
            layers.extend(transformer_layer(&format!("s{si}.t{b}"), tokens, d, 4));
        }
        layers.push(conv(&format!("s{si}-fuse"), d, c, hw, 1));
    }
    layers.push(conv("head-1x1", 160, 640, 8, 1));
    layers.push(LayerShape::new("fc", 1000, 1, 640, 1));
    NetworkModel {
        name: "MobileViT".into(),
        layers,
    }
}

/// GPT-2 (small): 12 layers, d = 768. Shapes model single-token decode
/// against a 1024-token KV cache — Figure 11(A)'s "inference latency of a
/// single embedding vector at each layer".
pub fn gpt2() -> NetworkModel {
    let mut layers = Vec::new();
    for l in 0..12 {
        layers.extend(gpt2_decode_sublayers(&format!("L{l}"), 1024));
    }
    layers.push(LayerShape::new("lm-head", 1, 50257, 768, 1));
    NetworkModel {
        name: "GPT-2".into(),
        layers,
    }
}

/// The sublayer GEMMs of one GPT-2 decode step (M = 1) at context length
/// `ctx` — the bars of Figure 11(A).
pub fn gpt2_decode_sublayers(prefix: &str, ctx: usize) -> Vec<LayerShape> {
    let (d, heads) = (768, 12);
    let dh = d / heads;
    vec![
        LayerShape::new(format!("{prefix}-qkv"), 1, 3 * d, d, 1),
        LayerShape::new(format!("{prefix}-attn-qk"), 1, ctx, dh, heads),
        LayerShape::new(format!("{prefix}-attn-v"), 1, dh, ctx, heads),
        LayerShape::new(format!("{prefix}-proj"), 1, d, d, 1),
        LayerShape::new(format!("{prefix}-fc1"), 1, 4 * d, d, 1),
        LayerShape::new(format!("{prefix}-fc2"), 1, d, 4 * d, 1),
    ]
}

/// BERT-base: 12 layers over 128-token sequences.
pub fn bert_base() -> NetworkModel {
    let mut layers = Vec::new();
    for l in 0..12 {
        layers.extend(transformer_layer(&format!("L{l}"), 128, 768, 12));
    }
    NetworkModel {
        name: "BERT".into(),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_has_576_reduction_mid_layers() {
        let net = resnet18();
        let mid = net.layers.iter().find(|l| l.name == "l1.0-3x3").unwrap();
        assert_eq!(mid.k, 576);
        assert_eq!(mid.m, 64);
        assert_eq!(mid.n, 56 * 56);
    }

    #[test]
    fn quantized_resnet18_pins_ends_at_w8_and_middle_at_w4() {
        let q = resnet18_quantized();
        let base = resnet18();
        assert_eq!(q.layers.len(), base.layers.len());
        assert_eq!(q.total_macs(), base.total_macs(), "shapes unchanged");
        assert_eq!(q.layers.first().unwrap().precision, Some(Precision::W8));
        assert_eq!(q.layers.last().unwrap().precision, Some(Precision::W8));
        for l in &q.layers[1..q.layers.len() - 1] {
            assert_eq!(l.precision, Some(Precision::W4), "{}", l.name);
        }
        // The catalog resolves it by name; the default grid stays at ten.
        assert_eq!(NetworkModel::all().len(), 10);
        assert!(NetworkModel::catalog()
            .iter()
            .any(|n| n.name == "ResNet18-W4"));
    }

    #[test]
    fn resnet18_total_macs_in_expected_range() {
        // Published figure ≈ 1.8 GMACs; conv-only tally lands nearby.
        let g = resnet18().total_macs() as f64 / 1e9;
        assert!((1.4..2.2).contains(&g), "ResNet-18 GMACs {g}");
    }

    #[test]
    fn vgg16_macs_match_published_scale() {
        let g = vgg16().total_macs() as f64 / 1e9;
        assert!((14.0..16.5).contains(&g), "VGG-16 GMACs {g}");
    }

    #[test]
    fn mobilenets_are_light() {
        let v2 = mobilenet_v2().total_macs() as f64 / 1e6;
        assert!((250.0..450.0).contains(&v2), "MobileNetV2 MMACs {v2}");
        let v3 = mobilenet_v3().total_macs() as f64 / 1e6;
        assert!((150.0..350.0).contains(&v3), "MobileNetV3 MMACs {v3}");
    }

    #[test]
    fn depthwise_layers_have_tiny_k() {
        let net = mobilenet_v3();
        let dws: Vec<_> = net
            .layers
            .iter()
            .filter(|l| l.name.contains("dw"))
            .collect();
        assert!(!dws.is_empty());
        assert!(dws.iter().all(|l| l.k == 9 || l.k == 25));
        let pws: Vec<_> = net
            .layers
            .iter()
            .filter(|l| l.name.contains("pw"))
            .collect();
        assert!(pws.iter().all(|l| l.k >= 16));
    }

    #[test]
    fn vit_macs_match_published_scale() {
        let g = vit_b16().total_macs() as f64 / 1e9;
        assert!((15.0..19.0).contains(&g), "ViT-B/16 GMACs {g}");
    }

    #[test]
    fn gpt2_decode_is_gemv_shaped() {
        for l in gpt2_decode_sublayers("x", 1024) {
            assert_eq!(l.m, 1, "{}", l.name);
        }
    }

    #[test]
    fn all_networks_have_positive_macs() {
        for net in NetworkModel::all() {
            assert!(net.total_macs() > 0, "{}", net.name);
            assert!(!net.layers.is_empty());
        }
    }
}
