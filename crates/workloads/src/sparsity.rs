//! Encoding sparsity and NumPPs measurement over real data.
//!
//! These are the data-facing statistics the paper builds its acceleration
//! case on: the average number of non-zero partial products per operand
//! (Table III) and the digit-level sparsity `s` that parameterizes the
//! synchronization model of Eqs. 7–8 (e.g. `s = 0.38` for EN-T-encoded
//! ResNet-18 weights).

use crate::matrix::Matrix;
use tpe_arith::encode::{Encoder, EncodingKind};

/// How a bit-serial PE accounts cycles for an operand's digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleConvention {
    /// One cycle per non-zero digit (encoded radix-4 designs and
    /// complement bit-serial).
    NonzeroDigits,
    /// One cycle per non-zero magnitude bit **plus one sign slice** —
    /// sign-magnitude serial PEs process the sign explicitly.
    NonzeroDigitsPlusSign,
}

impl CycleConvention {
    /// The convention the paper's Table III uses for each encoding.
    pub fn for_kind(kind: EncodingKind) -> Self {
        match kind {
            EncodingKind::BitSerialSignMagnitude => CycleConvention::NonzeroDigitsPlusSign,
            _ => CycleConvention::NonzeroDigits,
        }
    }
}

/// Cycles (= partial products) one operand costs under an encoding.
pub fn operand_cycles(enc: &dyn Encoder, convention: CycleConvention, value: i8) -> usize {
    let pps = enc.num_pps(i64::from(value), 8);
    match convention {
        CycleConvention::NonzeroDigits => pps,
        CycleConvention::NonzeroDigitsPlusSign => pps + 1,
    }
}

/// Average NumPPs over a matrix — one Table III cell.
pub fn avg_num_pps(matrix: &Matrix<i8>, kind: EncodingKind) -> f64 {
    let enc = kind.encoder();
    let convention = CycleConvention::for_kind(kind);
    let total: usize = matrix
        .iter()
        .map(|&v| operand_cycles(enc.as_ref(), convention, v))
        .sum();
    total as f64 / (matrix.rows() * matrix.cols()) as f64
}

/// Digit-level sparsity `s`: the fraction of *zero* digits among all digit
/// positions — the binomial parameter of the Eq. 7 synchronization model.
pub fn encoding_sparsity(matrix: &Matrix<i8>, kind: EncodingKind) -> f64 {
    let enc = kind.encoder();
    let mut zero = 0usize;
    let mut total = 0usize;
    for &v in matrix.iter() {
        let digits = enc.encode(i64::from(v), 8);
        total += digits.len();
        zero += digits.iter().filter(|d| !d.is_nonzero()).count();
    }
    zero as f64 / total as f64
}

/// NumPPs histogram over a matrix, indexed by count.
pub fn num_pps_histogram(matrix: &Matrix<i8>, kind: EncodingKind) -> Vec<usize> {
    let enc = kind.encoder();
    let mut hist = vec![0usize; 10];
    for &v in matrix.iter() {
        let n = enc.num_pps(i64::from(v), 8);
        if n >= hist.len() {
            hist.resize(n + 1, 0);
        }
        hist[n] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::normal_int8_matrix;

    /// Table III reproduction: average NumPPs of 1024×1024 N(0,σ) matrices.
    /// Paper: EN-T ≈ 2.22–2.27, MBE ≈ 2.41–2.46, bit-serial(M) ≈ 3.52,
    /// bit-serial(C) ≈ 3.98. Exact values depend on the quantizer; the
    /// bands below hold the ordering and magnitudes.
    #[test]
    fn table3_bands() {
        let m = normal_int8_matrix(256, 256, 1.0, 2024);
        let ent = avg_num_pps(&m, EncodingKind::EnT);
        let mbe = avg_num_pps(&m, EncodingKind::Mbe);
        let bsm = avg_num_pps(&m, EncodingKind::BitSerialSignMagnitude);
        let bsc = avg_num_pps(&m, EncodingKind::BitSerialComplement);
        assert!((2.0..2.5).contains(&ent), "EN-T {ent}");
        assert!((2.2..2.7).contains(&mbe), "MBE {mbe}");
        assert!((3.0..3.9).contains(&bsm), "bit-serial(M) {bsm}");
        assert!((3.6..4.4).contains(&bsc), "bit-serial(C) {bsc}");
        assert!(ent < mbe && mbe < bsm && bsm < bsc, "paper ordering");
    }

    /// σ-invariance of the measured averages (Table III rows are flat).
    #[test]
    fn avg_numpps_sigma_invariant() {
        let sigmas = [0.5, 1.0, 2.5, 5.0];
        let vals: Vec<f64> = sigmas
            .iter()
            .map(|&s| avg_num_pps(&normal_int8_matrix(128, 128, s, 7), EncodingKind::EnT))
            .collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.1, "EN-T averages vary too much: {vals:?}");
    }

    /// Sparsity and average NumPPs are two views of the same statistic for
    /// 4-digit encoders: avg = 4 × (1 − s).
    #[test]
    fn sparsity_consistent_with_avg() {
        let m = normal_int8_matrix(64, 64, 1.0, 99);
        let s = encoding_sparsity(&m, EncodingKind::EnT);
        let avg = avg_num_pps(&m, EncodingKind::EnT);
        assert!((avg - 4.0 * (1.0 - s)).abs() < 1e-9);
    }

    /// EN-T sparsity of normal data sits near the paper's ResNet-18 figure
    /// (s ≈ 0.38–0.45 depending on tensor statistics).
    #[test]
    fn ent_sparsity_band() {
        let m = normal_int8_matrix(256, 256, 1.0, 5);
        let s = encoding_sparsity(&m, EncodingKind::EnT);
        assert!((0.35..0.55).contains(&s), "EN-T sparsity {s}");
    }

    #[test]
    fn histogram_sums_to_element_count() {
        let m = normal_int8_matrix(32, 32, 1.0, 1);
        let h = num_pps_histogram(&m, EncodingKind::Mbe);
        assert_eq!(h.iter().sum::<usize>(), 32 * 32);
    }
}
