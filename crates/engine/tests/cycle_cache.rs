//! Cache and observability invariants for the dual cycle-model paths:
//! `CycleKey` carries the [`CycleModel`], so sampled and analytic results
//! for the same (engine, layer) never cross-contaminate — they occupy two
//! distinct cache entries — while the analytic key canonicalizes the seed
//! and sampling budgets away (the closed form depends on neither), so
//! analytic re-queries hit regardless of seed. The serve `stats` op keeps
//! exposing the `hits + misses == lookups` accounting invariant across
//! both modes, and a cold analytic run records into the
//! `eval_serial_analytic_ns` histogram that joins the sampled path's
//! `eval_serial_sample_ns` span.

use tpe_engine::serve::{handle_request, handle_request_with, NoOps};
use tpe_engine::{roster, CycleModel, EngineCache, Evaluator, SweepWorkload};
use tpe_obs::Registry;
use tpe_workloads::LayerShape;

fn serial_probe() -> (tpe_engine::EngineSpec, SweepWorkload) {
    let engine = roster::find("OPT4E[EN-T]/28nm@2.00GHz").expect("roster engine");
    let workload = SweepWorkload::Layer(LayerShape::new("probe", 64, 256, 128, 1));
    (engine, workload)
}

/// Pulls a `"key":N` integer field out of a JSON reply line.
fn field_u64(reply: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = reply
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {reply}"));
    reply[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

/// The same (engine, layer, seed) evaluated under both modes occupies two
/// cycle-cache entries — the mode is part of the key — and warm re-queries
/// of either mode hit their own entry without touching the other's.
#[test]
fn both_modes_coexist_without_cross_contamination() {
    let cache = EngineCache::new();
    let (engine, workload) = serial_probe();
    let sampled_eval = Evaluator::new(&cache);
    let analytic_eval = Evaluator::new(&cache).with_cycle_model(CycleModel::Analytic);

    sampled_eval
        .metrics(&engine, &workload, 42)
        .expect("sampled");
    analytic_eval
        .metrics(&engine, &workload, 42)
        .expect("analytic");
    let cold = cache.stats();
    assert_eq!(cold.cycle_misses, 2, "one miss per mode: {cold:?}");
    assert_eq!(cache.cycles_len(), 2, "two coexisting entries");

    sampled_eval
        .metrics(&engine, &workload, 42)
        .expect("sampled warm");
    analytic_eval
        .metrics(&engine, &workload, 42)
        .expect("analytic warm");
    let warm = cache.stats().since(&cold);
    assert_eq!(warm.cycle_misses, 0, "warm re-queries must not recompute");
    assert_eq!(warm.cycle_hits, 2, "each mode hits its own entry");

    let total = cache.stats();
    assert_eq!(total.hits() + total.misses(), total.lookups());
}

/// The analytic key canonicalizes the seed to zero: different seeds are
/// one entry (1 miss + 1 hit) and byte-identical metrics — the closed
/// form is a pure function of (engine, layer).
#[test]
fn analytic_entries_are_seed_canonicalized() {
    let cache = EngineCache::new();
    let (engine, workload) = serial_probe();
    let eval = Evaluator::new(&cache).with_cycle_model(CycleModel::Analytic);

    let first = eval.metrics(&engine, &workload, 1).expect("seed 1");
    let second = eval.metrics(&engine, &workload, 2).expect("seed 2");
    assert_eq!(first, second, "analytic results must be seed-independent");

    let stats = cache.stats();
    assert_eq!(stats.cycle_misses, 1, "{stats:?}");
    assert_eq!(stats.cycle_hits, 1, "{stats:?}");
    assert_eq!(cache.cycles_len(), 1, "one canonical entry");
}

/// The serve `stats` op still certifies `hits + misses == lookups` after
/// a mixed sampled/analytic request stream, the analytic replies echo
/// their mode, and sampled replies stay byte-identical to a server that
/// has never heard of cycle models.
#[test]
fn stats_op_invariant_holds_across_modes() {
    let cache: &'static EngineCache = Box::leak(Box::new(EngineCache::new()));
    let layer_req =
        r#"{"id":1,"op":"layer","engine":"OPT4E[EN-T]","m":48,"n":192,"k":96,"seed":7}"#;

    let (sampled, _) = handle_request(layer_req, cache, &NoOps);
    let (analytic, _) = handle_request_with(layer_req, cache, &NoOps, CycleModel::Analytic);
    assert!(
        analytic[0].contains(r#""cycle_model":"analytic""#),
        "analytic replies must carry the mode: {}",
        analytic[0]
    );
    assert!(
        !sampled[0].contains("cycle_model"),
        "sampled replies must stay byte-identical to the pre-mode protocol: {}",
        sampled[0]
    );
    // An explicit per-request field overrides the server default the same
    // way — the reply is identical to the default-injected one.
    let explicit = r#"{"id":1,"op":"layer","engine":"OPT4E[EN-T]","m":48,"n":192,"k":96,"seed":7,"cycle_model":"analytic"}"#;
    let (explicit_reply, _) = handle_request(explicit, cache, &NoOps);
    assert_eq!(explicit_reply, analytic);

    let (stats, _) = handle_request(r#"{"id":2,"op":"stats"}"#, cache, &NoOps);
    let reply = &stats[0];
    let hits = field_u64(reply, "price_hits") + field_u64(reply, "cycle_hits");
    let misses = field_u64(reply, "price_misses") + field_u64(reply, "cycle_misses");
    let lookups = field_u64(reply, "price_lookups") + field_u64(reply, "cycle_lookups");
    assert_eq!(hits + misses, lookups, "stats op invariant: {reply}");
    assert_eq!(field_u64(reply, "cycle_misses"), 2, "one per mode: {reply}");
}

/// A cold analytic evaluation records into `eval_serial_analytic_ns`
/// (the closed-form path's span beside the sampler's
/// `eval_serial_sample_ns`). The histograms are process-global and
/// monotone, so the delta assertion is safe under parallel test threads.
#[test]
fn analytic_cold_run_records_into_its_histogram() {
    let registry = Registry::global();
    let before = registry.snapshot();

    let cache = EngineCache::new();
    let (engine, workload) = serial_probe();
    Evaluator::new(&cache)
        .with_cycle_model(CycleModel::Analytic)
        .metrics(&engine, &workload, 3)
        .expect("analytic cold run");

    let delta = registry.snapshot().since(&before);
    let count = delta
        .histogram("eval_serial_analytic_ns")
        .map_or(0, |h| h.count());
    assert!(count > 0, "analytic span must record: {delta:?}");
}
