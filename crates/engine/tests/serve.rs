//! Socket-level integration and property tests for the serve layer:
//! batched responses are byte-identical to sequential single-query
//! responses under the worker pool, concurrent connections share the
//! cache consistently, mid-batch shutdown drains instead of dropping
//! lines, short server batches surface as typed errors, and per-line
//! limits are enforced.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::thread::JoinHandle;

use proptest::prelude::*;
use tpe_engine::serve::{
    query_batch, serve_with, serve_with_obs, NoOps, ServeConfig, ServeObs, ServeOutcome,
};
use tpe_engine::EngineCache;
use tpe_obs::Registry;

/// A 4-worker pool even on the 1-core CI box: the pool there proves
/// ordering (responses must reassemble in request order regardless of
/// which worker finishes first), not speedup.
fn pool_config() -> ServeConfig {
    ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    }
}

/// Binds an ephemeral pooled server backed by `cache`; returns its
/// address and the join handle resolving to the serve outcome.
fn spawn_server_with(
    cache: &'static EngineCache,
    config: ServeConfig,
) -> (String, JoinHandle<std::io::Result<ServeOutcome>>) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || serve_with(listener, cache, &NoOps, config));
    (addr, handle)
}

fn spawn_server() -> (String, JoinHandle<std::io::Result<ServeOutcome>>) {
    spawn_server_with(EngineCache::global(), pool_config())
}

fn shutdown(addr: &str) {
    query_batch(addr, &[r#"{"id":0,"op":"shutdown"}"#.to_string()]).expect("shutdown");
}

#[test]
fn batched_and_sequential_and_concurrent_replies_are_byte_identical() {
    let (addr, handle) = spawn_server();
    let requests: Vec<String> = vec![
        r#"{"id":1,"op":"roster"}"#.into(),
        r#"{"id":2,"op":"engine","engine":"OPT3[EN-T]/28nm@2.00GHz"}"#.into(),
        r#"{"id":3,"op":"layer","engine":"OPT4E[EN-T]","m":64,"n":256,"k":128,"seed":7}"#.into(),
        r#"{"id":4,"op":"layer","engine":"MAC(TPU)/28nm@1.00GHz","m":32,"n":32,"k":32}"#.into(),
        r#"{"id":5,"op":"engine","engine":"MAC(TPU)/28nm@2.00GHz"}"#.into(),
        r#"{"id":6,"op":"layer","engine":"OPT4E[EN-T]","m":64,"n":256,"k":128,"seed":7}"#.into(),
    ];

    let batched = query_batch(&addr, &requests).expect("batch");
    assert_eq!(batched.len(), requests.len());

    // Sequential: one fresh connection per request.
    let sequential: Vec<String> = requests
        .iter()
        .map(|r| {
            let mut resp = query_batch(&addr, std::slice::from_ref(r)).expect("single");
            assert_eq!(resp.len(), 1);
            resp.pop().unwrap()
        })
        .collect();
    assert_eq!(batched, sequential);

    // Concurrent: several client threads firing the same batch get the
    // same bytes (the shared cache changes timing, never values).
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| query_batch(&addr, &requests).expect("concurrent batch")))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for replies in concurrent {
        assert_eq!(replies, batched);
    }

    // Identical requests (ids 3 and 6) got identical replies.
    assert_eq!(
        batched[2].replace("\"id\":3", "\"id\":6"),
        batched[5],
        "same question, same answer"
    );

    shutdown(&addr);
    let outcome = handle.join().unwrap().expect("serve loop");
    assert!(outcome.connections >= 10, "{outcome:?}");
    assert!(outcome.requests >= requests.len() as u64, "{outcome:?}");
    assert_eq!(outcome.workers, 4, "{outcome:?}");
}

/// One client's distinct mixed batch across ops, engines and precisions
/// (seeds differ per client so batches do not alias): per client of the
/// four, 3 `engine`, 6 `layer`, and 3 `model` requests.
fn client_batch(c: usize) -> Vec<String> {
    let engines = [
        "OPT3[EN-T]/28nm@2.00GHz",
        "OPT4E[EN-T]",
        "OPT4C[EN-T]",
        "MAC(Trapezoid)",
    ];
    let precisions = ["W8", "W4", "W16"];
    (0..12)
        .map(|i| {
            let engine = engines[(c + i) % engines.len()];
            match i % 4 {
                0 => format!(
                    r#"{{"id":{i},"op":"engine","engine":"{engine}","precision":"{}"}}"#,
                    precisions[(c + i) % precisions.len()]
                ),
                1 | 2 => format!(
                    r#"{{"id":{i},"op":"layer","engine":"{engine}","m":{m},"n":64,"k":64,"seed":{s}}}"#,
                    m = 16 + 8 * ((c + i) % 4),
                    s = c
                ),
                _ => format!(
                    r#"{{"id":{i},"op":"model","engine":"OPT4E[EN-T]","model":"ResNet18","seed":{c}}}"#
                ),
            }
        })
        .collect()
}

/// Satellite: N simultaneous client connections with mixed
/// engine/layer/model/precision ops against one pooled server. Each
/// client's responses must be byte-identical to its own sequential
/// baseline, and the shared cache's counters must stay consistent
/// (hits + misses == lookups) under the concurrent increments.
#[test]
fn concurrent_clients_match_their_sequential_baselines_and_stats_stay_consistent() {
    // A dedicated instance so the consistency check sees exactly this
    // test's traffic (leaked: the server thread wants 'static).
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let (addr, handle) = spawn_server_with(cache, pool_config());

    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let workers: Vec<_> = (0..4)
            .map(|c| scope.spawn(move || query_batch(addr, &client_batch(c)).expect("client")))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    for (c, replies) in concurrent.iter().enumerate() {
        let baseline: Vec<String> = client_batch(c)
            .iter()
            .map(|r| {
                query_batch(&addr, std::slice::from_ref(r))
                    .expect("baseline")
                    .pop()
                    .unwrap()
            })
            .collect();
        assert_eq!(replies, &baseline, "client {c} diverged from its baseline");
        assert!(
            replies.iter().all(|r| r.contains("\"ok\":true")),
            "client {c}: {replies:?}"
        );
    }

    shutdown(&addr);
    handle.join().unwrap().expect("serve loop");
    // Quiescent now: every lookup must have been accounted exactly once.
    let stats = cache.stats();
    assert!(stats.lookups() > 0);
    assert_eq!(
        stats.lookups(),
        stats.hits() + stats.misses(),
        "cache accounting drifted under concurrency: {stats:?}"
    );
    assert_eq!(stats.price_lookups, stats.price_hits + stats.price_misses);
    assert_eq!(stats.cycle_lookups, stats.cycle_hits + stats.cycle_misses);
}

/// Pulls `"key":value` out of a one-line JSON reply as a u64.
fn field_u64(reply: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let start = reply
        .find(&tag)
        .unwrap_or_else(|| panic!("{key} in {reply}"))
        + tag.len();
    reply[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} numeric in {reply}"))
}

/// Satellite: the observability layer's own accounting under a mixed
/// 4-client load. Into an isolated registry (so parallel test binaries
/// cannot pollute the counts): per-op request counters sum to the total
/// pool-processed requests, the queue-wait and eval histograms saw
/// exactly one record per request, the in-flight gauge returns to zero,
/// and the serving cache's hits + misses == lookups invariant holds as
/// reported over the wire by the `metrics` op.
#[test]
fn observability_counters_stay_consistent_under_concurrent_load() {
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let registry: &'static Registry = &*Box::leak(Box::new(Registry::new()));
    let obs: &'static ServeObs = &*Box::leak(Box::new(ServeObs::in_registry(registry)));
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle =
        std::thread::spawn(move || serve_with_obs(listener, cache, &NoOps, pool_config(), obs));

    // 4 clients × 12 mixed requests, concurrently.
    std::thread::scope(|scope| {
        let addr = addr.as_str();
        for c in 0..4 {
            scope.spawn(move || {
                let replies = query_batch(addr, &client_batch(c)).expect("client");
                assert!(replies.iter().all(|r| r.contains("\"ok\":true")));
            });
        }
    });

    // Workers record metrics *before* replying, so with all 48 client
    // replies read, a metrics poll now must already cover them. Its
    // cache counters come from the serving instance, so the invariant
    // check over the wire is exact.
    let metrics = query_batch(&addr, &[r#"{"id":1,"op":"metrics"}"#.to_string()])
        .expect("metrics")
        .pop()
        .unwrap();
    for kind in ["price", "cycle"] {
        assert_eq!(
            field_u64(&metrics, &format!("ctr_cache_{kind}_lookups")),
            field_u64(&metrics, &format!("ctr_cache_{kind}_hits"))
                + field_u64(&metrics, &format!("ctr_cache_{kind}_misses")),
            "{kind} accounting drifted over the wire: {metrics}"
        );
    }
    assert!(
        field_u64(&metrics, "ctr_cache_price_lookups") > 0,
        "{metrics}"
    );

    shutdown(&addr);
    handle.join().unwrap().expect("serve loop");

    // Quiescent: 48 client requests + 1 metrics + 1 shutdown went
    // through the pool. Every one was classified into exactly one op
    // counter and recorded in both latency histograms.
    let total = 4 * 12 + 2;
    let counted: u64 = obs.op_requests.iter().map(|c| c.get()).sum();
    assert_eq!(counted + obs.other_requests.get(), total);
    assert_eq!(obs.other_requests.get(), 0);
    assert_eq!(obs.parse_errors.get(), 0);
    for (op, want) in [
        ("engine", 4 * 3),
        ("layer", 4 * 6),
        ("model", 4 * 3),
        ("metrics", 1),
        ("shutdown", 1),
    ] {
        assert_eq!(
            obs.op_counter(op).expect("counted op").get(),
            want,
            "op {op}"
        );
    }
    assert_eq!(obs.queue_wait_ns.snapshot().count(), total);
    assert_eq!(obs.eval_ns.snapshot().count(), total);
    assert_eq!(obs.inflight.get(), 0, "in-flight gauge must return to 0");
    // 4 client connections + the metrics poll + the shutdown.
    assert_eq!(obs.connections.get(), 6);
}

/// Satellite: a shutdown in the middle of a batch answers the remaining
/// lines with `server draining` errors (ids echoed) instead of leaving
/// them unanswered, then the server comes down cleanly.
#[test]
fn mid_batch_shutdown_drains_the_remaining_lines() {
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let (addr, handle) = spawn_server_with(cache, pool_config());
    let batch: Vec<String> = vec![
        r#"{"id":10,"op":"engine","engine":"OPT4E[EN-T]"}"#.into(),
        r#"{"id":11,"op":"shutdown"}"#.into(),
        r#"{"id":12,"op":"layer","engine":"OPT3[EN-T]","m":8,"n":8,"k":8}"#.into(),
        "definitely not json".into(),
        r#"{"id":14,"op":"roster"}"#.into(),
    ];
    let replies = query_batch(&addr, &batch).expect("batch with mid-batch shutdown");
    assert_eq!(
        replies.len(),
        batch.len(),
        "every line answered: {replies:?}"
    );
    assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
    assert!(replies[1].contains("\"op\":\"shutdown\""), "{}", replies[1]);
    for (reply, id) in [(&replies[2], 12), (&replies[3], 0), (&replies[4], 14)] {
        assert!(
            reply.starts_with(&format!("{{\"id\":{id},\"ok\":false")),
            "{reply}"
        );
        assert!(reply.contains("server draining"), "{reply}");
    }
    let outcome = handle.join().unwrap().expect("serve loop");
    assert_eq!(outcome.requests, batch.len() as u64, "{outcome:?}");
}

/// A shutdown stops the listener the moment it is parsed: a client that
/// sends shutdown but holds its connection open cannot postpone it, and
/// new connections are refused while the holdout drains.
#[test]
fn shutdown_stops_the_listener_before_the_connection_closes() {
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let (addr, handle) = spawn_server_with(cache, pool_config());

    let mut holdout = std::net::TcpStream::connect(&addr).expect("connect");
    holdout
        .write_all(b"{\"id\":1,\"op\":\"shutdown\"}\n")
        .expect("send shutdown");
    let mut reply = String::new();
    BufReader::new(holdout.try_clone().expect("clone"))
        .read_line(&mut reply)
        .expect("shutdown reply");
    assert!(reply.contains("\"op\":\"shutdown\""), "{reply}");

    // The holdout is still open, yet the listener must go down promptly.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match std::net::TcpStream::connect(&addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "listener still accepting while a shutdown holdout is open"
                );
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    }

    drop(holdout);
    let outcome = handle.join().unwrap().expect("serve loop");
    assert!(outcome.requests >= 1, "{outcome:?}");
}

/// Satellite: when the server dies before answering every line,
/// `query_batch` returns a typed error naming expected vs. received
/// counts instead of silently handing back a short vector.
#[test]
fn short_server_batches_error_with_expected_vs_received_counts() {
    // A fake listener that answers exactly one line, then closes.
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Read a line so the client is committed, answer once, drop.
        let mut line = String::new();
        BufReader::new(stream.try_clone().expect("clone"))
            .read_line(&mut line)
            .expect("read");
        stream
            .write_all(b"{\"id\":0,\"ok\":true,\"op\":\"roster\",\"engines\":[]}\n")
            .expect("write");
        // Dropping the stream closes the connection mid-batch.
    });
    let requests: Vec<String> = (0..3)
        .map(|i| format!(r#"{{"id":{i},"op":"roster"}}"#))
        .collect();
    let err = query_batch(&addr, &requests).expect_err("short batch must error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    let msg = err.to_string();
    assert!(msg.contains("expected 3"), "{msg}");
    assert!(msg.contains("received 1"), "{msg}");
    fake.join().unwrap();
}

/// Over-long request lines are answered with an error (id recovered from
/// the readable prefix) and the connection closes; the server survives.
#[test]
fn over_long_lines_are_rejected_and_the_server_survives() {
    let cache: &'static EngineCache = &*Box::leak(Box::new(EngineCache::new()));
    let config = ServeConfig {
        threads: 2,
        max_line_bytes: 256,
        ..ServeConfig::default()
    };
    let (addr, handle) = spawn_server_with(cache, config);

    let long = format!(
        r#"{{"id":77,"op":"layer","engine":"OPT3[EN-T]","workload":"{}","m":8,"n":8,"k":8}}"#,
        "x".repeat(400)
    );
    let replies = query_batch(&addr, &[long]).expect("one error line before close");
    assert_eq!(replies.len(), 1);
    assert!(
        replies[0].starts_with("{\"id\":77,\"ok\":false"),
        "id recovered from the prefix: {}",
        replies[0]
    );
    assert!(
        replies[0].contains("max line bytes (256)"),
        "{}",
        replies[0]
    );

    // A short line on a fresh connection still answers: the limit is
    // per-connection, not fatal to the server.
    let ok = query_batch(&addr, &[r#"{"id":1,"op":"roster"}"#.to_string()]).expect("short line");
    assert!(ok[0].contains("\"ok\":true"), "{}", ok[0]);

    // Invalid UTF-8 after a readable prefix: the error echoes the
    // recovered id from the ASCII part.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(b"{\"id\":9,\"op\":\"engine\",\"engine\":\"\xff\xfe\"}\n")
        .expect("write");
    raw.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    BufReader::new(&raw).read_line(&mut reply).expect("reply");
    assert!(
        reply.starts_with("{\"id\":9,\"ok\":false"),
        "id recovered from the readable prefix: {reply}"
    );
    assert!(reply.contains("not valid UTF-8"), "{reply}");

    shutdown(&addr);
    handle.join().unwrap().expect("serve loop");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for arbitrary layer-query batches evaluated across the
    /// worker pool, the batched replies equal the per-connection
    /// sequential replies byte for byte (pipelining reassembles in
    /// request order; per-request determinism does the rest).
    #[test]
    fn arbitrary_layer_batches_are_batch_order_invariant(
        shapes in prop::collection::vec(
            (1usize..96, 1usize..96, 1usize..96, 0u64..4, 0usize..3),
            1..5,
        ),
    ) {
        let engines = ["OPT3[EN-T]", "OPT4C[EN-T]", "MAC(Trapezoid)"];
        let requests: Vec<String> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k, seed, e))| {
                format!(
                    r#"{{"id":{i},"op":"layer","engine":"{}","m":{m},"n":{n},"k":{k},"seed":{seed}}}"#,
                    engines[e]
                )
            })
            .collect();
        let (addr, handle) = spawn_server();
        let batched = query_batch(&addr, &requests).expect("batch");
        let sequential: Vec<String> = requests
            .iter()
            .map(|r| query_batch(&addr, std::slice::from_ref(r)).expect("single").pop().unwrap())
            .collect();
        shutdown(&addr);
        handle.join().unwrap().expect("serve loop");
        prop_assert_eq!(batched, sequential);
    }
}
