//! Socket-level integration and property tests for the serve layer:
//! batched responses are byte-identical to sequential single-query
//! responses, concurrent connections share the cache, and shutdown is
//! clean.

use std::net::TcpListener;
use std::thread::JoinHandle;

use proptest::prelude::*;
use tpe_engine::serve::{query_batch, serve, ServeOutcome};
use tpe_engine::EngineCache;

/// Binds an ephemeral server backed by the global cache; returns its
/// address and the join handle resolving to the serve outcome.
fn spawn_server() -> (String, JoinHandle<std::io::Result<ServeOutcome>>) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || serve(listener, EngineCache::global()));
    (addr, handle)
}

fn shutdown(addr: &str) {
    query_batch(addr, &[r#"{"id":0,"op":"shutdown"}"#.to_string()]).expect("shutdown");
}

#[test]
fn batched_and_sequential_and_concurrent_replies_are_byte_identical() {
    let (addr, handle) = spawn_server();
    let requests: Vec<String> = vec![
        r#"{"id":1,"op":"roster"}"#.into(),
        r#"{"id":2,"op":"engine","engine":"OPT3[EN-T]/28nm@2.00GHz"}"#.into(),
        r#"{"id":3,"op":"layer","engine":"OPT4E[EN-T]","m":64,"n":256,"k":128,"seed":7}"#.into(),
        r#"{"id":4,"op":"layer","engine":"MAC(TPU)/28nm@1.00GHz","m":32,"n":32,"k":32}"#.into(),
        r#"{"id":5,"op":"engine","engine":"MAC(TPU)/28nm@2.00GHz"}"#.into(),
        r#"{"id":6,"op":"layer","engine":"OPT4E[EN-T]","m":64,"n":256,"k":128,"seed":7}"#.into(),
    ];

    let batched = query_batch(&addr, &requests).expect("batch");
    assert_eq!(batched.len(), requests.len());

    // Sequential: one fresh connection per request.
    let sequential: Vec<String> = requests
        .iter()
        .map(|r| {
            let mut resp = query_batch(&addr, std::slice::from_ref(r)).expect("single");
            assert_eq!(resp.len(), 1);
            resp.pop().unwrap()
        })
        .collect();
    assert_eq!(batched, sequential);

    // Concurrent: several client threads firing the same batch get the
    // same bytes (the shared cache changes timing, never values).
    let concurrent: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| query_batch(&addr, &requests).expect("concurrent batch")))
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    for replies in concurrent {
        assert_eq!(replies, batched);
    }

    // Identical requests (ids 3 and 6) got identical replies.
    assert_eq!(
        batched[2].replace("\"id\":3", "\"id\":6"),
        batched[5],
        "same question, same answer"
    );

    shutdown(&addr);
    let outcome = handle.join().unwrap().expect("serve loop");
    assert!(outcome.connections >= 10, "{outcome:?}");
    assert!(outcome.requests >= requests.len() as u64, "{outcome:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for arbitrary layer-query batches, the batched replies
    /// equal the per-connection sequential replies byte for byte.
    #[test]
    fn arbitrary_layer_batches_are_batch_order_invariant(
        shapes in prop::collection::vec(
            (1usize..96, 1usize..96, 1usize..96, 0u64..4, 0usize..3),
            1..5,
        ),
    ) {
        let engines = ["OPT3[EN-T]", "OPT4C[EN-T]", "MAC(Trapezoid)"];
        let requests: Vec<String> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k, seed, e))| {
                format!(
                    r#"{{"id":{i},"op":"layer","engine":"{}","m":{m},"n":{n},"k":{k},"seed":{seed}}}"#,
                    engines[e]
                )
            })
            .collect();
        let (addr, handle) = spawn_server();
        let batched = query_batch(&addr, &requests).expect("batch");
        let sequential: Vec<String> = requests
            .iter()
            .map(|r| query_batch(&addr, std::slice::from_ref(r)).expect("single").pop().unwrap())
            .collect();
        shutdown(&addr);
        handle.join().unwrap().expect("serve loop");
        prop_assert_eq!(batched, sequential);
    }
}
