//! The analytic-vs-sampled serial-cycle oracle suite.
//!
//! [`analytic_serial_cycles`] replaces the Monte-Carlo sampler on the hot
//! path; [`sample_serial_cycles`] stays as the test oracle. Both evaluate
//! the same layer-mapping model, so for every encoder × operand width ×
//! layer shape the analytic expectation must sit inside the sampler's
//! concentration band — and the band must *tighten* as the sampling caps
//! grow (the consistency half of the contract: agreement that did not
//! improve with more samples would mean the two paths model different
//! distributions, not that one estimates the other).
//!
//! The tolerance ladder is pinned per [`SampleProfile`], in increasing
//! budget order: Quick 15% → Model 10% → Sweep 5% → Single 4%. Each rung
//! averages the sampled estimate over a few fixed seeds so the bound
//! checks the estimator's mean, not one unlucky draw.

use proptest::prelude::*;
use tpe_arith::encode::EncodingKind;
use tpe_arith::Precision;
use tpe_core::arch::workload::{analytic_serial_cycles, sample_serial_cycles};
use tpe_engine::caps::SampleProfile;
use tpe_sim::BitsliceConfig;
use tpe_workloads::LayerShape;

/// The precision presets the paper sweeps (W8xW4's encoded-multiplicand
/// width is 8; its narrow multiplier does not enter the cycle model).
const PRECISIONS: [Precision; 4] = [
    Precision::W4,
    Precision::W8,
    Precision::W16,
    Precision::W8X4,
];

/// The pinned tolerance ladder: `(profile, relative tolerance, seeds
/// averaged)`. Budgets grow down the list and the tolerance tightens
/// with them.
const LADDER: [(SampleProfile, f64, u64); 4] = [
    (SampleProfile::Quick, 0.15, 2),
    (SampleProfile::Model, 0.10, 2),
    (SampleProfile::Sweep, 0.05, 3),
    (SampleProfile::Single, 0.04, 4),
];

fn rel_err(analytic: f64, sampled: f64) -> f64 {
    (analytic - sampled).abs() / sampled.abs().max(1e-12)
}

/// Checks one (encoder, width, layer) point against the full ladder;
/// returns a description of the first violated rung.
fn check_ladder(
    cfg: &BitsliceConfig,
    kind: EncodingKind,
    a_bits: u32,
    layer: &LayerShape,
) -> Result<(), String> {
    let encoder = kind.encoder();
    let analytic = analytic_serial_cycles(cfg, encoder.as_ref(), a_bits, layer);
    for (profile, tol, seeds) in LADDER {
        let caps = profile.caps();
        let mut cycles = 0.0;
        let mut busy = 0.0;
        for seed in 0..seeds {
            let s =
                sample_serial_cycles(cfg, encoder.as_ref(), a_bits, layer, 0xC0FFEE + seed, caps);
            // The mapping arithmetic (rounds × passes) must be identical,
            // not just close — both paths derive it without sampling.
            if s.rounds != analytic.rounds {
                return Err(format!(
                    "{kind:?} W{a_bits} {layer:?}: rounds diverged \
                     (analytic {}, sampled {})",
                    analytic.rounds, s.rounds
                ));
            }
            cycles += s.cycles;
            busy += s.busy.iter().sum::<f64>();
        }
        cycles /= seeds as f64;
        busy /= seeds as f64;
        let cycle_err = rel_err(analytic.cycles, cycles);
        let busy_err = rel_err(analytic.busy.iter().sum(), busy);
        if cycle_err > tol || busy_err > tol {
            return Err(format!(
                "{kind:?} W{a_bits} {layer:?} @ {profile:?}: cycle err {:.4}, \
                 busy err {:.4} exceed tolerance {tol}",
                cycle_err, busy_err
            ));
        }
    }
    Ok(())
}

/// Builds one of the three layer families the paper prices from raw
/// randomized dimensions: skinny decode-style GEMVs (`m = 1`),
/// `k < KT_MIN_OPERANDS` tiny-K batching (depthwise kernels), and
/// general tiles — all with `repeats > 1` reachable.
fn shape_from(family: usize, m: usize, n: usize, k: usize, repeats: usize) -> LayerShape {
    match family {
        0 => LayerShape::new("decode", 1, 64 + n % 448, 128 + k % 896, repeats),
        1 => LayerShape::new("tinyk", 8 + m % 120, 8 + n % 120, 1 + k % 31, repeats),
        _ => LayerShape::new("tile", 16 + m % 240, 16 + n % 240, 32 + k % 480, repeats),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle property: for random shapes, encoders and widths the
    /// analytic statistics agree with the sampled oracle at every rung
    /// of the (tightening) tolerance ladder.
    #[test]
    fn analytic_tracks_the_sampled_oracle(
        family in 0usize..3,
        m in 0usize..4096,
        n in 0usize..4096,
        k in 0usize..4096,
        repeats in 1usize..4,
        enc_idx in 0usize..5,
        prec_idx in 0usize..4,
    ) {
        let layer = shape_from(family, m, n, k, repeats);
        let cfg = BitsliceConfig::opt3();
        let kind = EncodingKind::ALL[enc_idx];
        let a_bits = PRECISIONS[prec_idx].a_bits;
        if let Err(msg) = check_ladder(&cfg, kind, a_bits, &layer) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Exhaustive coverage backstop: every encoder × every precision preset
/// on one representative shape per family, at the Model rung (the
/// proptest above randomizes over this grid; this test guarantees no
/// combination is ever skipped in a given `cargo test` run).
#[test]
fn every_encoder_and_precision_clears_the_model_rung() {
    let cfg = BitsliceConfig::opt3();
    let shapes = [
        LayerShape::new("decode", 1, 128, 768, 1),
        LayerShape::new("tinyk", 96, 32, 9, 2),
        LayerShape::new("tile", 64, 64, 256, 1),
    ];
    let mut failures = Vec::new();
    for kind in EncodingKind::ALL {
        for precision in PRECISIONS {
            for layer in &shapes {
                let encoder = kind.encoder();
                let analytic =
                    analytic_serial_cycles(&cfg, encoder.as_ref(), precision.a_bits, layer);
                let caps = SampleProfile::Model.caps();
                let sampled =
                    sample_serial_cycles(&cfg, encoder.as_ref(), precision.a_bits, layer, 7, caps);
                assert_eq!(analytic.rounds, sampled.rounds, "{kind:?} {layer:?}");
                let err = rel_err(analytic.cycles, sampled.cycles);
                if err > 0.10 {
                    failures.push(format!(
                        "{kind:?} W{} {}: cycle err {err:.4}",
                        precision.a_bits, layer.name
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "oracle violations:\n{}",
        failures.join("\n")
    );
}
