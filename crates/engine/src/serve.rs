//! The `repro serve` protocol: a std-only TCP/NDJSON batch query server
//! over the canonical evaluator and the process-wide cache.
//!
//! ## Wire format
//!
//! Newline-delimited JSON both ways: one flat JSON object per line in,
//! one (or, for batch ops, several) per line out, responses in request
//! order. A connection is a batch; clients may stream any number of
//! requests and close (or half-close) when done. Requests:
//!
//! ```text
//! {"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}
//! {"id":2,"op":"layer","engine":"OPT3[EN-T]","m":64,"n":3136,"k":576,"repeats":1,"seed":42}
//! {"id":3,"op":"model","engine":"OPT4E[EN-T]","model":"ResNet18","seed":42}
//! {"id":4,"op":"engine","engine":"OPT4E[EN-T]","precision":"W4"}
//! {"id":5,"op":"roster"}
//! {"id":6,"op":"stats"}
//! {"id":7,"op":"metrics"}
//! {"id":8,"op":"metrics","format":"prometheus"}
//! {"id":9,"op":"shutdown"}
//! ```
//!
//! The `engine`/`layer`/`model` ops accept an optional `"precision"`
//! field (`"W4"` / `"W8"` / `"W16"` / `"W8xW4"`, or the generic
//! `"W{a}xW{b}a{acc}"` form): the engine is then priced and scheduled at
//! that operand precision, and response labels carry the `@W…` suffix.
//! Omitting it keeps the paper's W8 — byte-identical to the
//! pre-precision protocol.
//!
//! The same ops accept an optional `"memory"` field naming a
//! [`crate::MemorySpec`] corner (`"edge"` / `"mobile"` / `"hbm"`, or
//! `"unbounded"` explicitly): scheduling then bounds each layer by the
//! corner's roofline, response labels carry the `@corner` suffix, and
//! `layer`/`model` bodies append a `bytes_moved` /
//! `intensity_ops_per_byte` / `bound` group. Omitting it (or naming
//! `unbounded`) keeps the memory-free model — byte-identical to the
//! pre-memory protocol.
//!
//! Deployments can extend the op set through [`BatchOps`]: the `repro`
//! binary attaches `tpe-dse`'s `sweep`/`pareto` ops, which answer one
//! request with a summary line plus optional per-design-point lines
//! (each carrying `"points_follow"` so clients know how many extra lines
//! to read — [`query_batch`] does this automatically).
//!
//! Responses echo the `id` and carry `"ok":true` plus op-specific fields,
//! or `"ok":false` with an `"error"` string. All numeric fields render at
//! fixed precision, so a given request line maps to exactly one response
//! byte sequence — **batched responses are byte-identical to sequential
//! single-query responses** (property-tested), because every evaluation is
//! a deterministic function of the request (seeds are per-request, never
//! per-connection).
//!
//! ## Concurrency
//!
//! A bounded worker pool ([`ServeConfig::threads`], default one per core)
//! is shared by every connection. Each connection pipelines: its reader
//! parses lines in order and submits them to the pool, up to
//! [`ServeConfig::max_inflight`] outstanding at once; workers evaluate
//! concurrently; a per-connection writer reassembles completed responses
//! **in request order** before they touch the socket. Reordering can
//! therefore never be observed on the wire — on a 1-core box the pool
//! proves ordering rather than speedup, and the batched==sequential
//! byte-identity property holds at any pool size.
//!
//! All connections evaluate through the same [`EngineCache`], so a mixed
//! batch converges to all-hit steady state no matter how clients shard
//! their queries.
//!
//! ## Observability
//!
//! Every run records into a [`ServeObs`] bundle of `tpe-obs` metrics
//! (the process-wide registry by default; [`serve_with_obs`] takes an
//! isolated one for exact-count tests): per-op request counters,
//! queue-wait vs evaluation latency histograms, an in-flight gauge, and
//! counters for drained / over-long / non-UTF-8 / unparseable lines.
//! The `metrics` op snapshots the registry — with the serving cache's
//! counters folded in — as a flat JSON object, or as Prometheus text
//! exposition with `"format":"prometheus"`. Histograms travel as log2
//! bucket-count CSVs, so clients can diff two snapshots and compute
//! windowed percentiles server-side data alone. The `stats` op
//! additionally reports `since_*` cache-counter deltas over its own
//! polling window plus process uptime (minus an optional caller-supplied
//! monotonic `origin`). Both ops are stateful views of a running server,
//! so — unlike every evaluation op — their bytes are not replayable;
//! they are deliberately excluded from the byte-identity properties.
//!
//! ## Limits and lifecycle
//!
//! Request lines longer than [`ServeConfig::max_line_bytes`] are answered
//! with an error and the connection is closed (there is no way to resync
//! mid-line). A `shutdown` request stops the listener **the moment it is
//! parsed** (a slow client cannot postpone it by holding its connection
//! open) and then **drains gracefully**: in-flight work on every
//! connection finishes, and lines that follow the shutdown request *in
//! the same batch* are each answered with
//! `"ok":false,"error":"server draining"` (ids echoed) instead of being
//! silently dropped — for a bounded window (~5 s), so a peer trickling
//! lines forever cannot pin the drain either.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use tpe_obs::{Counter, Gauge, Histogram, Registry};
use tpe_workloads::{LayerShape, NetworkModel};

use crate::cache::EngineCache;
use crate::caps::CycleModel;
use crate::eval::Evaluator;
use crate::roster;
use crate::workload::SweepWorkload;

/// Default seed for sampled evaluations when a request omits `"seed"` —
/// the same default every `repro` experiment uses.
pub const DEFAULT_SEED: u64 = 42;

/// A parsed flat JSON value (the protocol never nests).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parses one flat JSON object (`{"key": value, ...}`; string / number /
/// bool / null values only — the protocol is deliberately nesting-free).
pub fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let parse_string = |pos: &mut usize| -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = line.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            *pos += 4;
                            // Standard JSON encodes non-BMP characters as
                            // UTF-16 surrogate pairs (🔥).
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                if line.get(*pos + 1..*pos + 3) != Some("\\u") {
                                    return Err("high surrogate without a low surrogate".into());
                                }
                                let hex2 =
                                    line.get(*pos + 3..*pos + 7).ok_or("truncated \\u escape")?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|e| format!("\\u: {e}"))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                *pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar).ok_or("\\u escape is not a scalar value")?,
                            );
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &line[*pos..];
                    let c = s.chars().next().ok_or("bad utf-8")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    };

    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("expected `{`".into());
    }
    pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(map);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected `:` after key {key:?}"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => JsonValue::Str(parse_string(&mut pos)?),
            Some(b't') if line[pos..].starts_with("true") => {
                pos += 4;
                JsonValue::Bool(true)
            }
            Some(b'f') if line[pos..].starts_with("false") => {
                pos += 5;
                JsonValue::Bool(false)
            }
            Some(b'n') if line[pos..].starts_with("null") => {
                pos += 4;
                JsonValue::Null
            }
            Some(b'{') | Some(b'[') => {
                return Err("nested values are not part of the protocol".into())
            }
            Some(_) => {
                let start = pos;
                while pos < bytes.len()
                    && matches!(bytes[pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    pos += 1;
                }
                let num: f64 = line[start..pos]
                    .parse()
                    .map_err(|e| format!("bad number {:?}: {e}", &line[start..pos]))?;
                JsonValue::Num(num)
            }
            None => return Err("truncated object".into()),
        };
        map.insert(key, value);
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                break;
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(map)
}

/// JSON string-content escaping for response fields.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Best-effort recovery of a request's `"id"` from a line that failed to
/// parse as a flat object: a lenient scan for an `"id"` key followed by a
/// run of digits, so pipelined clients can still correlate the error
/// response with the request that caused it. Returns 0 when nothing
/// id-shaped is found (the historical behavior).
pub fn recover_id(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let Some(pos) = line.find("\"id\"") else {
        return 0;
    };
    let mut i = pos + 4;
    while bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if bytes.get(i) != Some(&b':') {
        return 0;
    }
    i += 1;
    while bytes.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    let start = i;
    while bytes.get(i).is_some_and(u8::is_ascii_digit) {
        i += 1;
    }
    line[start..i].parse().unwrap_or(0)
}

/// The id of a request line, whether or not it parses: the parsed `"id"`
/// field when the object is well-formed, a [`recover_id`] scan otherwise.
fn request_id(line: &str) -> u64 {
    match parse_flat_object(line) {
        Ok(map) => Fields(map).uint_or("id", 0).unwrap_or(0),
        Err(_) => recover_id(line),
    }
}

/// Renders the standard error envelope.
fn error_line(id: u64, error: &str) -> String {
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
        json_escape(error)
    )
}

/// Typed field access over a parsed request object, shared with
/// [`BatchOps`] extensions.
pub struct Fields(pub BTreeMap<String, JsonValue>);

impl Fields {
    /// A required string field.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        match self.0.get(key) {
            Some(JsonValue::Str(s)) => Ok(s),
            Some(_) => Err(format!("field `{key}` must be a string")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// An optional string field (`Ok(None)` when absent).
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, String> {
        match self.0.get(key) {
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(_) => Err(format!("field `{key}` must be a string")),
            None => Ok(None),
        }
    }

    /// A required non-negative integer field.
    pub fn uint(&self, key: &str) -> Result<u64, String> {
        match self.0.get(key) {
            Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as u64)
            }
            Some(_) => Err(format!("field `{key}` must be a non-negative integer")),
            None => Err(format!("missing field `{key}`")),
        }
    }

    /// A non-negative integer field with a default.
    pub fn uint_or(&self, key: &str, default: u64) -> Result<u64, String> {
        if self.0.contains_key(key) {
            self.uint(key)
        } else {
            Ok(default)
        }
    }

    /// A boolean field with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, String> {
        match self.0.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            Some(_) => Err(format!("field `{key}` must be a boolean")),
            None => Ok(default),
        }
    }
}

/// Server-side batch-op extensions (the `sweep`/`pareto` ops live in
/// `tpe-dse`, which sits above this crate, so the serve loop takes them
/// as a capability instead of depending upward).
///
/// One request may answer with **several** response lines (a summary plus
/// per-point lines); every returned body is wrapped in the standard
/// `{"id":N,"ok":true,…}` envelope and written contiguously, in order.
/// Extensions must be deterministic functions of (request, cache-agnostic
/// inputs) to preserve the batched==sequential byte-identity property.
pub trait BatchOps: Sync {
    /// Handles `op`, returning `None` when this extension does not define
    /// it, `Some(Ok(bodies))` with one or more response bodies (without
    /// the `id`/`ok` envelope), or `Some(Err(message))`.
    fn handle(
        &self,
        op: &str,
        fields: &Fields,
        cache: &EngineCache,
    ) -> Option<Result<Vec<String>, String>>;

    /// `|`-prefixed op names appended to the unknown-op error message
    /// (e.g. `"|sweep|pareto"`). Returns `String` so wrappers like
    /// [`SnapshotOps`] can compose their inner extension's names.
    fn op_names(&self) -> String {
        String::new()
    }
}

/// The empty extension set: the built-in ops only.
pub struct NoOps;

impl BatchOps for NoOps {
    fn handle(
        &self,
        _op: &str,
        _fields: &Fields,
        _cache: &EngineCache,
    ) -> Option<Result<Vec<String>, String>> {
        None
    }
}

/// Wraps an extension set with a `snapshot` op that persists the serve
/// cache to a fixed server-chosen path (the `repro serve
/// --cache-snapshot` wiring): `{"id":1,"op":"snapshot"}` answers
/// `"op":"snapshot","path":…,"entries":N,"bytes":M` after an atomic
/// [`crate::snapshot::save`]. The path is server configuration, not a
/// request field — a client must never choose where the server writes.
pub struct SnapshotOps<'a> {
    inner: &'a dyn BatchOps,
    path: std::path::PathBuf,
}

impl<'a> SnapshotOps<'a> {
    /// Wraps `inner`, saving on `snapshot` requests to `path`.
    pub fn new(inner: &'a dyn BatchOps, path: impl Into<std::path::PathBuf>) -> Self {
        Self {
            inner,
            path: path.into(),
        }
    }
}

impl BatchOps for SnapshotOps<'_> {
    fn handle(
        &self,
        op: &str,
        fields: &Fields,
        cache: &EngineCache,
    ) -> Option<Result<Vec<String>, String>> {
        if op != "snapshot" {
            return self.inner.handle(op, fields, cache);
        }
        Some(crate::snapshot::save(cache, &self.path).map(|info| {
            vec![format!(
                "\"op\":\"snapshot\",\"path\":\"{}\",\"entries\":{},\"bytes\":{}",
                json_escape(&self.path.display().to_string()),
                info.entries,
                info.bytes
            )]
        }))
    }

    fn op_names(&self) -> String {
        format!("{}|snapshot", self.inner.op_names())
    }
}

/// Handles one request line against `cache`, returning the response line
/// (no trailing newline) and whether the request asked for shutdown.
/// Built-in ops only (the multi-line capable generalization is
/// [`handle_request`]).
pub fn handle_line(line: &str, cache: &EngineCache) -> (String, bool) {
    let (lines, is_shutdown) = handle_request(line, cache, &NoOps);
    (lines.join("\n"), is_shutdown)
}

/// Handles one request line against `cache` with `ops` extensions,
/// returning the response lines (one for built-in ops, possibly several
/// for batch ops; no trailing newlines) and whether the request asked for
/// shutdown. Requests default to the sampled cycle model; see
/// [`handle_request_with`] for a server-level default.
pub fn handle_request(line: &str, cache: &EngineCache, ops: &dyn BatchOps) -> (Vec<String>, bool) {
    handle_request_with(line, cache, ops, CycleModel::Sampled)
}

/// [`handle_request`] with a server-level default [`CycleModel`]
/// ([`ServeConfig::cycle_model`]): requests that do not spell a
/// `cycle_model` field evaluate under `default_model`; an explicit field
/// always wins. The default is injected as if the client had sent the
/// field, so built-in ops and batch-op extensions see one consistent
/// request.
pub fn handle_request_with(
    line: &str,
    cache: &EngineCache,
    ops: &dyn BatchOps,
    default_model: CycleModel,
) -> (Vec<String>, bool) {
    let (lines, is_shutdown, _) = handle_request_classified(line, cache, ops, default_model);
    (lines, is_shutdown)
}

/// How a request line classifies for per-op accounting — a byproduct of
/// the handler's single parse, so the serve hot path never re-parses a
/// line just to tick counters (feed it to [`ServeObs::record_class`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A known op: index into [`COUNTED_OPS`].
    Counted(usize),
    /// Parsed fine, but the op is unknown, extension-defined, or missing.
    Other,
    /// The line failed JSON parsing.
    Malformed,
}

/// [`handle_request_with`], additionally returning the line's
/// [`RequestClass`] from the same parse that evaluated it.
pub fn handle_request_classified(
    line: &str,
    cache: &EngineCache,
    ops: &dyn BatchOps,
    default_model: CycleModel,
) -> (Vec<String>, bool, RequestClass) {
    let fields = match parse_flat_object(line) {
        Ok(map) => Fields(map),
        Err(e) => {
            return (
                vec![error_line(recover_id(line), &e)],
                false,
                RequestClass::Malformed,
            )
        }
    };
    let mut fields = fields;
    if default_model != CycleModel::Sampled && !fields.0.contains_key("cycle_model") {
        fields.0.insert(
            "cycle_model".into(),
            JsonValue::Str(default_model.name().into()),
        );
    }
    let fields = fields;
    let class = match fields.0.get("op") {
        Some(JsonValue::Str(op)) => COUNTED_OPS
            .iter()
            .position(|o| o == op)
            .map_or(RequestClass::Other, RequestClass::Counted),
        _ => RequestClass::Other,
    };
    let id = fields.uint_or("id", 0).unwrap_or(0);
    match respond(&fields, cache, ops) {
        Ok((bodies, is_shutdown)) => (
            bodies
                .into_iter()
                .map(|body| format!("{{\"id\":{id},\"ok\":true,{body}}}"))
                .collect(),
            is_shutdown,
            class,
        ),
        Err(e) => (vec![error_line(id, &e)], false, class),
    }
}

/// The op-specific response bodies (without the `id`/`ok` envelope).
fn respond(
    fields: &Fields,
    cache: &EngineCache,
    ops: &dyn BatchOps,
) -> Result<(Vec<String>, bool), String> {
    let cycle_model = resolve_cycle_model(fields)?;
    let eval = Evaluator::new(cache).with_cycle_model(cycle_model);
    // Echoed in cycle-bearing bodies only when non-default, so every
    // sampled-mode response stays byte-identical to the pre-mode wire
    // format.
    let cycle_tag = match cycle_model {
        CycleModel::Sampled => String::new(),
        CycleModel::Analytic => ",\"cycle_model\":\"analytic\"".into(),
    };
    let op = fields.str("op")?;
    let one = |body: String| Ok((vec![body], false));
    match op {
        "engine" => {
            let spec = resolve_engine(fields)?;
            let body = match eval.price(&spec) {
                Some(p) => format!(
                    "\"op\":\"engine\",\"engine\":\"{}\",\"feasible\":true,\
                     \"area_um2\":{:.3},\"e_active_fj\":{:.4},\"e_idle_fj\":{:.4},\
                     \"instances\":{:.0},\"lanes_total\":{:.0},\"peak_tops\":{:.4}",
                    json_escape(&spec.label()),
                    p.area_um2,
                    p.e_active_fj,
                    p.e_idle_fj,
                    p.instances,
                    p.lanes_total,
                    p.peak_tops
                ),
                None => format!(
                    "\"op\":\"engine\",\"engine\":\"{}\",\"feasible\":false",
                    json_escape(&spec.label())
                ),
            };
            one(body)
        }
        "layer" => {
            let spec = resolve_engine(fields)?;
            let m = fields.uint("m")? as usize;
            let n = fields.uint("n")? as usize;
            let k = fields.uint("k")? as usize;
            if m == 0 || n == 0 || k == 0 {
                return Err("layer dimensions must be positive".into());
            }
            let repeats = fields.uint_or("repeats", 1)?.max(1) as usize;
            let seed = fields.uint_or("seed", DEFAULT_SEED)?;
            let name = match fields.0.get("workload") {
                Some(JsonValue::Str(s)) => s.clone(),
                Some(_) => return Err("field `workload` must be a string".into()),
                None => format!("{m}x{n}x{k}r{repeats}"),
            };
            let workload = SweepWorkload::Layer(LayerShape::new(&name, m, n, k, repeats));
            let body = match eval.metrics(&spec, &workload, seed) {
                Some(mt) => format!(
                    "\"op\":\"layer\",\"engine\":\"{}\",\"workload\":\"{}\",\"seed\":{seed}{cycle_tag},\
                     \"feasible\":true,{}",
                    json_escape(&spec.label()),
                    json_escape(&name),
                    metrics_body(&mt, !spec.memory.is_unbounded())
                ),
                None => format!(
                    "\"op\":\"layer\",\"engine\":\"{}\",\"workload\":\"{}\",\"seed\":{seed}{cycle_tag},\
                     \"feasible\":false",
                    json_escape(&spec.label()),
                    json_escape(&name)
                ),
            };
            one(body)
        }
        "model" => {
            let spec = resolve_engine(fields)?;
            let model_name = fields.str("model")?;
            let seed = fields.uint_or("seed", DEFAULT_SEED)?;
            let net = NetworkModel::catalog()
                .into_iter()
                .find(|n| n.name.eq_ignore_ascii_case(model_name))
                .ok_or_else(|| format!("unknown model `{model_name}`"))?;
            let body = match eval.model_report(&spec, &net, seed, crate::MODEL_SAMPLE_CAPS) {
                Some(r) => {
                    let mut body = format!(
                        "\"op\":\"model\",\"engine\":\"{}\",\"model\":\"{}\",\"seed\":{seed}{cycle_tag},\
                         \"feasible\":true,\"layers\":{},\"macs\":{},\"cycles\":{:.0},\
                         \"delay_us\":{:.4},\"energy_uj\":{:.6},\"gops\":{:.3},\
                         \"peak_tops\":{:.4},\"utilization\":{:.5},\"power_w\":{:.5},\
                         \"tops_per_w\":{:.4},\"area_um2\":{:.3}",
                        json_escape(&spec.label()),
                        json_escape(&net.name),
                        r.layer_count(),
                        r.total_macs,
                        r.cycles,
                        r.delay_us,
                        r.energy_uj,
                        r.throughput_gops(),
                        r.peak_tops,
                        r.utilization,
                        r.power_w(),
                        r.tops_per_w(),
                        r.area_um2
                    );
                    // As in `metrics_body`: the roofline group appends
                    // only under a finite memory corner, keeping
                    // default-corner responses byte-identical to the
                    // pre-memory wire format.
                    if !spec.memory.is_unbounded() {
                        body.push_str(&format!(
                            ",\"bytes_moved\":{:.0},\"intensity_ops_per_byte\":{:.4},\
                             \"bound\":\"{}\"",
                            r.bytes_moved,
                            r.intensity_ops_per_byte,
                            r.bound.label()
                        ));
                    }
                    body
                }
                None => format!(
                    "\"op\":\"model\",\"engine\":\"{}\",\"model\":\"{}\",\"seed\":{seed}{cycle_tag},\
                     \"feasible\":false",
                    json_escape(&spec.label()),
                    json_escape(&net.name)
                ),
            };
            one(body)
        }
        "roster" => {
            let names: Vec<String> = roster::names()
                .iter()
                .map(|n| format!("\"{}\"", json_escape(n)))
                .collect();
            one(format!(
                "\"op\":\"roster\",\"engines\":[{}]",
                names.join(",")
            ))
        }
        "stats" => {
            let s = cache.stats();
            let w = cache.window_delta();
            let origin = fields.uint_or("origin", 0)?;
            one(format!(
                "\"op\":\"stats\",\"price_hits\":{},\"price_misses\":{},\
                 \"cycle_hits\":{},\"cycle_misses\":{},\
                 \"model_hits\":{},\"model_misses\":{},\"hit_rate\":{:.4},\
                 \"price_lookups\":{},\"cycle_lookups\":{},\"model_lookups\":{},\
                 \"priced_entries\":{},\"cycle_entries\":{},\"model_entries\":{},\
                 \"since_price_hits\":{},\"since_price_misses\":{},\
                 \"since_cycle_hits\":{},\"since_cycle_misses\":{},\
                 \"since_model_hits\":{},\"since_model_misses\":{},\
                 \"since_price_lookups\":{},\"since_cycle_lookups\":{},\
                 \"since_model_lookups\":{},\
                 \"since_hit_rate\":{:.4},\"uptime_ms\":{}",
                s.price_hits,
                s.price_misses,
                s.cycle_hits,
                s.cycle_misses,
                s.model_hits,
                s.model_misses,
                s.hit_rate(),
                s.price_lookups,
                s.cycle_lookups,
                s.model_lookups,
                cache.priced_len(),
                cache.cycles_len(),
                cache.models_len(),
                w.price_hits,
                w.price_misses,
                w.cycle_hits,
                w.cycle_misses,
                w.model_hits,
                w.model_misses,
                w.price_lookups,
                w.cycle_lookups,
                w.model_lookups,
                w.hit_rate(),
                tpe_obs::uptime_ms().saturating_sub(origin)
            ))
        }
        "metrics" => {
            let mut snap = Registry::global().snapshot();
            let s = cache.stats();
            snap.set_counter("cache_price_hits", s.price_hits);
            snap.set_counter("cache_price_misses", s.price_misses);
            snap.set_counter("cache_cycle_hits", s.cycle_hits);
            snap.set_counter("cache_cycle_misses", s.cycle_misses);
            snap.set_counter("cache_model_hits", s.model_hits);
            snap.set_counter("cache_model_misses", s.model_misses);
            snap.set_counter("cache_price_lookups", s.price_lookups);
            snap.set_counter("cache_cycle_lookups", s.cycle_lookups);
            snap.set_counter("cache_model_lookups", s.model_lookups);
            snap.set_gauge("cache_priced_entries", cache.priced_len() as i64);
            snap.set_gauge("cache_cycle_entries", cache.cycles_len() as i64);
            snap.set_gauge("cache_model_entries", cache.models_len() as i64);
            match fields.opt_str("format")? {
                Some("prometheus") => one(format!(
                    "\"op\":\"metrics\",\"format\":\"prometheus\",\"text\":\"{}\"",
                    json_escape(&snap.render_prometheus("tpe"))
                )),
                None | Some("json") => one(metrics_snapshot_body(&snap)),
                Some(other) => Err(format!(
                    "unknown metrics format `{other}` (expected json|prometheus)"
                )),
            }
        }
        "shutdown" => Ok((vec!["\"op\":\"shutdown\"".into()], true)),
        other => match ops.handle(other, fields, cache) {
            Some(Ok(bodies)) => Ok((bodies, false)),
            Some(Err(e)) => Err(e),
            None => Err(format!(
                "unknown op `{other}` (expected engine|layer|metrics|model|roster|stats|shutdown{})",
                ops.op_names()
            )),
        },
    }
}

/// Renders a registry snapshot as the `metrics` op's flat JSON body:
/// `ctr_<name>` / `gauge_<name>` scalars plus, per histogram,
/// `hist_<name>_{count,sum,max,p50,p90,p99}` and the raw log2 bucket
/// counts as a trailing-zero-trimmed CSV string (`hist_<name>_buckets`) —
/// enough for a client to rebuild the [`tpe_obs::HistogramSnapshot`] and
/// diff two polls into windowed percentiles.
fn metrics_snapshot_body(snap: &tpe_obs::Snapshot) -> String {
    let mut body = format!("\"op\":\"metrics\",\"uptime_ms\":{}", tpe_obs::uptime_ms());
    for (name, v) in snap.counters() {
        body.push_str(&format!(",\"ctr_{name}\":{v}"));
    }
    for (name, v) in snap.gauges() {
        body.push_str(&format!(",\"gauge_{name}\":{v}"));
    }
    for (name, h) in snap.histograms() {
        let trimmed = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
        let csv = h.buckets[..trimmed]
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        body.push_str(&format!(
            ",\"hist_{name}_count\":{},\"hist_{name}_sum\":{},\"hist_{name}_max\":{},\
             \"hist_{name}_p50\":{},\"hist_{name}_p90\":{},\"hist_{name}_p99\":{},\
             \"hist_{name}_buckets\":\"{csv}\"",
            h.count(),
            h.sum,
            h.max,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        ));
    }
    body
}

/// Resolves the request's engine: the `engine` label (which may itself
/// carry `@W4`-style precision and `@edge`-style memory suffixes),
/// overridden by the optional `precision` and `memory` fields when
/// present — so clients can sweep either axis without re-spelling labels.
fn resolve_engine(fields: &Fields) -> Result<crate::EngineSpec, String> {
    let name = fields.str("engine")?;
    let mut spec = roster::find(name).ok_or_else(|| format!("unknown engine `{name}`"))?;
    match fields.0.get("precision") {
        None => {}
        Some(JsonValue::Str(p)) => match tpe_arith::Precision::parse(p) {
            Some(precision) => spec = spec.with_precision(precision),
            None => return Err(format!("unknown precision `{p}`")),
        },
        Some(_) => return Err("field `precision` must be a string".into()),
    }
    match fields.0.get("memory") {
        None => Ok(spec),
        Some(JsonValue::Str(m)) => roster::find_memory(m)
            .map(|memory| spec.with_memory(memory))
            .ok_or_else(|| format!("unknown memory corner `{m}`")),
        Some(_) => Err("field `memory` must be a string".into()),
    }
}

/// Resolves the request's serial-cycle backend from the optional
/// `cycle_model` field (`"sampled"` / `"analytic"`, case-insensitive);
/// absent means sampled — the historical wire behavior.
fn resolve_cycle_model(fields: &Fields) -> Result<CycleModel, String> {
    match fields.0.get("cycle_model") {
        None => Ok(CycleModel::Sampled),
        Some(JsonValue::Str(m)) => CycleModel::parse(m)
            .ok_or_else(|| format!("unknown cycle_model `{m}` (expected sampled|analytic)")),
        Some(_) => Err("field `cycle_model` must be a string".into()),
    }
}

fn metrics_body(m: &crate::Metrics, roofline: bool) -> String {
    let mut body = format!(
        "\"area_um2\":{:.3},\"delay_us\":{:.4},\"energy_uj\":{:.6},\"fj_per_mac\":{:.4},\
         \"gops\":{:.3},\"peak_tops\":{:.4},\"utilization\":{:.5},\"power_w\":{:.5}",
        m.area_um2,
        m.delay_us,
        m.energy_uj,
        m.energy_per_mac_fj,
        m.throughput_gops,
        m.peak_tops,
        m.utilization,
        m.power_w
    );
    // The roofline group appends only under a finite memory corner (the
    // label already spells which one), so default-corner responses stay
    // byte-identical to the pre-memory wire format.
    if roofline {
        body.push_str(&format!(
            ",\"bytes_moved\":{:.0},\"intensity_ops_per_byte\":{:.4},\"bound\":\"{}\"",
            m.bytes_moved,
            m.intensity_ops_per_byte,
            m.bound.label()
        ));
    }
    body
}

/// Ops with dedicated `serve_op_<name>` request counters, in name order.
/// Anything else — unknown ops, a missing `op` field, unparseable lines —
/// counts under `serve_op_other`.
pub const COUNTED_OPS: [&str; 11] = [
    "engine", "fleet", "layer", "metrics", "model", "pareto", "roster", "shutdown", "snapshot",
    "stats", "sweep",
];

/// Shared handles to the serve layer's metrics, resolved once per run.
///
/// Workers record per-op counters and the queue-wait/eval histograms
/// *before* sending each reply toward the socket — so a `metrics`
/// response never includes its own request, and a client that has read
/// a response knows the counters already cover it. Hot-path cost is a
/// handful of relaxed atomic RMWs per request: op classification rides
/// on the handler's own parse ([`RequestClass`]), never a second one.
#[derive(Debug)]
pub struct ServeObs {
    /// `serve_op_<name>` request counters, indexed as [`COUNTED_OPS`].
    pub op_requests: [Arc<Counter>; COUNTED_OPS.len()],
    /// `serve_op_other`: pool-processed requests with an unknown or
    /// missing op, or an unparseable line.
    pub other_requests: Arc<Counter>,
    /// `serve_queue_wait_ns`: submit → worker-pickup latency.
    pub queue_wait_ns: Arc<Histogram>,
    /// `serve_eval_ns`: per-request worker evaluation time.
    pub eval_ns: Arc<Histogram>,
    /// `serve_inflight`: requests submitted to the pool, not yet answered.
    pub inflight: Arc<Gauge>,
    /// `serve_connections`: connections accepted.
    pub connections: Arc<Counter>,
    /// `serve_drained_requests`: lines answered `server draining` after a
    /// shutdown request in the same batch.
    pub drained_requests: Arc<Counter>,
    /// `serve_overlong_lines`: lines over [`ServeConfig::max_line_bytes`].
    pub overlong_lines: Arc<Counter>,
    /// `serve_utf8_errors`: request lines that were not valid UTF-8.
    pub utf8_errors: Arc<Counter>,
    /// `serve_parse_errors`: pool-processed lines that failed JSON
    /// parsing (a subset of `serve_op_other`).
    pub parse_errors: Arc<Counter>,
}

impl ServeObs {
    /// Registers (or re-resolves) the serve metrics in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            op_requests: std::array::from_fn(|i| {
                registry.counter(&format!("serve_op_{}", COUNTED_OPS[i]))
            }),
            other_requests: registry.counter("serve_op_other"),
            queue_wait_ns: registry.histogram("serve_queue_wait_ns"),
            eval_ns: registry.histogram("serve_eval_ns"),
            inflight: registry.gauge("serve_inflight"),
            connections: registry.counter("serve_connections"),
            drained_requests: registry.counter("serve_drained_requests"),
            overlong_lines: registry.counter("serve_overlong_lines"),
            utf8_errors: registry.counter("serve_utf8_errors"),
            parse_errors: registry.counter("serve_parse_errors"),
        }
    }

    /// The process-wide instance, over [`Registry::global`].
    pub fn global() -> &'static ServeObs {
        static OBS: OnceLock<ServeObs> = OnceLock::new();
        OBS.get_or_init(|| ServeObs::in_registry(Registry::global()))
    }

    /// The request counter for one of the [`COUNTED_OPS`], if listed.
    pub fn op_counter(&self, op: &str) -> Option<&Counter> {
        COUNTED_OPS
            .iter()
            .position(|o| *o == op)
            .map(|i| &*self.op_requests[i])
    }

    /// Ticks the per-op counters for one classified request (the class is
    /// a byproduct of the handler's parse — see [`RequestClass`]; parse
    /// failures also tick `serve_parse_errors`).
    pub fn record_class(&self, class: RequestClass) {
        match class {
            RequestClass::Counted(i) => self.op_requests[i].inc(),
            RequestClass::Other => self.other_requests.inc(),
            RequestClass::Malformed => {
                self.parse_errors.inc();
                self.other_requests.inc();
            }
        }
    }
}

/// Operational limits and pool sizing for one [`serve_with`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads evaluating requests; 0 means one per available core.
    pub threads: usize,
    /// Maximum accepted request-line length in bytes (newline excluded).
    /// Longer lines are answered with an error and the connection closes.
    pub max_line_bytes: usize,
    /// Maximum requests a single connection may have in flight (submitted
    /// to the pool but not yet written back); the reader blocks past this.
    pub max_inflight: usize,
    /// Server-level default serial-cycle backend for requests that do not
    /// carry a `cycle_model` field (an explicit field always wins).
    pub cycle_model: CycleModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_line_bytes: 64 * 1024,
            max_inflight: 64,
            cycle_model: CycleModel::Sampled,
        }
    }
}

impl ServeConfig {
    /// The effective pool size.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// What one [`serve`] run handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines answered.
    pub requests: u64,
    /// Worker-pool threads the run evaluated on.
    pub workers: usize,
}

/// One pipelined request: the raw line, its position in the connection's
/// response order, the channel its responses return on, and its
/// submission instant (queue-wait = submit → worker pickup).
struct Job {
    line: String,
    seq: u64,
    reply: mpsc::Sender<Reply>,
    submitted: Instant,
}

/// (sequence number, response lines).
type Reply = (u64, Vec<String>);

/// Runs the serve loop on `listener` with the default configuration and
/// the built-in op set. Blocks the calling thread until a `shutdown`
/// request arrives; see [`serve_with`].
pub fn serve(listener: TcpListener, cache: &EngineCache) -> std::io::Result<ServeOutcome> {
    serve_with(listener, cache, &NoOps, ServeConfig::default())
}

/// Runs the serve loop on `listener` until a `shutdown` request arrives:
/// a shared bounded worker pool, per-connection request pipelining with
/// in-order response reassembly, and `ops` batch-op extensions. Blocks
/// the calling thread; on shutdown the listener stops accepting and every
/// in-flight connection drains before this returns.
pub fn serve_with(
    listener: TcpListener,
    cache: &EngineCache,
    ops: &dyn BatchOps,
    config: ServeConfig,
) -> std::io::Result<ServeOutcome> {
    serve_with_obs(listener, cache, ops, config, ServeObs::global())
}

/// [`serve_with`], recording into an explicit [`ServeObs`] bundle instead
/// of the process-wide one — exact-count metric tests hand an isolated
/// [`Registry`]'s handles here so parallel test binaries cannot pollute
/// each other's counters.
pub fn serve_with_obs(
    listener: TcpListener,
    cache: &EngineCache,
    ops: &dyn BatchOps,
    config: ServeConfig,
    obs: &ServeObs,
) -> std::io::Result<ServeOutcome> {
    serve_with_hook(listener, cache, ops, config, obs, None)
}

/// [`serve_with_obs`] with an optional `after_request` hook, called by
/// the answering worker after each reply is sent toward the socket with
/// the total requests handled so far (1-based, monotonic across the run).
/// This is how `--snapshot-every N` piggybacks periodic cache saves on
/// the serve loop without a timer thread; the hook runs on a pool worker,
/// so it must be cheap or rare.
pub fn serve_with_hook(
    listener: TcpListener,
    cache: &EngineCache,
    ops: &dyn BatchOps,
    config: ServeConfig,
    obs: &ServeObs,
    after_request: Option<&(dyn Fn(u64) + Sync)>,
) -> std::io::Result<ServeOutcome> {
    let local = listener.local_addr()?;
    let handled = AtomicU64::new(0);
    let workers = config.effective_threads();
    let shutdown = AtomicBool::new(false);
    let connections = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Mutex::new(job_rx);
    std::thread::scope(|scope| {
        // The pool: workers claim jobs until the channel closes, which
        // happens only after the accept loop exits *and* every connection
        // thread (each holding a sender clone) has drained — so shutdown
        // finishes in-flight work before the pool winds down.
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = job_rx.lock().expect("serve pool poisoned").recv();
                let Ok(Job {
                    line,
                    seq,
                    reply,
                    submitted,
                }) = job
                else {
                    break;
                };
                // Shutdown is signaled by the connection reader at parse
                // time (see `handle_connection`), so the worker only
                // evaluates and answers.
                obs.queue_wait_ns.record_duration(submitted.elapsed());
                let eval_start = Instant::now();
                let (lines, _, class) =
                    handle_request_classified(&line, cache, ops, config.cycle_model);
                // All metrics for this request land before its reply can
                // reach the socket: a client that has read response N
                // knows the counters cover requests 1..=N (and a
                // `metrics` snapshot taken mid-eval excludes itself).
                obs.eval_ns.record_duration(eval_start.elapsed());
                obs.record_class(class);
                obs.inflight.dec();
                // The connection may already be gone; its writer dropping
                // the receiver is the cancellation signal.
                let _ = reply.send((seq, lines));
                if let Some(hook) = after_request {
                    hook(handled.fetch_add(1, Ordering::Relaxed) + 1);
                }
            });
        }
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A failed accept (client reset mid-handshake, transient
                // fd exhaustion) must not take the server down; back off
                // briefly so a persistent error cannot hot-spin.
                Err(_) => {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    continue;
                }
            };
            connections.fetch_add(1, Ordering::Relaxed);
            obs.connections.inc();
            let (shutdown, requests, pool) = (&shutdown, &requests, job_tx.clone());
            scope.spawn(move || {
                // Fired by the reader the moment it *parses* a shutdown
                // request — the listener must stop accepting right away,
                // not when this connection eventually closes (a client
                // trickling post-shutdown lines could postpone that
                // indefinitely).
                let notify_shutdown = || {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(local);
                };
                handle_connection(&stream, &pool, config, requests, obs, &notify_shutdown);
            });
        }
        // Close the socket now: connections the kernel would otherwise
        // keep accepting into the backlog during the drain get refused
        // instead of hanging unanswered.
        drop(listener);
        drop(job_tx);
    });
    Ok(ServeOutcome {
        connections: connections.load(Ordering::Relaxed),
        requests: requests.load(Ordering::Relaxed),
        workers,
    })
}

/// One read attempt against the length-limited line reader.
enum LineRead {
    /// A complete request line (newline stripped).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeds the configured byte limit; `partial` holds the
    /// prefix read so far (for id recovery).
    TooLong { partial: Vec<u8> },
    /// The line is not valid UTF-8; `bytes` holds it (for id recovery).
    Utf8Error { bytes: Vec<u8> },
}

/// Reads one `\n`-terminated line of at most `max` content bytes — the
/// limit excludes the terminator, whether `\n` or `\r\n` (reading up to
/// `max + 2` raw bytes lets a max-length CRLF line through; the content
/// check after stripping is what enforces the cap).
fn read_limited_line<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let n = std::io::Read::take(reader, max as u64 + 2).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > max {
        return Ok(LineRead::TooLong { partial: buf });
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(LineRead::Line(line)),
        Err(e) => Ok(LineRead::Utf8Error {
            bytes: e.into_bytes(),
        }),
    }
}

/// Whether a request line is a well-formed `shutdown` request — the exact
/// predicate [`handle_request`] answers `is_shutdown` for, evaluated at
/// parse time so the reader can start draining deterministically.
fn is_shutdown_request(line: &str) -> bool {
    line.contains("shutdown")
        && parse_flat_object(line)
            .ok()
            .is_some_and(|map| matches!(map.get("op"), Some(JsonValue::Str(s)) if s == "shutdown"))
}

/// Serves one connection over the shared pool.
///
/// The calling thread is the reader: it parses lines in request order and
/// submits each to the pool (bounded by [`ServeConfig::max_inflight`]
/// tokens), while a scoped writer thread reassembles completed responses
/// in sequence order onto the socket. Once a `shutdown` request is read,
/// every later line in the batch is answered with a `server draining`
/// error instead of being evaluated — identical bytes to what a
/// sequential server would produce, regardless of pool timing.
fn handle_connection(
    stream: &TcpStream,
    pool: &mpsc::Sender<Job>,
    config: ServeConfig,
    requests: &AtomicU64,
    obs: &ServeObs,
    notify_shutdown: &dyn Fn(),
) {
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
    let (token_tx, token_rx) = mpsc::sync_channel::<()>(config.max_inflight.max(1));
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || write_in_order(writer_stream, reply_rx, token_rx));
        let mut reader = BufReader::new(stream);
        let mut seq: u64 = 0;
        let mut drain_deadline: Option<std::time::Instant> = None;
        // Acquire an in-flight token per answered request; the writer
        // releases one per response written. An error means the writer
        // is gone (client stopped reading), so the batch is over.
        let answer_inline =
            |reply: Reply| -> bool { token_tx.send(()).is_ok() && reply_tx.send(reply).is_ok() };
        while let Ok(read) = read_limited_line(&mut reader, config.max_line_bytes) {
            match read {
                LineRead::Eof => break,
                LineRead::TooLong { partial } => {
                    // There is no way to resync mid-line: answer (with a
                    // best-effort id from the prefix) and close.
                    let id = recover_id(&String::from_utf8_lossy(&partial));
                    requests.fetch_add(1, Ordering::Relaxed);
                    obs.overlong_lines.inc();
                    answer_inline((
                        seq,
                        vec![error_line(
                            id,
                            &format!(
                                "request line exceeds max line bytes ({})",
                                config.max_line_bytes
                            ),
                        )],
                    ));
                    break;
                }
                LineRead::Utf8Error { bytes } => {
                    // Same id recovery as TooLong: the id is usually in
                    // the readable ASCII prefix.
                    let id = recover_id(&String::from_utf8_lossy(&bytes));
                    requests.fetch_add(1, Ordering::Relaxed);
                    obs.utf8_errors.inc();
                    answer_inline((seq, vec![error_line(id, "request line is not valid UTF-8")]));
                    break;
                }
                LineRead::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    requests.fetch_add(1, Ordering::Relaxed);
                    if let Some(deadline) = drain_deadline {
                        if std::time::Instant::now() >= deadline {
                            // A peer trickling lines forever must not pin
                            // the drain; the window is generous for any
                            // real client flushing its already-written
                            // batch.
                            break;
                        }
                        obs.drained_requests.inc();
                        if !answer_inline((
                            seq,
                            vec![error_line(request_id(&line), "server draining")],
                        )) {
                            break;
                        }
                    } else {
                        if is_shutdown_request(&line) {
                            // Stop the listener *now* — waiting for this
                            // connection to close would let a slow client
                            // postpone shutdown indefinitely — then keep
                            // draining this batch's remaining lines for a
                            // bounded window.
                            notify_shutdown();
                            drain_deadline =
                                Some(std::time::Instant::now() + std::time::Duration::from_secs(5));
                            let _ =
                                stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
                        }
                        if token_tx.send(()).is_err() {
                            break;
                        }
                        let job = Job {
                            line,
                            seq,
                            reply: reply_tx.clone(),
                            submitted: Instant::now(),
                        };
                        obs.inflight.inc();
                        if pool.send(job).is_err() {
                            obs.inflight.dec();
                            break;
                        }
                    }
                    seq += 1;
                }
            }
        }
        drop(reply_tx);
        drop(token_tx);
        writer.join().expect("connection writer panicked");
    });
}

/// The per-connection writer: receives `(seq, lines)` replies in
/// completion order, holds them in a reorder buffer, and writes them to
/// the socket strictly in sequence order — the pipelining stays invisible
/// on the wire.
fn write_in_order(stream: TcpStream, replies: mpsc::Receiver<Reply>, tokens: mpsc::Receiver<()>) {
    let mut out = BufWriter::new(stream);
    let mut pending: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut next: u64 = 0;
    'recv: for (seq, lines) in replies.iter() {
        pending.insert(seq, lines);
        while let Some(lines) = pending.remove(&next) {
            next += 1;
            for line in &lines {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .is_err()
                {
                    // Dropping the token receiver unblocks the reader.
                    break 'recv;
                }
            }
            let _ = tokens.recv();
        }
        // Flush once per completion burst, not per line.
        if out.flush().is_err() {
            break;
        }
    }
    let _ = out.flush();
}

/// Scans a response line for a `"points_follow":N` marker — how batch ops
/// announce extra per-point lines beyond the one-response-per-request
/// baseline.
fn points_follow(line: &str) -> usize {
    let needle = "\"points_follow\":";
    let Some(pos) = line.find(needle) else {
        return 0;
    };
    line[pos + needle.len()..]
        .bytes()
        .take_while(u8::is_ascii_digit)
        .fold(0usize, |acc, b| {
            acc.saturating_mul(10).saturating_add((b - b'0') as usize)
        })
}

/// Sends `lines` over one connection and returns the response lines, in
/// order. Writes from a helper thread so large batches cannot deadlock on
/// full socket buffers. Batch ops announcing per-point lines via
/// `"points_follow"` grow the expected response count automatically.
///
/// # Errors
///
/// Besides transport errors, returns [`std::io::ErrorKind::UnexpectedEof`]
/// when the server closes the connection before answering every request —
/// the error names the expected and received line counts, so pipelined
/// clients can tell a short batch from a complete one.
pub fn query_batch(addr: &str, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut expected = lines.iter().filter(|l| !l.trim().is_empty()).count();
    std::thread::scope(|scope| -> std::io::Result<Vec<String>> {
        let sender = scope.spawn(move || -> std::io::Result<()> {
            for line in lines {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            stream_shutdown_write(&writer);
            Ok(())
        });
        let reader = BufReader::new(&stream);
        let mut responses = Vec::with_capacity(expected);
        for line in reader.lines() {
            let line = line?;
            expected += points_follow(&line);
            responses.push(line);
            if responses.len() >= expected {
                break;
            }
        }
        let sent = sender.join().expect("sender thread panicked");
        if responses.len() < expected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "server closed the connection mid-batch: expected {expected} response \
                     line(s), received {}",
                    responses.len()
                ),
            ));
        }
        sent?;
        Ok(responses)
    })
}

fn stream_shutdown_write(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_flat_objects() {
        let map = parse_flat_object(
            r#"{"op":"layer","engine":"OPT3[EN-T]","m":64,"seed":42,"deep":-1.5e2,"flag":true,"nil":null,"esc":"a\"b\\c\nd"}"#,
        )
        .unwrap();
        assert_eq!(map["op"], JsonValue::Str("layer".into()));
        assert_eq!(map["m"], JsonValue::Num(64.0));
        assert_eq!(map["deep"], JsonValue::Num(-150.0));
        assert_eq!(map["flag"], JsonValue::Bool(true));
        assert_eq!(map["nil"], JsonValue::Null);
        assert_eq!(map["esc"], JsonValue::Str("a\"b\\c\nd".into()));
        assert!(parse_flat_object("{}").unwrap().is_empty());
        // Standard JSON surrogate pairs decode to the non-BMP scalar.
        let fire = parse_flat_object(r#"{"w":"\ud83d\udd25!"}"#).unwrap();
        assert_eq!(fire["w"], JsonValue::Str("\u{1F525}!".into()));
        for bad in [r#"{"w":"\ud83d"}"#, r#"{"w":"\ud83dA"}"#] {
            assert!(parse_flat_object(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "[1]",
            "{\"a\":}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1]}",
            "{\"a\":1} trailing",
            "{\"a\":\"unterminated}",
            "{\"a\":01x}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn engine_and_roster_ops_answer() {
        let cache = EngineCache::new();
        let (resp, down) = handle_line(
            r#"{"id":7,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        assert!(!down);
        assert!(resp.starts_with("{\"id\":7,\"ok\":true,"), "{resp}");
        assert!(resp.contains("\"feasible\":true"), "{resp}");
        assert!(resp.contains("\"peak_tops\":"), "{resp}");

        let (roster_resp, _) = handle_line(r#"{"id":8,"op":"roster"}"#, &cache);
        assert!(
            roster_resp.contains("OPT4E[EN-T]/28nm@2.00GHz"),
            "{roster_resp}"
        );
        assert_eq!(roster_resp.matches("GHz\"").count(), 12, "{roster_resp}");
    }

    #[test]
    fn layer_op_is_deterministic_per_request() {
        let cache = EngineCache::new();
        let req = r#"{"id":1,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":9}"#;
        let (a, _) = handle_line(req, &cache);
        let (b, _) = handle_line(req, &cache);
        assert_eq!(a, b);
        assert!(a.contains("\"utilization\":"), "{a}");
        // A different seed is a different answer.
        let req2 = r#"{"id":1,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":10}"#;
        let (c, _) = handle_line(req2, &cache);
        assert_ne!(a, c);
    }

    #[test]
    fn errors_echo_the_id_and_never_shutdown() {
        let cache = EngineCache::new();
        for (req, needle) in [
            (r#"{"id":3,"op":"warp"}"#, "unknown op"),
            (
                r#"{"id":3,"op":"engine","engine":"OPT9"}"#,
                "unknown engine",
            ),
            (
                r#"{"id":3,"op":"model","engine":"OPT3[EN-T]","model":"LeNet"}"#,
                "unknown model",
            ),
            (
                r#"{"id":3,"op":"layer","engine":"OPT3[EN-T]","m":0,"n":1,"k":1}"#,
                "positive",
            ),
            (
                r#"{"id":3,"op":"layer","engine":"OPT3[EN-T]","n":1,"k":1}"#,
                "missing field",
            ),
            ("not json", "expected"),
        ] {
            let (resp, down) = handle_line(req, &cache);
            assert!(!down);
            assert!(resp.contains("\"ok\":false"), "{req} -> {resp}");
            assert!(resp.contains(needle), "{req} -> {resp}");
        }
    }

    /// Parse errors recover the request's id with a lenient scan, so
    /// pipelined clients can correlate failures (the old behavior
    /// hardcoded `"id":0`).
    #[test]
    fn parse_errors_recover_the_request_id() {
        let cache = EngineCache::new();
        for (req, id) in [
            // Truncated object, id first.
            (r#"{"id":7,"op":"engine","engine":"#, 7),
            // Truncated object, id later.
            (r#"{"op":"engine","id": 12"#, 12),
            // Nested value (rejected), id present.
            (r#"{"id":31,"op":"engine","extra":{"nested":1}}"#, 31),
            // Trailing garbage after a complete object.
            (r#"{"id":5,"op":"roster"} trailing"#, 5),
            // No id anywhere: the historical 0.
            (r#"{"op":"engine""#, 0),
            ("not json at all", 0),
            // id is not a number: recovery cannot invent one.
            (r#"{"id":"seven","op":"#, 0),
        ] {
            let (resp, down) = handle_line(req, &cache);
            assert!(!down);
            assert!(
                resp.starts_with(&format!("{{\"id\":{id},\"ok\":false,")),
                "{req} -> {resp}"
            );
        }
        assert_eq!(recover_id(r#"{"id":  42 ,"op":"x"#), 42);
        assert_eq!(recover_id(r#"{"id":-3,"op":"x"#), 0, "negative ids stay 0");
    }

    /// The optional precision field reprices the engine and is reflected
    /// in the echoed label; omitting it is byte-identical to W8.
    #[test]
    fn precision_field_reprices_and_tags_the_label() {
        let cache = EngineCache::new();
        let base = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#;
        let w8 = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"W8"}"#;
        let w4 = r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz","precision":"W4"}"#;
        let (r_base, _) = handle_line(base, &cache);
        let (r_w8, _) = handle_line(w8, &cache);
        let (r_w4, _) = handle_line(w4, &cache);
        assert_eq!(r_base, r_w8, "explicit W8 must be the default");
        assert_ne!(r_base, r_w4);
        assert!(r_w4.contains("@W4\""), "{r_w4}");
        assert!(r_w4.contains("\"feasible\":true"), "{r_w4}");
        // Layer queries stream fewer digits at W4 on a serial engine.
        let layer = |p: &str| {
            let req = format!(
                r#"{{"id":2,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":64,"n":128,"k":64,"seed":7{p}}}"#
            );
            handle_line(&req, &cache).0
        };
        let (d8, d4) = (layer(""), layer(r#","precision":"w4""#));
        let delay = |r: &str| {
            let tail = &r[r.find("\"delay_us\":").unwrap() + 11..];
            tail[..tail.find(',').unwrap()].parse::<f64>().unwrap()
        };
        assert!(delay(&d4) < delay(&d8), "W4 must be faster: {d4} vs {d8}");
        // Bad precision strings error without shutting down.
        let (bad, down) = handle_line(
            r#"{"id":3,"op":"engine","engine":"OPT3[EN-T]","precision":"W99"}"#,
            &cache,
        );
        assert!(!down);
        assert!(bad.contains("unknown precision"), "{bad}");
    }

    /// The optional memory field pins a roofline corner: the echoed label
    /// carries the `@corner` suffix, bounded bodies append the roofline
    /// group, and the explicit `unbounded` corner is byte-identical to
    /// omitting the field (the pre-memory wire format).
    #[test]
    fn memory_field_bounds_responses_and_tags_the_label() {
        let cache = EngineCache::new();
        let layer = |mem: &str| {
            let req = format!(
                r#"{{"id":2,"op":"layer","engine":"OPT3[EN-T]/28nm@2.00GHz","m":256,"n":1024,"k":1024,"seed":7{mem}}}"#
            );
            handle_line(&req, &cache).0
        };
        let free = layer("");
        assert_eq!(
            free,
            layer(r#","memory":"unbounded""#),
            "explicit unbounded must be the default"
        );
        assert!(
            !free.contains("\"bytes_moved\""),
            "default responses carry no roofline group: {free}"
        );
        let edge = layer(r#","memory":"edge""#);
        assert!(edge.contains("@edge\""), "{edge}");
        for key in [
            "\"bytes_moved\":",
            "\"intensity_ops_per_byte\":",
            "\"bound\":\"",
        ] {
            assert!(edge.contains(key), "{edge}");
        }
        let delay = |r: &str| {
            let tail = &r[r.find("\"delay_us\":").unwrap() + 11..];
            tail[..tail.find(',').unwrap()].parse::<f64>().unwrap()
        };
        assert!(
            delay(&edge) > delay(&free),
            "a finite corner must stretch delay: {edge} vs {free}"
        );
        // Model queries under a finite corner append the same group.
        let model = |mem: &str| {
            let req = format!(
                r#"{{"id":3,"op":"model","engine":"OPT4E[EN-T]/28nm@2.00GHz","model":"ResNet18","seed":7{mem}}}"#
            );
            handle_line(&req, &cache).0
        };
        let free_model = model("");
        assert!(!free_model.contains("\"bound\""), "{free_model}");
        let edge_model = model(r#","memory":"edge""#);
        assert!(
            edge_model.contains("\"bound\":\"") && edge_model.contains("@edge\""),
            "{edge_model}"
        );
        // Bad corner names error without shutting down.
        let (bad, down) = handle_line(
            r#"{"id":4,"op":"engine","engine":"OPT3[EN-T]","memory":"l9"}"#,
            &cache,
        );
        assert!(!down);
        assert!(bad.contains("unknown memory corner"), "{bad}");
    }

    #[test]
    fn infeasible_engines_answer_feasible_false() {
        let cache = EngineCache::new();
        let (resp, _) = handle_line(
            r#"{"id":2,"op":"engine","engine":"MAC(TPU)/28nm@2.00GHz"}"#,
            &cache,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"feasible\":false"), "{resp}");
    }

    #[test]
    fn shutdown_op_flags_the_connection() {
        let cache = EngineCache::new();
        let (resp, down) = handle_line(r#"{"id":9,"op":"shutdown"}"#, &cache);
        assert!(down);
        assert!(resp.contains("\"op\":\"shutdown\""), "{resp}");
    }

    /// The parse-time shutdown predicate agrees with `handle_request`'s
    /// `is_shutdown` on every line shape — what makes drain behavior
    /// independent of pool timing.
    #[test]
    fn shutdown_predicate_matches_the_handler() {
        let cache = EngineCache::new();
        for line in [
            r#"{"id":9,"op":"shutdown"}"#,
            r#"{"op":"shutdown","id":9}"#,
            r#"{"op":"shutdown"}"#,
            // Mentions shutdown but is not a shutdown op.
            r#"{"id":1,"op":"layer","engine":"OPT3[EN-T]","workload":"shutdown","m":1,"n":1,"k":1}"#,
            r#"{"id":1,"op":"engine","engine":"shutdown"}"#,
            // Malformed line mentioning shutdown.
            r#"{"op":"shutdown""#,
            "shutdown",
        ] {
            let (_, down) = handle_line(line, &cache);
            assert_eq!(
                is_shutdown_request(line),
                down,
                "predicate drifted from handler on {line:?}"
            );
        }
    }

    /// The stats op surfaces the accounting invariant fields.
    #[test]
    fn stats_op_reports_lookup_consistency_fields() {
        let cache = EngineCache::new();
        handle_line(
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        let (resp, _) = handle_line(r#"{"id":2,"op":"stats"}"#, &cache);
        for field in [
            "\"price_lookups\":",
            "\"cycle_lookups\":",
            "\"model_lookups\":",
            "\"priced_entries\":",
            "\"cycle_entries\":",
            "\"model_entries\":",
        ] {
            assert!(resp.contains(field), "{resp}");
        }
        let stats = cache.stats();
        assert_eq!(stats.lookups(), stats.hits() + stats.misses());
    }

    /// Model ops keep the model map's accounting invariant visible over
    /// the wire: after a cold + warm `model` request against an isolated
    /// cache, `model_hits + model_misses == model_lookups` in the stats
    /// response, and the warm repeat answered byte-identically from one
    /// model-map hit.
    #[test]
    fn model_op_accounting_balances_over_the_wire() {
        let cache = EngineCache::new();
        let num = |resp: &str, field: &str| -> u64 {
            let needle = format!("\"{field}\":");
            let tail = &resp[resp.find(&needle).expect(field) + needle.len()..];
            tail[..tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len())]
                .parse()
                .expect(field)
        };
        let req = r#"{"id":1,"op":"model","engine":"OPT4E[EN-T]/28nm@2.00GHz","model":"resnet18"}"#;
        let (cold, _) = handle_line(req, &cache);
        let (warm, _) = handle_line(req, &cache);
        assert_eq!(
            cold.replace("\"id\":1", ""),
            warm.replace("\"id\":1", ""),
            "warm model op must answer byte-identically"
        );
        let (stats, _) = handle_line(r#"{"id":2,"op":"stats"}"#, &cache);
        let (hits, misses, lookups) = (
            num(&stats, "model_hits"),
            num(&stats, "model_misses"),
            num(&stats, "model_lookups"),
        );
        assert_eq!(hits + misses, lookups, "{stats}");
        assert_eq!((hits, misses), (1, 1), "{stats}");
        assert_eq!(num(&stats, "model_entries"), 1, "{stats}");
    }

    /// The stats op reports per-window `since_*` deltas over its own
    /// polling cadence, plus uptime relative to a caller-supplied origin.
    #[test]
    fn stats_op_windows_cache_deltas_between_polls() {
        let cache = EngineCache::new();
        let num = |resp: &str, field: &str| -> u64 {
            let needle = format!("\"{field}\":");
            let tail = &resp[resp.find(&needle).expect(field) + needle.len()..];
            tail[..tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len())]
                .parse()
                .expect(field)
        };
        handle_line(
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        let (first, _) = handle_line(r#"{"id":2,"op":"stats"}"#, &cache);
        assert_eq!(num(&first, "since_price_misses"), 1, "{first}");
        assert_eq!(
            num(&first, "since_price_lookups"),
            num(&first, "price_lookups"),
            "first window covers everything: {first}"
        );
        // Nothing between polls → an all-zero window, totals unchanged.
        let (second, _) = handle_line(r#"{"id":3,"op":"stats"}"#, &cache);
        assert_eq!(num(&second, "since_price_lookups"), 0, "{second}");
        assert_eq!(
            num(&second, "price_lookups"),
            num(&first, "price_lookups"),
            "{second}"
        );
        // A warm repeat lands one hit in the next window only.
        handle_line(
            r#"{"id":4,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        let (third, _) = handle_line(r#"{"id":5,"op":"stats"}"#, &cache);
        assert_eq!(num(&third, "since_price_hits"), 1, "{third}");
        assert_eq!(num(&third, "since_price_misses"), 0, "{third}");
        // Uptime subtracts the caller's monotonic origin, saturating.
        let up = num(&third, "uptime_ms");
        let far_future = 1u64 << 52; // ~143k years in ms, within the 2^53 field cap
        let (offset, _) = handle_line(
            &format!(r#"{{"id":6,"op":"stats","origin":{far_future}}}"#),
            &cache,
        );
        assert_eq!(num(&offset, "uptime_ms"), 0, "{offset}");
        let (rel, _) = handle_line(r#"{"id":7,"op":"stats","origin":0}"#, &cache);
        assert!(num(&rel, "uptime_ms") >= up, "{rel}");
    }

    /// The metrics op folds the serving cache's counters into the registry
    /// snapshot, and histograms round-trip through the bucket CSV.
    #[test]
    fn metrics_op_snapshots_registry_and_cache() {
        let cache = EngineCache::new();
        handle_line(
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
        );
        let (resp, down) = handle_line(r#"{"id":2,"op":"metrics"}"#, &cache);
        assert!(!down);
        assert!(
            resp.starts_with("{\"id\":2,\"ok\":true,\"op\":\"metrics\""),
            "{resp}"
        );
        for field in [
            "\"uptime_ms\":",
            "\"ctr_cache_price_hits\":0",
            "\"ctr_cache_price_misses\":1",
            "\"ctr_cache_price_lookups\":1",
            "\"ctr_cache_model_lookups\":0",
            "\"gauge_cache_priced_entries\":1",
            "\"gauge_cache_cycle_entries\":0",
            "\"gauge_cache_model_entries\":0",
        ] {
            assert!(resp.contains(field), "missing {field} in {resp}");
        }
        // The global eval instrumentation shows up as histograms with the
        // full wire shape (count/sum/max/quantiles/buckets).
        for field in [
            "\"hist_eval_synthesis_ns_count\":",
            "\"hist_eval_synthesis_ns_p50\":",
            "\"hist_eval_synthesis_ns_buckets\":\"",
        ] {
            assert!(resp.contains(field), "missing {field} in {resp}");
        }
        // The prometheus variant renders text exposition, escaped.
        let (prom, _) = handle_line(r#"{"id":3,"op":"metrics","format":"prometheus"}"#, &cache);
        assert!(prom.contains("\"format\":\"prometheus\""), "{prom}");
        assert!(
            prom.contains("# TYPE tpe_cache_price_hits counter"),
            "{prom}"
        );
        assert!(
            prom.contains("\\u000a"),
            "exposition newlines are escaped: {prom}"
        );
        // Unknown formats error without shutting down.
        let (bad, down) = handle_line(r#"{"id":4,"op":"metrics","format":"xml"}"#, &cache);
        assert!(!down);
        assert!(bad.contains("unknown metrics format"), "{bad}");
    }

    /// Unknown ops list any extension names, and extensions can answer
    /// with several enveloped lines per request.
    #[test]
    fn batch_ops_extensions_answer_multi_line() {
        struct Echo3;
        impl BatchOps for Echo3 {
            fn handle(
                &self,
                op: &str,
                fields: &Fields,
                _cache: &EngineCache,
            ) -> Option<Result<Vec<String>, String>> {
                (op == "echo3").then(|| {
                    let tag = fields.str("tag")?.to_string();
                    Ok((0..3)
                        .map(|i| format!("\"op\":\"echo3\",\"i\":{i},\"tag\":\"{tag}\""))
                        .collect())
                })
            }
            fn op_names(&self) -> String {
                "|echo3".to_string()
            }
        }
        let cache = EngineCache::new();
        let (lines, down) = handle_request(r#"{"id":4,"op":"echo3","tag":"t"}"#, &cache, &Echo3);
        assert!(!down);
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with("{\"id\":4,\"ok\":true,"), "{line}");
            assert!(line.contains(&format!("\"i\":{i}")), "{line}");
        }
        // Extension errors use the standard envelope.
        let (err_lines, _) = handle_request(r#"{"id":4,"op":"echo3"}"#, &cache, &Echo3);
        assert_eq!(err_lines.len(), 1);
        assert!(
            err_lines[0].contains("missing field `tag`"),
            "{err_lines:?}"
        );
        // Unknown ops name the extensions.
        let (unknown, _) = handle_request(r#"{"id":4,"op":"warp"}"#, &cache, &Echo3);
        assert!(unknown[0].contains("|echo3"), "{unknown:?}");
        // Without extensions the built-in op list is pinned.
        let (plain, _) = handle_request(r#"{"id":4,"op":"warp"}"#, &cache, &NoOps);
        assert!(
            plain[0].contains("(expected engine|layer|metrics|model|roster|stats|shutdown)"),
            "{plain:?}"
        );
    }

    /// `SnapshotOps` answers `snapshot` by saving the serve cache and
    /// composes with the wrapped extension set's ops and names.
    #[test]
    fn snapshot_ops_save_and_compose() {
        let path = std::env::temp_dir().join(format!("tpe-serve-snap-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = EngineCache::new();
        let ops = SnapshotOps::new(&NoOps, &path);
        handle_request(
            r#"{"id":1,"op":"engine","engine":"OPT4E[EN-T]/28nm@2.00GHz"}"#,
            &cache,
            &ops,
        );
        let (lines, down) = handle_request(r#"{"id":2,"op":"snapshot"}"#, &cache, &ops);
        assert!(!down);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("{\"id\":2,\"ok\":true,\"op\":\"snapshot\""),
            "{}",
            lines[0]
        );
        // The file is a loadable snapshot with the same entry count the
        // op reported (pricing one engine memoizes synthesis + price).
        let fresh = EngineCache::new();
        let info = crate::snapshot::load(&fresh, &path).unwrap().unwrap();
        assert!(info.entries > 0);
        assert!(
            lines[0].contains(&format!("\"entries\":{}", info.entries)),
            "{}",
            lines[0]
        );
        // Unknown ops list the composed name set.
        let (unknown, _) = handle_request(r#"{"id":3,"op":"warp"}"#, &cache, &ops);
        assert!(unknown[0].contains("|snapshot"), "{unknown:?}");
        let _ = std::fs::remove_file(&path);
    }

    /// Request classification comes out of the handler's own parse and
    /// drives the same counters `record_op` used to re-parse for.
    #[test]
    fn request_classification_matches_counted_ops() {
        let cache = EngineCache::new();
        let class =
            |line: &str| handle_request_classified(line, &cache, &NoOps, CycleModel::Sampled).2;
        let stats_idx = COUNTED_OPS.iter().position(|o| *o == "stats").unwrap();
        assert_eq!(
            class(r#"{"id":1,"op":"stats"}"#),
            RequestClass::Counted(stats_idx)
        );
        assert_eq!(class(r#"{"id":1,"op":"nope"}"#), RequestClass::Other);
        assert_eq!(class(r#"{"id":1}"#), RequestClass::Other);
        assert_eq!(class("not json"), RequestClass::Malformed);
        // record_class ticks exactly the counters record_op used to.
        let registry = Registry::new();
        let obs = ServeObs::in_registry(&registry);
        obs.record_class(RequestClass::Counted(stats_idx));
        obs.record_class(RequestClass::Other);
        obs.record_class(RequestClass::Malformed);
        assert_eq!(obs.op_requests[stats_idx].get(), 1);
        assert_eq!(obs.other_requests.get(), 2, "malformed counts as other");
        assert_eq!(obs.parse_errors.get(), 1);
    }

    #[test]
    fn points_follow_scans_only_genuine_markers() {
        assert_eq!(
            points_follow(r#"{"id":1,"ok":true,"points_follow":21}"#),
            21
        );
        assert_eq!(points_follow(r#"{"id":1,"ok":true,"points_follow":0}"#), 0);
        assert_eq!(points_follow(r#"{"id":1,"ok":true}"#), 0);
        // An escaped occurrence inside a string value does not match.
        assert_eq!(
            points_follow(r#"{"id":1,"ok":false,"error":"bad \"points_follow\": field"}"#),
            0
        );
    }

    #[test]
    fn read_limited_line_enforces_the_cap() {
        let data = b"short\nexactly8\nway too long line\nlast";
        let mut reader = BufReader::new(&data[..]);
        let line = |r: &mut BufReader<&[u8]>, max| match read_limited_line(r, max).unwrap() {
            LineRead::Line(l) => l,
            other => panic!(
                "expected a line, got {}",
                match other {
                    LineRead::Eof => "eof",
                    LineRead::TooLong { .. } => "too long",
                    _ => "utf8 error",
                }
            ),
        };
        assert_eq!(line(&mut reader, 16), "short");
        assert_eq!(line(&mut reader, 8), "exactly8", "max-length line passes");
        match read_limited_line(&mut reader, 8).unwrap() {
            LineRead::TooLong { partial } => assert_eq!(&partial, b"way too lo"),
            _ => panic!("over-long line must be rejected"),
        }
        // A final line without a newline still reads (like `lines()`).
        let mut tail = BufReader::new(&b"last"[..]);
        assert_eq!(line(&mut tail, 16), "last");
        assert!(matches!(
            read_limited_line(&mut tail, 16).unwrap(),
            LineRead::Eof
        ));
        // The limit excludes the terminator for CRLF lines too: exactly
        // max content + "\r\n" passes, one more content byte does not.
        let mut crlf = BufReader::new(&b"exactly8\r\nnowitsover\r\n"[..]);
        assert_eq!(line(&mut crlf, 8), "exactly8");
        assert!(matches!(
            read_limited_line(&mut crlf, 8).unwrap(),
            LineRead::TooLong { .. }
        ));
    }
}
